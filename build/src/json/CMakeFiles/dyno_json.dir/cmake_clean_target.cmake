file(REMOVE_RECURSE
  "libdyno_json.a"
)
