# Empty dependencies file for dyno_json.
# This may be replaced when dependencies are built.
