file(REMOVE_RECURSE
  "CMakeFiles/dyno_json.dir/value.cc.o"
  "CMakeFiles/dyno_json.dir/value.cc.o.d"
  "libdyno_json.a"
  "libdyno_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
