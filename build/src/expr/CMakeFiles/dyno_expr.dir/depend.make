# Empty dependencies file for dyno_expr.
# This may be replaced when dependencies are built.
