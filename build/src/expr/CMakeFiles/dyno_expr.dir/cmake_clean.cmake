file(REMOVE_RECURSE
  "CMakeFiles/dyno_expr.dir/expr.cc.o"
  "CMakeFiles/dyno_expr.dir/expr.cc.o.d"
  "libdyno_expr.a"
  "libdyno_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
