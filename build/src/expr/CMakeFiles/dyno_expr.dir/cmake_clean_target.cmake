file(REMOVE_RECURSE
  "libdyno_expr.a"
)
