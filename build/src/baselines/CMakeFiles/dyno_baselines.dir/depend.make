# Empty dependencies file for dyno_baselines.
# This may be replaced when dependencies are built.
