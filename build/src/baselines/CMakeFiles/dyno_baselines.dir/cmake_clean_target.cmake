file(REMOVE_RECURSE
  "libdyno_baselines.a"
)
