file(REMOVE_RECURSE
  "CMakeFiles/dyno_baselines.dir/best_static.cc.o"
  "CMakeFiles/dyno_baselines.dir/best_static.cc.o.d"
  "CMakeFiles/dyno_baselines.dir/exact_stats.cc.o"
  "CMakeFiles/dyno_baselines.dir/exact_stats.cc.o.d"
  "CMakeFiles/dyno_baselines.dir/relopt.cc.o"
  "CMakeFiles/dyno_baselines.dir/relopt.cc.o.d"
  "libdyno_baselines.a"
  "libdyno_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
