file(REMOVE_RECURSE
  "CMakeFiles/dyno_storage.dir/catalog.cc.o"
  "CMakeFiles/dyno_storage.dir/catalog.cc.o.d"
  "CMakeFiles/dyno_storage.dir/dfs.cc.o"
  "CMakeFiles/dyno_storage.dir/dfs.cc.o.d"
  "libdyno_storage.a"
  "libdyno_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
