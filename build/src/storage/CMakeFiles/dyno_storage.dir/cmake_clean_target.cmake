file(REMOVE_RECURSE
  "libdyno_storage.a"
)
