# Empty compiler generated dependencies file for dyno_storage.
# This may be replaced when dependencies are built.
