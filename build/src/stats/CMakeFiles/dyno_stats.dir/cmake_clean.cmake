file(REMOVE_RECURSE
  "CMakeFiles/dyno_stats.dir/cords.cc.o"
  "CMakeFiles/dyno_stats.dir/cords.cc.o.d"
  "CMakeFiles/dyno_stats.dir/histogram.cc.o"
  "CMakeFiles/dyno_stats.dir/histogram.cc.o.d"
  "CMakeFiles/dyno_stats.dir/kmv.cc.o"
  "CMakeFiles/dyno_stats.dir/kmv.cc.o.d"
  "CMakeFiles/dyno_stats.dir/stats_store.cc.o"
  "CMakeFiles/dyno_stats.dir/stats_store.cc.o.d"
  "CMakeFiles/dyno_stats.dir/table_stats.cc.o"
  "CMakeFiles/dyno_stats.dir/table_stats.cc.o.d"
  "libdyno_stats.a"
  "libdyno_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
