# Empty compiler generated dependencies file for dyno_stats.
# This may be replaced when dependencies are built.
