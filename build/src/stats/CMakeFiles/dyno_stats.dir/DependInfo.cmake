
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cords.cc" "src/stats/CMakeFiles/dyno_stats.dir/cords.cc.o" "gcc" "src/stats/CMakeFiles/dyno_stats.dir/cords.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/dyno_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/dyno_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/kmv.cc" "src/stats/CMakeFiles/dyno_stats.dir/kmv.cc.o" "gcc" "src/stats/CMakeFiles/dyno_stats.dir/kmv.cc.o.d"
  "/root/repo/src/stats/stats_store.cc" "src/stats/CMakeFiles/dyno_stats.dir/stats_store.cc.o" "gcc" "src/stats/CMakeFiles/dyno_stats.dir/stats_store.cc.o.d"
  "/root/repo/src/stats/table_stats.cc" "src/stats/CMakeFiles/dyno_stats.dir/table_stats.cc.o" "gcc" "src/stats/CMakeFiles/dyno_stats.dir/table_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/dyno_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/dyno_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dyno_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dyno_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
