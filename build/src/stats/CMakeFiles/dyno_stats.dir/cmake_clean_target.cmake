file(REMOVE_RECURSE
  "libdyno_stats.a"
)
