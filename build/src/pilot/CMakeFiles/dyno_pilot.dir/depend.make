# Empty dependencies file for dyno_pilot.
# This may be replaced when dependencies are built.
