file(REMOVE_RECURSE
  "CMakeFiles/dyno_pilot.dir/pilot_runner.cc.o"
  "CMakeFiles/dyno_pilot.dir/pilot_runner.cc.o.d"
  "CMakeFiles/dyno_pilot.dir/predicate_order.cc.o"
  "CMakeFiles/dyno_pilot.dir/predicate_order.cc.o.d"
  "libdyno_pilot.a"
  "libdyno_pilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_pilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
