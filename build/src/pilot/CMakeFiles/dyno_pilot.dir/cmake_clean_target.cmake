file(REMOVE_RECURSE
  "libdyno_pilot.a"
)
