file(REMOVE_RECURSE
  "CMakeFiles/dyno_lang.dir/parser.cc.o"
  "CMakeFiles/dyno_lang.dir/parser.cc.o.d"
  "CMakeFiles/dyno_lang.dir/plan.cc.o"
  "CMakeFiles/dyno_lang.dir/plan.cc.o.d"
  "CMakeFiles/dyno_lang.dir/query.cc.o"
  "CMakeFiles/dyno_lang.dir/query.cc.o.d"
  "libdyno_lang.a"
  "libdyno_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
