# Empty compiler generated dependencies file for dyno_lang.
# This may be replaced when dependencies are built.
