
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/dyno_lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/dyno_lang.dir/parser.cc.o.d"
  "/root/repo/src/lang/plan.cc" "src/lang/CMakeFiles/dyno_lang.dir/plan.cc.o" "gcc" "src/lang/CMakeFiles/dyno_lang.dir/plan.cc.o.d"
  "/root/repo/src/lang/query.cc" "src/lang/CMakeFiles/dyno_lang.dir/query.cc.o" "gcc" "src/lang/CMakeFiles/dyno_lang.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/dyno_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dyno_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dyno_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
