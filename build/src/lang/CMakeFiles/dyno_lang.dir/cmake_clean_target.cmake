file(REMOVE_RECURSE
  "libdyno_lang.a"
)
