file(REMOVE_RECURSE
  "libdyno_common.a"
)
