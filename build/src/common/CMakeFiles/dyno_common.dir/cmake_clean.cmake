file(REMOVE_RECURSE
  "CMakeFiles/dyno_common.dir/random.cc.o"
  "CMakeFiles/dyno_common.dir/random.cc.o.d"
  "CMakeFiles/dyno_common.dir/sim_time.cc.o"
  "CMakeFiles/dyno_common.dir/sim_time.cc.o.d"
  "CMakeFiles/dyno_common.dir/status.cc.o"
  "CMakeFiles/dyno_common.dir/status.cc.o.d"
  "CMakeFiles/dyno_common.dir/string_util.cc.o"
  "CMakeFiles/dyno_common.dir/string_util.cc.o.d"
  "libdyno_common.a"
  "libdyno_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
