# Empty dependencies file for dyno_common.
# This may be replaced when dependencies are built.
