file(REMOVE_RECURSE
  "CMakeFiles/dyno_mr.dir/coordinator.cc.o"
  "CMakeFiles/dyno_mr.dir/coordinator.cc.o.d"
  "CMakeFiles/dyno_mr.dir/engine.cc.o"
  "CMakeFiles/dyno_mr.dir/engine.cc.o.d"
  "libdyno_mr.a"
  "libdyno_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
