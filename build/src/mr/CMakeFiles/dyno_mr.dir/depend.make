# Empty dependencies file for dyno_mr.
# This may be replaced when dependencies are built.
