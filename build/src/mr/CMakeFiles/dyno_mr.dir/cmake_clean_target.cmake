file(REMOVE_RECURSE
  "libdyno_mr.a"
)
