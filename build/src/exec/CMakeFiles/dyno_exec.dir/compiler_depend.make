# Empty compiler generated dependencies file for dyno_exec.
# This may be replaced when dependencies are built.
