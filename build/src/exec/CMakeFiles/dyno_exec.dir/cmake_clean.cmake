file(REMOVE_RECURSE
  "CMakeFiles/dyno_exec.dir/aggregates.cc.o"
  "CMakeFiles/dyno_exec.dir/aggregates.cc.o.d"
  "CMakeFiles/dyno_exec.dir/broadcast.cc.o"
  "CMakeFiles/dyno_exec.dir/broadcast.cc.o.d"
  "CMakeFiles/dyno_exec.dir/plan_executor.cc.o"
  "CMakeFiles/dyno_exec.dir/plan_executor.cc.o.d"
  "CMakeFiles/dyno_exec.dir/row_ops.cc.o"
  "CMakeFiles/dyno_exec.dir/row_ops.cc.o.d"
  "libdyno_exec.a"
  "libdyno_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
