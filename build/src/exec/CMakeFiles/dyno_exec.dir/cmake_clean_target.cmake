file(REMOVE_RECURSE
  "libdyno_exec.a"
)
