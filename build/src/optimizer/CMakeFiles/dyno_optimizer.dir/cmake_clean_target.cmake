file(REMOVE_RECURSE
  "libdyno_optimizer.a"
)
