# Empty compiler generated dependencies file for dyno_optimizer.
# This may be replaced when dependencies are built.
