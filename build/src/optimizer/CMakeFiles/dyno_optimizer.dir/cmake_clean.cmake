file(REMOVE_RECURSE
  "CMakeFiles/dyno_optimizer.dir/join_graph.cc.o"
  "CMakeFiles/dyno_optimizer.dir/join_graph.cc.o.d"
  "CMakeFiles/dyno_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/dyno_optimizer.dir/optimizer.cc.o.d"
  "libdyno_optimizer.a"
  "libdyno_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
