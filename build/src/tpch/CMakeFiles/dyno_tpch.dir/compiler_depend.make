# Empty compiler generated dependencies file for dyno_tpch.
# This may be replaced when dependencies are built.
