file(REMOVE_RECURSE
  "libdyno_tpch.a"
)
