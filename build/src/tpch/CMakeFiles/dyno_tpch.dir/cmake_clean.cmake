file(REMOVE_RECURSE
  "CMakeFiles/dyno_tpch.dir/dbgen.cc.o"
  "CMakeFiles/dyno_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/dyno_tpch.dir/queries.cc.o"
  "CMakeFiles/dyno_tpch.dir/queries.cc.o.d"
  "CMakeFiles/dyno_tpch.dir/restaurant.cc.o"
  "CMakeFiles/dyno_tpch.dir/restaurant.cc.o.d"
  "libdyno_tpch.a"
  "libdyno_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
