
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpch/dbgen.cc" "src/tpch/CMakeFiles/dyno_tpch.dir/dbgen.cc.o" "gcc" "src/tpch/CMakeFiles/dyno_tpch.dir/dbgen.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "src/tpch/CMakeFiles/dyno_tpch.dir/queries.cc.o" "gcc" "src/tpch/CMakeFiles/dyno_tpch.dir/queries.cc.o.d"
  "/root/repo/src/tpch/restaurant.cc" "src/tpch/CMakeFiles/dyno_tpch.dir/restaurant.cc.o" "gcc" "src/tpch/CMakeFiles/dyno_tpch.dir/restaurant.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/dyno_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dyno_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/dyno_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dyno_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dyno_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
