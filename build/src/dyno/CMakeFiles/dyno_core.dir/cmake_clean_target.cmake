file(REMOVE_RECURSE
  "libdyno_core.a"
)
