# Empty compiler generated dependencies file for dyno_core.
# This may be replaced when dependencies are built.
