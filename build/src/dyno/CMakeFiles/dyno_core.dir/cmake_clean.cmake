file(REMOVE_RECURSE
  "CMakeFiles/dyno_core.dir/driver.cc.o"
  "CMakeFiles/dyno_core.dir/driver.cc.o.d"
  "CMakeFiles/dyno_core.dir/strategy.cc.o"
  "CMakeFiles/dyno_core.dir/strategy.cc.o.d"
  "libdyno_core.a"
  "libdyno_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
