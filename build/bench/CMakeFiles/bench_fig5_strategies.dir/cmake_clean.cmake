file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_strategies.dir/bench_fig5_strategies.cc.o"
  "CMakeFiles/bench_fig5_strategies.dir/bench_fig5_strategies.cc.o.d"
  "bench_fig5_strategies"
  "bench_fig5_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
