# Empty dependencies file for bench_fig5_strategies.
# This may be replaced when dependencies are built.
