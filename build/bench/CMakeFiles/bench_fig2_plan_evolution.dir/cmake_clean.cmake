file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_plan_evolution.dir/bench_fig2_plan_evolution.cc.o"
  "CMakeFiles/bench_fig2_plan_evolution.dir/bench_fig2_plan_evolution.cc.o.d"
  "bench_fig2_plan_evolution"
  "bench_fig2_plan_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_plan_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
