# Empty compiler generated dependencies file for bench_fig2_plan_evolution.
# This may be replaced when dependencies are built.
