file(REMOVE_RECURSE
  "libdyno_bench_common.a"
)
