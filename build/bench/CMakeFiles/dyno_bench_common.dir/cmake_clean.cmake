file(REMOVE_RECURSE
  "CMakeFiles/dyno_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/dyno_bench_common.dir/bench_common.cc.o.d"
  "libdyno_bench_common.a"
  "libdyno_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
