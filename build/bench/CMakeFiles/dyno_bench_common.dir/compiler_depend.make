# Empty compiler generated dependencies file for dyno_bench_common.
# This may be replaced when dependencies are built.
