file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_star_plans.dir/bench_fig3_star_plans.cc.o"
  "CMakeFiles/bench_fig3_star_plans.dir/bench_fig3_star_plans.cc.o.d"
  "bench_fig3_star_plans"
  "bench_fig3_star_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_star_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
