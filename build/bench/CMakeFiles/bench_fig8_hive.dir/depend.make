# Empty dependencies file for bench_fig8_hive.
# This may be replaced when dependencies are built.
