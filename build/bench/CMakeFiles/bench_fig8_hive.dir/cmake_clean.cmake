file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hive.dir/bench_fig8_hive.cc.o"
  "CMakeFiles/bench_fig8_hive.dir/bench_fig8_hive.cc.o.d"
  "bench_fig8_hive"
  "bench_fig8_hive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
