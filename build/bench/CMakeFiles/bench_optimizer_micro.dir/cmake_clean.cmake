file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_micro.dir/bench_optimizer_micro.cc.o"
  "CMakeFiles/bench_optimizer_micro.dir/bench_optimizer_micro.cc.o.d"
  "bench_optimizer_micro"
  "bench_optimizer_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
