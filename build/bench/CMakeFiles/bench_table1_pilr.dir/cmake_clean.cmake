file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pilr.dir/bench_table1_pilr.cc.o"
  "CMakeFiles/bench_table1_pilr.dir/bench_table1_pilr.cc.o.d"
  "bench_table1_pilr"
  "bench_table1_pilr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pilr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
