# Empty dependencies file for bench_table1_pilr.
# This may be replaced when dependencies are built.
