file(REMOVE_RECURSE
  "CMakeFiles/bench_kmv_micro.dir/bench_kmv_micro.cc.o"
  "CMakeFiles/bench_kmv_micro.dir/bench_kmv_micro.cc.o.d"
  "bench_kmv_micro"
  "bench_kmv_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kmv_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
