# Empty dependencies file for bench_fig6_udf_selectivity.
# This may be replaced when dependencies are built.
