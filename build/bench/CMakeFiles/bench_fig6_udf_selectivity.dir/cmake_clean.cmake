file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_udf_selectivity.dir/bench_fig6_udf_selectivity.cc.o"
  "CMakeFiles/bench_fig6_udf_selectivity.dir/bench_fig6_udf_selectivity.cc.o.d"
  "bench_fig6_udf_selectivity"
  "bench_fig6_udf_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_udf_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
