
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_udf_selectivity.cc" "bench/CMakeFiles/bench_fig6_udf_selectivity.dir/bench_fig6_udf_selectivity.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_udf_selectivity.dir/bench_fig6_udf_selectivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dyno_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dyno_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/dyno/CMakeFiles/dyno_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/dyno_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/pilot/CMakeFiles/dyno_pilot.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/dyno_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dyno_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dyno_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/dyno_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dyno_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dyno_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/dyno_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dyno_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dyno_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
