file(REMOVE_RECURSE
  "libdyno_test_util.a"
)
