# Empty dependencies file for dyno_test_util.
# This may be replaced when dependencies are built.
