file(REMOVE_RECURSE
  "CMakeFiles/dyno_test_util.dir/test_util.cc.o"
  "CMakeFiles/dyno_test_util.dir/test_util.cc.o.d"
  "libdyno_test_util.a"
  "libdyno_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
