file(REMOVE_RECURSE
  "CMakeFiles/pilot_test.dir/pilot_test.cc.o"
  "CMakeFiles/pilot_test.dir/pilot_test.cc.o.d"
  "pilot_test"
  "pilot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
