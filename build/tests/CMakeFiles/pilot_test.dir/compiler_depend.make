# Empty compiler generated dependencies file for pilot_test.
# This may be replaced when dependencies are built.
