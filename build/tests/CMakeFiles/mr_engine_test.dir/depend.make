# Empty dependencies file for mr_engine_test.
# This may be replaced when dependencies are built.
