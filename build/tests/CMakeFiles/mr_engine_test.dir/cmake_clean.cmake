file(REMOVE_RECURSE
  "CMakeFiles/mr_engine_test.dir/mr_engine_test.cc.o"
  "CMakeFiles/mr_engine_test.dir/mr_engine_test.cc.o.d"
  "mr_engine_test"
  "mr_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
