file(REMOVE_RECURSE
  "CMakeFiles/dfs_test.dir/dfs_test.cc.o"
  "CMakeFiles/dfs_test.dir/dfs_test.cc.o.d"
  "dfs_test"
  "dfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
