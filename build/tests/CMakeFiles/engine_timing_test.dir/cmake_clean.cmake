file(REMOVE_RECURSE
  "CMakeFiles/engine_timing_test.dir/engine_timing_test.cc.o"
  "CMakeFiles/engine_timing_test.dir/engine_timing_test.cc.o.d"
  "engine_timing_test"
  "engine_timing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
