# Empty compiler generated dependencies file for engine_timing_test.
# This may be replaced when dependencies are built.
