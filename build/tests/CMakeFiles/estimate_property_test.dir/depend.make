# Empty dependencies file for estimate_property_test.
# This may be replaced when dependencies are built.
