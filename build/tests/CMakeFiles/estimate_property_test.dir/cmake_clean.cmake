file(REMOVE_RECURSE
  "CMakeFiles/estimate_property_test.dir/estimate_property_test.cc.o"
  "CMakeFiles/estimate_property_test.dir/estimate_property_test.cc.o.d"
  "estimate_property_test"
  "estimate_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
