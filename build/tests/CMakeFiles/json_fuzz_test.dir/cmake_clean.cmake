file(REMOVE_RECURSE
  "CMakeFiles/json_fuzz_test.dir/json_fuzz_test.cc.o"
  "CMakeFiles/json_fuzz_test.dir/json_fuzz_test.cc.o.d"
  "json_fuzz_test"
  "json_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
