# Empty dependencies file for json_fuzz_test.
# This may be replaced when dependencies are built.
