file(REMOVE_RECURSE
  "CMakeFiles/driver_extra_test.dir/driver_extra_test.cc.o"
  "CMakeFiles/driver_extra_test.dir/driver_extra_test.cc.o.d"
  "driver_extra_test"
  "driver_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
