# Empty compiler generated dependencies file for driver_extra_test.
# This may be replaced when dependencies are built.
