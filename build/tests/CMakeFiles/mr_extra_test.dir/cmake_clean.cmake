file(REMOVE_RECURSE
  "CMakeFiles/mr_extra_test.dir/mr_extra_test.cc.o"
  "CMakeFiles/mr_extra_test.dir/mr_extra_test.cc.o.d"
  "mr_extra_test"
  "mr_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
