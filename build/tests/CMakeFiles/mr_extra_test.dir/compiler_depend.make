# Empty compiler generated dependencies file for mr_extra_test.
# This may be replaced when dependencies are built.
