file(REMOVE_RECURSE
  "CMakeFiles/exec_extra_test.dir/exec_extra_test.cc.o"
  "CMakeFiles/exec_extra_test.dir/exec_extra_test.cc.o.d"
  "exec_extra_test"
  "exec_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
