# Empty dependencies file for exec_extra_test.
# This may be replaced when dependencies are built.
