# Empty dependencies file for dyno_shell.
# This may be replaced when dependencies are built.
