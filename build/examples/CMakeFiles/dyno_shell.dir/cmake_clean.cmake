file(REMOVE_RECURSE
  "CMakeFiles/dyno_shell.dir/dyno_shell.cpp.o"
  "CMakeFiles/dyno_shell.dir/dyno_shell.cpp.o.d"
  "dyno_shell"
  "dyno_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyno_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
