# Empty dependencies file for tpch_dynamic.
# This may be replaced when dependencies are built.
