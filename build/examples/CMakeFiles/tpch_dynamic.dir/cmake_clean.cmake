file(REMOVE_RECURSE
  "CMakeFiles/tpch_dynamic.dir/tpch_dynamic.cpp.o"
  "CMakeFiles/tpch_dynamic.dir/tpch_dynamic.cpp.o.d"
  "tpch_dynamic"
  "tpch_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
