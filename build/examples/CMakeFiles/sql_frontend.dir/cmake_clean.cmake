file(REMOVE_RECURSE
  "CMakeFiles/sql_frontend.dir/sql_frontend.cpp.o"
  "CMakeFiles/sql_frontend.dir/sql_frontend.cpp.o.d"
  "sql_frontend"
  "sql_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
