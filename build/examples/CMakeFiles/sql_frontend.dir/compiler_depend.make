# Empty compiler generated dependencies file for sql_frontend.
# This may be replaced when dependencies are built.
