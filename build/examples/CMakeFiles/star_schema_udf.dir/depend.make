# Empty dependencies file for star_schema_udf.
# This may be replaced when dependencies are built.
