file(REMOVE_RECURSE
  "CMakeFiles/star_schema_udf.dir/star_schema_udf.cpp.o"
  "CMakeFiles/star_schema_udf.dir/star_schema_udf.cpp.o.d"
  "star_schema_udf"
  "star_schema_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_schema_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
