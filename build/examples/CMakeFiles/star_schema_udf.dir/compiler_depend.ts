# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for star_schema_udf.
