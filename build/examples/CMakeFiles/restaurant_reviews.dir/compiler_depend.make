# Empty compiler generated dependencies file for restaurant_reviews.
# This may be replaced when dependencies are built.
