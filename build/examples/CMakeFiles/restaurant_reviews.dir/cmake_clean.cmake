file(REMOVE_RECURSE
  "CMakeFiles/restaurant_reviews.dir/restaurant_reviews.cpp.o"
  "CMakeFiles/restaurant_reviews.dir/restaurant_reviews.cpp.o.d"
  "restaurant_reviews"
  "restaurant_reviews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restaurant_reviews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
