file(REMOVE_RECURSE
  "CMakeFiles/multi_block.dir/multi_block.cpp.o"
  "CMakeFiles/multi_block.dir/multi_block.cpp.o.d"
  "multi_block"
  "multi_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
