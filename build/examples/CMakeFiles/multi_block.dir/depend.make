# Empty dependencies file for multi_block.
# This may be replaced when dependencies are built.
