// Quickstart: build a tiny dataset, ask DYNO to run a 3-way join with a
// UDF, and watch pilot runs + dynamic optimization choose the plan.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "dyno/driver.h"
#include "mr/engine.h"
#include "stats/stats_store.h"
#include "storage/catalog.h"
#include "tpch/queries.h"  // for MakeHashFilterUdf

namespace {

using namespace dyno;  // NOLINT — example brevity

int RunQuickstart() {
  // 1. A simulated cluster: DFS + MapReduce engine.
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig cluster;
  cluster.job_startup_ms = 5000;          // 5 s job startup, Hadoop-style
  cluster.memory_per_task_bytes = 64 * 1024;
  MapReduceEngine engine(&dfs, cluster);

  // 2. Three tables: users, orders, items.
  std::vector<Value> users;
  for (int i = 0; i < 500; ++i) {
    users.push_back(MakeRow({{"u_id", Value::Int(i)},
                             {"u_country", Value::String(i % 3 ? "US" : "DE")},
                             {"u_name", Value::String("user")}}));
  }
  std::vector<Value> orders;
  for (int i = 0; i < 5000; ++i) {
    orders.push_back(MakeRow({{"o_id", Value::Int(i)},
                              {"o_uid", Value::Int(i % 500)},
                              {"o_item", Value::Int(i % 200)},
                              {"o_total", Value::Double(10.0 + i % 90)}}));
  }
  std::vector<Value> items;
  for (int i = 0; i < 200; ++i) {
    items.push_back(MakeRow({{"i_id", Value::Int(i)},
                             {"i_label", Value::String("item")},
                             {"i_price", Value::Double(1.0 * (i % 40))}}));
  }
  if (!catalog.CreateTable("users", users).ok() ||
      !catalog.CreateTable("orders", orders).ok() ||
      !catalog.CreateTable("items", items).ok()) {
    std::fprintf(stderr, "table creation failed\n");
    return 1;
  }

  // 3. The query: German users' expensive orders, with an opaque UDF
  //    filtering orders (a fraud score, say). No optimizer can know its
  //    selectivity — DYNO measures it with a pilot run.
  Query query;
  query.join_block.tables = {{"users", "u"}, {"orders", "o"}, {"items", "i"}};
  query.join_block.edges = {{"u", "u_id", "o", "o_uid"},
                            {"o", "o_item", "i", "i_id"}};
  query.join_block.predicates = {
      {Eq(Col("u_country"), LitString("DE")), {"u"}},
      {Gt(Col("o_total"), LitDouble(50.0)), {"o"}},
      {MakeHashFilterUdf("fraud_score", {"o_id"}, 0.15, 60.0), {"o"}},
  };
  query.join_block.output_columns = {"u_id", "o_id", "i_price"};

  // 4. Run it through DYNO: pilot runs -> cost-based join order ->
  //    execute, re-optimizing after each MapReduce job.
  StatsStore store;
  DynoOptions options;
  options.cost.max_memory_bytes = cluster.memory_per_task_bytes;
  DynoDriver driver(&engine, &catalog, &store, options);
  auto report = driver.Execute(query);
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("=== DYNO quickstart ===\n");
  std::printf("result rows        : %llu\n",
              (unsigned long long)report->result_records);
  std::printf("simulated time     : %s\n",
              FormatSimMillis(report->total_ms).c_str());
  std::printf("  pilot runs       : %s\n",
              FormatSimMillis(report->pilot_ms).c_str());
  std::printf("  optimizer        : %s (%d calls)\n",
              FormatSimMillis(report->optimizer_ms).c_str(),
              report->optimizer_calls);
  std::printf("MapReduce jobs     : %d (%d map-only)\n", report->jobs_run,
              report->map_only_jobs);
  std::printf("\nchosen plan after pilot runs:\n%s\n",
              report->plan_history.front().plan_tree.c_str());

  // 5. Show a few output rows.
  auto rows = ReadAllRows(*report->result);
  if (rows.ok()) {
    std::printf("first rows:\n");
    for (size_t i = 0; i < rows->size() && i < 5; ++i) {
      std::printf("  %s\n", (*rows)[i].ToString().c_str());
    }
  }
  return 0;
}

}  // namespace

int main() { return RunQuickstart(); }
