// SQL frontend: parse SQL text (with UDFs from a registry) straight into
// DYNO and execute it with pilot runs + dynamic re-optimization. Runs a
// TPC-H-flavoured revenue report and the paper's restaurant query from
// their SQL forms.
//
//   ./build/examples/sql_frontend

#include <cstdio>

#include "dyno/driver.h"
#include "lang/parser.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/restaurant.h"

namespace {

using namespace dyno;  // NOLINT — example brevity

int RunSql(DynoDriver* driver, const std::string& sql,
           const UdfRegistry& udfs) {
  std::printf("\nSQL> %s\n", sql.c_str());
  auto query = ParseQuery(sql, udfs);
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  auto report = driver->Execute(*query);
  if (!report.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("-- %llu rows in %s (%d jobs, %d map-only, %d plan changes)\n",
              (unsigned long long)report->result_records,
              FormatSimMillis(report->total_ms).c_str(), report->jobs_run,
              report->map_only_jobs, report->plan_changes);
  auto rows = ReadAllRows(*report->result);
  if (rows.ok()) {
    for (size_t i = 0; i < rows->size() && i < 5; ++i) {
      std::printf("   %s\n", (*rows)[i].ToString().c_str());
    }
    if (rows->size() > 5) std::printf("   ... (%zu more)\n", rows->size() - 5);
  }
  return 0;
}

}  // namespace

int main() {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig cluster;
  cluster.job_startup_ms = 5000;
  cluster.memory_per_task_bytes = 64 * 1024;
  MapReduceEngine engine(&dfs, cluster);

  TpchConfig tpch;
  tpch.scale = 0.002;
  if (!GenerateTpch(&catalog, tpch).ok()) return 1;
  RestaurantConfig rest;
  if (!GenerateRestaurantData(&catalog, rest).ok()) return 1;

  StatsStore store;
  DynoOptions options;
  options.cost.max_memory_bytes = cluster.memory_per_task_bytes;
  options.pilot.k = 256;
  DynoDriver driver(&engine, &catalog, &store, options);

  // UDFs callable from SQL.
  UdfRegistry udfs;
  udfs["SENTANALYSIS"] = [](const std::vector<std::string>& cols) {
    return MakeHashFilterUdf("sentanalysis", cols, 0.3, 80.0);
  };
  udfs["CHECKID"] = [](const std::vector<std::string>& cols) {
    return MakeHashFilterUdf("checkid", cols, 0.7, 60.0);
  };

  int rc = 0;
  rc |= RunSql(&driver,
               "SELECT n_name, COUNT(*) AS orders, SUM(o_totalprice) AS "
               "revenue "
               "FROM customer c, orders o, nation n "
               "WHERE c.c_custkey = o.o_custkey AND "
               "c.c_nationkey = n.n_nationkey AND "
               "o.o_orderdate >= 19960101 "
               "GROUP BY n_name ORDER BY revenue DESC LIMIT 5",
               udfs);

  rc |= RunSql(&driver,
               "SELECT rs_name FROM restaurant rs, review rv, tweet t "
               "WHERE rs.rs_id = rv.rv_rsid AND rv.rv_tid = t.t_id "
               "AND rs.rs_addr[0].zip = 94301 AND rs.rs_addr[0].state = 'CA' "
               "AND sentanalysis(rv.rv_id) AND checkid(rv.rv_id, t.t_id)",
               udfs);

  rc |= RunSql(&driver,
               "SELECT p_name, l_quantity FROM part p, lineitem l "
               "WHERE p.p_partkey = l.l_partkey AND p.p_size = 15 "
               "AND l.l_quantity >= 45 LIMIT 8",
               udfs);
  return rc;
}
