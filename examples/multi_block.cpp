// Multi-block queries (paper §5.1): a query whose join blocks are
// separated by grouping operators, with later blocks consuming earlier
// blocks' outputs. DYNOPT runs once per block, in dependency order; each
// block gets its own pilot runs and re-optimization points.
//
//   ./build/examples/multi_block

#include <cstdio>

#include "dyno/driver.h"
#include "tpch/dbgen.h"

namespace {

using namespace dyno;  // NOLINT — example brevity

int RunExample() {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig cluster;
  cluster.job_startup_ms = 5000;
  cluster.memory_per_task_bytes = 64 * 1024;
  MapReduceEngine engine(&dfs, cluster);
  TpchConfig data;
  data.scale = 0.002;
  if (!GenerateTpch(&catalog, data).ok()) return 1;

  // Block "busy": per-customer order counts in 1996+ (join + group-by).
  MultiBlockQuery query;
  MultiBlockQuery::Block busy;
  busy.name = "busy";
  busy.join_block.tables = {{"customer", "c"}, {"orders", "o"}};
  busy.join_block.edges = {{"c", "c_custkey", "o", "o_custkey"}};
  busy.join_block.predicates = {
      {Ge(Col("o_orderdate"), LitInt(19960101)), {"o"}}};
  busy.join_block.output_columns = {"c_custkey", "c_nationkey"};
  GroupBySpec per_customer;
  per_customer.keys = {"c_custkey", "c_nationkey"};
  per_customer.aggregates = {{Aggregate::Kind::kCount, "", "orders_1996"}};
  busy.group_by = per_customer;

  // Block "report": join the aggregate with nation and re-group by nation.
  MultiBlockQuery::Block report;
  report.name = "report";
  report.join_block.tables = {{"@block:busy", "b"}, {"nation", "n"}};
  report.join_block.edges = {{"b", "c_nationkey", "n", "n_nationkey"}};
  report.join_block.output_columns = {"n_name", "orders_1996"};
  GroupBySpec per_nation;
  per_nation.keys = {"n_name"};
  per_nation.aggregates = {
      {Aggregate::Kind::kCount, "", "active_customers"},
      {Aggregate::Kind::kSum, "orders_1996", "orders_total"},
      {Aggregate::Kind::kMax, "orders_1996", "busiest_customer_orders"}};
  report.group_by = per_nation;

  query.blocks = {busy, report};
  OrderBySpec order;
  order.keys = {{"orders_total", /*desc=*/true}};
  order.limit = 8;
  query.final_order_by = order;

  StatsStore store;
  DynoOptions options;
  options.cost.max_memory_bytes = cluster.memory_per_task_bytes;
  options.pilot.k = 256;
  DynoDriver driver(&engine, &catalog, &store, options);
  auto result = driver.ExecuteMultiBlock(query);
  if (!result.ok()) {
    std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("=== per-nation activity report (two join blocks) ===\n");
  auto rows = ReadAllRows(*result->result);
  if (rows.ok()) {
    for (const Value& row : *rows) {
      std::printf("  %-16s customers=%-4lld orders=%-6.0f busiest=%.0f\n",
                  row.FindField("n_name")->string_value().c_str(),
                  (long long)row.FindField("active_customers")->int_value(),
                  row.FindField("orders_total")->AsDouble(),
                  row.FindField("busiest_customer_orders")->AsDouble());
    }
  }
  std::printf("\nsimulated time %s across %d jobs; DYNOPT ran per block "
              "(%d optimizer calls total)\n",
              FormatSimMillis(result->total_ms).c_str(), result->jobs_run,
              result->optimizer_calls);
  return 0;
}

}  // namespace

int main() { return RunExample(); }
