// The paper's running example (§4.1, query Q1): restaurants with nested
// address arrays, a sentiment-analysis UDF over reviews, and an identity
// check joining reviews to tweets. Demonstrates why pilot runs matter:
// correlated nested-path predicates and UDFs make static estimation
// hopeless, while a pilot run measures the real selectivities.
//
//   ./build/examples/restaurant_reviews

#include <cstdio>

#include "baselines/exact_stats.h"
#include "dyno/driver.h"
#include "tpch/restaurant.h"

namespace {

using namespace dyno;  // NOLINT — example brevity

int RunExample() {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig cluster;
  cluster.memory_per_task_bytes = 128 * 1024;
  MapReduceEngine engine(&dfs, cluster);

  RestaurantConfig data;
  data.num_restaurants = 3000;
  data.num_reviews = 20000;
  data.num_tweets = 30000;
  if (!GenerateRestaurantData(&catalog, data).ok()) {
    std::fprintf(stderr, "data generation failed\n");
    return 1;
  }

  Query q1 = MakeRestaurantQuery();

  // What would the independence assumption predict for the restaurant
  // leaf?  sel(zip=94301) * sel(state=CA) — but 94301 implies CA, so the
  // truth is just sel(zip=94301). Compute both for contrast.
  std::vector<LeafExpr> leaves = ExtractLeafExprs(q1.join_block, nullptr);
  auto exact = ComputeExactLeafStats(&catalog, leaves[0]);
  if (!exact.ok()) return 1;
  double both_sel = exact->cardinality / data.num_restaurants;

  LeafExpr state_only = leaves[0];
  state_only.filter = Eq(Path({PathStep::Field("rs_addr"), PathStep::Index(0),
                               PathStep::Field("state")}),
                         LitString("CA"));
  auto state_stats = ComputeExactLeafStats(&catalog, state_only);
  if (!state_stats.ok()) return 1;
  double state_sel = state_stats->cardinality / data.num_restaurants;

  std::printf("=== restaurant/review/tweet (paper Q1) ===\n");
  std::printf("restaurant leaf: actual selectivity of zip AND state: %.4f\n",
              both_sel);
  std::printf("independence would predict sel_zip * sel_state = %.4f * %.4f "
              "= %.4f  (a %.1fx underestimate)\n",
              both_sel, state_sel, both_sel * state_sel,
              1.0 / state_sel);

  StatsStore store;
  DynoOptions options;
  options.cost.max_memory_bytes = cluster.memory_per_task_bytes;
  DynoDriver driver(&engine, &catalog, &store, options);
  auto report = driver.Execute(q1);
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\npilot-run measured leaf statistics (from the metastore):\n");
  for (const LeafExpr& leaf : leaves) {
    auto stats = store.Get(LeafSignature(leaf));
    if (stats.has_value()) {
      std::printf("  %-10s -> ~%.0f rows after local predicates/UDFs\n",
                  leaf.alias.c_str(), stats->cardinality);
    }
  }

  std::printf("\nchosen plan:\n%s\n",
              report->plan_history.front().plan_tree.c_str());
  std::printf("result rows    : %llu positive-review CA restaurants\n",
              (unsigned long long)report->result_records);
  std::printf("simulated time : %s (%d jobs, %d map-only)\n",
              FormatSimMillis(report->total_ms).c_str(), report->jobs_run,
              report->map_only_jobs);
  return 0;
}

}  // namespace

int main() { return RunExample(); }
