// Star-join sensitivity (the paper's §6.4 scenario on Q9'): UDFs of
// varying selectivity filter the dimension tables. When the UDFs are
// selective, every dimension fits in memory and DYNO executes the whole
// star as one or two chained map-only broadcast jobs; the traditional
// optimizer, blind to UDF selectivity, repartitions everything. This
// example sweeps the selectivity and shows where the plans diverge.
//
//   ./build/examples/star_schema_udf

#include <cstdio>

#include "baselines/relopt.h"
#include "dyno/driver.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

using namespace dyno;  // NOLINT — example brevity

int CountMapOnly(const QueryRunReport& report) { return report.map_only_jobs; }

int RunExample() {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig cluster;
  cluster.memory_per_task_bytes = 32 * 1024;
  MapReduceEngine engine(&dfs, cluster);
  TpchConfig data;
  data.scale = 0.002;
  if (!GenerateTpch(&catalog, data).ok()) return 1;

  CostModelParams cost;
  cost.max_memory_bytes = cluster.memory_per_task_bytes;

  std::printf("=== Q9' star join: dimension-UDF selectivity sweep ===\n");
  std::printf("%-12s %-18s %-14s %-10s %-10s\n", "selectivity",
              "DYNO time", "RELOPT time", "dyno jobs", "map-only");
  for (double selectivity : {0.001, 0.01, 0.1, 1.0}) {
    Query q9 = MakeTpchQ9Prime(selectivity);

    StatsStore store;
    DynoOptions options;
    options.cost = cost;
    options.strategy = ExecutionStrategy::kSimpleParallel;
    DynoDriver driver(&engine, &catalog, &store, options);
    auto dyn = driver.Execute(q9);
    if (!dyn.ok()) {
      std::fprintf(stderr, "DYNO failed at sel=%g: %s\n", selectivity,
                   dyn.status().ToString().c_str());
      continue;
    }

    RelOptBaseline relopt(&engine, &catalog, cost);
    auto rel = relopt.PlanAndExecute(q9.join_block, ExecOptions());
    std::string rel_time = "failed";
    if (rel.ok() && rel->exec_status.ok()) {
      rel_time = FormatSimMillis(rel->elapsed_ms);
    }
    std::printf("%-12g %-18s %-14s %-10d %-10d\n", selectivity,
                FormatSimMillis(dyn->total_ms).c_str(), rel_time.c_str(),
                dyn->jobs_run, CountMapOnly(*dyn));
  }
  std::printf(
      "\nAt low selectivities DYNO discovers (via pilot runs) that the\n"
      "filtered dimensions fit in memory and chains broadcast joins into\n"
      "map-only jobs; RELOPT treats each UDF as selectivity 1.0 and\n"
      "repartitions the full tables (cf. paper Fig. 3 and Fig. 6).\n");
  return 0;
}

}  // namespace

int main() { return RunExample(); }
