// Plan evolution on TPC-H Q8' (the paper's Fig. 2 scenario): a 7-way join
// with a UDF over the orders⋈customer result and correlated predicates on
// orders. Executes the query four ways — DYNOPT, DYNOPT-SIMPLE, the
// traditional optimizer (RELOPT), and Jaql's best static left-deep plan —
// and prints the plan DYNOPT chose at every re-optimization point.
//
//   ./build/examples/tpch_dynamic

#include <cstdio>

#include "baselines/best_static.h"
#include "baselines/relopt.h"
#include "dyno/driver.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

using namespace dyno;  // NOLINT — example brevity

int RunExample() {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig cluster;
  cluster.job_startup_ms = 10000;
  cluster.memory_per_task_bytes = 48 * 1024;
  MapReduceEngine engine(&dfs, cluster);

  TpchConfig data;
  data.scale = 0.002;
  std::printf("generating TPC-H data (scale %.3f)...\n", data.scale);
  if (!GenerateTpch(&catalog, data).ok()) {
    std::fprintf(stderr, "dbgen failed\n");
    return 1;
  }

  Query q8 = MakeTpchQ8Prime();
  CostModelParams cost;
  cost.max_memory_bytes = cluster.memory_per_task_bytes;

  // --- DYNOPT: pilot runs + re-optimization after every job. ---
  StatsStore store;
  DynoOptions options;
  options.cost = cost;
  DynoDriver dynopt(&engine, &catalog, &store, options);
  auto dyn = dynopt.Execute(q8);
  if (!dyn.ok()) {
    std::fprintf(stderr, "DYNOPT failed: %s\n",
                 dyn.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== DYNOPT plan evolution (cf. paper Fig. 2) ===\n");
  for (size_t i = 0; i < dyn->plan_history.size(); ++i) {
    const PlanEvent& event = dyn->plan_history[i];
    std::printf("-- plan%zu%s --\n%s", i + 1,
                event.plan_changed ? "  (changed!)" : "",
                event.plan_tree.c_str());
  }
  std::printf("DYNOPT: %s, %d jobs (%d map-only), %d plan changes\n",
              FormatSimMillis(dyn->total_ms).c_str(), dyn->jobs_run,
              dyn->map_only_jobs, dyn->plan_changes);

  // --- DYNOPT-SIMPLE: pilot runs, one optimizer call. ---
  StatsStore store2;
  DynoOptions simple_options = options;
  simple_options.strategy = ExecutionStrategy::kSimpleParallel;
  DynoDriver simple(&engine, &catalog, &store2, simple_options);
  auto simple_run = simple.Execute(q8);
  if (simple_run.ok()) {
    std::printf("DYNOPT-SIMPLE: %s, %d jobs\n",
                FormatSimMillis(simple_run->total_ms).c_str(),
                simple_run->jobs_run);
  }

  // --- RELOPT: detailed static statistics, no pilot runs, no re-opt. ---
  RelOptBaseline relopt(&engine, &catalog, cost);
  auto rel = relopt.PlanAndExecute(q8.join_block, ExecOptions());
  if (rel.ok()) {
    std::printf("RELOPT: %s (%s)\n", FormatSimMillis(rel->elapsed_ms).c_str(),
                rel->exec_status.ok() ? "ok"
                                      : rel->exec_status.ToString().c_str());
    std::printf("RELOPT plan:\n%s", rel->plan_tree.c_str());
  }

  // --- BESTSTATICJAQL: the best hand-written left-deep plan. ---
  BestStaticOptions static_options;
  static_options.cost = cost;
  static_options.execute_top_k = 3;
  BestStaticBaseline best_static(&engine, &catalog, static_options);
  auto stat = best_static.Run(q8.join_block);
  if (stat.ok()) {
    std::printf("BESTSTATICJAQL: %s (best of %d distinct left-deep plans)\n",
                FormatSimMillis(stat->best_time_ms).c_str(),
                stat->plans_enumerated);
    double speedup = static_cast<double>(stat->best_time_ms) /
                     static_cast<double>(dyn->total_ms);
    std::printf("\nDYNOPT speedup over best static left-deep: %.2fx\n",
                speedup);
  }
  return 0;
}

}  // namespace

int main() { return RunExample(); }
