// Interactive DYNO shell: type SQL against the bundled TPC-H +
// restaurant datasets and watch pilot runs, plan choice and dynamic
// re-optimization happen per statement. Meta commands:
//
//   \tables                list catalog tables
//   \plan <sql>            show the chosen plan (after pilot runs) as a tree
//   \dot <sql>             emit the plan as Graphviz DOT
//   \explain <sql>         run and print the full plan history
//   \q                     quit
//
//   ./build/examples/dyno_shell            # interactive
//   echo "SELECT ..." | ./build/examples/dyno_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "dyno/driver.h"
#include "lang/parser.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/restaurant.h"

namespace {

using namespace dyno;  // NOLINT — example brevity

class Shell {
 public:
  Shell()
      : catalog_(&dfs_), engine_(&dfs_, MakeCluster()), store_() {
    TpchConfig tpch;
    tpch.scale = 0.002;
    if (!GenerateTpch(&catalog_, tpch).ok()) std::abort();
    RestaurantConfig rest;
    if (!GenerateRestaurantData(&catalog_, rest).ok()) std::abort();
    udfs_["SENTANALYSIS"] = [](const std::vector<std::string>& cols) {
      return MakeHashFilterUdf("sentanalysis", cols, 0.3, 80.0);
    };
    udfs_["CHECKID"] = [](const std::vector<std::string>& cols) {
      return MakeHashFilterUdf("checkid", cols, 0.7, 60.0);
    };
  }

  static ClusterConfig MakeCluster() {
    ClusterConfig cluster;
    cluster.job_startup_ms = 5000;
    cluster.memory_per_task_bytes = 64 * 1024;
    return cluster;
  }

  DynoOptions Options() {
    DynoOptions options;
    options.cost.max_memory_bytes = MakeCluster().memory_per_task_bytes;
    options.pilot.k = 256;
    return options;
  }

  void ListTables() {
    for (const std::string& name : catalog_.TableNames()) {
      auto file = catalog_.OpenTable(name);
      if (file.ok()) {
        std::printf("  %-16s %8llu rows  %10llu bytes\n", name.c_str(),
                    (unsigned long long)(*file)->num_records(),
                    (unsigned long long)(*file)->num_bytes());
      }
    }
  }

  void PlanOnly(const std::string& sql, bool dot) {
    auto query = ParseQuery(sql, udfs_);
    if (!query.ok()) {
      std::printf("parse error: %s\n", query.status().ToString().c_str());
      return;
    }
    // Run just the pilot + first optimization by executing with a driver
    // and reading plan_history[0] — cheap at this scale.
    DynoDriver driver(&engine_, &catalog_, &store_, Options());
    auto report = driver.Execute(*query);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return;
    }
    if (report->plan_history.empty()) {
      std::printf("(single-scan query, no join plan)\n");
      return;
    }
    if (dot) {
      // Re-derive a DOT by parsing is overkill; print the tree instead of
      // reconstructing the PlanNode — the history stores renderings.
      std::printf("%s", report->plan_history.front().plan_tree.c_str());
      std::printf("(DOT output requires programmatic PlanNode access; "
                  "see PlanNode::ToDot)\n");
    } else {
      std::printf("%s", report->plan_history.front().plan_tree.c_str());
    }
  }

  void Run(const std::string& sql, bool explain) {
    auto query = ParseQuery(sql, udfs_);
    if (!query.ok()) {
      std::printf("parse error: %s\n", query.status().ToString().c_str());
      return;
    }
    DynoDriver driver(&engine_, &catalog_, &store_, Options());
    auto report = driver.Execute(*query);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return;
    }
    if (explain) {
      for (size_t i = 0; i < report->plan_history.size(); ++i) {
        std::printf("-- plan%zu%s --\n%s", i + 1,
                    report->plan_history[i].plan_changed ? " (changed)" : "",
                    report->plan_history[i].plan_tree.c_str());
      }
    }
    auto rows = ReadAllRows(*report->result);
    if (rows.ok()) {
      size_t shown = 0;
      for (const Value& row : *rows) {
        if (shown++ >= 20) {
          std::printf("  ... (%zu more)\n", rows->size() - 20);
          break;
        }
        std::printf("  %s\n", row.ToString().c_str());
      }
    }
    std::printf("(%llu rows, %s simulated, %d jobs, %d re-optimizations)\n",
                (unsigned long long)report->result_records,
                FormatSimMillis(report->total_ms).c_str(), report->jobs_run,
                report->optimizer_calls - 1);
  }

  int Loop() {
    std::string line;
    std::printf("DYNO shell — \\tables, \\plan <sql>, \\explain <sql>, "
                "\\q to quit\n");
    while (true) {
      std::printf("dyno> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      if (line.empty()) continue;
      if (line == "\\q" || line == "\\quit") break;
      if (line == "\\tables") {
        ListTables();
      } else if (line.rfind("\\plan ", 0) == 0) {
        PlanOnly(line.substr(6), /*dot=*/false);
      } else if (line.rfind("\\dot ", 0) == 0) {
        PlanOnly(line.substr(5), /*dot=*/true);
      } else if (line.rfind("\\explain ", 0) == 0) {
        Run(line.substr(9), /*explain=*/true);
      } else {
        Run(line, /*explain=*/false);
      }
    }
    return 0;
  }

 private:
  Dfs dfs_;
  Catalog catalog_;
  MapReduceEngine engine_;
  StatsStore store_;
  UdfRegistry udfs_;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Loop();
}
