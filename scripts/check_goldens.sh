#!/usr/bin/env bash
# Fails when the checked-in golden traces and the trace schema version in
# src/obs/trace.h drift apart — the no-build counterpart of
# TraceGoldenTest.GoldenHeadersCarryCurrentSchemaVersion, so CI (or a
# pre-commit hook) can catch a schema bump whose goldens were not
# regenerated before anything compiles.
#
# Usage: scripts/check_goldens.sh
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
trace_header="$repo_root/src/obs/trace.h"
golden_dir="$repo_root/tests/golden"

schema="$(sed -n 's/.*kTraceSchemaVersion = \([0-9][0-9]*\);.*/\1/p' \
  "$trace_header")"
if [ -z "$schema" ]; then
  echo "check_goldens: cannot parse kTraceSchemaVersion from $trace_header" >&2
  exit 1
fi

goldens=("$golden_dir"/*.jsonl)
if [ ! -e "${goldens[0]}" ]; then
  echo "check_goldens: no goldens under $golden_dir" >&2
  echo "  regenerate with: DYNO_UPDATE_GOLDEN=1 build/tests/trace_golden_test" >&2
  exit 1
fi

status=0
expected_header="{\"schema\":$schema,\"clock\":\"sim_ms\"}"
for golden in "${goldens[@]}"; do
  header="$(head -n 1 "$golden")"
  if [ "$header" != "$expected_header" ]; then
    echo "check_goldens: $golden is stale" >&2
    echo "  header:   $header" >&2
    echo "  expected: $expected_header (kTraceSchemaVersion = $schema)" >&2
    echo "  regenerate with: DYNO_UPDATE_GOLDEN=1 build/tests/trace_golden_test" >&2
    status=1
  fi
done

# The corruption golden exists so the data-integrity event types stay
# pinned in a checked-in trace: if a refactor stops emitting any of them,
# this catches it without a build.
corruption_golden="$golden_dir/q10_corruption.jsonl"
if [ ! -e "$corruption_golden" ]; then
  echo "check_goldens: missing $corruption_golden" >&2
  echo "  regenerate with: DYNO_UPDATE_GOLDEN=1 build/tests/trace_golden_test" >&2
  status=1
else
  for event in block_corruption shuffle_checksum_retry record_quarantined; do
    if ! grep -q "\"name\":\"$event\"" "$corruption_golden"; then
      echo "check_goldens: $corruption_golden has no '$event' event" >&2
      status=1
    fi
  done
fi

if [ "$status" -eq 0 ]; then
  echo "check_goldens: ${#goldens[@]} golden(s) match trace schema v$schema"
fi
exit $status
