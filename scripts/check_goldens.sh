#!/usr/bin/env bash
# Fails when the checked-in golden traces and the trace schema version in
# src/obs/trace.h drift apart — the no-build counterpart of
# TraceGoldenTest.GoldenHeadersCarryCurrentSchemaVersion, so CI (or a
# pre-commit hook) can catch a schema bump whose goldens were not
# regenerated before anything compiles.
#
# Usage: scripts/check_goldens.sh
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
trace_header="$repo_root/src/obs/trace.h"
golden_dir="$repo_root/tests/golden"

schema="$(sed -n 's/.*kTraceSchemaVersion = \([0-9][0-9]*\);.*/\1/p' \
  "$trace_header")"
if [ -z "$schema" ]; then
  echo "check_goldens: cannot parse kTraceSchemaVersion from $trace_header" >&2
  exit 1
fi

goldens=("$golden_dir"/*.jsonl)
if [ ! -e "${goldens[0]}" ]; then
  echo "check_goldens: no goldens under $golden_dir" >&2
  echo "  regenerate with: DYNO_UPDATE_GOLDEN=1 build/tests/trace_golden_test" >&2
  exit 1
fi

status=0
expected_header="{\"schema\":$schema,\"clock\":\"sim_ms\"}"
for golden in "${goldens[@]}"; do
  header="$(head -n 1 "$golden")"
  if [ "$header" != "$expected_header" ]; then
    echo "check_goldens: $golden is stale" >&2
    echo "  header:   $header" >&2
    echo "  expected: $expected_header (kTraceSchemaVersion = $schema)" >&2
    echo "  regenerate with: DYNO_UPDATE_GOLDEN=1 build/tests/trace_golden_test" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_goldens: ${#goldens[@]} golden(s) match trace schema v$schema"
fi
exit $status
