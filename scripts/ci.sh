#!/usr/bin/env bash
# The full local CI gauntlet, one command:
#
#   tier-1      every test, default build (catches functional regressions)
#   tsan        engine/obs suites under ThreadSanitizer (catches data races
#               in the multi-threaded task executor)
#   asan-ubsan  engine/driver/integrity suites under Address+UBSanitizer
#               (catches memory and undefined-behavior bugs)
#   faults      engine/driver suites with 5% injected task failures
#   node-faults engine/driver suites with 2% node crashes + job-level retry
#   corruption  engine/driver suites with 2% block + shuffle corruption
#   concurrency service/engine suites with the multi-query service knobs
#               (DYNO_CONCURRENCY/DYNO_TENANT_SLOTS/DYNO_ADMISSION_QUEUE)
#               driven through the environment, plus a bench_concurrency
#               smoke run (8 concurrent TPC-H sessions, sweep 1 -> 8)
#   overload    service robustness suites in the overload regime: tight
#               concurrency, priority preemption, generous deadlines and
#               5% task faults (DYNO_PRIORITY_PREEMPTION,
#               DYNO_QUERY_DEADLINE_MS, DYNO_LOAD_SHED_QUEUE_MS)
#   mqo-cache   cache/service/driver suites with the cross-query subtree
#               cache on (DYNO_SUBTREE_CACHE_MB) under injected task
#               failures and block/shuffle corruption, plus a bench_mqo
#               smoke run (repeated TPC-H batch, cold vs warm, gated on
#               identical results and a >= 2x warm speedup)
#   columnar    storage/engine/driver suites with the columnar data plane
#               and zone maps on (DYNO_COLUMNAR/DYNO_ZONE_MAPS) under 5%
#               task faults + 2% block/shuffle corruption, plus a
#               bench_scan smoke run (row vs columnar scan/shuffle, gated
#               on byte-identical results and a >= 2x pruned-scan speedup)
#   memory      memory-model suites under a tight cluster-wide per-task
#               budget with spill-to-DFS on (DYNO_TASK_MEMORY_BYTES,
#               DYNO_SPILL) plus 5% task faults + 2% block/shuffle
#               corruption, so spills, corrupt-run retries and the OOM
#               ladder run against the env-driven configuration path
#   fuzz-smoke  codec + checkpoint-manifest + DFS-bit-rot + spill-run-rot
#               fuzzing, small fixed budget
#   goldens     checked-in traces match the current trace schema
#
# Usage: scripts/ci.sh
# Requires cmake >= 3.20 (presets). Builds into build/, build-tsan/ and
# build-asan/.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

# Every step runs under a named label; the first failure stops the gauntlet
# with an unmissable banner naming the failing step (printed last, where a
# scrolled-past terminal still shows it) instead of a bare set -e exit.
current_step=""

fail_banner() {
  echo
  echo "======================================================"
  echo "ci: FAILED"
  echo
  echo "  failing step: ${current_step}"
  echo
  echo "  scroll up to the '=== ${current_step} ===' section for"
  echo "  the first failing test/command output."
  echo "======================================================"
  exit 1
}

run() {
  current_step="$1"
  shift
  echo
  echo "=== ${current_step} ==="
  "$@" || fail_banner
}

run "configure (default)" cmake --preset default
run "build (default)" cmake --build --preset default -j "$(nproc)"
run "configure (tsan)" cmake --preset tsan
run "build (tsan)" cmake --build --preset tsan -j "$(nproc)"
run "configure (asan-ubsan)" cmake --preset asan-ubsan
run "build (asan-ubsan)" cmake --build --preset asan-ubsan -j "$(nproc)"

run "ctest preset: default (tier-1)" ctest --preset default
run "ctest preset: tsan" ctest --preset tsan
run "ctest preset: asan-ubsan" ctest --preset asan-ubsan
run "ctest preset: faults" ctest --preset faults
run "ctest preset: node-faults" ctest --preset node-faults
run "ctest preset: corruption" ctest --preset corruption
run "ctest preset: concurrency" ctest --preset concurrency
run "ctest preset: overload" ctest --preset overload
run "ctest preset: mqo-cache" ctest --preset mqo-cache
run "ctest preset: columnar" ctest --preset columnar
run "ctest preset: memory" ctest --preset memory
run "ctest preset: fuzz-smoke" ctest --preset fuzz-smoke

# bench_concurrency doubles as an integration smoke: it fails unless all 8
# sessions complete at every concurrency level, the sweep's makespan
# improves end to end, and the priority-mix high-priority p99 beats the
# no-priority baseline.
run "bench: concurrency sweep + priority mix" \
  env DYNO_BENCH_CONCURRENCY_OUT=build/BENCH_concurrency.json \
  build/bench/bench_concurrency

# bench_mqo is the multi-query cache smoke: it fails unless the warm
# repeated portion is at least 2x faster than cold with the cache on and
# results match the cache-off run.
run "bench: mqo cache" \
  env DYNO_BENCH_MQO_OUT=build/BENCH_mqo.json build/bench/bench_mqo

# bench_scan is the columnar data-plane smoke: it fails unless row and
# columnar scans return byte-identical output and zone-map pruning makes
# the selective scan at least 2x faster.
run "bench: columnar scan" \
  env DYNO_BENCH_SCAN_OUT=build/BENCH_scan.json build/bench/bench_scan

run "golden traces" scripts/check_goldens.sh

echo
echo "ci: all suites green"
