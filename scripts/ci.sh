#!/usr/bin/env bash
# The full local CI gauntlet, one command:
#
#   tier-1      every test, default build (catches functional regressions)
#   tsan        engine/obs suites under ThreadSanitizer (catches data races
#               in the multi-threaded task executor)
#   asan-ubsan  engine/driver/integrity suites under Address+UBSanitizer
#               (catches memory and undefined-behavior bugs)
#   faults      engine/driver suites with 5% injected task failures
#   node-faults engine/driver suites with 2% node crashes + job-level retry
#   corruption  engine/driver suites with 2% block + shuffle corruption
#   concurrency service/engine suites with the multi-query service knobs
#               (DYNO_CONCURRENCY/DYNO_TENANT_SLOTS/DYNO_ADMISSION_QUEUE)
#               driven through the environment, plus a bench_concurrency
#               smoke run (8 concurrent TPC-H sessions, sweep 1 -> 8)
#   mqo-cache   cache/service/driver suites with the cross-query subtree
#               cache on (DYNO_SUBTREE_CACHE_MB) under injected task
#               failures and block/shuffle corruption, plus a bench_mqo
#               smoke run (repeated TPC-H batch, cold vs warm, gated on
#               identical results and a >= 2x warm speedup)
#   columnar    storage/engine/driver suites with the columnar data plane
#               and zone maps on (DYNO_COLUMNAR/DYNO_ZONE_MAPS) under 5%
#               task faults + 2% block/shuffle corruption, plus a
#               bench_scan smoke run (row vs columnar scan/shuffle, gated
#               on byte-identical results and a >= 2x pruned-scan speedup)
#   fuzz-smoke  codec + checkpoint-manifest + DFS-bit-rot fuzzing, small
#               fixed budget
#   goldens     checked-in traces match the current trace schema
#
# Usage: scripts/ci.sh
# Requires cmake >= 3.20 (presets). Builds into build/, build-tsan/ and
# build-asan/.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

run() {
  echo
  echo "=== $* ==="
  "$@"
}

run cmake --preset default
run cmake --build --preset default -j "$(nproc)"
run cmake --preset tsan
run cmake --build --preset tsan -j "$(nproc)"
run cmake --preset asan-ubsan
run cmake --build --preset asan-ubsan -j "$(nproc)"

run ctest --preset default
run ctest --preset tsan
run ctest --preset asan-ubsan
run ctest --preset faults
run ctest --preset node-faults
run ctest --preset corruption
run ctest --preset concurrency
run ctest --preset mqo-cache
run ctest --preset columnar
run ctest --preset fuzz-smoke

# bench_concurrency doubles as an integration smoke: it fails unless all 8
# sessions complete at every concurrency level and the sweep's makespan
# improves end to end.
run env DYNO_BENCH_CONCURRENCY_OUT=build/BENCH_concurrency.json \
  build/bench/bench_concurrency

# bench_mqo is the multi-query cache smoke: it fails unless the warm
# repeated portion is at least 2x faster than cold with the cache on and
# results match the cache-off run.
run env DYNO_BENCH_MQO_OUT=build/BENCH_mqo.json build/bench/bench_mqo

# bench_scan is the columnar data-plane smoke: it fails unless row and
# columnar scans return byte-identical output and zone-map pruning makes
# the selective scan at least 2x faster.
run env DYNO_BENCH_SCAN_OUT=build/BENCH_scan.json build/bench/bench_scan

run scripts/check_goldens.sh

echo
echo "ci: all suites green"
