// Reproduces Figure 8: the benefit of DYNO's plans on a Hive-style
// backend, whose broadcast join ships the build side through the
// DistributedCache (loaded once per node instead of once per map task).
// Same comparison as Fig. 7 at SF300, all variants executed in Hive mode,
// normalized to BESTSTATICHIVE. Paper shape: same trends as Jaql, but Q9'
// speeds up much more (3.98x vs 1.88x) because its plan is broadcast-heavy
// and the DistributedCache amortizes every build-side load.

#include <cstdio>

#include "bench_common.h"

using namespace dyno;
using namespace dyno::bench;

int main() {
  auto scenario = MakeScenario("SF300");
  std::vector<std::pair<std::string, Query>> queries = {
      {"Q2", MakeTpchQ2()},
      {"Q8'", MakeTpchQ8Prime()},
      {"Q9'", MakeTpchQ9Prime()},
      {"Q10", MakeTpchQ10()},
  };

  PrintHeader("Figure 8 (SF300, Hive backend): normalized to BESTSTATICHIVE",
              {"BESTSTATIC", "RELOPT", "DYN-SIMPLE", "DYNOPT"});
  for (auto& [name, query] : queries) {
    Measured best_static = RunBestStatic(scenario.get(), query, /*hive=*/true);
    Measured relopt = RunRelopt(scenario.get(), query, /*hive=*/true);
    Measured simple = RunDynoptSimple(scenario.get(), query, /*hive=*/true);
    Measured dynopt =
        RunDynopt(scenario.get(), query, ExecutionStrategy::kUncertain1,
                  /*hive=*/true);
    double base =
        best_static.ok ? static_cast<double>(best_static.total_ms) : -1;
    PrintRow(name,
             {base, relopt.ok ? static_cast<double>(relopt.total_ms) : -1,
              simple.ok ? static_cast<double>(simple.total_ms) : -1,
              dynopt.ok ? static_cast<double>(dynopt.total_ms) : -1},
             base);
  }
  std::printf("\npaper: same trends as Jaql; Q9' speedup grows to ~3.98x "
              "because the DistributedCache amortizes broadcast loads\n");
  return 0;
}
