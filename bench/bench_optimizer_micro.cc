// Micro-benchmarks for the join enumerator (google-benchmark): real
// wall-clock optimizer latency as the number of relations grows, for chain
// and star join graphs, bushy vs left-deep-only search spaces. The paper's
// observation (Fig. 4 discussion): the initial call on the 8-relation Q8'
// dominates total re-optimization cost because the alternatives grow
// steeply with the relation count.

#include <benchmark/benchmark.h>

#include "common/string_util.h"
#include "optimizer/optimizer.h"

namespace {

using namespace dyno;

TableStats MakeStats(double rows, std::map<std::string, double> ndvs) {
  TableStats stats;
  stats.cardinality = rows;
  stats.avg_record_size = 50;
  for (auto& [col, ndv] : ndvs) {
    ColumnStats cs;
    cs.ndv = ndv;
    stats.columns[col] = cs;
  }
  return stats;
}

OptJoinGraph ChainGraph(int n) {
  OptJoinGraph graph;
  for (int i = 0; i < n; ++i) {
    std::map<std::string, double> ndvs;
    if (i > 0) ndvs[StrFormat("e%d", i - 1)] = 1000;
    if (i < n - 1) ndvs[StrFormat("e%d", i)] = 1000;
    graph.relations.push_back(
        {StrFormat("r%d", i), MakeStats(10000.0 * (i + 1), ndvs)});
  }
  for (int i = 0; i + 1 < n; ++i) {
    std::string col = StrFormat("e%d", i);
    graph.edges.push_back(
        {StrFormat("r%d", i), col, StrFormat("r%d", i + 1), col});
  }
  return graph;
}

OptJoinGraph StarGraph(int n) {
  OptJoinGraph graph;
  std::map<std::string, double> fact_ndvs;
  for (int i = 1; i < n; ++i) fact_ndvs[StrFormat("d%d", i)] = 500;
  graph.relations.push_back({"fact", MakeStats(1000000, fact_ndvs)});
  for (int i = 1; i < n; ++i) {
    std::string col = StrFormat("d%d", i);
    graph.relations.push_back(
        {StrFormat("dim%d", i), MakeStats(500, {{col, 500.0}})});
    graph.edges.push_back({"fact", col, StrFormat("dim%d", i), col});
  }
  return graph;
}

void RunOptimize(benchmark::State& state, const OptJoinGraph& graph,
                 bool left_deep) {
  CostModelParams params;
  params.max_memory_bytes = 100000;
  params.left_deep_only = left_deep;
  JoinOptimizer optimizer(params);
  int expressions = 0;
  for (auto _ : state) {
    auto result = optimizer.Optimize(graph);
    if (!result.ok()) state.SkipWithError("optimize failed");
    expressions = result->report.expressions_costed;
    benchmark::DoNotOptimize(result->plan->est_cost);
  }
  state.counters["expressions"] = expressions;
}

void BM_OptimizeChainBushy(benchmark::State& state) {
  RunOptimize(state, ChainGraph(static_cast<int>(state.range(0))), false);
}
BENCHMARK(BM_OptimizeChainBushy)->DenseRange(2, 10, 2);

void BM_OptimizeChainLeftDeep(benchmark::State& state) {
  RunOptimize(state, ChainGraph(static_cast<int>(state.range(0))), true);
}
BENCHMARK(BM_OptimizeChainLeftDeep)->DenseRange(2, 10, 2);

void BM_OptimizeStarBushy(benchmark::State& state) {
  RunOptimize(state, StarGraph(static_cast<int>(state.range(0))), false);
}
BENCHMARK(BM_OptimizeStarBushy)->DenseRange(3, 9, 2);

}  // namespace

BENCHMARK_MAIN();
