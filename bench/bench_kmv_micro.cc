// Micro-benchmarks for the statistics layer (google-benchmark): KMV
// synopsis maintenance/merge throughput and the empirical accuracy of the
// distinct-value estimator at k=1024 (the paper's setting; expected error
// about 6%, §4.3).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "stats/kmv.h"
#include "stats/table_stats.h"

namespace {

using dyno::KmvSynopsis;
using dyno::MakeRow;
using dyno::Rng;
using dyno::StatsCollector;
using dyno::Value;

void BM_KmvAdd(benchmark::State& state) {
  Rng rng(1);
  KmvSynopsis kmv(1024);
  for (auto _ : state) {
    kmv.AddHash(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KmvAdd);

void BM_KmvMerge(benchmark::State& state) {
  Rng rng(2);
  std::vector<KmvSynopsis> parts;
  for (int i = 0; i < 16; ++i) {
    KmvSynopsis part(1024);
    for (int j = 0; j < 10000; ++j) part.AddHash(rng.Next());
    parts.push_back(std::move(part));
  }
  for (auto _ : state) {
    KmvSynopsis merged(1024);
    for (const KmvSynopsis& part : parts) merged.Merge(part);
    benchmark::DoNotOptimize(merged.Estimate());
  }
}
BENCHMARK(BM_KmvMerge);

void BM_KmvEstimateError(benchmark::State& state) {
  // Reports the mean relative estimation error (in %) as a counter.
  int64_t true_ndv = state.range(0);
  double total_err = 0.0;
  int64_t trials = 0;
  for (auto _ : state) {
    Rng rng(static_cast<uint64_t>(trials) + 7);
    KmvSynopsis kmv(1024);
    for (int64_t i = 0; i < 3 * true_ndv; ++i) {
      kmv.Add(Value::Int(static_cast<int64_t>(rng.Uniform(true_ndv))));
    }
    double est = kmv.Estimate();
    // ~95% of the domain is hit with 3x draws.
    double expected = 0.9502 * static_cast<double>(true_ndv);
    total_err += std::abs(est - expected) / expected;
    ++trials;
  }
  state.counters["mean_rel_err_pct"] =
      100.0 * total_err / static_cast<double>(trials);
}
BENCHMARK(BM_KmvEstimateError)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_StatsCollectorObserve(benchmark::State& state) {
  StatsCollector collector({"a", "b"});
  Rng rng(3);
  std::vector<Value> rows;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back(MakeRow({{"a", Value::Int(static_cast<int64_t>(
                                      rng.Uniform(5000)))},
                            {"b", Value::Int(static_cast<int64_t>(
                                      rng.Uniform(50)))}}));
  }
  size_t i = 0;
  for (auto _ : state) {
    collector.Observe(rows[i++ % rows.size()]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatsCollectorObserve);

void BM_StatsCollectorSerializeRoundTrip(benchmark::State& state) {
  StatsCollector collector({"a"});
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    collector.Observe(MakeRow(
        {{"a", Value::Int(static_cast<int64_t>(rng.Uniform(1000)))}}));
  }
  for (auto _ : state) {
    std::string blob = collector.Serialize();
    auto restored = StatsCollector::Deserialize(blob);
    benchmark::DoNotOptimize(restored.ok());
  }
}
BENCHMARK(BM_StatsCollectorSerializeRoundTrip);

}  // namespace

BENCHMARK_MAIN();
