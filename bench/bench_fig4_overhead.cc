// Reproduces Figure 4: the overhead DYNO's machinery adds to query
// execution — pilot runs, (re-)optimization calls, and online statistics
// collection — for Q2, Q7, Q8' and Q10 at SF300. The paper reports
// (re-)optimization at <0.25% (about 7% for the 8-relation Q8', whose
// initial optimizer call dominates), pilot runs at 2.5-6.7%, statistics
// collection at 0.1-2.8%, and ~7-10% total.

#include <cstdio>

#include "bench_common.h"

using namespace dyno;
using namespace dyno::bench;

int main() {
  auto scenario = MakeScenario("SF300");
  std::vector<std::pair<std::string, Query>> queries = {
      {"Q2", MakeTpchQ2()},
      {"Q7", MakeTpchQ7()},
      {"Q8'", MakeTpchQ8Prime()},
      {"Q10", MakeTpchQ10()},
  };

  PrintHeader("Figure 4: DYNOPT overhead breakdown (SF300, % of total)",
              {"plan exec", "pilot runs", "re-opt", "stats coll",
               "overhead"});
  for (auto& [name, query] : queries) {
    Measured m = RunDynopt(scenario.get(), query);
    if (!m.ok) {
      std::printf("%-18s  FAILED: %s\n", name.c_str(), m.detail.c_str());
      continue;
    }
    double total = static_cast<double>(m.total_ms);
    double pilot = static_cast<double>(m.report.pilot_ms);
    double opt = static_cast<double>(m.report.optimizer_ms);
    double stats = static_cast<double>(m.report.stats_overhead_ms);
    double exec = total - pilot - opt - stats;
    PrintRow(name, {exec, pilot, opt, stats, pilot + opt + stats}, total);
  }
  std::printf(
      "\npaper: re-opt <0.25%% (Q8' ~7%%), pilot 2.5-6.7%%, stats 0.1-2.8%%,"
      " total overhead 7-10%%\n");
  return 0;
}
