#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"

namespace dyno::bench {

namespace {

/// Worker threads for task execution: DYNO_EXECUTION_THREADS when set
/// (malformed values are fatal, like every DYNO_* knob), otherwise every
/// hardware thread. Simulated results are identical either way; only bench
/// wall-clock changes.
int ExecutionThreads() {
  const char* env = std::getenv("DYNO_EXECUTION_THREADS");
  if (env != nullptr) {
    return static_cast<int>(
        EnvInt64OrDie("DYNO_EXECUTION_THREADS", env, 1, 4096));
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace

Scenario::~Scenario() {
  if (trace == nullptr || trace_path.empty()) return;
  Status st = trace->WriteJsonl(trace_path + ".jsonl");
  if (st.ok()) st = trace->WriteChromeTrace(trace_path + ".chrome.json");
  if (st.ok() && metrics != nullptr) {
    std::string rendered = metrics->Serialize();
    std::FILE* f = std::fopen((trace_path + ".metrics.txt").c_str(), "w");
    if (f != nullptr) {
      std::fwrite(rendered.data(), 1, rendered.size(), f);
      std::fclose(f);
    }
  }
  if (!st.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n", st.ToString().c_str());
  } else {
    std::fprintf(stderr, "trace written to %s.{jsonl,chrome.json}\n",
                 trace_path.c_str());
  }
}

double ScaleFor(const std::string& sf_name) {
  if (sf_name == "SF100") return 0.002;
  if (sf_name == "SF300") return 0.006;
  if (sf_name == "SF1000") return 0.02;
  return 0.002;
}

std::unique_ptr<Scenario> MakeScenario(const std::string& sf_name,
                                       bool hive_broadcast) {
  auto scenario = std::make_unique<Scenario>();
  scenario->sf_name = sf_name;
  scenario->tpch_scale = ScaleFor(sf_name);

  // The paper's cluster: 15 nodes, 140 map / 84 reduce slots, 15 s job
  // startup, 2 GB per slot. Task memory is an *absolute* budget: it does
  // not grow with the scale factor, which is why larger SFs offer fewer
  // broadcast opportunities (paper §6.5).
  // DYNO_NODES overrides the node count (the fault domains slots and
  // resident map outputs are divided across); the paper's testbed is 15.
  scenario->cluster.num_nodes = 15;
  if (const char* env = std::getenv("DYNO_NODES")) {
    scenario->cluster.num_nodes =
        static_cast<int>(EnvInt64OrDie("DYNO_NODES", env, 1, 1000000));
  }
  scenario->cluster.map_slots = 140;
  scenario->cluster.reduce_slots = 84;
  scenario->cluster.job_startup_ms = 5000;
  scenario->cluster.memory_per_task_bytes = 64 * 1024;
  // Calibrated so jobs are data-dominated (many map waves, expensive
  // shuffles) rather than startup-dominated, matching the paper's
  // several-minute queries; see DESIGN.md §6.
  scenario->cluster.map_read_bytes_per_ms = 2.0;
  scenario->cluster.map_write_bytes_per_ms = 2.0;
  scenario->cluster.shuffle_bytes_per_ms = 50.0;
  scenario->cluster.reduce_read_bytes_per_ms = 4.0;
  scenario->cluster.reduce_write_bytes_per_ms = 4.0;
  scenario->cluster.side_load_bytes_per_ms = 100.0;
  scenario->cluster.cpu_units_per_ms = 500.0;
  scenario->cluster.execution_threads = ExecutionThreads();
  // Failure-regime runs: DYNO_FAULT_SEED / DYNO_TASK_FAILURE_RATE /
  // DYNO_STRAGGLER_RATE / DYNO_MAX_TASK_ATTEMPTS / DYNO_NODE_FAILURE_RATE /
  // DYNO_NODE_RECOVERY_MS / DYNO_BLOCK_CORRUPTION_RATE /
  // DYNO_SHUFFLE_CORRUPTION_RATE / DYNO_POISON_RECORD_RATE /
  // DYNO_MAX_SKIPPED_RECORDS switch deterministic fault injection on (e.g.
  // Fig. 5 under a 5% task failure rate, a node-loss regime, or a 2%
  // corruption regime). Off when the variables are unset.
  scenario->cluster.faults.ApplyEnvOverrides();
  if (scenario->cluster.faults.enabled()) {
    std::fprintf(stderr,
                 "fault injection: seed=%llu failure_rate=%.3f "
                 "straggler_rate=%.3f max_attempts=%d "
                 "node_failure_rate=%.4f nodes=%d "
                 "block_corruption=%.3f shuffle_corruption=%.3f "
                 "poison_rate=%.4f max_skipped=%d\n",
                 (unsigned long long)scenario->cluster.faults.seed,
                 scenario->cluster.faults.task_failure_rate,
                 scenario->cluster.faults.straggler_rate,
                 scenario->cluster.faults.max_task_attempts,
                 scenario->cluster.faults.node_failure_rate,
                 scenario->cluster.num_nodes,
                 scenario->cluster.faults.block_corruption_rate,
                 scenario->cluster.faults.shuffle_corruption_rate,
                 scenario->cluster.faults.poison_record_rate,
                 scenario->cluster.faults.max_skipped_records);
  }
  scenario->engine =
      std::make_unique<MapReduceEngine>(&scenario->dfs, scenario->cluster);
  scenario->catalog = std::make_unique<Catalog>(&scenario->dfs);

  // DYNO_TRACE_PATH=/tmp/run turns on query-lifecycle tracing: the run
  // writes /tmp/run.jsonl (deterministic, golden-diffable),
  // /tmp/run.chrome.json (chrome://tracing / Perfetto) and
  // /tmp/run.metrics.txt on scenario teardown. Benches reusing one
  // scenario for several variants concatenate into a single trace.
  if (const char* trace_path = std::getenv("DYNO_TRACE_PATH")) {
    if (trace_path[0] != '\0') {
      scenario->trace = std::make_unique<obs::TraceSink>();
      scenario->metrics = std::make_unique<obs::MetricsRegistry>();
      scenario->trace_path = StrFormat("%s_%s", trace_path, sf_name.c_str());
      scenario->engine->set_trace(scenario->trace.get());
      scenario->engine->set_metrics(scenario->metrics.get());
    }
  }

  scenario->cost.max_memory_bytes = scenario->cluster.memory_per_task_bytes;
  // One job costs ~15 s of startup plus a materialization round-trip; in
  // cost units (~c_probe bytes) that is roughly 200k at the bench rates.
  scenario->cost.c_job = 200000.0;
  scenario->cost.memory_factor = scenario->cluster.broadcast_memory_factor;
  (void)hive_broadcast;  // Exec-level flag; plumbed per run.

  TpchConfig config;
  config.scale = scenario->tpch_scale;
  config.split_bytes = 2 * 1024;
  Status st = GenerateTpch(scenario->catalog.get(), config);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-H generation failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return scenario;
}

Measured RunDynopt(Scenario* scenario, const Query& query,
                   ExecutionStrategy strategy, bool hive) {
  Measured out;
  StatsStore store;
  DynoOptions options;
  options.cost = scenario->cost;
  options.strategy = strategy;
  // k scaled to the simulator's table sizes (the paper's 1024 is ~1e-5 of
  // its smallest table; 128 keeps the same "tiny sample" proportionality).
  options.pilot.k = 128;
  options.exec.hive_broadcast = hive;
  DynoDriver driver(scenario->engine.get(), scenario->catalog.get(), &store,
                    options);
  auto report = driver.Execute(query);
  if (!report.ok()) {
    out.detail = report.status().ToString();
    return out;
  }
  out.ok = true;
  out.total_ms = report->total_ms;
  out.report = std::move(*report);
  return out;
}

Measured RunDynoptSimple(Scenario* scenario, const Query& query, bool hive) {
  return RunDynopt(scenario, query, ExecutionStrategy::kSimpleParallel, hive);
}

Measured RunRelopt(Scenario* scenario, const Query& query, bool hive) {
  Measured out;
  RelOptBaseline relopt(scenario->engine.get(), scenario->catalog.get(),
                        scenario->cost);
  ExecOptions exec;
  exec.hive_broadcast = hive;
  auto run = relopt.PlanAndExecute(query.join_block, exec);
  if (!run.ok()) {
    out.detail = run.status().ToString();
    return out;
  }
  out.total_ms = run->elapsed_ms;
  out.ok = run->exec_status.ok();
  out.detail = run->exec_status.ok() ? run->plan_compact
                                     : run->exec_status.ToString();
  return out;
}

Measured RunBestStatic(Scenario* scenario, const Query& query, bool hive) {
  Measured out;
  BestStaticOptions options;
  options.cost = scenario->cost;
  options.execute_top_k = 5;
  options.exec.hive_broadcast = hive;
  BestStaticBaseline baseline(scenario->engine.get(),
                              scenario->catalog.get(), options);
  auto result = baseline.Run(query.join_block);
  if (!result.ok()) {
    out.detail = result.status().ToString();
    return out;
  }
  out.ok = true;
  out.total_ms = result->best_time_ms;
  out.detail = result->best_plan;
  return out;
}

void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-18s", "");
  for (const std::string& column : columns) {
    std::printf("%14s", column.c_str());
  }
  std::printf("\n");
}

void PrintRow(const std::string& name, const std::vector<double>& values,
              double baseline) {
  std::printf("%-18s", name.c_str());
  for (double value : values) {
    if (value < 0) {
      std::printf("%14s", "fail");
    } else if (baseline > 0) {
      std::printf("%13.1f%%", 100.0 * value / baseline);
    } else {
      std::printf("%14.0f", value);
    }
  }
  std::printf("\n");
}

}  // namespace dyno::bench
