// Ablations over DYNO's design choices (DESIGN.md §5): each sub-experiment
// switches one mechanism off (or sweeps one knob) and reports the impact
// on Q8' / Q9' at SF300 — the queries where the paper attributes wins to
// re-optimization and pilot runs respectively.

#include <cstdio>
#include <functional>

#include "bench_common.h"

using namespace dyno;
using namespace dyno::bench;

namespace {

Measured RunWith(Scenario* scenario, const Query& query,
                 const std::function<void(DynoOptions*)>& tweak) {
  StatsStore store;
  DynoOptions options;
  options.cost = scenario->cost;
  options.pilot.k = 128;
  tweak(&options);
  DynoDriver driver(scenario->engine.get(), scenario->catalog.get(), &store,
                    options);
  Measured out;
  auto report = driver.Execute(query);
  if (!report.ok()) {
    out.detail = report.status().ToString();
    return out;
  }
  out.ok = true;
  out.total_ms = report->total_ms;
  out.report = std::move(*report);
  return out;
}

void Report(const char* name, const Measured& base, const Measured& variant) {
  if (!variant.ok) {
    std::printf("  %-34s FAILED (%s)\n", name, variant.detail.c_str());
    return;
  }
  std::printf("  %-34s %9s  (%.2fx of baseline)%s\n", name,
              FormatSimMillis(variant.total_ms).c_str(),
              base.ok ? static_cast<double>(variant.total_ms) /
                            static_cast<double>(base.total_ms)
                      : 0.0,
              variant.report.broadcast_fallbacks > 0 ? "  [fallbacks]" : "");
}

}  // namespace

int main() {
  auto scenario = MakeScenario("SF300");
  Query q8 = MakeTpchQ8Prime();
  Query q9 = MakeTpchQ9Prime();

  for (auto& [qname, query] : std::vector<std::pair<const char*, Query*>>{
           {"Q8'", &q8}, {"Q9'", &q9}}) {
    std::printf("\n=== Ablations on %s (SF300) ===\n", qname);
    Measured base = RunWith(scenario.get(), *query, [](DynoOptions*) {});
    std::printf("  %-34s %9s  (baseline: DYNOPT, UNC-1)\n", "full DYNO",
                FormatSimMillis(base.total_ms).c_str());

    Report("no pilot runs (base stats only)", base,
           RunWith(scenario.get(), *query,
                   [](DynoOptions* o) { o->use_pilot_runs = false; }));
    Report("no re-optimization (SIMPLE_MO)", base,
           RunWith(scenario.get(), *query, [](DynoOptions* o) {
             o->strategy = ExecutionStrategy::kSimpleParallel;
           }));
    Report("left-deep plans only", base,
           RunWith(scenario.get(), *query,
                   [](DynoOptions* o) { o->cost.left_deep_only = true; }));
    Report("no broadcast chaining", base,
           RunWith(scenario.get(), *query, [](DynoOptions* o) {
             o->cost.enable_broadcast_chains = false;
           }));
    Report("no broadcast joins at all", base,
           RunWith(scenario.get(), *query, [](DynoOptions* o) {
             o->cost.enable_broadcast = false;
           }));
    Report("paper-exact margins (1.0)+no fallback", base,
           RunWith(scenario.get(), *query, [](DynoOptions* o) {
             o->cost.estimated_build_margin = 1.0;
             o->adaptive_join_fallback = false;
           }));
    Report("reopt threshold 50% error", base,
           RunWith(scenario.get(), *query, [](DynoOptions* o) {
             o->reopt_row_error_threshold = 0.5;
           }));
    Report("predicate reordering on", base,
           RunWith(scenario.get(), *query, [](DynoOptions* o) {
             o->reorder_local_predicates = true;
           }));
    for (int k : {32, 512, 2048}) {
      char label[64];
      std::snprintf(label, sizeof(label), "pilot sample k = %d", k);
      Report(label, base, RunWith(scenario.get(), *query,
                                  [k](DynoOptions* o) { o->pilot.k = k; }));
    }
  }

  // Statistics reuse across recurring queries (§4.1).
  std::printf("\n=== Statistics reuse (recurring Q8') ===\n");
  StatsStore store;
  DynoOptions options;
  options.cost = scenario->cost;
  options.pilot.k = 128;
  DynoDriver driver(scenario->engine.get(), scenario->catalog.get(), &store,
                    options);
  auto first = driver.Execute(q8);
  auto second = driver.Execute(q8);
  if (first.ok() && second.ok()) {
    std::printf("  first run : %9s (pilot %s)\n",
                FormatSimMillis(first->total_ms).c_str(),
                FormatSimMillis(first->pilot_ms).c_str());
    std::printf("  second run: %9s (pilot %s, %llu metastore hits)\n",
                FormatSimMillis(second->total_ms).c_str(),
                FormatSimMillis(second->pilot_ms).c_str(),
                (unsigned long long)store.hits());
  }
  return 0;
}
