// Reproduces Figure 2: the execution plans for TPC-H Q8' — the plan a
// traditional relational optimizer picks statically, versus the sequence
// of plans DYNO produces (plan1 after the pilot runs, then one new plan
// per re-optimization point). The paper's observation: the traditional
// plan runs as 1 map-only + 4 map-reduce jobs, while DYNO's evolving plans
// finish in fewer, cheaper jobs with broadcast joins discovered at runtime.

#include <cstdio>

#include "bench_common.h"

using namespace dyno;
using namespace dyno::bench;

int main() {
  auto scenario = MakeScenario("SF300");
  Query q8 = MakeTpchQ8Prime();

  std::printf("=== Figure 2: plan evolution for Q8' (SF300) ===\n");

  // Traditional optimizer's static plan.
  RelOptBaseline relopt(scenario->engine.get(), scenario->catalog.get(),
                        scenario->cost);
  auto rel = relopt.PlanAndExecute(q8.join_block, ExecOptions());
  if (rel.ok()) {
    std::printf("\n-- plan by traditional optimizer --\n%s",
                rel->plan_tree.c_str());
    std::printf("   executed as %d jobs (%d map-only): %s, %s\n",
                rel->jobs_run, rel->map_only_jobs,
                FormatSimMillis(rel->elapsed_ms).c_str(),
                rel->exec_status.ok() ? "ok"
                                      : rel->exec_status.ToString().c_str());
  }

  // DYNO's evolving plans.
  Measured dyn = RunDynopt(scenario.get(), q8);
  if (!dyn.ok) {
    std::fprintf(stderr, "DYNOPT failed: %s\n", dyn.detail.c_str());
    return 1;
  }
  for (size_t i = 0; i < dyn.report.plan_history.size(); ++i) {
    const PlanEvent& event = dyn.report.plan_history[i];
    std::printf("\n-- DYNO plan%zu%s (at %s) --\n%s", i + 1,
                event.plan_changed ? ", changed" : "",
                FormatSimMillis(event.at_ms).c_str(),
                event.plan_tree.c_str());
  }
  std::printf(
      "\nDYNO executed %d jobs (%d map-only) in %s; %d re-optimizations "
      "changed the plan\n",
      dyn.report.jobs_run, dyn.report.map_only_jobs,
      FormatSimMillis(dyn.total_ms).c_str(), dyn.report.plan_changes);
  return 0;
}
