// Concurrency sweep over the multi-query service (DESIGN.md §6.6): a fixed
// batch of 8 TPC-H query sessions with a seeded arrival schedule is run
// through the QueryService at increasing admission concurrency (1 → 8
// sessions at once) on the paper's SF100 cluster. Reports per-query latency
// (p50/p99 of arrival→finish) and cluster-slot utilization, and writes the
// whole sweep to BENCH_concurrency.json (override the path with
// DYNO_BENCH_CONCURRENCY_OUT). Expected shape: admitting more sessions
// raises slot utilization and cuts p50 latency sharply — the cluster is
// far wider than one query's parallelism — while p99 falls more slowly
// (the last arrivals still queue behind everyone at low concurrency).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/query_service.h"

using namespace dyno;
using namespace dyno::bench;

namespace {

struct SweepPoint {
  int concurrency = 0;
  SimMillis p50_ms = 0;
  SimMillis p99_ms = 0;
  SimMillis makespan_ms = 0;
  double utilization = 0.0;
  int completed = 0;
};

SimMillis Percentile(std::vector<SimMillis> sorted, double p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

SweepPoint RunAtConcurrency(int concurrency) {
  auto scenario = MakeScenario("SF100");

  StatsStore store;
  QueryServiceOptions options;
  options.max_concurrent = concurrency;
  options.admission_queue_limit = 64;
  options.seed = 2024;
  options.arrival_window_ms = 60000;
  options.ApplyEnvOverrides();
  QueryService service(scenario->engine.get(), scenario->catalog.get(),
                       &store, options);

  const std::vector<std::pair<std::string, Query>> mix = {
      {"Q10", MakeTpchQ10()}, {"Q2", MakeTpchQ2()},
      {"Q8p", MakeTpchQ8Prime()}, {"Q9p", MakeTpchQ9Prime()},
  };
  const int kQueries = 8;
  for (int i = 0; i < kQueries; ++i) {
    QuerySubmission sub;
    sub.query_id = mix[i % mix.size()].first + "-" + std::to_string(i);
    sub.tenant = (i % 2 == 0) ? "alpha" : "beta";
    sub.query = mix[i % mix.size()].second;
    sub.options.cost = scenario->cost;
    sub.options.pilot.k = 128;
    sub.arrival_offset_ms = -1;  // seeded service RNG stream
    Status status = service.Enqueue(std::move(sub));
    if (!status.ok()) {
      std::fprintf(stderr, "enqueue failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }

  const SimMillis start = scenario->engine->now();
  std::vector<QueryOutcome> outcomes = service.RunAll();
  const SimMillis elapsed = scenario->engine->now() - start;

  SweepPoint point;
  point.concurrency = concurrency;
  std::vector<SimMillis> latencies;
  SimMillis slot_ms = 0;
  SimMillis last_finish = 0;
  for (const QueryOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", outcome.query_id.c_str(),
                   outcome.status.ToString().c_str());
      continue;
    }
    ++point.completed;
    latencies.push_back(outcome.Latency());
    slot_ms += outcome.slot_ms;
    last_finish = std::max(last_finish, outcome.finish_ms);
  }
  point.p50_ms = Percentile(latencies, 0.50);
  point.p99_ms = Percentile(latencies, 0.99);
  point.makespan_ms = last_finish - start;
  const ClusterConfig& cluster = scenario->engine->config();
  const double total_slots =
      static_cast<double>(cluster.map_slots + cluster.reduce_slots);
  if (elapsed > 0 && total_slots > 0) {
    point.utilization =
        static_cast<double>(slot_ms) / (static_cast<double>(elapsed) *
                                        total_slots);
  }
  return point;
}

}  // namespace

int main() {
  PrintHeader("Concurrency sweep: 8 TPC-H sessions, SF100",
              {"p50 s", "p99 s", "makespan s", "util %", "done"});
  std::vector<SweepPoint> sweep;
  for (int concurrency : {1, 2, 4, 8}) {
    SweepPoint point = RunAtConcurrency(concurrency);
    sweep.push_back(point);
    std::printf("N=%d  p50=%.1fs  p99=%.1fs  makespan=%.1fs  util=%.1f%%  "
                "done=%d/8\n",
                point.concurrency, point.p50_ms / 1000.0,
                point.p99_ms / 1000.0, point.makespan_ms / 1000.0,
                point.utilization * 100.0, point.completed);
  }

  const char* out_path = std::getenv("DYNO_BENCH_CONCURRENCY_OUT");
  if (out_path == nullptr) out_path = "BENCH_concurrency.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\"bench\":\"concurrency\",\"queries\":8,"
                  "\"cluster\":\"SF100\",\"sweep\":[\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& point = sweep[i];
    std::fprintf(
        f,
        "  {\"concurrency\":%d,\"p50_latency_ms\":%lld,"
        "\"p99_latency_ms\":%lld,\"makespan_ms\":%lld,"
        "\"slot_utilization\":%.4f,\"completed\":%d}%s\n",
        point.concurrency, (long long)point.p50_ms, (long long)point.p99_ms,
        (long long)point.makespan_ms, point.utilization, point.completed,
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // Sanity for CI: every query must complete at every concurrency, and
  // added concurrency must not make the batch slower end to end.
  for (const SweepPoint& point : sweep) {
    if (point.completed != 8) {
      std::fprintf(stderr, "FAIL: only %d/8 queries completed at N=%d\n",
                   point.completed, point.concurrency);
      return 1;
    }
  }
  if (sweep.back().makespan_ms > sweep.front().makespan_ms) {
    std::fprintf(stderr, "FAIL: makespan at N=8 exceeds N=1\n");
    return 1;
  }
  return 0;
}
