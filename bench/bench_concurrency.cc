// Concurrency sweep over the multi-query service (DESIGN.md §6.6): a fixed
// batch of 8 TPC-H query sessions with a seeded arrival schedule is run
// through the QueryService at increasing admission concurrency (1 → 8
// sessions at once) on the paper's SF100 cluster. Reports per-query latency
// (p50/p99 of arrival→finish), queue-wait percentiles, shed/rejected
// counts and cluster-slot utilization, and writes the whole sweep plus the
// priority-mix scenario below to BENCH_concurrency.json (override the path
// with DYNO_BENCH_CONCURRENCY_OUT). Expected shape: admitting more
// sessions raises slot utilization and cuts p50 latency sharply — the
// cluster is far wider than one query's parallelism — while p99 falls more
// slowly (the last arrivals still queue behind everyone at low
// concurrency).
//
// The priority-mix scenario (DESIGN.md §6.9) overloads 2 slots with 8
// sessions, half of them priority 5 with preemption and a service
// checkpoint namespace. CI gate: the high-priority half's p99 latency must
// beat the same queries' p99 in the no-priority baseline — otherwise the
// priority plumbing is dead weight.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/query_service.h"

using namespace dyno;
using namespace dyno::bench;

namespace {

struct SweepPoint {
  int concurrency = 0;
  SimMillis p50_ms = 0;
  SimMillis p99_ms = 0;
  SimMillis queue_p50_ms = 0;
  SimMillis queue_p99_ms = 0;
  SimMillis makespan_ms = 0;
  double utilization = 0.0;
  int completed = 0;
  int shed = 0;      ///< Load-shed by the service (ResourceExhausted).
  int rejected = 0;  ///< Refused at Enqueue (admission-queue backpressure).
  /// Largest per-task memory footprint any query's jobs reported (0 unless
  /// the engine enforces a reduce memory mode).
  uint64_t peak_task_memory_bytes = 0;
};

SimMillis Percentile(std::vector<SimMillis> sorted, double p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

const std::vector<std::pair<std::string, Query>>& QueryMix() {
  static const auto* mix = new std::vector<std::pair<std::string, Query>>{
      {"Q10", MakeTpchQ10()}, {"Q2", MakeTpchQ2()},
      {"Q8p", MakeTpchQ8Prime()}, {"Q9p", MakeTpchQ9Prime()},
  };
  return *mix;
}

SweepPoint RunAtConcurrency(int concurrency) {
  auto scenario = MakeScenario("SF100");

  StatsStore store;
  QueryServiceOptions options;
  options.max_concurrent = concurrency;
  options.admission_queue_limit = 64;
  options.seed = 2024;
  options.arrival_window_ms = 60000;
  options.ApplyEnvOverrides();
  QueryService service(scenario->engine.get(), scenario->catalog.get(),
                       &store, options);

  SweepPoint point;
  point.concurrency = concurrency;
  const int kQueries = 8;
  for (int i = 0; i < kQueries; ++i) {
    QuerySubmission sub;
    sub.query_id = QueryMix()[i % QueryMix().size()].first + "-" +
                   std::to_string(i);
    sub.tenant = (i % 2 == 0) ? "alpha" : "beta";
    sub.query = QueryMix()[i % QueryMix().size()].second;
    sub.options.cost = scenario->cost;
    sub.options.pilot.k = 128;
    sub.arrival_offset_ms = -1;  // seeded service RNG stream
    Status status = service.Enqueue(std::move(sub));
    if (status.code() == StatusCode::kResourceExhausted) {
      ++point.rejected;
      continue;
    }
    if (!status.ok()) {
      std::fprintf(stderr, "enqueue failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }

  const SimMillis start = scenario->engine->now();
  std::vector<QueryOutcome> outcomes = service.RunAll();
  const SimMillis elapsed = scenario->engine->now() - start;

  std::vector<SimMillis> latencies;
  std::vector<SimMillis> queue_waits;
  SimMillis slot_ms = 0;
  SimMillis last_finish = 0;
  for (const QueryOutcome& outcome : outcomes) {
    if (outcome.status.code() == StatusCode::kResourceExhausted) {
      ++point.shed;
      continue;
    }
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", outcome.query_id.c_str(),
                   outcome.status.ToString().c_str());
      continue;
    }
    ++point.completed;
    latencies.push_back(outcome.Latency());
    queue_waits.push_back(outcome.admit_ms - outcome.arrival_ms);
    slot_ms += outcome.slot_ms;
    last_finish = std::max(last_finish, outcome.finish_ms);
    point.peak_task_memory_bytes = std::max(
        point.peak_task_memory_bytes, outcome.report.peak_task_memory_bytes);
  }
  point.p50_ms = Percentile(latencies, 0.50);
  point.p99_ms = Percentile(latencies, 0.99);
  point.queue_p50_ms = Percentile(queue_waits, 0.50);
  point.queue_p99_ms = Percentile(queue_waits, 0.99);
  point.makespan_ms = last_finish - start;
  const ClusterConfig& cluster = scenario->engine->config();
  const double total_slots =
      static_cast<double>(cluster.map_slots + cluster.reduce_slots);
  if (elapsed > 0 && total_slots > 0) {
    point.utilization =
        static_cast<double>(slot_ms) / (static_cast<double>(elapsed) *
                                        total_slots);
  }
  return point;
}

/// The priority-mix overload scenario: 8 sessions contending for 2 slots,
/// the odd-indexed half at priority 5. `with_priorities` toggles the
/// priorities and preemption; the arrival schedule, query mix and cluster
/// are identical either way, so the two runs are directly comparable.
struct PriorityMixResult {
  SimMillis high_p99_ms = 0;   ///< p99 latency of the would-be-high half.
  SimMillis other_p99_ms = 0;  ///< p99 latency of the rest.
  int completed = 0;
  int preemptions = 0;
  int shed = 0;
};

PriorityMixResult RunPriorityMix(bool with_priorities) {
  auto scenario = MakeScenario("SF100");

  StatsStore store;
  QueryServiceOptions options;
  options.max_concurrent = 2;
  options.admission_queue_limit = 64;
  options.seed = 2024;
  options.arrival_window_ms = 60000;
  options.priority_preemption = with_priorities;
  options.checkpoint_root = "/bench_svc";
  QueryService service(scenario->engine.get(), scenario->catalog.get(),
                       &store, options);

  const int kQueries = 8;
  for (int i = 0; i < kQueries; ++i) {
    QuerySubmission sub;
    sub.query_id = QueryMix()[i % QueryMix().size()].first + "-" +
                   std::to_string(i);
    sub.tenant = (i % 2 == 0) ? "alpha" : "beta";
    sub.query = QueryMix()[i % QueryMix().size()].second;
    sub.options.cost = scenario->cost;
    sub.options.pilot.k = 128;
    sub.arrival_offset_ms = -1;  // same seed → same schedule both runs
    sub.priority = (with_priorities && i % 2 == 1) ? 5 : 0;
    Status status = service.Enqueue(std::move(sub));
    if (!status.ok()) {
      std::fprintf(stderr, "enqueue failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }

  PriorityMixResult result;
  std::vector<SimMillis> high_latencies;
  std::vector<SimMillis> other_latencies;
  std::vector<QueryOutcome> outcomes = service.RunAll();
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const QueryOutcome& outcome = outcomes[i];
    result.preemptions += outcome.preemptions;
    if (outcome.status.code() == StatusCode::kResourceExhausted) {
      ++result.shed;
      continue;
    }
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", outcome.query_id.c_str(),
                   outcome.status.ToString().c_str());
      continue;
    }
    ++result.completed;
    // Bucket by the position that *would* be high-priority, so the
    // baseline measures the same four queries.
    (i % 2 == 1 ? high_latencies : other_latencies)
        .push_back(outcome.Latency());
  }
  result.high_p99_ms = Percentile(high_latencies, 0.99);
  result.other_p99_ms = Percentile(other_latencies, 0.99);
  return result;
}

}  // namespace

int main() {
  PrintHeader("Concurrency sweep: 8 TPC-H sessions, SF100",
              {"p50 s", "p99 s", "queue p99 s", "makespan s", "util %",
               "peak mem", "done"});
  std::vector<SweepPoint> sweep;
  for (int concurrency : {1, 2, 4, 8}) {
    SweepPoint point = RunAtConcurrency(concurrency);
    sweep.push_back(point);
    std::printf("N=%d  p50=%.1fs  p99=%.1fs  qwait p50=%.1fs p99=%.1fs  "
                "makespan=%.1fs  util=%.1f%%  peakmem=%lluKB  done=%d/8  "
                "shed=%d rej=%d\n",
                point.concurrency, point.p50_ms / 1000.0,
                point.p99_ms / 1000.0, point.queue_p50_ms / 1000.0,
                point.queue_p99_ms / 1000.0, point.makespan_ms / 1000.0,
                point.utilization * 100.0,
                (unsigned long long)(point.peak_task_memory_bytes / 1024),
                point.completed, point.shed, point.rejected);
  }

  std::printf("\nPriority mix: 8 sessions, 2 slots, half at priority 5\n");
  PriorityMixResult base = RunPriorityMix(/*with_priorities=*/false);
  PriorityMixResult prio = RunPriorityMix(/*with_priorities=*/true);
  std::printf("baseline   : high-half p99=%.1fs  other p99=%.1fs  done=%d/8\n",
              base.high_p99_ms / 1000.0, base.other_p99_ms / 1000.0,
              base.completed);
  std::printf("priorities : high-half p99=%.1fs  other p99=%.1fs  done=%d/8  "
              "preemptions=%d\n",
              prio.high_p99_ms / 1000.0, prio.other_p99_ms / 1000.0,
              prio.completed, prio.preemptions);

  const char* out_path = std::getenv("DYNO_BENCH_CONCURRENCY_OUT");
  if (out_path == nullptr) out_path = "BENCH_concurrency.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\"bench\":\"concurrency\",\"queries\":8,"
                  "\"cluster\":\"SF100\",\"sweep\":[\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& point = sweep[i];
    std::fprintf(
        f,
        "  {\"concurrency\":%d,\"p50_latency_ms\":%lld,"
        "\"p99_latency_ms\":%lld,\"queue_wait_p50_ms\":%lld,"
        "\"queue_wait_p99_ms\":%lld,\"makespan_ms\":%lld,"
        "\"slot_utilization\":%.4f,\"peak_task_memory_bytes\":%llu,"
        "\"completed\":%d,\"shed\":%d,"
        "\"rejected\":%d}%s\n",
        point.concurrency, (long long)point.p50_ms, (long long)point.p99_ms,
        (long long)point.queue_p50_ms, (long long)point.queue_p99_ms,
        (long long)point.makespan_ms, point.utilization,
        (unsigned long long)point.peak_task_memory_bytes, point.completed,
        point.shed, point.rejected, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f,
               "],\"priority_mix\":{\"concurrency\":2,"
               "\"high_p99_baseline_ms\":%lld,"
               "\"high_p99_with_priorities_ms\":%lld,"
               "\"other_p99_baseline_ms\":%lld,"
               "\"other_p99_with_priorities_ms\":%lld,"
               "\"preemptions\":%d,\"shed\":%d,"
               "\"completed_baseline\":%d,\"completed_with_priorities\":%d}"
               "}\n",
               (long long)base.high_p99_ms, (long long)prio.high_p99_ms,
               (long long)base.other_p99_ms, (long long)prio.other_p99_ms,
               prio.preemptions, prio.shed, base.completed, prio.completed);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // Sanity for CI: every query must complete at every concurrency, and
  // added concurrency must not make the batch slower end to end.
  for (const SweepPoint& point : sweep) {
    if (point.completed != 8) {
      std::fprintf(stderr, "FAIL: only %d/8 queries completed at N=%d\n",
                   point.completed, point.concurrency);
      return 1;
    }
  }
  if (sweep.back().makespan_ms > sweep.front().makespan_ms) {
    std::fprintf(stderr, "FAIL: makespan at N=8 exceeds N=1\n");
    return 1;
  }
  // Priority gate: under overload, the high-priority half must see a
  // better p99 than the same queries without priorities.
  if (base.completed != 8 || prio.completed != 8) {
    std::fprintf(stderr, "FAIL: priority-mix runs did not complete 8/8\n");
    return 1;
  }
  if (prio.high_p99_ms >= base.high_p99_ms) {
    std::fprintf(stderr,
                 "FAIL: high-priority p99 (%.1fs) does not beat the "
                 "no-priority baseline (%.1fs)\n",
                 prio.high_p99_ms / 1000.0, base.high_p99_ms / 1000.0);
    return 1;
  }
  return 0;
}
