// Reproduces Table 1: relative execution time of the pilot runs, PILR_ST
// vs PILR_MT, for queries Q2, Q8', Q9', Q10 and scale factors 100/300/1000.
// Each row is normalized to PILR_ST at SF100 (= 100%). Expected shape:
// MT is several times faster than ST (it submits all leaf jobs at once,
// paying the 15 s job-startup latency once instead of per relation), and
// MT's cost is flat across scale factors (it reads a fixed-size sample).

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "pilot/pilot_runner.h"

namespace {

using namespace dyno;
using namespace dyno::bench;

SimMillis RunPilr(Scenario* scenario, const Query& query,
                  PilotRunOptions::Mode mode) {
  std::vector<LeafExpr> leaves = ExtractLeafExprs(query.join_block, nullptr);
  StatsStore store;  // fresh store: no reuse between measurements
  PilotRunOptions options;
  options.mode = mode;
  options.k = 128;
  options.reuse_stats = false;
  PilotRunner runner(scenario->engine.get(), scenario->catalog.get(), &store,
                     options);
  auto report = runner.Run(leaves);
  if (!report.ok()) {
    std::fprintf(stderr, "PILR failed: %s\n",
                 report.status().ToString().c_str());
    return -1;
  }
  return report->elapsed_ms;
}

}  // namespace

int main() {
  std::vector<std::pair<std::string, Query>> queries = {
      {"Q2", MakeTpchQ2()},
      {"Q8'", MakeTpchQ8Prime()},
      {"Q9'", MakeTpchQ9Prime()},
      {"Q10", MakeTpchQ10()},
  };
  std::vector<std::string> sfs = {"SF100", "SF300", "SF1000"};
  std::map<std::string, std::unique_ptr<Scenario>> scenarios;
  for (const std::string& sf : sfs) scenarios[sf] = MakeScenario(sf);

  PrintHeader("Table 1: relative PILR time (row-normalized to SF100-ST)",
              {"SF100-ST", "SF100-MT", "SF300-MT", "SF1000-MT"});
  double mt_speedup_sum = 0;
  int mt_speedup_n = 0;
  for (auto& [name, query] : queries) {
    double st100 = static_cast<double>(
        RunPilr(scenarios["SF100"].get(), query, PilotRunOptions::Mode::kSerial));
    double mt100 = static_cast<double>(RunPilr(
        scenarios["SF100"].get(), query, PilotRunOptions::Mode::kParallel));
    double mt300 = static_cast<double>(RunPilr(
        scenarios["SF300"].get(), query, PilotRunOptions::Mode::kParallel));
    double mt1000 = static_cast<double>(RunPilr(
        scenarios["SF1000"].get(), query, PilotRunOptions::Mode::kParallel));
    PrintRow(name, {st100, mt100, mt300, mt1000}, st100);
    if (mt100 > 0) {
      mt_speedup_sum += st100 / mt100;
      ++mt_speedup_n;
    }
  }
  std::printf("\naverage MT speedup over ST: %.1fx (paper: 4.6x)\n",
              mt_speedup_sum / mt_speedup_n);
  return 0;
}
