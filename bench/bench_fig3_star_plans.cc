// Reproduces Figure 3: the execution plans for TPC-H Q9' (star join with
// filtering UDFs on the dimensions). The traditional optimizer cannot
// estimate UDF selectivity, treats every dimension as full-size, and
// produces expensive repartition joins; DYNO's pilot runs measure the
// filtered dimensions, discover they fit in memory, and produce a plan of
// (chained) broadcast joins.

#include <cstdio>

#include "bench_common.h"

using namespace dyno;
using namespace dyno::bench;

namespace {

int CountMethod(const PlanNode& node, JoinMethod method) {
  if (node.IsLeaf()) return 0;
  return (node.method == method ? 1 : 0) +
         CountMethod(*node.left, method) + CountMethod(*node.right, method);
}

}  // namespace

int main() {
  auto scenario = MakeScenario("SF300");
  Query q9 = MakeTpchQ9Prime(/*dim_udf_selectivity=*/0.005);

  std::printf("=== Figure 3: execution plans for Q9' (SF300) ===\n");

  RelOptBaseline relopt(scenario->engine.get(), scenario->catalog.get(),
                        scenario->cost);
  auto rel_plan = relopt.Plan(q9.join_block);
  if (rel_plan.ok()) {
    std::printf("\n-- plan by traditional optimizer --\n%s",
                (*rel_plan)->ToTreeString().c_str());
    std::printf("   repartition joins: %d, broadcast joins: %d\n",
                CountMethod(**rel_plan, JoinMethod::kRepartition),
                CountMethod(**rel_plan, JoinMethod::kBroadcast));
  }

  Measured dyn = RunDynoptSimple(scenario.get(), q9);
  if (!dyn.ok) {
    std::fprintf(stderr, "DYNO failed: %s\n", dyn.detail.c_str());
    return 1;
  }
  std::printf("\n-- DYNO plan after pilot runs --\n%s",
              dyn.report.plan_history.front().plan_tree.c_str());
  std::printf("   executed as %d jobs (%d map-only), %s\n",
              dyn.report.jobs_run, dyn.report.map_only_jobs,
              FormatSimMillis(dyn.total_ms).c_str());

  auto rel_run = relopt.PlanAndExecute(q9.join_block, ExecOptions());
  if (rel_run.ok()) {
    std::printf(
        "\ntraditional plan executed in %s (%d jobs, %d map-only)\n",
        FormatSimMillis(rel_run->elapsed_ms).c_str(), rel_run->jobs_run,
        rel_run->map_only_jobs);
  }
  return 0;
}
