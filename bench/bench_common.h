#ifndef DYNO_BENCH_BENCH_COMMON_H_
#define DYNO_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/best_static.h"
#include "baselines/relopt.h"
#include "dyno/driver.h"
#include "mr/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/stats_store.h"
#include "storage/catalog.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno::bench {

/// One experiment environment: a simulated cluster with TPC-H data at a
/// paper scale factor. The paper's SF100/SF300/SF1000 map to proportional
/// simulator scales (plan choice depends on *relative* sizes; the cluster's
/// task memory stays fixed while data grows, so broadcast opportunities
/// shrink with SF exactly as in the paper).
struct Scenario {
  std::string sf_name;
  double tpch_scale = 0.002;
  Dfs dfs;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<MapReduceEngine> engine;
  ClusterConfig cluster;
  CostModelParams cost;

  /// Engaged when DYNO_TRACE_PATH is set: the engine (and everything
  /// driving it) records into these, and the destructor writes
  /// <path>.jsonl, <path>.chrome.json and <path>.metrics.txt.
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::string trace_path;

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;
  Scenario() = default;
  ~Scenario();
};

/// Simulator scale for a paper scale factor name ("SF100", "SF300",
/// "SF1000").
double ScaleFor(const std::string& sf_name);

/// Builds a scenario: paper-like cluster (140/84 slots, 15 s startup,
/// fixed task memory) + generated TPC-H tables.
std::unique_ptr<Scenario> MakeScenario(const std::string& sf_name,
                                       bool hive_broadcast = false);

/// Result of one measured query execution.
struct Measured {
  SimMillis total_ms = 0;
  bool ok = false;
  std::string detail;
  QueryRunReport report;  ///< Populated for the DYNO variants.
};

/// Runs full DYNOPT (pilot runs + re-optimization, UNC-1 by default).
Measured RunDynopt(Scenario* scenario, const Query& query,
                   ExecutionStrategy strategy = ExecutionStrategy::kUncertain1,
                   bool hive = false);

/// Runs DYNOPT-SIMPLE (pilot runs, one optimizer call, MO waves).
Measured RunDynoptSimple(Scenario* scenario, const Query& query,
                         bool hive = false);

/// Runs the RELOPT baseline (static stats, traditional estimator).
Measured RunRelopt(Scenario* scenario, const Query& query, bool hive = false);

/// Runs the BESTSTATIC baseline (best hand-written left-deep Jaql plan).
Measured RunBestStatic(Scenario* scenario, const Query& query,
                       bool hive = false);

/// Prints a normalized table row: name + one column per value, normalized
/// to `baseline` when it is > 0 (per the paper's relative-time figures).
void PrintRow(const std::string& name, const std::vector<double>& values,
              double baseline);

/// Prints a section header.
void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns);

}  // namespace dyno::bench

#endif  // DYNO_BENCH_BENCH_COMMON_H_
