// Multi-query cache benchmark (DESIGN.md §6.7): the same four-query TPC-H
// mix is submitted three times in a row through the QueryService, once with
// the cross-query subtree cache off and once with it on. The first pass is
// cold either way; on the repeated passes the cached service should serve
// whole subtrees (usually the query root) from pinned DFS results, cutting
// the repeated-portion latency while producing byte-identical outputs.
// Writes BENCH_mqo.json (override the path with DYNO_BENCH_MQO_OUT).
//
// CI gates: the cold pass is byte-identical across the two arms (a cache
// that is never hit must not perturb execution), every occurrence is
// row-set-identical across the arms, and the repeated portion is at least
// 2x faster with the cache on. Repeated passes are compared canonically
// rather than byte-for-byte because the cache-off arm is not byte-stable
// against itself: warm pilot statistics can legitimately flip the chosen
// plan between passes, reordering the (identical) result rows.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/query_service.h"

using namespace dyno;
using namespace dyno::bench;

namespace {

struct SequenceResult {
  std::vector<SimMillis> latency_ms;        ///< Per occurrence, submit order.
  std::vector<std::string> result_bytes;    ///< Concatenated split payloads.
  std::vector<std::vector<Value>> result_rows;  ///< Sorted decoded rows.
  SimMillis cold_ms = 0;                    ///< First pass over the mix.
  SimMillis repeat_ms = 0;                  ///< Passes 2..N over the mix.
  int total_jobs = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

constexpr int kRepeats = 3;

std::string BytesOf(const QueryRunReport& report) {
  std::string bytes;
  if (report.result == nullptr) return bytes;
  for (const Split& split : report.result->splits()) bytes += split.data;
  return bytes;
}

std::vector<Value> SortedRowsOf(const QueryRunReport& report) {
  std::vector<Value> rows;
  if (report.result == nullptr) return rows;
  auto decoded = ReadAllRows(*report.result);
  if (!decoded.ok()) {
    std::fprintf(stderr, "result decode failed: %s\n",
                 decoded.status().ToString().c_str());
    std::exit(1);
  }
  rows = std::move(decoded).value();
  std::sort(rows.begin(), rows.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  return rows;
}

bool SameRows(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

SequenceResult RunSequence(bool with_cache) {
  auto scenario = MakeScenario("SF100");

  StatsStore store;
  QueryServiceOptions options;
  options.max_concurrent = 1;
  options.enable_subtree_cache = with_cache;
  // No ApplyEnvOverrides here: the two arms must differ only in the cache.
  QueryService service(scenario->engine.get(), scenario->catalog.get(),
                       &store, options);

  const std::vector<std::pair<std::string, Query>> mix = {
      {"Q10", MakeTpchQ10()}, {"Q2", MakeTpchQ2()},
      {"Q8p", MakeTpchQ8Prime()}, {"Q9p", MakeTpchQ9Prime()},
  };

  SequenceResult out;
  for (int pass = 0; pass < kRepeats; ++pass) {
    for (size_t q = 0; q < mix.size(); ++q) {
      QuerySubmission sub;
      sub.query_id =
          mix[q].first + "-p" + std::to_string(pass);
      sub.query = mix[q].second;
      sub.options.cost = scenario->cost;
      sub.options.pilot.k = 128;
      sub.arrival_offset_ms = 0;
      Status status = service.Enqueue(std::move(sub));
      if (!status.ok()) {
        std::fprintf(stderr, "enqueue failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
      // One query per RunAll call: the per-occurrence latency is then a
      // clean engine-clock delta, and the service-owned cache (and the
      // shared pilot StatsStore) carry over between calls.
      const SimMillis t0 = scenario->engine->now();
      std::vector<QueryOutcome> outcomes = service.RunAll();
      const SimMillis elapsed = scenario->engine->now() - t0;
      if (outcomes.size() != 1 || !outcomes[0].status.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", sub.query_id.c_str(),
                     outcomes.empty()
                         ? "no outcome"
                         : outcomes[0].status.ToString().c_str());
        std::exit(1);
      }
      out.latency_ms.push_back(elapsed);
      out.result_bytes.push_back(BytesOf(outcomes[0].report));
      out.result_rows.push_back(SortedRowsOf(outcomes[0].report));
      out.total_jobs += outcomes[0].report.jobs_run;
      (pass == 0 ? out.cold_ms : out.repeat_ms) += elapsed;
    }
  }
  if (service.subtree_cache() != nullptr) {
    out.cache_hits = service.subtree_cache()->hits();
    out.cache_misses = service.subtree_cache()->misses();
  }
  return out;
}

}  // namespace

int main() {
  PrintHeader("Multi-query cache: 4-query mix x 3 passes, SF100",
              {"cold s", "repeat s", "jobs", "hits"});

  SequenceResult off = RunSequence(false);
  SequenceResult on = RunSequence(true);
  std::printf("cache off  cold=%.1fs  repeat=%.1fs  jobs=%d\n",
              off.cold_ms / 1000.0, off.repeat_ms / 1000.0, off.total_jobs);
  std::printf("cache on   cold=%.1fs  repeat=%.1fs  jobs=%d  hits=%llu  "
              "misses=%llu\n",
              on.cold_ms / 1000.0, on.repeat_ms / 1000.0, on.total_jobs,
              (unsigned long long)on.cache_hits,
              (unsigned long long)on.cache_misses);

  const size_t mix_size = off.result_bytes.size() / kRepeats;
  bool cold_byte_identical = true;
  for (size_t i = 0; i < mix_size; ++i) {
    cold_byte_identical = cold_byte_identical &&
                          off.result_bytes[i] == on.result_bytes[i];
  }
  bool rows_identical = off.result_rows.size() == on.result_rows.size();
  for (size_t i = 0; rows_identical && i < off.result_rows.size(); ++i) {
    rows_identical = SameRows(off.result_rows[i], on.result_rows[i]);
  }
  const double speedup =
      on.repeat_ms > 0
          ? static_cast<double>(off.repeat_ms) /
                static_cast<double>(on.repeat_ms)
          : 0.0;
  const uint64_t lookups = on.cache_hits + on.cache_misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(on.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  std::printf("repeated-portion speedup=%.2fx  hit_rate=%.2f\n", speedup,
              hit_rate);

  const char* out_path = std::getenv("DYNO_BENCH_MQO_OUT");
  if (out_path == nullptr) out_path = "BENCH_mqo.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"mqo\",\"cluster\":\"SF100\",\"mix\":4,"
               "\"passes\":%d,\n", kRepeats);
  std::fprintf(f,
               " \"cache_off\":{\"cold_ms\":%lld,\"repeat_ms\":%lld,"
               "\"jobs\":%d},\n",
               (long long)off.cold_ms, (long long)off.repeat_ms,
               off.total_jobs);
  std::fprintf(f,
               " \"cache_on\":{\"cold_ms\":%lld,\"repeat_ms\":%lld,"
               "\"jobs\":%d,\"hits\":%llu,\"misses\":%llu},\n",
               (long long)on.cold_ms, (long long)on.repeat_ms, on.total_jobs,
               (unsigned long long)on.cache_hits,
               (unsigned long long)on.cache_misses);
  std::fprintf(f,
               " \"repeat_speedup\":%.4f,\"hit_rate\":%.4f,"
               "\"cold_byte_identical\":%s,\"rows_identical\":%s}\n",
               speedup, hit_rate, cold_byte_identical ? "true" : "false",
               rows_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (!cold_byte_identical) {
    std::fprintf(stderr,
                 "FAIL: cold pass diverges between cache on and off\n");
    return 1;
  }
  if (!rows_identical) {
    std::fprintf(stderr,
                 "FAIL: result rows diverge between cache on and off\n");
    return 1;
  }
  if (on.cache_hits == 0) {
    std::fprintf(stderr, "FAIL: repeated passes produced no cache hits\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: repeated portion only %.2fx faster with cache\n",
                 speedup);
    return 1;
  }
  return 0;
}
