// Reproduces Figure 5: comparison of execution strategies for choosing
// which leaf jobs of the current plan to run — DYNOPT-SIMPLE's SO (one job
// at a time) and MO (all ready jobs at once), and DYNOPT's UNC-1/UNC-2
// (most uncertain first) and CHEAP-1/CHEAP-2 (cheapest first). Times are
// normalized to SIMPLE_SO per query. Paper findings: MO beats SO (better
// cluster utilization); for DYNOPT, re-optimization points are worth more
// than parallelism, and UNC-1 wins overall; on Q10 the chosen plan is
// left-deep so every strategy coincides.

#include <cstdio>

#include "bench_common.h"

using namespace dyno;
using namespace dyno::bench;

int main() {
  auto scenario = MakeScenario("SF300");
  std::vector<std::pair<std::string, Query>> queries = {
      {"Q7", MakeTpchQ7()},
      {"Q8'", MakeTpchQ8Prime()},
      {"Q10", MakeTpchQ10()},
  };
  std::vector<std::pair<std::string, ExecutionStrategy>> strategies = {
      {"SIMPLE_SO", ExecutionStrategy::kSimpleSerial},
      {"SIMPLE_MO", ExecutionStrategy::kSimpleParallel},
      {"UNC-1", ExecutionStrategy::kUncertain1},
      {"UNC-2", ExecutionStrategy::kUncertain2},
      {"CHEAP-1", ExecutionStrategy::kCheapest1},
      {"CHEAP-2", ExecutionStrategy::kCheapest2},
  };

  std::vector<std::string> columns;
  for (auto& [name, strategy] : strategies) columns.push_back(name);
  PrintHeader("Figure 5: execution strategies (normalized to SIMPLE_SO)",
              columns);
  for (auto& [qname, query] : queries) {
    std::vector<double> row;
    double baseline = -1;
    for (auto& [sname, strategy] : strategies) {
      Measured m = RunDynopt(scenario.get(), query, strategy);
      double t = m.ok ? static_cast<double>(m.total_ms) : -1;
      if (sname == "SIMPLE_SO") baseline = t;
      row.push_back(t);
    }
    PrintRow(qname, row, baseline);
  }
  std::printf("\npaper: SIMPLE_MO <= SIMPLE_SO always; UNC-1 best for "
              "Q7/Q8'; all equal on Q10 (left-deep plan, single leaf job)\n");
  return 0;
}
