// Scan/shuffle microbenchmark for the columnar data plane (DESIGN.md §6.8):
// the same scripted workload runs once with the row data plane and once
// with DYNO_COLUMNAR + DYNO_ZONE_MAPS on, at engine level so the numbers
// are pure scan/shuffle cost (no pilot or optimizer time). Three legs:
//
//   pruned   - selective range window over a timestamp-clustered table;
//              zone maps skip ~7/8 of the splits before any read.
//   residual - unclustered predicate (no split is provably empty); the
//              columnar arm still wins on smaller physical reads and the
//              vectorized predicate discount.
//   shuffle  - unfiltered map-reduce group-count; columnar decode feeding
//              the full shuffle/merge path.
//
// Writes BENCH_scan.json (override the path with DYNO_BENCH_SCAN_OUT).
//
// CI gates: every leg's output must be byte-identical across the two arms,
// the pruned leg must prune at least half the splits AND run at least 2x
// faster columnar, and no leg may be slower columnar.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "columnar/knobs.h"
#include "exec/row_ops.h"
#include "expr/expr.h"
#include "mr/engine.h"
#include "storage/dfs.h"

using namespace dyno;
using namespace dyno::bench;

namespace {

constexpr int kRows = 40000;
constexpr uint64_t kSplitBytes = 64 * 1024;

void SetKnobs(bool on) {
  setenv("DYNO_COLUMNAR", on ? "1" : "0", 1);
  setenv("DYNO_ZONE_MAPS", on ? "1" : "0", 1);
}

/// The scripted table: timestamp-clustered event log. `ts` increases with
/// the row index (zone-map friendly); `ev` cycles (never prunable).
std::vector<Value> MakeEventRows() {
  std::vector<Value> rows;
  rows.reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    rows.push_back(MakeRow({{"ts", Value::Int(1000000 + i)},
                            {"ev", Value::Int(i % 23)},
                            {"v", Value::Double(i * 0.5)},
                            {"pad", Value::String(std::string(80, 'p'))}}));
  }
  return rows;
}

struct LegResult {
  SimMillis elapsed_ms = 0;
  std::string output_bytes;     ///< Concatenated result split payloads.
  uint64_t output_records = 0;
  uint64_t input_bytes = 0;     ///< Billed map input bytes.
  uint64_t splits_total = 0;
  uint64_t splits_pruned = 0;
};

/// One engine-level scan job, configured exactly like the driver's leaf
/// scan: columnar pushes the filter into the batch evaluator, zone maps
/// drop provably-empty splits before submission.
LegResult RunScanLeg(MapReduceEngine* engine, std::shared_ptr<DfsFile> file,
                     const ExprPtr& filter, const std::string& out_path) {
  LegResult leg;
  leg.splits_total = file->splits().size();

  JobSpec spec;
  spec.name = "bench_scan";
  spec.output_path = out_path;
  MapInput input;
  input.file = file;
  ExprPtr closure_filter = filter;
  if (columnar::ColumnarEnabled() && filter != nullptr) {
    input.scan_filter = filter;
    input.scan_filter_cpu = filter->CpuCost();
    input.cpu_per_record = 1.0;
    closure_filter = nullptr;
  } else {
    input.cpu_per_record = 1.0 + (filter ? filter->CpuCost() : 0.0);
  }
  if (columnar::ZoneMapsEnabled() && filter != nullptr) {
    PruneResult pruned = PruneSplitIndexes(*file, filter);
    leg.splits_pruned = pruned.pruned;
    if (pruned.pruned > 0) {
      input.split_indexes.assign(pruned.kept.begin(), pruned.kept.end());
      input.split_indexes_exact = true;
    }
  }
  ExprPtr f = std::move(closure_filter);
  input.map_fn = [f](const Value& record, MapContext* ctx) -> Status {
    auto keep = EvalFilter(f, record);
    if (!keep.ok()) return keep.status();
    if (*keep) ctx->Output(record);
    return Status::OK();
  };
  spec.inputs = {std::move(input)};

  const SimMillis t0 = engine->now();
  auto job = engine->Submit(spec);
  if (!job.ok() || !job->status.ok()) {
    std::fprintf(stderr, "scan job failed: %s\n",
                 (job.ok() ? job->status : job.status()).ToString().c_str());
    std::exit(1);
  }
  leg.elapsed_ms = engine->now() - t0;
  leg.input_bytes = job->counters.map_input_bytes;
  leg.output_records = job->counters.output_records;
  for (const Split& split : job->output->splits()) {
    leg.output_bytes += split.data;
  }
  return leg;
}

/// One engine-level shuffle job: unfiltered group-count over `ev`.
LegResult RunShuffleLeg(MapReduceEngine* engine,
                        std::shared_ptr<DfsFile> file,
                        const std::string& out_path) {
  LegResult leg;
  leg.splits_total = file->splits().size();

  JobSpec spec;
  spec.name = "bench_shuffle";
  spec.output_path = out_path;
  MapInput input;
  input.file = file;
  input.cpu_per_record = 1.0;
  input.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Emit(*record.FindField("ev"), Value::Int(1));
    return Status::OK();
  };
  spec.inputs = {std::move(input)};
  spec.num_reduce_tasks = 8;
  spec.reduce_fn = [](const Value& key, const std::vector<Value>& values,
                      ReduceContext* ctx) -> Status {
    ctx->Output(MakeRow(
        {{"ev", key},
         {"n", Value::Int(static_cast<int64_t>(values.size()))}}));
    return Status::OK();
  };

  const SimMillis t0 = engine->now();
  auto job = engine->Submit(spec);
  if (!job.ok() || !job->status.ok()) {
    std::fprintf(stderr, "shuffle job failed: %s\n",
                 (job.ok() ? job->status : job.status()).ToString().c_str());
    std::exit(1);
  }
  leg.elapsed_ms = engine->now() - t0;
  leg.input_bytes = job->counters.map_input_bytes;
  leg.output_records = job->counters.output_records;
  for (const Split& split : job->output->splits()) {
    leg.output_bytes += split.data;
  }
  return leg;
}

struct ArmResult {
  LegResult pruned;
  LegResult residual;
  LegResult shuffle;
  uint64_t table_physical_bytes = 0;
  uint64_t table_logical_bytes = 0;
};

/// Builds a fresh world under the requested data plane and runs all legs.
ArmResult RunArm(bool columnar_on) {
  SetKnobs(columnar_on);
  Dfs dfs;
  ClusterConfig config;
  config.job_startup_ms = 500;
  config.map_slots = 4;
  config.reduce_slots = 8;
  config.faults.use_env_defaults = false;
  MapReduceEngine engine(&dfs, config);

  SplitFormat format = columnar_on ? SplitFormat::kColumnar
                                   : SplitFormat::kRow;
  auto file =
      WriteRows(&dfs, "/tables/events", MakeEventRows(), kSplitBytes, format);
  if (!file.ok()) {
    std::fprintf(stderr, "table write failed: %s\n",
                 file.status().ToString().c_str());
    std::exit(1);
  }

  ArmResult arm;
  arm.table_physical_bytes = (*file)->num_bytes();
  arm.table_logical_bytes = (*file)->logical_bytes();

  // Eighth-of-the-keyspace window over the clustered column: ~7/8 of the
  // splits are provably empty.
  ExprPtr window = And(Ge(Col("ts"), LitInt(1000000 + kRows / 2)),
                       Lt(Col("ts"), LitInt(1000000 + 5 * kRows / 8)));
  arm.pruned = RunScanLeg(&engine, *file, window, "/out/pruned");

  // Unclustered predicate: every split holds matching rows, so zone maps
  // cannot help; only the physical format differs.
  ExprPtr residual = Lt(Col("ev"), LitInt(6));
  arm.residual = RunScanLeg(&engine, *file, residual, "/out/residual");

  arm.shuffle = RunShuffleLeg(&engine, *file, "/out/shuffle");
  return arm;
}

double Speedup(const LegResult& row, const LegResult& col) {
  return col.elapsed_ms > 0
             ? static_cast<double>(row.elapsed_ms) /
                   static_cast<double>(col.elapsed_ms)
             : 0.0;
}

}  // namespace

int main() {
  PrintHeader("Columnar scan/shuffle microbench: 40k-row event log",
              {"row ms", "col ms", "speedup", "pruned"});

  ArmResult row = RunArm(false);
  ArmResult col = RunArm(true);

  struct Named {
    const char* name;
    const LegResult* r;
    const LegResult* c;
  };
  const std::vector<Named> legs = {
      {"pruned", &row.pruned, &col.pruned},
      {"residual", &row.residual, &col.residual},
      {"shuffle", &row.shuffle, &col.shuffle},
  };
  for (const Named& leg : legs) {
    std::printf("%-9s row=%6lldms  col=%6lldms  speedup=%5.2fx  "
                "pruned=%llu/%llu\n",
                leg.name, (long long)leg.r->elapsed_ms,
                (long long)leg.c->elapsed_ms, Speedup(*leg.r, *leg.c),
                (unsigned long long)leg.c->splits_pruned,
                (unsigned long long)leg.c->splits_total);
  }
  std::printf("table bytes: row physical=%llu  columnar physical=%llu  "
              "logical=%llu\n",
              (unsigned long long)row.table_physical_bytes,
              (unsigned long long)col.table_physical_bytes,
              (unsigned long long)col.table_logical_bytes);

  const char* out_path = std::getenv("DYNO_BENCH_SCAN_OUT");
  if (out_path == nullptr) out_path = "BENCH_scan.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\"bench\":\"scan\",\"rows\":%d,\"split_bytes\":%llu,\n",
               kRows, (unsigned long long)kSplitBytes);
  std::fprintf(f,
               " \"table\":{\"row_physical\":%llu,\"col_physical\":%llu,"
               "\"logical\":%llu},\n",
               (unsigned long long)row.table_physical_bytes,
               (unsigned long long)col.table_physical_bytes,
               (unsigned long long)col.table_logical_bytes);
  for (size_t i = 0; i < legs.size(); ++i) {
    std::fprintf(f,
                 " \"%s\":{\"row_ms\":%lld,\"col_ms\":%lld,"
                 "\"speedup\":%.4f,\"splits_pruned\":%llu,"
                 "\"splits_total\":%llu,\"row_input_bytes\":%llu,"
                 "\"col_input_bytes\":%llu,\"records\":%llu,"
                 "\"byte_identical\":%s}%s\n",
                 legs[i].name, (long long)legs[i].r->elapsed_ms,
                 (long long)legs[i].c->elapsed_ms,
                 Speedup(*legs[i].r, *legs[i].c),
                 (unsigned long long)legs[i].c->splits_pruned,
                 (unsigned long long)legs[i].c->splits_total,
                 (unsigned long long)legs[i].r->input_bytes,
                 (unsigned long long)legs[i].c->input_bytes,
                 (unsigned long long)legs[i].c->output_records,
                 legs[i].r->output_bytes == legs[i].c->output_bytes
                     ? "true"
                     : "false",
                 i + 1 < legs.size() ? "," : "}");
  }
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // --- CI gates ---
  for (const Named& leg : legs) {
    if (leg.r->output_bytes != leg.c->output_bytes ||
        leg.r->output_records != leg.c->output_records) {
      std::fprintf(stderr,
                   "FAIL: %s leg output diverges between row and columnar\n",
                   leg.name);
      return 1;
    }
  }
  if (col.pruned.splits_pruned * 2 < col.pruned.splits_total) {
    std::fprintf(stderr,
                 "FAIL: pruned leg skipped only %llu of %llu splits\n",
                 (unsigned long long)col.pruned.splits_pruned,
                 (unsigned long long)col.pruned.splits_total);
    return 1;
  }
  const double pruned_speedup = Speedup(row.pruned, col.pruned);
  if (pruned_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: pruned scan only %.2fx faster columnar\n",
                 pruned_speedup);
    return 1;
  }
  for (const Named& leg : legs) {
    if (Speedup(*leg.r, *leg.c) < 1.0) {
      std::fprintf(stderr, "FAIL: %s leg is slower columnar\n", leg.name);
      return 1;
    }
  }
  std::printf("all scan gates passed (pruned speedup %.2fx)\n",
              pruned_speedup);
  return 0;
}
