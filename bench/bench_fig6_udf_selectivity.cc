// Reproduces Figure 6: star-join sensitivity on Q9' as the dimension-UDF
// selectivity sweeps from 0.01% to 100%, DYNOPT-SIMPLE normalized to
// RELOPT. The paper's shape: at low selectivities all (filtered) dimension
// tables fit in memory, DYNO chains broadcast joins into a couple of
// map-only jobs and wins ~1.7-1.8x; at moderate selectivities the chains
// split (~1.15x); at 100% both optimizers see the same sizes and DYNO is
// marginally worse due to pilot-run overhead.

#include <cstdio>

#include "bench_common.h"

using namespace dyno;
using namespace dyno::bench;

int main() {
  auto scenario = MakeScenario("SF300");
  std::vector<std::pair<std::string, double>> selectivities = {
      {"0.01%", 0.0001}, {"0.1%", 0.001}, {"1%", 0.01},
      {"10%", 0.1},      {"100%", 1.0},
  };

  PrintHeader(
      "Figure 6: Q9' UDF selectivity sweep (normalized to RELOPT per column)",
      {"RELOPT", "DYNOPT-SIMPLE", "dyno jobs", "map-only"});
  for (auto& [label, selectivity] : selectivities) {
    Query q9 = MakeTpchQ9Prime(selectivity);
    Measured rel = RunRelopt(scenario.get(), q9);
    Measured dyn = RunDynoptSimple(scenario.get(), q9);
    double rel_t = rel.ok ? static_cast<double>(rel.total_ms) : -1;
    double dyn_t = dyn.ok ? static_cast<double>(dyn.total_ms) : -1;
    std::printf("%-18s", label.c_str());
    if (rel_t > 0) {
      std::printf("%13.1f%%", 100.0);
      std::printf("%13.1f%%", dyn_t > 0 ? 100.0 * dyn_t / rel_t : -1.0);
    } else {
      std::printf("%14s%14s", "fail", dyn_t > 0 ? "ok" : "fail");
    }
    std::printf("%14d%14d\n", dyn.report.jobs_run,
                dyn.report.map_only_jobs);
  }
  std::printf("\npaper: 56%%/58%% at 0.01-0.1%% (1.78x/1.71x), ~87%% at "
              "1-10%%, slightly >100%% at 100%%\n");
  return 0;
}
