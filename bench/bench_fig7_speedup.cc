// Reproduces Figure 7: end-to-end execution time of the four plan variants
// — BESTSTATICJAQL (best hand-written left-deep plan), RELOPT (traditional
// shared-nothing optimizer), DYNOPT-SIMPLE (pilot runs, no re-opt) and
// DYNOPT — for Q2, Q8', Q9', Q10 at SF 100/300/1000, normalized to
// BESTSTATICJAQL. Paper shape: the DYNO variants are never worse than the
// best left-deep plan; Q2 gains ~1.2x from bushy plans; Q8' gains up to 2x
// from re-optimization (shrinking with SF); Q9' gains 1.33-1.88x from
// pilot-run-enabled broadcasts; Q10's left-deep plan is already optimal.

#include <cstdio>

#include "bench_common.h"

using namespace dyno;
using namespace dyno::bench;

int main() {
  std::vector<std::string> sfs = {"SF100", "SF300", "SF1000"};
  std::vector<std::pair<std::string, Query>> queries = {
      {"Q2", MakeTpchQ2()},
      {"Q8'", MakeTpchQ8Prime()},
      {"Q9'", MakeTpchQ9Prime()},
      {"Q10", MakeTpchQ10()},
  };

  for (const std::string& sf : sfs) {
    auto scenario = MakeScenario(sf);
    PrintHeader("Figure 7 (" + sf + "): normalized to BESTSTATICJAQL",
                {"BESTSTATIC", "RELOPT", "DYN-SIMPLE", "DYNOPT"});
    for (auto& [name, query] : queries) {
      Measured best_static = RunBestStatic(scenario.get(), query);
      Measured relopt = RunRelopt(scenario.get(), query);
      Measured simple = RunDynoptSimple(scenario.get(), query);
      Measured dynopt = RunDynopt(scenario.get(), query);
      double base = best_static.ok ? static_cast<double>(best_static.total_ms)
                                   : -1;
      PrintRow(name,
               {base, relopt.ok ? static_cast<double>(relopt.total_ms) : -1,
                simple.ok ? static_cast<double>(simple.total_ms) : -1,
                dynopt.ok ? static_cast<double>(dynopt.total_ms) : -1},
               base);
    }
  }
  std::printf(
      "\npaper: DYNO variants <= 100%% everywhere; Q2 ~83%% (bushy); Q8' "
      "50-93%% (re-opt); Q9' 53-75%% (pilot-enabled broadcasts); Q10 "
      "~100%%\n");
  return 0;
}
