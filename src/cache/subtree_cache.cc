#include "cache/subtree_cache.h"

#include <cstdlib>
#include <utility>

#include "common/string_util.h"

namespace dyno {

namespace {
// Process-wide instance counter so several caches sharing one Dfs (tests)
// never collide on pinned-file paths.
std::atomic<int> g_cache_instances{0};
}  // namespace

void SubtreeCacheOptions::ApplyEnvOverrides() {
  if (const char* env = std::getenv("DYNO_SUBTREE_CACHE_MB")) {
    max_bytes = static_cast<uint64_t>(EnvInt64OrDie("DYNO_SUBTREE_CACHE_MB",
                                                    env, 0, 1 << 20)) *
                1024 * 1024;
  }
  if (const char* env = std::getenv("DYNO_SUBTREE_CACHE_ENTRIES")) {
    max_entries = static_cast<size_t>(
        EnvInt64OrDie("DYNO_SUBTREE_CACHE_ENTRIES", env, 1, 1 << 20));
  }
}

SubtreeCache::SubtreeCache(Dfs* dfs, Catalog* catalog,
                           SubtreeCacheOptions options,
                           obs::MetricsRegistry* metrics,
                           obs::TraceSink* trace)
    : dfs_(dfs),
      catalog_(catalog),
      options_(std::move(options)),
      metrics_(metrics),
      trace_(trace),
      instance_id_(++g_cache_instances) {}

void SubtreeCache::RecordEvent(const char* name, const std::string& key,
                               SimMillis now, uint64_t entry_bytes) {
  if (trace_ == nullptr) return;
  trace_->Record(obs::TraceEvent(now, -1, obs::TraceLane::kDriver, "cache",
                                 name)
                     .Arg("key", key)
                     .ArgInt("bytes", static_cast<int64_t>(entry_bytes)));
}

bool SubtreeCache::IsValidLocked(const Entry& entry) const {
  for (const auto& [table, version] : entry.table_versions) {
    if (catalog_->TableVersion(table) != version) return false;
  }
  return true;
}

void SubtreeCache::DropEntryLocked(
    std::map<std::string, Entry>::iterator it) {
  bytes_ -= it->second.bytes;
  (void)dfs_->Delete(it->second.path);  // Already-gone files are fine.
  entries_.erase(it);
  if (metrics_ != nullptr) {
    metrics_->GetGauge("cache.bytes")->Set(static_cast<int64_t>(bytes_));
    metrics_->GetGauge("cache.entries")
        ->Set(static_cast<int64_t>(entries_.size()));
  }
}

void SubtreeCache::EvictToFitLocked(SimMillis now) {
  while (!entries_.empty() && (bytes_ > options_.max_bytes ||
                               entries_.size() > options_.max_entries)) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used ||
          (it->second.last_used == victim->second.last_used &&
           it->second.tick < victim->second.tick)) {
        victim = it;
      }
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->GetCounter("cache.evictions")->Add();
    RecordEvent("cache_evict", victim->first, now, victim->second.bytes);
    DropEntryLocked(victim);
  }
}

std::optional<SubtreeCache::Hit> SubtreeCache::Lookup(const std::string& key,
                                                      SimMillis now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->GetCounter("cache.misses")->Add();
    return std::nullopt;
  }
  if (!IsValidLocked(it->second)) {
    // A base table was rewritten since this entry was published: drop it
    // rather than serve pre-rewrite rows.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("cache.invalidations")->Add();
      metrics_->GetCounter("cache.misses")->Add();
    }
    RecordEvent("cache_invalidate", key, now, it->second.bytes);
    DropEntryLocked(it);
    return std::nullopt;
  }
  it->second.last_used = now;
  it->second.tick = ++tick_counter_;
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->GetCounter("cache.hits")->Add();
  RecordEvent("cache_hit", key, now, it->second.bytes);
  return Hit{it->second.file, it->second.stats};
}

Status SubtreeCache::Publish(
    const std::string& key,
    const std::map<std::string, uint64_t>& table_versions,
    const DfsFile& result, const TableStats& stats, SimMillis now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = entries_.find(key);
  if (existing != entries_.end()) {
    if (IsValidLocked(existing->second)) return Status::OK();
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("cache.invalidations")->Add();
    }
    RecordEvent("cache_invalidate", key, now, existing->second.bytes);
    DropEntryLocked(existing);
  }
  if (result.num_bytes() > options_.max_bytes) {
    return Status::ResourceExhausted("result exceeds cache byte budget");
  }
  // Pin a copy: the publisher's file lives in a per-query temp directory
  // that is reclaimed when the session ends.
  std::string path = StrFormat("%s/c%d_e%llu", options_.dfs_prefix.c_str(),
                               instance_id_,
                               (unsigned long long)++pin_counter_);
  DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> pinned, dfs_->Create(path));
  pinned->set_replicas(result.replicas());
  for (const Split& split : result.splits()) pinned->AppendSplit(split);

  Entry entry;
  entry.path = path;
  entry.file = std::move(pinned);
  entry.stats = stats;
  entry.table_versions = table_versions;
  entry.bytes = entry.file->num_bytes();
  entry.last_used = now;
  entry.tick = ++tick_counter_;
  bytes_ += entry.bytes;
  uint64_t entry_bytes = entry.bytes;
  entries_.emplace(key, std::move(entry));
  if (metrics_ != nullptr) {
    metrics_->GetCounter("cache.publishes")->Add();
    metrics_->GetGauge("cache.bytes")->Set(static_cast<int64_t>(bytes_));
    metrics_->GetGauge("cache.entries")
        ->Set(static_cast<int64_t>(entries_.size()));
  }
  RecordEvent("cache_publish", key, now, entry_bytes);
  EvictToFitLocked(now);
  return Status::OK();
}

int SubtreeCache::InvalidateTable(const std::string& table, SimMillis now) {
  std::lock_guard<std::mutex> lock(mu_);
  int dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.table_versions.count(table) == 0) {
      ++it;
      continue;
    }
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->GetCounter("cache.invalidations")->Add();
    }
    RecordEvent("cache_invalidate", it->first, now, it->second.bytes);
    DropEntryLocked(it++);
    ++dropped;
  }
  return dropped;
}

size_t SubtreeCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t SubtreeCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace dyno
