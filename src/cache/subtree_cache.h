#ifndef DYNO_CACHE_SUBTREE_CACHE_H_
#define DYNO_CACHE_SUBTREE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/sim_time.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"
#include "storage/dfs.h"

namespace dyno {

/// Sizing knobs for the cross-query materialized-subtree cache. The env
/// overrides use the strict whole-string parsing of EnvInt64OrDie, so a
/// malformed knob aborts instead of silently running unconfigured.
struct SubtreeCacheOptions {
  /// Byte budget across all pinned result files (DYNO_SUBTREE_CACHE_MB).
  uint64_t max_bytes = 64ull * 1024 * 1024;
  /// Entry-count bound (DYNO_SUBTREE_CACHE_ENTRIES).
  size_t max_entries = 1024;
  /// DFS directory cached results are pinned under.
  std::string dfs_prefix = "/cache/subtree";

  /// Applies DYNO_SUBTREE_CACHE_MB / DYNO_SUBTREE_CACHE_ENTRIES when set.
  void ApplyEnvOverrides();
};

/// Cross-query materialized-subtree result cache (ROADMAP item 2): the
/// CheckpointEntry triple (subtree signature, DFS path, observed stats),
/// promoted from crash-recovery metadata into a first-class shared cache.
///
/// Keys are the *canonical* subtree signatures of PlanExecutor (grounded in
/// "table|filter" leaf signatures plus join keys/filters/projection), so
/// two queries computing the same subtree over the same base data collide
/// on purpose. Each entry records the Catalog::TableVersion of every base
/// table the subtree reads at publish time; Lookup re-validates those
/// versions, so a DFS rewrite of any input invalidates the entry instead of
/// serving pre-rewrite rows (the stale-reuse bug class this PR fixes).
///
/// Published results are *copied* into a pinned file under `dfs_prefix` —
/// query temp directories are deleted when sessions finish, and a cache
/// must outlive its publishers. Eviction is LRU by sim-time (with a
/// monotonic tick as tiebreak, so equal timestamps stay deterministic),
/// bounded by both bytes and entry count.
///
/// Thread safety: one cache is shared by every session of a QueryService.
/// All state is mutex-guarded and the instrumentation counters are relaxed
/// atomics readable without the lock. Determinism: the service's baton
/// protocol serializes sessions, so lookup/publish order — and therefore
/// hit patterns and eviction decisions — is a deterministic function of
/// admission order, independent of engine thread count.
class SubtreeCache {
 public:
  /// A valid cache hit: the pinned result file plus the statistics observed
  /// when the subtree originally executed (identical to what re-executing
  /// would observe, which is what keeps cached plans byte-identical).
  struct Hit {
    std::shared_ptr<DfsFile> file;
    TableStats stats;
  };

  /// `dfs` and `catalog` must outlive the cache; `metrics`/`trace` may be
  /// null (standalone/unit-test use).
  SubtreeCache(Dfs* dfs, Catalog* catalog, SubtreeCacheOptions options,
               obs::MetricsRegistry* metrics = nullptr,
               obs::TraceSink* trace = nullptr);
  SubtreeCache(const SubtreeCache&) = delete;
  SubtreeCache& operator=(const SubtreeCache&) = delete;

  /// Returns the entry for `key` if present AND still valid against the
  /// current table versions. A version mismatch drops the entry (lazy
  /// invalidation on DFS writes) and counts as invalidate + miss.
  std::optional<Hit> Lookup(const std::string& key, SimMillis now);

  /// Pins `result` under `key`. `table_versions` maps every base table the
  /// subtree reads to its Catalog::TableVersion at execution time. Results
  /// larger than the whole byte budget are not admitted. A fresh entry
  /// already under `key` is kept (first publisher wins — concurrent
  /// sessions produce identical bytes for identical keys).
  Status Publish(const std::string& key,
                 const std::map<std::string, uint64_t>& table_versions,
                 const DfsFile& result, const TableStats& stats,
                 SimMillis now);

  /// Drops every entry that reads `table`; returns how many were dropped.
  /// Lazy lookup validation makes this optional, but callers that rewrite a
  /// table can reclaim the bytes eagerly.
  int InvalidateTable(const std::string& table, SimMillis now);

  size_t entries() const;
  uint64_t bytes() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string path;  ///< Pinned copy on the DFS.
    std::shared_ptr<DfsFile> file;
    TableStats stats;
    std::map<std::string, uint64_t> table_versions;
    uint64_t bytes = 0;
    SimMillis last_used = 0;
    uint64_t tick = 0;  ///< LRU tiebreak for equal sim-times.
  };

  /// Drops `it`'s pinned file and erases it. Caller holds mu_.
  void DropEntryLocked(std::map<std::string, Entry>::iterator it);
  /// Evicts LRU entries until both bounds hold. Caller holds mu_.
  void EvictToFitLocked(SimMillis now);
  bool IsValidLocked(const Entry& entry) const;
  void RecordEvent(const char* name, const std::string& key, SimMillis now,
                   uint64_t entry_bytes);

  Dfs* dfs_;
  Catalog* catalog_;
  SubtreeCacheOptions options_;
  obs::MetricsRegistry* metrics_;
  obs::TraceSink* trace_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  uint64_t bytes_ = 0;
  uint64_t tick_counter_ = 0;
  int instance_id_ = 0;
  uint64_t pin_counter_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace dyno

#endif  // DYNO_CACHE_SUBTREE_CACHE_H_
