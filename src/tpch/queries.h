#ifndef DYNO_TPCH_QUERIES_H_
#define DYNO_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "lang/query.h"

namespace dyno {

/// Deterministic opaque filter UDF: keeps a row iff the combined hash of
/// `columns` (salted with `name`) falls below `selectivity`. To the
/// optimizer it is a black box (ContainsUdf() == true, no column info); to
/// the runtime it is a stable pseudo-random filter with exactly the
/// requested selectivity — the stand-in for the paper's sentiment-analysis
/// and filtering UDFs.
ExprPtr MakeHashFilterUdf(std::string name, std::vector<std::string> columns,
                          double selectivity, double cpu_cost);

/// The paper's evaluation queries (§6.1): the TPC-H queries with at least
/// four joined relations, with Q8 and Q9 modified exactly as described —
/// Q8' adds a UDF over the orders⋈customer result plus two correlated
/// predicates on orders; Q9' adds filtering UDFs on the dimension tables
/// (selectivity adjustable, swept in Fig. 6). Queries are join blocks;
/// grouping/ordering is orthogonal to the optimizer and omitted here.

/// Q2: part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region, filters on p_size,
/// p_type and r_name. Benefits from bushy plans.
Query MakeTpchQ2();

/// Q7: supplier ⋈ lineitem ⋈ orders ⋈ customer ⋈ nation1 ⋈ nation2,
/// nation filters FRANCE/GERMANY plus a shipdate range.
Query MakeTpchQ7();

/// Q8': 8 relations (7-way join). `udf_selectivity` controls the non-local
/// UDF applied to the orders⋈customer result.
Query MakeTpchQ8Prime(double udf_selectivity = 0.2);

/// Q9': star join around lineitem with filtering UDFs on part, supplier,
/// partsupp and orders (`dim_udf_selectivity` each) and a non-local UDF on
/// the orders⋈lineitem result (`ol_udf_selectivity`).
Query MakeTpchQ9Prime(double dim_udf_selectivity = 0.01,
                      double ol_udf_selectivity = 0.5);

/// Q5: customer ⋈ orders ⋈ lineitem ⋈ supplier ⋈ nation ⋈ region with the
/// *cyclic* join condition c_nationkey = s_nationkey (customer and supplier
/// in the same nation). The paper excluded Q5 because its optimizer did not
/// support cyclic join graphs (§6.1); this enumerator handles arbitrary
/// connected graphs, so Q5 is included as an extension workload.
Query MakeTpchQ5();

/// Q10: customer ⋈ orders ⋈ lineitem ⋈ nation with a quarter-long
/// order-date window and l_returnflag = 'R'. The left-deep plan is already
/// near-optimal here (Fig. 7).
Query MakeTpchQ10();

/// Convenience: the paper's five queries plus the Q5 extension.
struct NamedQuery {
  std::string name;
  Query query;
};
std::vector<NamedQuery> MakeAllPaperQueries();

}  // namespace dyno

#endif  // DYNO_TPCH_QUERIES_H_
