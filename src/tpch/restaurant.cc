#include "tpch/restaurant.h"

#include "columnar/knobs.h"
#include "common/random.h"
#include "common/string_util.h"
#include "storage/dfs.h"
#include "tpch/queries.h"

namespace dyno {

namespace {

constexpr const char* kStates[6] = {"CA", "NY", "TX", "WA", "IL", "MA"};

Status WriteTable(Catalog* catalog, const std::string& name,
                  const std::vector<Value>& rows, uint64_t split_bytes) {
  std::string path = "/tables/" + name;
  SplitFormat format = columnar::ColumnarEnabled() ? SplitFormat::kColumnar
                                                   : SplitFormat::kRow;
  auto file = WriteRows(catalog->dfs(), path, rows, split_bytes, format);
  if (!file.ok()) return file.status();
  return catalog->RegisterTable(name, path);
}

}  // namespace

Status GenerateRestaurantData(Catalog* catalog,
                              const RestaurantConfig& config) {
  Rng rng(config.seed);

  std::vector<Value> restaurants;
  for (uint64_t i = 0; i < config.num_restaurants; ++i) {
    // ~8% of restaurants are in Palo Alto's 94301, and 94301 implies CA —
    // the paper's correlated pair: P(zip)·P(state) badly underestimates
    // P(zip AND state).
    bool palo_alto = rng.Bernoulli(0.08);
    int64_t zip = palo_alto ? 94301 : rng.UniformInt(10000, 99999);
    const char* state = palo_alto ? "CA" : kStates[rng.Uniform(6)];
    ArrayElements addrs;
    addrs.push_back(Value::Struct({
        {"city", Value::String(palo_alto ? "Palo Alto"
                                         : StrFormat("city-%llu",
                                                     (unsigned long long)(
                                                         rng.Next() % 300)))},
        {"state", Value::String(state)},
        {"zip", Value::Int(zip)},
    }));
    if (rng.Bernoulli(0.3)) {
      addrs.push_back(Value::Struct({
          {"city", Value::String("secondary")},
          {"state", Value::String(kStates[rng.Uniform(6)])},
          {"zip", Value::Int(rng.UniformInt(10000, 99999))},
      }));
    }
    restaurants.push_back(MakeRow({
        {"rs_id", Value::Int(static_cast<int64_t>(i))},
        {"rs_name", Value::String(StrFormat("restaurant-%llu",
                                            (unsigned long long)i))},
        {"rs_addr", Value::Array(std::move(addrs))},
    }));
  }
  DYNO_RETURN_IF_ERROR(WriteTable(catalog, "restaurant", restaurants,
                                  config.split_bytes));

  std::vector<Value> reviews;
  for (uint64_t i = 0; i < config.num_reviews; ++i) {
    reviews.push_back(MakeRow({
        {"rv_id", Value::Int(static_cast<int64_t>(i))},
        {"rv_rsid",
         Value::Int(rng.UniformInt(
             0, static_cast<int64_t>(config.num_restaurants) - 1))},
        {"rv_tid",
         Value::Int(rng.UniformInt(
             0, static_cast<int64_t>(config.num_tweets) - 1))},
        {"rv_stars", Value::Int(rng.UniformInt(1, 5))},
        {"rv_text", Value::String(StrFormat("review text %llu",
                                            (unsigned long long)i))},
    }));
  }
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "review", reviews, config.split_bytes));

  std::vector<Value> tweets;
  for (uint64_t i = 0; i < config.num_tweets; ++i) {
    tweets.push_back(MakeRow({
        {"t_id", Value::Int(static_cast<int64_t>(i))},
        {"t_user", Value::String(StrFormat("user-%llu",
                                           (unsigned long long)(
                                               rng.Next() % 5000)))},
        {"t_text", Value::String(StrFormat("tweet %llu",
                                           (unsigned long long)i))},
    }));
  }
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "tweet", tweets, config.split_bytes));
  return Status::OK();
}

Query MakeRestaurantQuery() {
  Query q;
  JoinBlock& b = q.join_block;
  b.tables = {{"restaurant", "rs"}, {"review", "rv"}, {"tweet", "t"}};
  b.edges = {{"rs", "rs_id", "rv", "rv_rsid"},
             {"rv", "rv_tid", "t", "t_id"}};
  b.predicates = {
      // Correlated nested-path predicates on the primary address.
      {Eq(Path({PathStep::Field("rs_addr"), PathStep::Index(0),
                PathStep::Field("zip")}),
          LitInt(94301)),
       {"rs"}},
      {Eq(Path({PathStep::Field("rs_addr"), PathStep::Index(0),
                PathStep::Field("state")}),
          LitString("CA")),
       {"rs"}},
      // Sentiment analysis over the review (expensive local UDF).
      {MakeHashFilterUdf("sentanalysis", {"rv_id"}, 0.3, /*cpu_cost=*/80.0),
       {"rv"}},
      // Identity check across review and tweet (non-local UDF).
      {MakeHashFilterUdf("checkid", {"rv_id", "t_id"}, 0.7,
                         /*cpu_cost=*/60.0),
       {"rv", "t"}},
  };
  b.output_columns = {"rs_name"};
  return q;
}

}  // namespace dyno
