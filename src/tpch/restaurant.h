#ifndef DYNO_TPCH_RESTAURANT_H_
#define DYNO_TPCH_RESTAURANT_H_

#include <cstdint>

#include "common/status.h"
#include "lang/query.h"
#include "storage/catalog.h"

namespace dyno {

/// The running example of the paper's §4.1 (query Q1): restaurants with
/// nested address arrays, reviews scored by a sentiment-analysis UDF, and
/// tweets checked by an identity UDF. Zip code 94301 implies state CA — the
/// correlated-predicate pair that defeats the independence assumption.
struct RestaurantConfig {
  uint64_t num_restaurants = 2000;
  uint64_t num_reviews = 10000;
  uint64_t num_tweets = 20000;
  uint64_t seed = 777;
  uint64_t split_bytes = 16 * 1024;
};

/// Generates and registers tables `restaurant`, `review`, `tweet`.
Status GenerateRestaurantData(Catalog* catalog,
                              const RestaurantConfig& config);

/// Q1: SELECT rs_name FROM restaurant rs, review rv, tweet t
///     WHERE rs_id = rv_rsid AND rv_tid = t_id
///       AND rs_addr[0].zip = 94301 AND rs_addr[0].state = 'CA'
///       AND sentanalysis(rv) = positive AND checkid(rv, t)
Query MakeRestaurantQuery();

}  // namespace dyno

#endif  // DYNO_TPCH_RESTAURANT_H_
