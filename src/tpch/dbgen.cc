#include "tpch/dbgen.h"

#include <algorithm>
#include <vector>

#include "columnar/knobs.h"
#include "common/random.h"
#include "common/string_util.h"
#include "storage/dfs.h"

namespace dyno {

namespace {

constexpr const char* kNationNames[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                      "HOUSEHOLD", "MACHINERY"};

constexpr const char* kStates[8] = {"CA", "NY", "TX", "WA",
                                    "IL", "MA", "FL", "OR"};

int64_t RandomDate(Rng* rng) {
  int64_t y = rng->UniformInt(1992, 1998);
  int64_t m = rng->UniformInt(1, 12);
  int64_t d = rng->UniformInt(1, 28);
  return y * 10000 + m * 100 + d;
}

Status WriteTable(Catalog* catalog, const std::string& name,
                  const std::vector<Value>& rows, uint64_t split_bytes) {
  std::string path = "/tables/" + name;
  // Base tables follow the DYNO_COLUMNAR knob, exactly like
  // Catalog::CreateTable: split boundaries and zone maps are identical
  // either way, only the physical split encoding changes.
  SplitFormat format = columnar::ColumnarEnabled() ? SplitFormat::kColumnar
                                                   : SplitFormat::kRow;
  auto file = WriteRows(catalog->dfs(), path, rows, split_bytes, format);
  if (!file.ok()) return file.status();
  return catalog->RegisterTable(name, path);
}

}  // namespace

TpchSizes ComputeTpchSizes(double scale) {
  auto scaled = [scale](double base) {
    return static_cast<uint64_t>(std::max(1.0, base * scale));
  };
  TpchSizes sizes;
  sizes.region = 5;
  sizes.nation = 25;
  sizes.supplier = scaled(10000);
  sizes.customer = scaled(150000);
  sizes.part = scaled(200000);
  sizes.partsupp = sizes.part * 4;
  sizes.orders = scaled(1500000);
  sizes.lineitem_approx = sizes.orders * 4;
  return sizes;
}

Status GenerateTpch(Catalog* catalog, const TpchConfig& config) {
  TpchSizes sizes = ComputeTpchSizes(config.scale);
  Rng rng(config.seed);

  // --- region ---
  std::vector<Value> region;
  for (uint64_t i = 0; i < sizes.region; ++i) {
    region.push_back(MakeRow({
        {"r_regionkey", Value::Int(static_cast<int64_t>(i))},
        {"r_name", Value::String(kRegionNames[i % kNumRegions])},
        {"r_comment", Value::String(StrFormat("region %llu",
                                              (unsigned long long)i))},
    }));
  }
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "region", region, config.split_bytes));

  // --- nation (plus the prefixed view copies nation1 / nation2) ---
  std::vector<Value> nation;
  std::vector<Value> nation1;
  std::vector<Value> nation2;
  for (uint64_t i = 0; i < sizes.nation; ++i) {
    int64_t key = static_cast<int64_t>(i);
    int64_t regionkey = static_cast<int64_t>(i % sizes.region);
    const char* name = kNationNames[i % 25];
    nation.push_back(MakeRow({{"n_nationkey", Value::Int(key)},
                              {"n_name", Value::String(name)},
                              {"n_regionkey", Value::Int(regionkey)}}));
    nation1.push_back(MakeRow({{"n1_nationkey", Value::Int(key)},
                               {"n1_name", Value::String(name)},
                               {"n1_regionkey", Value::Int(regionkey)}}));
    nation2.push_back(MakeRow({{"n2_nationkey", Value::Int(key)},
                               {"n2_name", Value::String(name)},
                               {"n2_regionkey", Value::Int(regionkey)}}));
  }
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "nation", nation, config.split_bytes));
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "nation1", nation1, config.split_bytes));
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "nation2", nation2, config.split_bytes));

  // --- supplier ---
  std::vector<Value> supplier;
  for (uint64_t i = 0; i < sizes.supplier; ++i) {
    supplier.push_back(MakeRow({
        {"s_suppkey", Value::Int(static_cast<int64_t>(i))},
        {"s_name", Value::String(StrFormat("Supplier#%09llu",
                                           (unsigned long long)i))},
        {"s_address", Value::String(StrFormat("addr-%llu",
                                              (unsigned long long)(
                                                  rng.Next() % 100000)))},
        {"s_nationkey",
         Value::Int(rng.UniformInt(0, static_cast<int64_t>(sizes.nation) - 1))},
        {"s_acctbal", Value::Double(rng.NextDouble() * 11000.0 - 1000.0)},
    }));
  }
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "supplier", supplier, config.split_bytes));

  // --- customer ---
  std::vector<Value> customer;
  for (uint64_t i = 0; i < sizes.customer; ++i) {
    StructFields fields = {
        {"c_custkey", Value::Int(static_cast<int64_t>(i))},
        {"c_name", Value::String(StrFormat("Customer#%09llu",
                                           (unsigned long long)i))},
        {"c_nationkey",
         Value::Int(rng.UniformInt(0, static_cast<int64_t>(sizes.nation) - 1))},
        {"c_phone", Value::String(StrFormat("%02llu-%07llu",
                                            (unsigned long long)(i % 34 + 10),
                                            (unsigned long long)(
                                                rng.Next() % 10000000)))},
        {"c_acctbal", Value::Double(rng.NextDouble() * 11000.0 - 1000.0)},
        {"c_mktsegment", Value::String(kSegments[rng.Uniform(5)])},
    };
    if (config.include_nested_addresses) {
      // Nested denormalized addresses (the data-model motif of the paper's
      // intro); the first entry is the primary address.
      ArrayElements addrs;
      uint64_t n_addrs = 1 + rng.Uniform(2);
      for (uint64_t a = 0; a < n_addrs; ++a) {
        addrs.push_back(Value::Struct({
            {"city", Value::String(StrFormat("city-%llu",
                                             (unsigned long long)(
                                                 rng.Next() % 500)))},
            {"state", Value::String(kStates[rng.Uniform(8)])},
            {"zip", Value::Int(rng.UniformInt(90000, 99999))},
        }));
      }
      fields.emplace_back("c_addr", Value::Array(std::move(addrs)));
    }
    customer.push_back(MakeRow(std::move(fields)));
  }
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "customer", customer, config.split_bytes));

  // --- part ---
  std::vector<Value> part;
  for (uint64_t i = 0; i < sizes.part; ++i) {
    part.push_back(MakeRow({
        {"p_partkey", Value::Int(static_cast<int64_t>(i))},
        {"p_name", Value::String(StrFormat("part-%llu",
                                           (unsigned long long)i))},
        {"p_mfgr", Value::String(StrFormat("Manufacturer#%llu",
                                           (unsigned long long)(i % 5 + 1)))},
        {"p_brand", Value::String(StrFormat("Brand#%llu",
                                            (unsigned long long)(i % 25 + 1)))},
        {"p_type", Value::String(kPartTypeNames[rng.Uniform(kNumPartTypes)])},
        {"p_size", Value::Int(rng.UniformInt(1, 50))},
        {"p_retailprice", Value::Double(900.0 + rng.NextDouble() * 1200.0)},
    }));
  }
  DYNO_RETURN_IF_ERROR(WriteTable(catalog, "part", part, config.split_bytes));

  // --- partsupp: 4 suppliers per part ---
  std::vector<Value> partsupp;
  for (uint64_t p = 0; p < sizes.part; ++p) {
    for (int s = 0; s < 4; ++s) {
      uint64_t suppkey =
          (p + static_cast<uint64_t>(s) * (sizes.supplier / 4 + 1)) %
          sizes.supplier;
      partsupp.push_back(MakeRow({
          {"ps_partkey", Value::Int(static_cast<int64_t>(p))},
          {"ps_suppkey", Value::Int(static_cast<int64_t>(suppkey))},
          {"ps_availqty", Value::Int(rng.UniformInt(1, 9999))},
          {"ps_supplycost", Value::Double(1.0 + rng.NextDouble() * 999.0)},
      }));
    }
  }
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "partsupp", partsupp, config.split_bytes));

  // --- orders (with the injected correlated channel / clerk-group pair) ---
  std::vector<Value> orders;
  for (uint64_t i = 0; i < sizes.orders; ++i) {
    int64_t channel = static_cast<int64_t>(rng.Uniform(kNumChannels));
    // o_clerk_group is a function of the channel with 95% fidelity: the
    // soft functional dependency CORDS would discover.
    int64_t clerk_group =
        rng.Bernoulli(0.95)
            ? channel
            : static_cast<int64_t>(rng.Uniform(kNumChannels));
    orders.push_back(MakeRow({
        {"o_orderkey", Value::Int(static_cast<int64_t>(i))},
        {"o_custkey",
         Value::Int(rng.UniformInt(0,
                                   static_cast<int64_t>(sizes.customer) - 1))},
        {"o_orderstatus", Value::String(rng.Bernoulli(0.5) ? "F" : "O")},
        {"o_totalprice", Value::Double(1000.0 + rng.NextDouble() * 400000.0)},
        {"o_orderdate", Value::Int(RandomDate(&rng))},
        {"o_orderpriority", Value::String(StrFormat("%llu-PRIORITY",
                                                    (unsigned long long)(
                                                        rng.Uniform(5) + 1)))},
        {"o_channel", Value::String(kChannelNames[channel])},
        {"o_clerk_group", Value::Int(clerk_group)},
        {"o_shippriority", Value::Int(0)},
    }));
  }
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "orders", orders, config.split_bytes));

  // --- lineitem: 1..7 lines per order ---
  std::vector<Value> lineitem;
  for (uint64_t o = 0; o < sizes.orders; ++o) {
    uint64_t lines = 1 + rng.Uniform(7);
    for (uint64_t l = 0; l < lines; ++l) {
      int64_t partkey =
          rng.UniformInt(0, static_cast<int64_t>(sizes.part) - 1);
      // Supplier consistent with partsupp's part->supplier mapping.
      int64_t s = static_cast<int64_t>(rng.Uniform(4));
      int64_t suppkey = static_cast<int64_t>(
          (static_cast<uint64_t>(partkey) +
           static_cast<uint64_t>(s) * (sizes.supplier / 4 + 1)) %
          sizes.supplier);
      int64_t shipdate = RandomDate(&rng);
      lineitem.push_back(MakeRow({
          {"l_orderkey", Value::Int(static_cast<int64_t>(o))},
          {"l_partkey", Value::Int(partkey)},
          {"l_suppkey", Value::Int(suppkey)},
          {"l_linenumber", Value::Int(static_cast<int64_t>(l))},
          {"l_quantity", Value::Int(rng.UniformInt(1, 50))},
          {"l_extendedprice", Value::Double(100.0 + rng.NextDouble() * 9000.0)},
          {"l_discount", Value::Double(rng.Uniform(11) / 100.0)},
          {"l_tax", Value::Double(rng.Uniform(9) / 100.0)},
          {"l_returnflag",
           Value::String(rng.Bernoulli(0.25) ? "R"
                                             : (rng.Bernoulli(0.5) ? "A"
                                                                   : "N"))},
          {"l_shipdate", Value::Int(shipdate)},
          {"l_shipmode", Value::String(rng.Bernoulli(0.5) ? "AIR" : "SHIP")},
      }));
    }
  }
  DYNO_RETURN_IF_ERROR(
      WriteTable(catalog, "lineitem", lineitem, config.split_bytes));
  return Status::OK();
}

}  // namespace dyno
