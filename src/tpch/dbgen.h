#ifndef DYNO_TPCH_DBGEN_H_
#define DYNO_TPCH_DBGEN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/catalog.h"

namespace dyno {

/// Deterministic from-scratch TPC-H data generator (dbgen-lite). `scale` is
/// a fraction of the official SF=1 row counts, so the simulator's "SF100 /
/// SF300 / SF1000" experiments map to proportional scales: what matters for
/// plan choice is the *relative* size of tables, which is scale-invariant.
///
/// Deviations from official dbgen, all documented in DESIGN.md:
///  * `nation` is additionally emitted as `nation1`/`nation2` with column
///    prefixes `n1_`/`n2_`, because queries Q7/Q8 reference it twice and
///    this engine identifies columns by globally unique names.
///  * `orders` carries two extra *correlated* columns, `o_channel` and
///    `o_clerk_group` (`o_clerk_group` is a deterministic function of the
///    channel) — the correlation the paper injected into Q8' via CORDS.
///  * `customer` optionally carries a nested `c_addr` array of address
///    structs, exercising the nested data model.
struct TpchConfig {
  double scale = 0.001;
  uint64_t seed = 12345;
  bool include_nested_addresses = true;
  uint64_t split_bytes = 16 * 1024;
};

/// Row counts implied by a scale factor.
struct TpchSizes {
  uint64_t region;
  uint64_t nation;
  uint64_t supplier;
  uint64_t customer;
  uint64_t part;
  uint64_t partsupp;
  uint64_t orders;
  uint64_t lineitem_approx;  ///< Expected; actual count is per-order random.
};

TpchSizes ComputeTpchSizes(double scale);

/// Generates and registers all tables: region, nation, nation1, nation2,
/// supplier, customer, part, partsupp, orders, lineitem.
Status GenerateTpch(Catalog* catalog, const TpchConfig& config);

/// The categorical domains used by generator and queries.
inline constexpr int kNumChannels = 5;           // o_channel / o_clerk_group
inline constexpr int kNumPartTypes = 8;          // p_type
inline constexpr int kNumRegions = 5;
inline constexpr const char* kChannelNames[kNumChannels] = {
    "store", "phone", "mail", "web", "partner"};
inline constexpr const char* kPartTypeNames[kNumPartTypes] = {
    "ECONOMY ANODIZED STEEL", "LARGE BRUSHED BRASS", "STANDARD POLISHED TIN",
    "SMALL PLATED COPPER",    "MEDIUM BURNISHED NICKEL",
    "PROMO ANODIZED STEEL",   "ECONOMY BRUSHED COPPER",
    "STANDARD ANODIZED BRASS"};
inline constexpr const char* kRegionNames[kNumRegions] = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

}  // namespace dyno

#endif  // DYNO_TPCH_DBGEN_H_
