#include "tpch/queries.h"

#include <cmath>

#include "common/hash.h"
#include "tpch/dbgen.h"

namespace dyno {

ExprPtr MakeHashFilterUdf(std::string name, std::vector<std::string> columns,
                          double selectivity, double cpu_cost) {
  uint64_t salt = HashBytes(name, /*seed=*/0x7564665fULL);
  uint64_t threshold =
      selectivity >= 1.0
          ? ~0ULL
          : static_cast<uint64_t>(selectivity * 18446744073709551615.0);
  auto fn = [columns, salt, threshold](const Value& row) -> Result<Value> {
    uint64_t h = salt;
    for (const std::string& col : columns) {
      const Value* v = row.FindField(col);
      h = HashCombine(h, v == nullptr ? 0x6e756c6cULL : v->Hash());
    }
    return Value::Bool(Mix64(h) <= threshold);
  };
  return MakeUdf(std::move(name), cpu_cost, std::move(fn));
}

Query MakeTpchQ2() {
  Query q;
  JoinBlock& b = q.join_block;
  b.tables = {{"part", "p"},
              {"partsupp", "ps"},
              {"supplier", "s"},
              {"nation", "n"},
              {"region", "r"}};
  b.edges = {{"p", "p_partkey", "ps", "ps_partkey"},
             {"s", "s_suppkey", "ps", "ps_suppkey"},
             {"s", "s_nationkey", "n", "n_nationkey"},
             {"n", "n_regionkey", "r", "r_regionkey"}};
  b.predicates = {
      {Eq(Col("p_size"), LitInt(15)), {"p"}},
      {Eq(Col("p_type"), LitString("LARGE BRUSHED BRASS")), {"p"}},
      {Eq(Col("r_name"), LitString("EUROPE")), {"r"}},
  };
  b.output_columns = {"s_acctbal", "s_name", "n_name", "p_partkey",
                      "p_mfgr", "ps_supplycost"};
  return q;
}

Query MakeTpchQ7() {
  Query q;
  JoinBlock& b = q.join_block;
  b.tables = {{"supplier", "s"}, {"lineitem", "l"}, {"orders", "o"},
              {"customer", "c"}, {"nation1", "n1"}, {"nation2", "n2"}};
  b.edges = {{"s", "s_suppkey", "l", "l_suppkey"},
             {"o", "o_orderkey", "l", "l_orderkey"},
             {"c", "c_custkey", "o", "o_custkey"},
             {"s", "s_nationkey", "n1", "n1_nationkey"},
             {"c", "c_nationkey", "n2", "n2_nationkey"}};
  b.predicates = {
      {Eq(Col("n1_name"), LitString("FRANCE")), {"n1"}},
      {Eq(Col("n2_name"), LitString("GERMANY")), {"n2"}},
      {And(Ge(Col("l_shipdate"), LitInt(19950101)),
           Le(Col("l_shipdate"), LitInt(19961231))),
       {"l"}},
  };
  b.output_columns = {"n1_name", "n2_name", "l_shipdate", "l_extendedprice",
                      "l_discount"};
  return q;
}

Query MakeTpchQ8Prime(double udf_selectivity) {
  Query q;
  JoinBlock& b = q.join_block;
  b.tables = {{"part", "p"},     {"supplier", "s"}, {"lineitem", "l"},
              {"orders", "o"},   {"customer", "c"}, {"nation1", "n1"},
              {"nation2", "n2"}, {"region", "r"}};
  b.edges = {{"p", "p_partkey", "l", "l_partkey"},
             {"s", "s_suppkey", "l", "l_suppkey"},
             {"l", "l_orderkey", "o", "o_orderkey"},
             {"o", "o_custkey", "c", "c_custkey"},
             {"c", "c_nationkey", "n1", "n1_nationkey"},
             {"n1", "n1_regionkey", "r", "r_regionkey"},
             {"s", "s_nationkey", "n2", "n2_nationkey"}};
  b.predicates = {
      {Eq(Col("r_name"), LitString("AMERICA")), {"r"}},
      {Eq(Col("p_type"), LitString("ECONOMY ANODIZED STEEL")), {"p"}},
      {And(Ge(Col("o_orderdate"), LitInt(19950101)),
           Le(Col("o_orderdate"), LitInt(19961231))),
       {"o"}},
      // The injected correlated pair: o_clerk_group is a (soft) function of
      // o_channel, so multiplying their individual selectivities (as a
      // traditional optimizer does) underestimates by ~5x.
      {Eq(Col("o_channel"), LitString("web")), {"o"}},
      {Eq(Col("o_clerk_group"), LitInt(3)), {"o"}},
      // The paper's modification: a UDF filtering the orders⋈customer
      // join result — impossible to push down, invisible to static stats.
      {MakeHashFilterUdf("q8_oc_filter", {"o_orderkey", "c_custkey"},
                         udf_selectivity, /*cpu_cost=*/50.0),
       {"o", "c"}},
  };
  b.output_columns = {"o_orderdate", "l_extendedprice", "l_discount",
                      "n2_name"};
  return q;
}

Query MakeTpchQ9Prime(double dim_udf_selectivity, double ol_udf_selectivity) {
  Query q;
  JoinBlock& b = q.join_block;
  b.tables = {{"part", "p"},     {"supplier", "s"}, {"lineitem", "l"},
              {"partsupp", "ps"}, {"orders", "o"},  {"nation", "n"}};
  b.edges = {{"p", "p_partkey", "l", "l_partkey"},
             {"s", "s_suppkey", "l", "l_suppkey"},
             {"ps", "ps_partkey", "l", "l_partkey"},
             {"ps", "ps_suppkey", "l", "l_suppkey"},
             {"l", "l_orderkey", "o", "o_orderkey"},
             {"s", "s_nationkey", "n", "n_nationkey"}};
  b.predicates = {
      {MakeHashFilterUdf("q9_udf_p", {"p_partkey"}, dim_udf_selectivity,
                         /*cpu_cost=*/40.0),
       {"p"}},
      {MakeHashFilterUdf("q9_udf_s", {"s_suppkey"}, dim_udf_selectivity,
                         /*cpu_cost=*/40.0),
       {"s"}},
      {MakeHashFilterUdf("q9_udf_ps", {"ps_partkey", "ps_suppkey"},
                         dim_udf_selectivity, /*cpu_cost=*/40.0),
       {"ps"}},
      {MakeHashFilterUdf("q9_udf_o", {"o_orderkey"}, dim_udf_selectivity,
                         /*cpu_cost=*/40.0),
       {"o"}},
      {MakeHashFilterUdf("q9_udf_ol", {"o_orderkey", "l_linenumber"},
                         ol_udf_selectivity, /*cpu_cost=*/30.0),
       {"o", "l"}},
  };
  b.output_columns = {"n_name", "o_orderdate", "l_extendedprice",
                      "l_discount", "ps_supplycost", "l_quantity"};
  return q;
}

Query MakeTpchQ5() {
  Query q;
  JoinBlock& b = q.join_block;
  b.tables = {{"customer", "c"}, {"orders", "o"},  {"lineitem", "l"},
              {"supplier", "s"}, {"nation", "n"},  {"region", "r"}};
  b.edges = {{"c", "c_custkey", "o", "o_custkey"},
             {"l", "l_orderkey", "o", "o_orderkey"},
             {"l", "l_suppkey", "s", "s_suppkey"},
             // The cycle: customer and supplier share a nation, which also
             // links both to the nation/region arm.
             {"c", "c_nationkey", "s", "s_nationkey"},
             {"s", "s_nationkey", "n", "n_nationkey"},
             {"n", "n_regionkey", "r", "r_regionkey"}};
  b.predicates = {
      {Eq(Col("r_name"), LitString("ASIA")), {"r"}},
      {And(Ge(Col("o_orderdate"), LitInt(19940101)),
           Lt(Col("o_orderdate"), LitInt(19950101))),
       {"o"}},
  };
  b.output_columns = {"n_name", "l_extendedprice", "l_discount"};
  return q;
}

Query MakeTpchQ10() {
  Query q;
  JoinBlock& b = q.join_block;
  b.tables = {{"customer", "c"}, {"orders", "o"}, {"lineitem", "l"},
              {"nation", "n"}};
  b.edges = {{"c", "c_custkey", "o", "o_custkey"},
             {"l", "l_orderkey", "o", "o_orderkey"},
             {"c", "c_nationkey", "n", "n_nationkey"}};
  b.predicates = {
      {And(Ge(Col("o_orderdate"), LitInt(19931001)),
           Lt(Col("o_orderdate"), LitInt(19940101))),
       {"o"}},
      {Eq(Col("l_returnflag"), LitString("R")), {"l"}},
  };
  b.output_columns = {"c_custkey", "c_name", "c_acctbal", "n_name",
                      "l_extendedprice", "l_discount"};
  return q;
}

std::vector<NamedQuery> MakeAllPaperQueries() {
  return {{"Q2", MakeTpchQ2()},
          {"Q5", MakeTpchQ5()},
          {"Q7", MakeTpchQ7()},
          {"Q8'", MakeTpchQ8Prime()},
          {"Q9'", MakeTpchQ9Prime()},
          {"Q10", MakeTpchQ10()}};
}

}  // namespace dyno
