#ifndef DYNO_MR_CLUSTER_CONFIG_H_
#define DYNO_MR_CLUSTER_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace dyno {

/// Deterministic fault model for the simulated cluster. Every draw is made
/// on the scheduler thread at task-launch time from a per-job stream seeded
/// by `seed` and the job name — never from the wall clock — so a given
/// (config, workload) pair produces bit-identical simulated results for any
/// `execution_threads` value (DESIGN.md §6.2).
struct FaultConfig {
  /// Base seed. Each job derives its own stream from this and the job name,
  /// so concurrent jobs draw independently of scheduling interleavings.
  uint64_t seed = 0;

  /// Probability that a task attempt dies partway through (transient
  /// failure: bad node, lost container). Failed attempts are retried.
  double task_failure_rate = 0.0;

  /// Probability that an attempt runs `straggler_slowdown` times slower
  /// than its modeled duration (hot node, slow disk).
  double straggler_rate = 0.0;
  double straggler_slowdown = 4.0;

  /// Attempts per logical task before the whole job is declared failed
  /// (Hadoop's mapred.map.max.attempts; must be >= 1).
  int max_task_attempts = 4;

  /// Base delay before re-queueing a failed attempt; attempt n waits
  /// min(retry_backoff_ms * 2^(n-1), max_backoff_ms) plus a deterministic
  /// jitter of up to retry_jitter_fraction of that, drawn from the job's
  /// fault stream so retries of concurrent tasks de-synchronize without
  /// breaking bit-identical replay.
  SimMillis retry_backoff_ms = 1000;
  SimMillis max_backoff_ms = 30000;  ///< <= 0 disables the cap.
  double retry_jitter_fraction = 0.25;

  /// Hadoop-style speculative execution: when a phase has idle slots and no
  /// pending work, re-launch the slowest in-flight attempt once it has been
  /// running longer than `speculative_slowness_threshold` times the median
  /// completed task duration. Whichever attempt finishes first commits; the
  /// loser still occupies its slot until its own finish time.
  bool speculative_execution = true;
  double speculative_slowness_threshold = 2.0;

  /// --- Node fault domain (DESIGN.md §6.4). ---
  /// Probability, drawn per task-attempt launch from the job's fault
  /// stream, that the node hosting the attempt crashes partway through it.
  /// A crash kills every attempt running on the node, invalidates the
  /// completed map outputs resident there, and removes the node's slots
  /// until it recovers.
  double node_failure_rate = 0.0;

  /// How long a crashed node stays blacklisted before it rejoins with its
  /// slots (and nothing else: its resident map outputs are gone for good).
  /// <= 0 means nodes never recover; losing all of them then classifies
  /// every unfinished job as a permanent failure.
  SimMillis node_recovery_ms = 120000;

  /// Test/chaos hook: crash `node` at simulated time `at_ms` exactly once,
  /// without consuming any fault-stream draws. Entries must be sorted by
  /// time; they let tests place a crash deterministically relative to a
  /// job's phases.
  struct ScriptedNodeCrash {
    SimMillis at_ms = 0;
    int node = 0;
  };
  std::vector<ScriptedNodeCrash> scripted_node_crashes;

  /// --- Data-integrity faults (DESIGN.md §6.5). ---
  /// Probability that one replica read of a map-input block comes back
  /// corrupt (checksum mismatch). The attempt re-reads the next replica,
  /// billing a full block read per bad copy; all `DfsFile::replicas()`
  /// copies bad fails the attempt with DataLoss.
  double block_corruption_rate = 0.0;

  /// Probability that one shuffle fetch of a reduce attempt's bucket is
  /// corrupt in flight. The attempt re-fetches up to
  /// `max_shuffle_fetch_retries` more times; exhausting them is DataLoss.
  double shuffle_corruption_rate = 0.0;

  /// Probability that any given input record is a poison record: the map
  /// function "throws" on it. Positions are drawn once per logical map task
  /// (they are a property of the data, identical across attempts and
  /// replicas). After two poison-record attempt failures the task re-runs
  /// in skip mode, quarantining poison records instead of failing.
  double poison_record_rate = 0.0;

  /// Per-job budget of quarantined records; exceeding it fails the job with
  /// a permanent DataLoss (mirrors Hadoop's skip-mode record budget).
  /// < 0 means unlimited.
  int max_skipped_records = 100;

  /// Extra shuffle fetches allowed per reduce attempt after a checksum
  /// mismatch before the attempt fails with DataLoss.
  int max_shuffle_fetch_retries = 3;

  /// Test/chaos hook: force corrupt replica reads / shuffle fetches onto an
  /// exact (job, task, attempt) without consuming fault-stream draws.
  /// `count` is the number of corrupt copies (block: replicas, capped at the
  /// file's replica count; shuffle: fetches, capped at
  /// max_shuffle_fetch_retries + 1).
  struct ScriptedCorruption {
    /// kSpill targets a reduce attempt's spill-run read-back; it only fires
    /// when the attempt actually spills (memory mode on and over budget).
    enum class Target { kBlock, kShuffle, kSpill };
    Target target = Target::kBlock;
    std::string job;  ///< Exact JobSpec name.
    int task_id = 0;
    int attempt = 1;  ///< 1-based attempt index the corruption hits.
    int count = 1;
    /// Exact JobSpec::query_id the corruption applies to. Empty matches any
    /// query — the legacy behavior, which is ambiguous once two concurrent
    /// queries run identically-named jobs; scope scripted corruptions by
    /// query id in multi-query tests.
    std::string query;
  };
  std::vector<ScriptedCorruption> scripted_corruptions;

  /// When no injection is configured explicitly, the engine fills this
  /// struct from DYNO_FAULT_SEED / DYNO_TASK_FAILURE_RATE /
  /// DYNO_STRAGGLER_RATE / DYNO_MAX_TASK_ATTEMPTS / DYNO_NODE_FAILURE_RATE
  /// / DYNO_NODE_RECOVERY_MS / DYNO_BLOCK_CORRUPTION_RATE /
  /// DYNO_SHUFFLE_CORRUPTION_RATE / DYNO_POISON_RECORD_RATE /
  /// DYNO_MAX_SKIPPED_RECORDS (see ApplyEnvOverrides), which is how the
  /// bench and the `faults` / `node-faults` / `corruption` ctest presets
  /// switch the fault path on without touching code.
  bool use_env_defaults = true;

  /// True when node crashes (random or scripted) are possible.
  bool node_faults() const {
    return node_failure_rate > 0.0 || !scripted_node_crashes.empty();
  }

  /// True when data-path corruption or poison records (random or scripted)
  /// are possible.
  bool data_faults() const {
    return block_corruption_rate > 0.0 || shuffle_corruption_rate > 0.0 ||
           poison_record_rate > 0.0 || !scripted_corruptions.empty();
  }

  /// True when any fault injection is active. Retries of *real* task errors
  /// (failing map/reduce functions) are also gated on this, preserving the
  /// legacy fail-fast behavior when the model is off.
  bool enabled() const {
    return task_failure_rate > 0.0 || straggler_rate > 0.0 || node_faults() ||
           data_faults();
  }

  /// Overwrites fields from the DYNO_* environment variables above.
  void ApplyEnvOverrides();
};

/// Static description of the simulated Hadoop cluster. The defaults mirror
/// the paper's testbed (15 nodes, 10 map + 6 reduce slots each => 140/84
/// after excluding the master, 15-20 s job startup, 10 GbE) scaled to the
/// simulator's byte units: one simulator byte stands for ~1 KiB of real
/// data, so the rate constants below give the familiar "HDFS scan ~100 MB/s
/// per slot, shuffle ~50 MB/s" feel.
struct ClusterConfig {
  /// Number of worker nodes. They are the simulator's fault domains: map /
  /// reduce slots are divided across them (node i gets slots/num_nodes,
  /// plus one of the remainder when i < slots % num_nodes), completed map
  /// outputs are resident on the node that produced them, and a node crash
  /// (FaultConfig) takes slots and resident outputs down together. Also
  /// used by the distributed-cache variant of the broadcast join, which
  /// loads the build side once per node instead of once per task.
  int num_nodes = 15;

  /// Concurrent map / reduce task slots across the cluster.
  int map_slots = 140;
  int reduce_slots = 84;

  /// Latency between job submission and first task launch (the paper: "as
  /// high as 15-20 seconds"); paying it once per leaf relation is what makes
  /// PILR_ST slow.
  SimMillis job_startup_ms = 15000;

  /// Phase rates, in bytes per simulated millisecond.
  double map_read_bytes_per_ms = 100.0;
  double map_write_bytes_per_ms = 80.0;
  double shuffle_bytes_per_ms = 50.0;
  double reduce_read_bytes_per_ms = 100.0;
  double reduce_write_bytes_per_ms = 80.0;

  /// Rate at which map tasks load broadcast side data. Faster than a cold
  /// split scan: build files are small, read by every task on a node, and
  /// sit in the OS page cache after the first wave.
  double side_load_bytes_per_ms = 200.0;

  /// Scalar-operation throughput (expression cost units per millisecond).
  double cpu_units_per_ms = 1000.0;

  /// Memory available to one task for broadcast-join build sides. A build
  /// side whose hash table exceeds this aborts the job with OutOfMemory —
  /// Jaql's broadcast join does not spill (paper §2.2.1).
  uint64_t memory_per_task_bytes = 1 << 20;  // 1 MiB at simulator scale

  /// Hash-table expansion over raw build-side bytes.
  double broadcast_memory_factor = 1.5;

  /// --- Reduce-side memory model (DESIGN.md §6.10). ---
  /// How a reduce task whose simulated sort/hash state outgrows
  /// `memory_per_task_bytes` degrades. The default (kUnbounded) is the
  /// historical behavior: reduce state is never charged, so the knob-off
  /// path stays byte-identical to older builds.
  enum class ReduceMemoryMode {
    kUnbounded = 0,  ///< Legacy: reduce state is not charged against memory.
    kSpill = 1,      ///< Overflowing tasks spill CRC-framed runs to DFS.
    kStrict = 2,     ///< Overflowing jobs fail with OutOfMemory (no spill).
  };
  ReduceMemoryMode reduce_memory_mode = ReduceMemoryMode::kUnbounded;

  /// Sort/hash-state expansion over raw partition bytes — the reduce-side
  /// analogue of broadcast_memory_factor. A reduce task's simulated state is
  /// ceil(partition_bytes * reduce_memory_factor); it spills (or OOMs) when
  /// that exceeds memory_per_task_bytes.
  double reduce_memory_factor = 1.5;

  /// Maximum spill runs merged per pass. R runs need
  /// ceil(log_fan_in(R)) merge passes, each billed as one full
  /// write + read of the partition's bytes.
  int spill_merge_fan_in = 8;

  /// A task needing more than this many spill runs fails with OutOfMemory
  /// even in kSpill mode (its merge state no longer fits either) — this is
  /// what makes the retry ladder's doubled-reducer rung meaningful.
  int max_spill_runs = 64;

  /// Overwrites memory fields from DYNO_TASK_MEMORY_BYTES (strict int) and
  /// DYNO_SPILL (0 = unbounded, 1 = spill, 2 = strict). Applied by the
  /// engine under the same `faults.use_env_defaults` gate as the fault
  /// knobs, and only when the mode is still kUnbounded in code.
  void ApplyMemoryEnvOverrides();

  /// Default split-to-reduce-task ratio when a job does not pin the reducer
  /// count: one reduce task per this many bytes of map output (Hive-like).
  uint64_t bytes_per_reduce_task = 64 * 1024;

  /// Number of OS worker threads the engine uses to execute task data flows
  /// (map/reduce functions over real records). Purely a wall-clock knob:
  /// tasks are dispatched when the event loop launches them and their
  /// results are committed back in deterministic launch order, so simulated
  /// timestamps, counters and DFS outputs are bit-identical for every value
  /// of this setting. <= 1 runs task data flows inline on the caller's
  /// thread (no pool).
  int execution_threads = 1;

  /// Fault injection and recovery knobs (off by default).
  FaultConfig faults;
};

}  // namespace dyno

#endif  // DYNO_MR_CLUSTER_CONFIG_H_
