#include "mr/worker_pool.h"

#include <algorithm>
#include <utility>

namespace dyno {

WorkerPool::WorkerPool(int num_threads) {
  int n = std::max(1, num_threads);
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = std::move(tasks);
    next_ = 0;
    in_flight_ = 0;
  }
  work_ready_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock,
                   [this] { return next_ >= batch_.size() && in_flight_ == 0; });
  batch_.clear();
  next_ = 0;
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_ready_.wait(
        lock, [this] { return shutting_down_ || next_ < batch_.size(); });
    if (shutting_down_) return;
    std::function<void()> task = std::move(batch_[next_]);
    ++next_;
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (next_ >= batch_.size() && in_flight_ == 0) {
      batch_done_.notify_all();
    }
  }
}

}  // namespace dyno
