#ifndef DYNO_MR_JOB_H_
#define DYNO_MR_JOB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "json/value.h"
#include "storage/dfs.h"

namespace dyno {

/// Hadoop-style job counters, accumulated while a job runs. Pilot runs use
/// them to derive table statistics (record counts and byte sizes, §4.3).
struct Counters {
  uint64_t map_input_records = 0;
  uint64_t map_input_bytes = 0;
  uint64_t map_output_records = 0;   ///< Emitted to shuffle.
  uint64_t map_output_bytes = 0;
  uint64_t reduce_input_records = 0;
  uint64_t output_records = 0;       ///< Written to the job output file.
  uint64_t output_bytes = 0;

  void MergeFrom(const Counters& other);
};

/// Passed to map functions; the sink for their emissions.
class MapContext {
 public:
  virtual ~MapContext() = default;

  /// Sends (key, value) to the shuffle (map-reduce jobs only).
  virtual void Emit(Value key, Value value) = 0;

  /// Writes a record directly to the job output (map-only jobs).
  virtual void Output(Value record) = 0;

  /// Charges additional per-record CPU (e.g. an expensive UDF that only
  /// fires on some rows).
  virtual void ChargeCpu(double units) = 0;

  /// Index of the map task executing this record's split.
  virtual int task_index() const = 0;
};

/// Passed to reduce functions.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;
  virtual void Output(Value record) = 0;
  virtual void ChargeCpu(double units) = 0;
};

/// Map function: one input record in, zero or more emissions out.
using MapFn = std::function<Status(const Value& record, MapContext* ctx)>;

/// Reduce function: a key and all its values (sorted input order).
using ReduceFn = std::function<Status(const Value& key,
                                      const std::vector<Value>& values,
                                      ReduceContext* ctx)>;

/// Called once at the end of each map task — the hook map-side combiners
/// use to flush their per-task partial aggregates.
using MapFlushFn = std::function<Status(MapContext* ctx)>;

/// One map input: a DFS file, the subset of its splits to scan (empty means
/// all), and the map function to run over its records. Jobs with several
/// inputs (the repartition join) give each input its own map function.
struct MapInput {
  std::shared_ptr<DfsFile> file;
  std::vector<int> split_indexes;  ///< Empty = every split (see below).
  MapFn map_fn;
  /// Declared per-record expression cost, charged to the task clock.
  double cpu_per_record = 1.0;
  /// Optional end-of-task hook (combiner flush). May Emit/Output.
  MapFlushFn flush_fn;

  /// When true, an empty `split_indexes` means "scan nothing" instead of
  /// "every split" — required so zone-map pruning can express an all-pruned
  /// scan (zero map tasks) without a sentinel.
  bool split_indexes_exact = false;

  /// Pushed-down scan predicate, applied by the engine before `map_fn` sees
  /// a record. Only set when DYNO_COLUMNAR=1: columnar splits evaluate it
  /// batch-at-a-time (vectorized factors at a CPU discount), row splits
  /// record-at-a-time. `cpu_per_record` must then exclude the filter's cost;
  /// `scan_filter_cpu` declares it instead.
  ExprPtr scan_filter;
  /// Per-record CPU cost of `scan_filter` at row-at-a-time rates.
  double scan_filter_cpu = 0.0;

  /// Bill read time by the split's logical (row-encoded) size rather than
  /// its physical size. Pilot jobs set this so the pilot's event timeline —
  /// and therefore which splits its stop condition admits — is identical
  /// whichever format the table is stored in (plan choice must not depend
  /// on storage format).
  bool bill_logical_read = false;
};

/// Full specification of one MapReduce job.
struct JobSpec {
  std::string name;
  /// Identifier of the query (driver session) this job belongs to. Empty
  /// for standalone submissions — the engine then behaves exactly as it
  /// always has. When set, the per-job fault stream is salted with it (two
  /// queries submitting identically-named jobs draw independent faults),
  /// job trace events carry a "query" tag, and committed slot time is
  /// accounted to the query (MapReduceEngine::query_slot_ms).
  std::string query_id;
  std::vector<MapInput> inputs;

  /// Absent for map-only jobs.
  ReduceFn reduce_fn;
  /// 0 = derive from map output volume (Hive-like default).
  int num_reduce_tasks = 0;

  /// Per-job override of ClusterConfig::reduce_memory_mode: -1 inherits the
  /// cluster setting; 0/1/2 force unbounded/spill/strict for this job. The
  /// driver's OOM retry ladder uses this to re-run a job in spill mode
  /// without reconfiguring the whole engine.
  int reduce_memory_mode = -1;

  /// DFS path for the output file. Must not exist yet.
  std::string output_path;

  /// Bytes each map task reads to load its broadcast side data (hash-join
  /// build side) before scanning — the *full* build file, since local
  /// predicates are applied while building the hash table.
  uint64_t side_load_bytes = 0;

  /// Bytes of side data actually retained in memory (post-filter hash
  /// table). Checked against the task memory budget: exceeding it fails the
  /// job with OutOfMemory, as in Jaql.
  uint64_t side_memory_bytes = 0;

  /// Hive-mode broadcast: load side data once per node (DistributedCache)
  /// instead of once per task.
  bool side_data_via_distributed_cache = false;

  /// Skip the job startup latency: the job reuses already-running task
  /// containers. Models the situation-aware mappers of [38] that pilot
  /// runs use to add sample splits on demand without relaunching (§4.2).
  bool reuse_warm_containers = false;

  /// Checked before each new map task starts; true stops scheduling further
  /// tasks (running tasks complete their whole split — this is how pilot
  /// runs avoid the inspection paradox, §4.2). Optional.
  std::function<bool()> stop_condition;

  /// Observes every record written to the job output — the online
  /// statistics collection hook (§5.4). Optional.
  std::function<void(const Value& record)> output_observer;
  /// Per-record cost charged for the observer; reported separately so the
  /// overhead experiment (Fig. 4) can isolate statistics-collection cost.
  double observer_cpu_per_record = 0.0;
};

/// Everything known about a finished (or failed) job.
struct JobResult {
  Status status;
  std::shared_ptr<DfsFile> output;  ///< Null if the job failed.
  SimMillis submit_time_ms = 0;
  SimMillis finish_time_ms = 0;
  Counters counters;
  int map_tasks_run = 0;
  int map_tasks_skipped = 0;  ///< Cancelled by the stop condition.
  int reduce_tasks_run = 0;
  /// Simulated time attributable to the output observer (stats collection).
  SimMillis observer_overhead_ms = 0;

  /// Slot occupancy: summed simulated duration of every committed map /
  /// reduce attempt (including failed, speculative and retried attempts —
  /// they all held a slot). The service's fair-share scheduler and the
  /// concurrency bench derive cluster utilization from these.
  SimMillis map_slot_ms = 0;
  SimMillis reduce_slot_ms = 0;

  /// Fault-model accounting (all zero when fault injection is off).
  int task_failures_injected = 0;  ///< Attempts killed by injection.
  int task_retries = 0;            ///< Re-launches after a failed attempt.
  int speculative_launches = 0;    ///< Backup attempts started.
  int speculative_wins = 0;        ///< Backups that beat their primary.

  /// Node fault-domain accounting (all zero without node crashes).
  int node_crashes_observed = 0;   ///< Crashes while this job was running.
  int attempts_killed_by_node = 0; ///< In-flight attempts lost to a crash.
  int maps_invalidated = 0;        ///< Completed map outputs lost + re-run.
  int shuffle_fetch_retries = 0;   ///< Reducers re-queued behind a re-shuffle.

  /// Data-integrity accounting (all zero without corruption/poison faults).
  int block_corruptions = 0;       ///< Corrupt replica reads detected.
  int checksum_refetches = 0;      ///< Shuffle fetches redone after mismatch.
  uint64_t records_quarantined = 0;///< Poison records skipped + quarantined.
  /// DFS path of the per-job quarantine file (empty when no record was
  /// quarantined). Holds the poison records, in map-task order.
  std::string quarantine_path;

  /// Reduce-memory accounting (all zero in kUnbounded mode, DESIGN.md
  /// §6.10). Sizes are simulated: partition bytes * reduce_memory_factor.
  int reduce_spills = 0;           ///< Reduce tasks that spilled to DFS.
  int spill_runs = 0;              ///< Total sorted runs written.
  int spill_merge_passes = 0;      ///< Total bounded-memory merge passes.
  uint64_t spill_bytes_written = 0;///< Run-formation + merge-pass writes.
  uint64_t spill_bytes_read = 0;   ///< Merge-pass reads.
  /// Largest simulated memory footprint any task of this job held: spilling
  /// tasks hold the budget, in-memory reduce state and broadcast builds
  /// their expanded size.
  uint64_t peak_task_memory_bytes = 0;
  /// Reducer count the engine froze at map-phase end (the derived count for
  /// num_reduce_tasks <= 0). The driver's OOM ladder doubles from this.
  int reduce_tasks_planned = 0;

  SimMillis Elapsed() const { return finish_time_ms - submit_time_ms; }
};

}  // namespace dyno

#endif  // DYNO_MR_JOB_H_
