#include "mr/cluster_config.h"

#include <cstdlib>

namespace dyno {

void FaultConfig::ApplyEnvOverrides() {
  if (const char* env = std::getenv("DYNO_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("DYNO_TASK_FAILURE_RATE")) {
    double parsed = std::strtod(env, nullptr);
    if (parsed >= 0.0 && parsed <= 1.0) task_failure_rate = parsed;
  }
  if (const char* env = std::getenv("DYNO_STRAGGLER_RATE")) {
    double parsed = std::strtod(env, nullptr);
    if (parsed >= 0.0 && parsed <= 1.0) straggler_rate = parsed;
  }
  if (const char* env = std::getenv("DYNO_MAX_TASK_ATTEMPTS")) {
    int parsed = std::atoi(env);
    if (parsed >= 1) max_task_attempts = parsed;
  }
  if (const char* env = std::getenv("DYNO_NODE_FAILURE_RATE")) {
    double parsed = std::strtod(env, nullptr);
    if (parsed >= 0.0 && parsed <= 1.0) node_failure_rate = parsed;
  }
  if (const char* env = std::getenv("DYNO_NODE_RECOVERY_MS")) {
    node_recovery_ms = std::strtoll(env, nullptr, 10);
  }
}

}  // namespace dyno
