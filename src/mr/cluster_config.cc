#include "mr/cluster_config.h"

#include <cstdlib>
#include <limits>

#include "common/string_util.h"

namespace dyno {

namespace {

/// Env-knob readers: absent leaves the field untouched; present-but-
/// malformed (or out of range) aborts via EnvDoubleOrDie/EnvInt64OrDie — a
/// typo'd fault campaign must never silently run with default knobs.
void EnvRate(const char* name, double* out) {
  if (const char* env = std::getenv(name)) {
    *out = EnvDoubleOrDie(name, env, 0.0, 1.0);
  }
}

void EnvInt(const char* name, int64_t lo, int64_t hi, int* out) {
  if (const char* env = std::getenv(name)) {
    *out = static_cast<int>(EnvInt64OrDie(name, env, lo, hi));
  }
}

}  // namespace

void FaultConfig::ApplyEnvOverrides() {
  if (const char* env = std::getenv("DYNO_FAULT_SEED")) {
    seed = static_cast<uint64_t>(EnvInt64OrDie(
        "DYNO_FAULT_SEED", env, 0, std::numeric_limits<int64_t>::max()));
  }
  EnvRate("DYNO_TASK_FAILURE_RATE", &task_failure_rate);
  EnvRate("DYNO_STRAGGLER_RATE", &straggler_rate);
  EnvInt("DYNO_MAX_TASK_ATTEMPTS", 1, 1000, &max_task_attempts);
  EnvRate("DYNO_NODE_FAILURE_RATE", &node_failure_rate);
  if (const char* env = std::getenv("DYNO_NODE_RECOVERY_MS")) {
    node_recovery_ms = EnvInt64OrDie(
        "DYNO_NODE_RECOVERY_MS", env, std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max());
  }
  EnvRate("DYNO_BLOCK_CORRUPTION_RATE", &block_corruption_rate);
  EnvRate("DYNO_SHUFFLE_CORRUPTION_RATE", &shuffle_corruption_rate);
  EnvRate("DYNO_POISON_RECORD_RATE", &poison_record_rate);
  EnvInt("DYNO_MAX_SKIPPED_RECORDS", -1, std::numeric_limits<int>::max(),
         &max_skipped_records);
}

void ClusterConfig::ApplyMemoryEnvOverrides() {
  if (const char* env = std::getenv("DYNO_TASK_MEMORY_BYTES")) {
    memory_per_task_bytes = static_cast<uint64_t>(EnvInt64OrDie(
        "DYNO_TASK_MEMORY_BYTES", env, 1, std::numeric_limits<int64_t>::max()));
  }
  if (const char* env = std::getenv("DYNO_SPILL")) {
    reduce_memory_mode = static_cast<ReduceMemoryMode>(
        EnvInt64OrDie("DYNO_SPILL", env, 0, 2));
  }
}

}  // namespace dyno
