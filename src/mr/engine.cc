#include "mr/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <deque>
#include <queue>
#include <utility>

#include "common/string_util.h"

namespace dyno {

void Counters::MergeFrom(const Counters& other) {
  map_input_records += other.map_input_records;
  map_input_bytes += other.map_input_bytes;
  map_output_records += other.map_output_records;
  map_output_bytes += other.map_output_bytes;
  reduce_input_records += other.reduce_input_records;
  output_records += other.output_records;
  output_bytes += other.output_bytes;
}

namespace {

/// A map task to run: which input and which split of it.
struct MapTaskRef {
  int input_index;
  int split_index;
};

enum class JobPhase { kStartingUp, kMap, kShuffle, kReduce, kDone };

/// Execution state for one concurrently running job.
struct RunningJob {
  const JobSpec* spec = nullptr;
  int job_index = 0;
  JobPhase phase = JobPhase::kStartingUp;
  SimMillis ready_time = 0;  ///< submit + startup latency.

  std::deque<MapTaskRef> pending_map;
  int active_map_tasks = 0;
  int map_seq = 0;  ///< Tasks launched so far (distributed-cache billing).

  /// Shuffle buffer: all (key, value) emissions with their encoded size.
  std::vector<std::pair<Value, Value>> emissions;
  uint64_t emission_bytes = 0;

  /// Reduce-side state.
  int num_reduce_tasks = 0;
  std::vector<std::vector<std::pair<Value, Value>>> partitions;
  std::deque<int> pending_reduce;
  int active_reduce_tasks = 0;

  std::shared_ptr<DfsFile> output;
  JobResult result;
  double observer_cpu_units = 0.0;
  bool failed = false;

  bool Finished() const { return phase == JobPhase::kDone; }
};

enum class EventKind { kJobReady, kMapDone, kShuffleDone, kReduceDone };

struct Event {
  SimMillis time;
  uint64_t seq;  ///< Tie-breaker for determinism.
  EventKind kind;
  int job_index;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// MapContext implementation that buffers into the running job's state.
class TaskMapContext : public MapContext {
 public:
  TaskMapContext(RunningJob* job, Split* task_output, int task_index)
      : job_(job), task_output_(task_output), task_index_(task_index) {}

  void Emit(Value key, Value value) override {
    size_t bytes = key.EncodedSize() + value.EncodedSize();
    job_->emission_bytes += bytes;
    job_->result.counters.map_output_records += 1;
    job_->result.counters.map_output_bytes += bytes;
    emitted_bytes_ += bytes;
    job_->emissions.emplace_back(std::move(key), std::move(value));
  }

  void Output(Value record) override {
    if (job_->spec->output_observer) {
      job_->spec->output_observer(record);
      extra_cpu_ += job_->spec->observer_cpu_per_record;
      job_->observer_cpu_units += job_->spec->observer_cpu_per_record;
    }
    record.EncodeTo(&task_output_->data);
    task_output_->num_records += 1;
    job_->result.counters.output_records += 1;
  }

  void ChargeCpu(double units) override { extra_cpu_ += units; }

  int task_index() const override { return task_index_; }

  double extra_cpu() const { return extra_cpu_; }
  uint64_t emitted_bytes() const { return emitted_bytes_; }

 private:
  RunningJob* job_;
  Split* task_output_;
  int task_index_;
  double extra_cpu_ = 0.0;
  uint64_t emitted_bytes_ = 0;
};

class TaskReduceContext : public ReduceContext {
 public:
  TaskReduceContext(RunningJob* job, Split* task_output)
      : job_(job), task_output_(task_output) {}

  void Output(Value record) override {
    if (job_->spec->output_observer) {
      job_->spec->output_observer(record);
      extra_cpu_ += job_->spec->observer_cpu_per_record;
      job_->observer_cpu_units += job_->spec->observer_cpu_per_record;
    }
    record.EncodeTo(&task_output_->data);
    task_output_->num_records += 1;
    job_->result.counters.output_records += 1;
  }

  void ChargeCpu(double units) override { extra_cpu_ += units; }

  double extra_cpu() const { return extra_cpu_; }

 private:
  RunningJob* job_;
  Split* task_output_;
  double extra_cpu_ = 0.0;
};

SimMillis CeilDiv(double amount, double rate) {
  if (amount <= 0.0) return 0;
  return static_cast<SimMillis>(std::ceil(amount / rate));
}

}  // namespace

MapReduceEngine::MapReduceEngine(Dfs* dfs, ClusterConfig config)
    : dfs_(dfs), config_(config) {}

Result<JobResult> MapReduceEngine::Submit(const JobSpec& spec) {
  DYNO_ASSIGN_OR_RETURN(std::vector<JobResult> results, SubmitAll({spec}));
  return results[0];
}

Result<std::vector<JobResult>> MapReduceEngine::SubmitAll(
    const std::vector<JobSpec>& specs) {
  // --- Validate and initialize job states. ---
  std::vector<RunningJob> jobs(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const JobSpec& spec = specs[i];
    if (spec.inputs.empty()) {
      return Status::InvalidArgument("job has no inputs: " + spec.name);
    }
    if (spec.output_path.empty()) {
      return Status::InvalidArgument("job has no output path: " + spec.name);
    }
    RunningJob& job = jobs[i];
    job.spec = &spec;
    job.job_index = static_cast<int>(i);
    job.ready_time =
        now_ + (spec.reuse_warm_containers ? 0 : config_.job_startup_ms);
    job.result.submit_time_ms = now_;
    for (size_t in = 0; in < spec.inputs.size(); ++in) {
      const MapInput& input = spec.inputs[in];
      if (input.file == nullptr) {
        return Status::InvalidArgument("null input file in " + spec.name);
      }
      if (input.split_indexes.empty()) {
        for (size_t s = 0; s < input.file->splits().size(); ++s) {
          job.pending_map.push_back(
              {static_cast<int>(in), static_cast<int>(s)});
        }
      } else {
        for (int s : input.split_indexes) {
          if (s < 0 || static_cast<size_t>(s) >= input.file->splits().size()) {
            return Status::InvalidArgument(
                StrFormat("split index %d out of range in %s", s,
                          spec.name.c_str()));
          }
          job.pending_map.push_back({static_cast<int>(in), s});
        }
      }
    }
    auto output = dfs_->Create(spec.output_path);
    if (!output.ok()) return output.status();
    job.output = *output;
  }

  if (getenv("DYNO_DEBUG_JOBS") != nullptr) {
    for (const RunningJob& job : jobs) {
      uint64_t in_bytes = 0;
      for (const MapInput& input : job.spec->inputs) {
        in_bytes += input.file->num_bytes();
      }
      std::fprintf(stderr,
                   "[job] %s inputs=%zu in_bytes=%llu side_mem=%llu %s\n",
                   job.spec->name.c_str(), job.spec->inputs.size(),
                   (unsigned long long)in_bytes,
                   (unsigned long long)job.spec->side_memory_bytes,
                   job.spec->reduce_fn ? "map-reduce" : "map-only");
    }
  }

  // --- Discrete-event simulation. ---
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  uint64_t seq = 0;
  for (RunningJob& job : jobs) {
    events.push({job.ready_time, seq++, EventKind::kJobReady, job.job_index});
  }

  int free_map_slots = config_.map_slots;
  int free_reduce_slots = config_.reduce_slots;
  int unfinished = static_cast<int>(jobs.size());

  auto fail_job = [&](RunningJob* job, Status status) {
    job->failed = true;
    job->result.status = std::move(status);
    job->pending_map.clear();
    job->pending_reduce.clear();
    if (job->active_map_tasks == 0 && job->active_reduce_tasks == 0) {
      job->phase = JobPhase::kDone;
      job->result.finish_time_ms = now_;
      dfs_->Delete(job->spec->output_path).ok();
      job->output = nullptr;
      --unfinished;
    }
    // Otherwise the job is torn down when its last active task drains.
  };

  auto finish_job = [&](RunningJob* job) {
    job->phase = JobPhase::kDone;
    job->result.finish_time_ms = now_;
    job->result.observer_overhead_ms = static_cast<SimMillis>(
        std::ceil(job->observer_cpu_units / config_.cpu_units_per_ms));
    --unfinished;
  };

  // Charges for loading broadcast side data, honoring the distributed-cache
  // mode (first `num_nodes` tasks pay; later waves find it cached locally).
  auto side_load_ms = [&](RunningJob* job) -> SimMillis {
    uint64_t bytes = job->spec->side_load_bytes;
    if (bytes == 0) return 0;
    if (job->spec->side_data_via_distributed_cache &&
        job->map_seq >= config_.num_nodes) {
      return 0;
    }
    return CeilDiv(static_cast<double>(bytes),
                   config_.side_load_bytes_per_ms);
  };

  // Runs one map task's data flow; returns its simulated duration.
  auto run_map_task = [&](RunningJob* job, MapTaskRef task,
                          SimMillis* duration) -> Status {
    const MapInput& input = job->spec->inputs[task.input_index];
    const Split& split = input.file->splits()[task.split_index];
    SimMillis setup = side_load_ms(job);
    ++job->map_seq;

    Split task_output;
    TaskMapContext ctx(job, &task_output, job->map_seq - 1);
    double cpu_units = 0.0;
    SplitReader reader(&split);
    while (!reader.AtEnd()) {
      DYNO_ASSIGN_OR_RETURN(Value record, reader.Next());
      job->result.counters.map_input_records += 1;
      cpu_units += 1.0 + input.cpu_per_record;
      DYNO_RETURN_IF_ERROR(input.map_fn(record, &ctx));
    }
    job->result.counters.map_input_bytes += split.num_bytes();
    if (input.flush_fn) {
      DYNO_RETURN_IF_ERROR(input.flush_fn(&ctx));
    }
    cpu_units += ctx.extra_cpu();

    uint64_t written_bytes =
        job->spec->reduce_fn ? ctx.emitted_bytes() : task_output.num_bytes();
    *duration =
        setup +
        CeilDiv(static_cast<double>(split.num_bytes()),
                config_.map_read_bytes_per_ms) +
        CeilDiv(cpu_units, config_.cpu_units_per_ms) +
        CeilDiv(static_cast<double>(written_bytes),
                config_.map_write_bytes_per_ms);
    if (!job->spec->reduce_fn && task_output.num_records > 0) {
      job->result.counters.output_bytes += task_output.num_bytes();
      job->output->AppendSplit(std::move(task_output));
    }
    ++job->result.map_tasks_run;
    return Status::OK();
  };

  // Runs one reduce task's data flow; returns its simulated duration.
  auto run_reduce_task = [&](RunningJob* job, int partition,
                             SimMillis* duration) -> Status {
    auto& bucket = job->partitions[partition];
    std::stable_sort(bucket.begin(), bucket.end(),
                     [](const auto& a, const auto& b) {
                       return a.first.Compare(b.first) < 0;
                     });
    uint64_t in_bytes = 0;
    for (const auto& [key, value] : bucket) {
      in_bytes += key.EncodedSize() + value.EncodedSize();
    }
    job->result.counters.reduce_input_records += bucket.size();

    Split task_output;
    TaskReduceContext ctx(job, &task_output);
    double cpu_units = static_cast<double>(bucket.size());
    size_t i = 0;
    while (i < bucket.size()) {
      size_t j = i + 1;
      while (j < bucket.size() &&
             bucket[j].first.Compare(bucket[i].first) == 0) {
        ++j;
      }
      std::vector<Value> values;
      values.reserve(j - i);
      for (size_t k = i; k < j; ++k) values.push_back(bucket[k].second);
      DYNO_RETURN_IF_ERROR(
          job->spec->reduce_fn(bucket[i].first, values, &ctx));
      i = j;
    }
    cpu_units += ctx.extra_cpu();

    // n log n sort charge for the merge-sort of this partition.
    if (!bucket.empty()) {
      cpu_units += static_cast<double>(bucket.size()) *
                   std::log2(static_cast<double>(bucket.size()) + 1.0);
    }

    *duration = CeilDiv(static_cast<double>(in_bytes),
                        config_.reduce_read_bytes_per_ms) +
                CeilDiv(cpu_units, config_.cpu_units_per_ms) +
                CeilDiv(static_cast<double>(task_output.num_bytes()),
                        config_.reduce_write_bytes_per_ms);
    if (task_output.num_records > 0) {
      job->result.counters.output_bytes += task_output.num_bytes();
      job->output->AppendSplit(std::move(task_output));
    }
    bucket.clear();
    bucket.shrink_to_fit();
    ++job->result.reduce_tasks_run;
    return Status::OK();
  };

  // Transition after the map phase drains.
  auto on_map_phase_complete = [&](RunningJob* job) {
    if (!job->spec->reduce_fn) {
      finish_job(job);
      return;
    }
    job->phase = JobPhase::kShuffle;
    int reducers = job->spec->num_reduce_tasks;
    if (reducers <= 0) {
      reducers = static_cast<int>(
          job->emission_bytes / config_.bytes_per_reduce_task + 1);
      reducers = std::clamp(reducers, 1, config_.reduce_slots);
    }
    job->num_reduce_tasks = reducers;
    job->partitions.assign(reducers, {});
    for (auto& [key, value] : job->emissions) {
      size_t p = key.Hash() % static_cast<size_t>(reducers);
      job->partitions[p].emplace_back(std::move(key), std::move(value));
    }
    job->emissions.clear();
    job->emissions.shrink_to_fit();
    // Shuffle is billed at the cluster's aggregate cross-network rate: the
    // all-to-all transfer is bisection-bandwidth bound, not per-reducer
    // parallel, which is what makes repartitioning a large relation so much
    // more expensive than broadcasting a small one (paper §2.2.1).
    SimMillis shuffle_ms = CeilDiv(static_cast<double>(job->emission_bytes),
                                   config_.shuffle_bytes_per_ms);
    events.push({now_ + shuffle_ms, seq++, EventKind::kShuffleDone,
                 job->job_index});
  };

  // Assigns free slots to pending tasks, FIFO across jobs.
  auto schedule = [&]() {
    for (RunningJob& job : jobs) {
      if (job.phase == JobPhase::kMap && now_ >= job.ready_time) {
        while (free_map_slots > 0 && !job.pending_map.empty()) {
          if (job.spec->stop_condition && job.spec->stop_condition()) {
            job.result.map_tasks_skipped +=
                static_cast<int>(job.pending_map.size());
            job.pending_map.clear();
            break;
          }
          MapTaskRef task = job.pending_map.front();
          job.pending_map.pop_front();
          SimMillis duration = 0;
          Status st = run_map_task(&job, task, &duration);
          if (!st.ok()) {
            fail_job(&job, std::move(st));
            break;
          }
          --free_map_slots;
          ++job.active_map_tasks;
          events.push(
              {now_ + duration, seq++, EventKind::kMapDone, job.job_index});
        }
        if (!job.failed && job.pending_map.empty() &&
            job.active_map_tasks == 0 && job.phase == JobPhase::kMap) {
          on_map_phase_complete(&job);
        }
      }
      if (job.phase == JobPhase::kReduce) {
        while (free_reduce_slots > 0 && !job.pending_reduce.empty()) {
          int partition = job.pending_reduce.front();
          job.pending_reduce.pop_front();
          SimMillis duration = 0;
          Status st = run_reduce_task(&job, partition, &duration);
          if (!st.ok()) {
            fail_job(&job, std::move(st));
            break;
          }
          --free_reduce_slots;
          ++job.active_reduce_tasks;
          events.push({now_ + duration, seq++, EventKind::kReduceDone,
                       job.job_index});
        }
      }
    }
  };

  while (unfinished > 0) {
    schedule();
    if (events.empty()) {
      if (unfinished > 0) {
        return Status::Internal("scheduler deadlock: jobs pending, no events");
      }
      break;
    }
    Event ev = events.top();
    events.pop();
    now_ = std::max(now_, ev.time);
    RunningJob& job = jobs[ev.job_index];
    switch (ev.kind) {
      case EventKind::kJobReady:
        if (!job.failed && job.phase == JobPhase::kStartingUp) {
          // Check the broadcast memory budget at task-launch time: the build
          // side is loaded by the first task wave, which is when Jaql's
          // broadcast join discovers it does not fit and dies.
          double need = static_cast<double>(job.spec->side_memory_bytes) *
                        config_.broadcast_memory_factor;
          if (need > static_cast<double>(config_.memory_per_task_bytes)) {
            fail_job(&job,
                     Status::OutOfMemory(StrFormat(
                         "broadcast build side of %s needs %.0f bytes "
                         "(task memory %llu)",
                         job.spec->name.c_str(), need,
                         static_cast<unsigned long long>(
                             config_.memory_per_task_bytes))));
          } else {
            job.phase = JobPhase::kMap;
          }
        }
        break;
      case EventKind::kMapDone:
        ++free_map_slots;
        --job.active_map_tasks;
        if (job.failed) {
          if (job.active_map_tasks == 0 && job.active_reduce_tasks == 0 &&
              job.phase != JobPhase::kDone) {
            job.phase = JobPhase::kDone;
            job.result.finish_time_ms = now_;
            dfs_->Delete(job.spec->output_path).ok();
            job.output = nullptr;
            --unfinished;
          }
        } else if (job.pending_map.empty() && job.active_map_tasks == 0 &&
                   job.phase == JobPhase::kMap) {
          on_map_phase_complete(&job);
        }
        break;
      case EventKind::kShuffleDone:
        if (!job.failed) {
          job.phase = JobPhase::kReduce;
          for (int r = 0; r < job.num_reduce_tasks; ++r) {
            job.pending_reduce.push_back(r);
          }
        }
        break;
      case EventKind::kReduceDone:
        ++free_reduce_slots;
        --job.active_reduce_tasks;
        if (job.failed) {
          if (job.active_map_tasks == 0 && job.active_reduce_tasks == 0 &&
              job.phase != JobPhase::kDone) {
            job.phase = JobPhase::kDone;
            job.result.finish_time_ms = now_;
            dfs_->Delete(job.spec->output_path).ok();
            job.output = nullptr;
            --unfinished;
          }
        } else if (job.pending_reduce.empty() &&
                   job.active_reduce_tasks == 0 &&
                   job.phase == JobPhase::kReduce) {
          finish_job(&job);
        }
        break;
    }
  }

  std::vector<JobResult> results;
  results.reserve(jobs.size());
  for (RunningJob& job : jobs) {
    job.result.output = job.output;
    results.push_back(std::move(job.result));
  }
  return results;
}

}  // namespace dyno
