#include "mr/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <deque>
#include <queue>
#include <utility>

#include "common/string_util.h"
#include "mr/worker_pool.h"

namespace dyno {

void Counters::MergeFrom(const Counters& other) {
  map_input_records += other.map_input_records;
  map_input_bytes += other.map_input_bytes;
  map_output_records += other.map_output_records;
  map_output_bytes += other.map_output_bytes;
  reduce_input_records += other.reduce_input_records;
  output_records += other.output_records;
  output_bytes += other.output_bytes;
}

namespace {

/// A map task to run: which input and which split of it.
struct MapTaskRef {
  int input_index;
  int split_index;
};

enum class JobPhase { kStartingUp, kMap, kShuffle, kReduce, kDone };

/// Execution state for one concurrently running job.
struct RunningJob {
  const JobSpec* spec = nullptr;
  int job_index = 0;
  JobPhase phase = JobPhase::kStartingUp;
  SimMillis ready_time = 0;  ///< submit + startup latency.

  std::deque<MapTaskRef> pending_map;
  int active_map_tasks = 0;
  int map_seq = 0;  ///< Tasks launched so far (distributed-cache billing).

  /// Shuffle buffer: all (key, value) emissions with their encoded size.
  /// Only touched on the scheduler thread — worker-side emissions are
  /// buffered per task and merged here in launch order.
  std::vector<std::pair<Value, Value>> emissions;
  uint64_t emission_bytes = 0;

  /// Reduce-side state.
  int num_reduce_tasks = 0;
  std::vector<std::vector<std::pair<Value, Value>>> partitions;
  std::deque<int> pending_reduce;
  int active_reduce_tasks = 0;

  std::shared_ptr<DfsFile> output;
  JobResult result;
  double observer_cpu_units = 0.0;
  bool failed = false;

  bool Finished() const { return phase == JobPhase::kDone; }
};

enum class EventKind { kJobReady, kMapDone, kShuffleDone, kReduceDone };

struct Event {
  SimMillis time;
  uint64_t seq;  ///< Tie-breaker for determinism.
  EventKind kind;
  int job_index;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Everything one task's data flow produces. Filled on a worker thread,
/// then merged into the RunningJob on the scheduler thread in deterministic
/// launch order — the worker never touches shared job state.
struct TaskOutcome {
  Status status;
  Split output;  ///< Records written via ctx->Output().
  std::vector<std::pair<Value, Value>> emissions;
  uint64_t emitted_bytes = 0;
  uint64_t input_records = 0;
  uint64_t input_bytes = 0;          ///< Map only; 0 when the task errored.
  uint64_t reduce_input_records = 0;
  uint64_t reduce_input_bytes = 0;
  double cpu_units = 0.0;  ///< Excludes observer charges (added at commit).
};

/// One launched task: the inputs decided by the scheduler plus the outcome
/// produced by the worker.
struct TaskLaunch {
  RunningJob* job = nullptr;
  bool is_map = true;
  MapTaskRef map_ref{0, 0};
  const Split* split = nullptr;  ///< Input split (map tasks).
  int partition = -1;            ///< Reduce tasks.
  int task_index = 0;
  SimMillis setup_ms = 0;  ///< Side-data load charge, decided at launch.
  std::vector<std::pair<Value, Value>> bucket;  ///< Reduce input, moved in.
  TaskOutcome outcome;
};

/// MapContext implementation that buffers into the task's own outcome.
class TaskMapContext : public MapContext {
 public:
  TaskMapContext(TaskOutcome* out, int task_index)
      : out_(out), task_index_(task_index) {}

  void Emit(Value key, Value value) override {
    size_t bytes = key.EncodedSize() + value.EncodedSize();
    out_->emitted_bytes += bytes;
    out_->emissions.emplace_back(std::move(key), std::move(value));
  }

  void Output(Value record) override {
    record.EncodeTo(&out_->output.data);
    out_->output.num_records += 1;
  }

  void ChargeCpu(double units) override { extra_cpu_ += units; }

  int task_index() const override { return task_index_; }

  double extra_cpu() const { return extra_cpu_; }

 private:
  TaskOutcome* out_;
  int task_index_;
  double extra_cpu_ = 0.0;
};

class TaskReduceContext : public ReduceContext {
 public:
  explicit TaskReduceContext(TaskOutcome* out) : out_(out) {}

  void Output(Value record) override {
    record.EncodeTo(&out_->output.data);
    out_->output.num_records += 1;
  }

  void ChargeCpu(double units) override { extra_cpu_ += units; }

  double extra_cpu() const { return extra_cpu_; }

 private:
  TaskOutcome* out_;
  double extra_cpu_ = 0.0;
};

SimMillis CeilDiv(double amount, double rate) {
  if (amount <= 0.0) return 0;
  return static_cast<SimMillis>(std::ceil(amount / rate));
}

/// Runs one map task's data flow. Worker-thread safe: reads only the
/// immutable spec/split and writes only the task-local outcome. (User map
/// functions may still touch shared state of their own — e.g. Coordinator
/// counters — which must be internally synchronized and commutative.)
void ExecuteMapTask(const MapInput& input, const Split& split,
                    int task_index, TaskOutcome* out) {
  TaskMapContext ctx(out, task_index);
  SplitReader reader(&split);
  while (!reader.AtEnd()) {
    Result<Value> record = reader.Next();
    if (!record.ok()) {
      out->status = record.status();
      return;
    }
    out->input_records += 1;
    out->cpu_units += 1.0 + input.cpu_per_record;
    Status st = input.map_fn(*record, &ctx);
    if (!st.ok()) {
      out->status = st;
      return;
    }
  }
  out->input_bytes = split.num_bytes();
  if (input.flush_fn) {
    Status st = input.flush_fn(&ctx);
    if (!st.ok()) {
      out->status = st;
      return;
    }
  }
  out->cpu_units += ctx.extra_cpu();
}

/// Runs one reduce task's data flow over its (moved-in) partition bucket.
void ExecuteReduceTask(const JobSpec& spec,
                       std::vector<std::pair<Value, Value>> bucket,
                       TaskOutcome* out) {
  std::stable_sort(bucket.begin(), bucket.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.Compare(b.first) < 0;
                   });
  for (const auto& [key, value] : bucket) {
    out->reduce_input_bytes += key.EncodedSize() + value.EncodedSize();
  }
  out->reduce_input_records = bucket.size();

  TaskReduceContext ctx(out);
  out->cpu_units += static_cast<double>(bucket.size());
  size_t i = 0;
  while (i < bucket.size()) {
    size_t j = i + 1;
    while (j < bucket.size() &&
           bucket[j].first.Compare(bucket[i].first) == 0) {
      ++j;
    }
    std::vector<Value> values;
    values.reserve(j - i);
    for (size_t k = i; k < j; ++k) values.push_back(bucket[k].second);
    Status st = spec.reduce_fn(bucket[i].first, values, &ctx);
    if (!st.ok()) {
      out->status = st;
      return;
    }
    i = j;
  }
  out->cpu_units += ctx.extra_cpu();

  // n log n sort charge for the merge-sort of this partition.
  if (!bucket.empty()) {
    out->cpu_units += static_cast<double>(bucket.size()) *
                      std::log2(static_cast<double>(bucket.size()) + 1.0);
  }
}

}  // namespace

MapReduceEngine::MapReduceEngine(Dfs* dfs, ClusterConfig config)
    : dfs_(dfs), config_(config) {}

MapReduceEngine::~MapReduceEngine() = default;

Result<JobResult> MapReduceEngine::Submit(const JobSpec& spec) {
  DYNO_ASSIGN_OR_RETURN(std::vector<JobResult> results, SubmitAll({spec}));
  return results[0];
}

Result<std::vector<JobResult>> MapReduceEngine::SubmitAll(
    const std::vector<JobSpec>& specs) {
  // --- Validate and initialize job states. ---
  std::vector<RunningJob> jobs(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const JobSpec& spec = specs[i];
    if (spec.inputs.empty()) {
      return Status::InvalidArgument("job has no inputs: " + spec.name);
    }
    if (spec.output_path.empty()) {
      return Status::InvalidArgument("job has no output path: " + spec.name);
    }
    RunningJob& job = jobs[i];
    job.spec = &spec;
    job.job_index = static_cast<int>(i);
    job.ready_time =
        now_ + (spec.reuse_warm_containers ? 0 : config_.job_startup_ms);
    job.result.submit_time_ms = now_;
    for (size_t in = 0; in < spec.inputs.size(); ++in) {
      const MapInput& input = spec.inputs[in];
      if (input.file == nullptr) {
        return Status::InvalidArgument("null input file in " + spec.name);
      }
      if (input.split_indexes.empty()) {
        for (size_t s = 0; s < input.file->splits().size(); ++s) {
          job.pending_map.push_back(
              {static_cast<int>(in), static_cast<int>(s)});
        }
      } else {
        for (int s : input.split_indexes) {
          if (s < 0 || static_cast<size_t>(s) >= input.file->splits().size()) {
            return Status::InvalidArgument(
                StrFormat("split index %d out of range in %s", s,
                          spec.name.c_str()));
          }
          job.pending_map.push_back({static_cast<int>(in), s});
        }
      }
    }
    auto output = dfs_->Create(spec.output_path);
    if (!output.ok()) return output.status();
    job.output = *output;
  }

  if (getenv("DYNO_DEBUG_JOBS") != nullptr) {
    for (const RunningJob& job : jobs) {
      uint64_t in_bytes = 0;
      for (const MapInput& input : job.spec->inputs) {
        in_bytes += input.file->num_bytes();
      }
      std::fprintf(stderr,
                   "[job] %s inputs=%zu in_bytes=%llu side_mem=%llu %s\n",
                   job.spec->name.c_str(), job.spec->inputs.size(),
                   (unsigned long long)in_bytes,
                   (unsigned long long)job.spec->side_memory_bytes,
                   job.spec->reduce_fn ? "map-reduce" : "map-only");
    }
  }

  // Size the worker pool to the configured thread count. The pool persists
  // across submissions and is resized lazily when the config changes.
  int want_threads = config_.execution_threads;
  if (want_threads <= 1) {
    pool_.reset();
  } else if (pool_ == nullptr || pool_->size() != want_threads) {
    pool_ = std::make_unique<WorkerPool>(want_threads);
  }

  // --- Discrete-event simulation. ---
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  uint64_t seq = 0;
  for (RunningJob& job : jobs) {
    events.push({job.ready_time, seq++, EventKind::kJobReady, job.job_index});
  }

  int free_map_slots = config_.map_slots;
  int free_reduce_slots = config_.reduce_slots;
  int unfinished = static_cast<int>(jobs.size());

  // Tears down a failed job once its last in-flight task has drained (or
  // immediately when none are in flight). The single home for the teardown
  // sequence formerly duplicated across fail_job and the kMapDone /
  // kReduceDone handlers.
  auto drain_failed_job = [&](RunningJob* job) {
    if (!job->failed || job->phase == JobPhase::kDone) return;
    if (job->active_map_tasks != 0 || job->active_reduce_tasks != 0) return;
    job->phase = JobPhase::kDone;
    job->result.finish_time_ms = now_;
    dfs_->Delete(job->spec->output_path).ok();
    job->output = nullptr;
    --unfinished;
  };

  auto fail_job = [&](RunningJob* job, Status status) {
    job->failed = true;
    job->result.status = std::move(status);
    job->pending_map.clear();
    job->pending_reduce.clear();
    drain_failed_job(job);
  };

  auto finish_job = [&](RunningJob* job) {
    job->phase = JobPhase::kDone;
    job->result.finish_time_ms = now_;
    job->result.observer_overhead_ms = static_cast<SimMillis>(
        std::ceil(job->observer_cpu_units / config_.cpu_units_per_ms));
    --unfinished;
  };

  // Charges for loading broadcast side data, honoring the distributed-cache
  // mode (first `num_nodes` tasks pay; later waves find it cached locally).
  auto side_load_ms = [&](RunningJob* job) -> SimMillis {
    uint64_t bytes = job->spec->side_load_bytes;
    if (bytes == 0) return 0;
    if (job->spec->side_data_via_distributed_cache &&
        job->map_seq >= config_.num_nodes) {
      return 0;
    }
    return CeilDiv(static_cast<double>(bytes),
                   config_.side_load_bytes_per_ms);
  };

  // Transition after the map phase drains.
  auto on_map_phase_complete = [&](RunningJob* job) {
    if (!job->spec->reduce_fn) {
      finish_job(job);
      return;
    }
    job->phase = JobPhase::kShuffle;
    int reducers = job->spec->num_reduce_tasks;
    if (reducers <= 0) {
      reducers = static_cast<int>(
          job->emission_bytes / config_.bytes_per_reduce_task + 1);
      reducers = std::clamp(reducers, 1, config_.reduce_slots);
    }
    job->num_reduce_tasks = reducers;
    job->partitions.assign(reducers, {});
    for (auto& [key, value] : job->emissions) {
      size_t p = key.Hash() % static_cast<size_t>(reducers);
      job->partitions[p].emplace_back(std::move(key), std::move(value));
    }
    job->emissions.clear();
    job->emissions.shrink_to_fit();
    // Shuffle is billed at the cluster's aggregate cross-network rate: the
    // all-to-all transfer is bisection-bandwidth bound, not per-reducer
    // parallel, which is what makes repartitioning a large relation so much
    // more expensive than broadcasting a small one (paper §2.2.1).
    SimMillis shuffle_ms = CeilDiv(static_cast<double>(job->emission_bytes),
                                   config_.shuffle_bytes_per_ms);
    events.push({now_ + shuffle_ms, seq++, EventKind::kShuffleDone,
                 job->job_index});
  };

  // Replays a task's output records through the job's output observer —
  // on the scheduler thread, in launch order, so observer state is updated
  // deterministically and never concurrently. Returns the CPU charge.
  auto replay_observer = [&](RunningJob* job, const Split& out) -> double {
    if (!job->spec->output_observer || out.num_records == 0) return 0.0;
    SplitReader reader(&out);
    while (!reader.AtEnd()) {
      Result<Value> record = reader.Next();
      if (!record.ok()) break;  // Unreachable: we encoded these records.
      job->spec->output_observer(*record);
    }
    double charge = static_cast<double>(out.num_records) *
                    job->spec->observer_cpu_per_record;
    job->observer_cpu_units += charge;
    return charge;
  };

  // Commits one finished task back into its job: counters, emissions,
  // observer replay, output splits, simulated duration and completion
  // event. Runs on the scheduler thread in launch order.
  auto commit_task = [&](TaskLaunch& t) {
    RunningJob* job = t.job;
    TaskOutcome& o = t.outcome;
    bool already_failed = job->failed;
    double cpu = o.cpu_units;
    SimMillis duration = 0;
    if (t.is_map) {
      if (!already_failed) {
        Counters& c = job->result.counters;
        c.map_input_records += o.input_records;
        c.map_input_bytes += o.input_bytes;
        c.map_output_records += o.emissions.size();
        c.map_output_bytes += o.emitted_bytes;
        c.output_records += o.output.num_records;
        if (o.status.ok()) {
          cpu += replay_observer(job, o.output);
          job->emission_bytes += o.emitted_bytes;
          for (auto& kv : o.emissions) {
            job->emissions.push_back(std::move(kv));
          }
          ++job->result.map_tasks_run;
        }
      }
      uint64_t written_bytes = job->spec->reduce_fn
                                   ? o.emitted_bytes
                                   : o.output.num_bytes();
      duration = t.setup_ms +
                 CeilDiv(static_cast<double>(t.split->num_bytes()),
                         config_.map_read_bytes_per_ms) +
                 CeilDiv(cpu, config_.cpu_units_per_ms) +
                 CeilDiv(static_cast<double>(written_bytes),
                         config_.map_write_bytes_per_ms);
      if (!already_failed && o.status.ok() && !job->spec->reduce_fn &&
          o.output.num_records > 0) {
        job->result.counters.output_bytes += o.output.num_bytes();
        job->output->AppendSplit(std::move(o.output));
      }
      events.push({now_ + duration, seq++, EventKind::kMapDone,
                   job->job_index});
    } else {
      if (!already_failed) {
        Counters& c = job->result.counters;
        c.reduce_input_records += o.reduce_input_records;
        c.output_records += o.output.num_records;
        if (o.status.ok()) {
          cpu += replay_observer(job, o.output);
          ++job->result.reduce_tasks_run;
        }
      }
      duration = CeilDiv(static_cast<double>(o.reduce_input_bytes),
                         config_.reduce_read_bytes_per_ms) +
                 CeilDiv(cpu, config_.cpu_units_per_ms) +
                 CeilDiv(static_cast<double>(o.output.num_bytes()),
                         config_.reduce_write_bytes_per_ms);
      if (!already_failed && o.status.ok() && o.output.num_records > 0) {
        job->result.counters.output_bytes += o.output.num_bytes();
        job->output->AppendSplit(std::move(o.output));
      }
      events.push({now_ + duration, seq++, EventKind::kReduceDone,
                   job->job_index});
    }
    if (!already_failed && !o.status.ok()) {
      fail_job(job, o.status);
    }
  };

  // Assigns free slots to pending tasks (FIFO across jobs), executes the
  // resulting wave of task data flows — in parallel on the worker pool when
  // one is configured — and commits the outcomes in launch order. All
  // launch decisions, including stop-condition checks, observe only
  // *committed* state: no task is in flight while they are made, which is
  // what makes the simulation bit-identical for any thread count.
  auto schedule = [&]() {
    std::vector<TaskLaunch> wave;
    for (RunningJob& job : jobs) {
      if (job.phase == JobPhase::kMap && now_ >= job.ready_time) {
        // The stop condition is evaluated once per scheduling pass, before
        // the wave launches: concurrently launched tasks cannot observe
        // each other's output (they couldn't on a real cluster either);
        // tasks already running always finish their whole split (§4.2).
        if (!job.pending_map.empty() && job.spec->stop_condition &&
            job.spec->stop_condition()) {
          job.result.map_tasks_skipped +=
              static_cast<int>(job.pending_map.size());
          job.pending_map.clear();
        }
        while (free_map_slots > 0 && !job.pending_map.empty()) {
          MapTaskRef task = job.pending_map.front();
          job.pending_map.pop_front();
          TaskLaunch launch;
          launch.job = &job;
          launch.is_map = true;
          launch.map_ref = task;
          launch.split =
              &job.spec->inputs[task.input_index].file->splits()
                   [task.split_index];
          launch.setup_ms = side_load_ms(&job);
          launch.task_index = job.map_seq;
          ++job.map_seq;
          --free_map_slots;
          ++job.active_map_tasks;
          wave.push_back(std::move(launch));
        }
        if (!job.failed && job.pending_map.empty() &&
            job.active_map_tasks == 0 && job.phase == JobPhase::kMap) {
          on_map_phase_complete(&job);
        }
      }
      if (job.phase == JobPhase::kReduce) {
        while (free_reduce_slots > 0 && !job.pending_reduce.empty()) {
          int partition = job.pending_reduce.front();
          job.pending_reduce.pop_front();
          TaskLaunch launch;
          launch.job = &job;
          launch.is_map = false;
          launch.partition = partition;
          launch.bucket = std::move(job.partitions[partition]);
          --free_reduce_slots;
          ++job.active_reduce_tasks;
          wave.push_back(std::move(launch));
        }
      }
    }
    if (wave.empty()) return;

    auto execute = [](TaskLaunch& t) {
      if (t.is_map) {
        ExecuteMapTask(t.job->spec->inputs[t.map_ref.input_index], *t.split,
                       t.task_index, &t.outcome);
      } else {
        ExecuteReduceTask(*t.job->spec, std::move(t.bucket), &t.outcome);
      }
    };
    if (pool_ != nullptr && wave.size() > 1) {
      std::vector<std::function<void()>> closures;
      closures.reserve(wave.size());
      for (TaskLaunch& t : wave) {
        closures.push_back([&t, &execute] { execute(t); });
      }
      pool_->RunBatch(std::move(closures));
    } else {
      for (TaskLaunch& t : wave) execute(t);
    }
    for (TaskLaunch& t : wave) commit_task(t);
  };

  auto handle_event = [&](const Event& ev) {
    RunningJob& job = jobs[ev.job_index];
    switch (ev.kind) {
      case EventKind::kJobReady:
        if (!job.failed && job.phase == JobPhase::kStartingUp) {
          // Check the broadcast memory budget at task-launch time: the build
          // side is loaded by the first task wave, which is when Jaql's
          // broadcast join discovers it does not fit and dies.
          double need = static_cast<double>(job.spec->side_memory_bytes) *
                        config_.broadcast_memory_factor;
          if (need > static_cast<double>(config_.memory_per_task_bytes)) {
            fail_job(&job,
                     Status::OutOfMemory(StrFormat(
                         "broadcast build side of %s needs %.0f bytes "
                         "(task memory %llu)",
                         job.spec->name.c_str(), need,
                         static_cast<unsigned long long>(
                             config_.memory_per_task_bytes))));
          } else {
            job.phase = JobPhase::kMap;
          }
        }
        break;
      case EventKind::kMapDone:
        ++free_map_slots;
        --job.active_map_tasks;
        if (job.failed) {
          drain_failed_job(&job);
        } else if (job.pending_map.empty() && job.active_map_tasks == 0 &&
                   job.phase == JobPhase::kMap) {
          on_map_phase_complete(&job);
        }
        break;
      case EventKind::kShuffleDone:
        if (!job.failed) {
          job.phase = JobPhase::kReduce;
          for (int r = 0; r < job.num_reduce_tasks; ++r) {
            job.pending_reduce.push_back(r);
          }
        }
        break;
      case EventKind::kReduceDone:
        ++free_reduce_slots;
        --job.active_reduce_tasks;
        if (job.failed) {
          drain_failed_job(&job);
        } else if (job.pending_reduce.empty() &&
                   job.active_reduce_tasks == 0 &&
                   job.phase == JobPhase::kReduce) {
          finish_job(&job);
        }
        break;
    }
  };

  while (unfinished > 0) {
    schedule();
    if (events.empty()) {
      if (unfinished > 0) {
        return Status::Internal("scheduler deadlock: jobs pending, no events");
      }
      break;
    }
    Event ev = events.top();
    events.pop();
    now_ = std::max(now_, ev.time);
    handle_event(ev);
    // Drain every event at this same timestamp before rescheduling, so all
    // slots freed at one simulated instant are refilled as a single wave —
    // that wave is what the worker pool executes in parallel.
    while (!events.empty() && events.top().time <= now_) {
      Event next = events.top();
      events.pop();
      handle_event(next);
    }
  }

  std::vector<JobResult> results;
  results.reserve(jobs.size());
  for (RunningJob& job : jobs) {
    job.result.output = job.output;
    results.push_back(std::move(job.result));
  }
  return results;
}

}  // namespace dyno
