#include "mr/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <deque>
#include <map>
#include <optional>
#include <queue>
#include <utility>

#include "columnar/batch_eval.h"
#include "common/crc32c.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"
#include "mr/worker_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dyno {

void Counters::MergeFrom(const Counters& other) {
  map_input_records += other.map_input_records;
  map_input_bytes += other.map_input_bytes;
  map_output_records += other.map_output_records;
  map_output_bytes += other.map_output_bytes;
  reduce_input_records += other.reduce_input_records;
  output_records += other.output_records;
  output_bytes += other.output_bytes;
}

namespace {

/// A map task to run: which input and which split of it.
struct MapTaskRef {
  int input_index;
  int split_index;
};

enum class JobPhase { kStartingUp, kMap, kShuffle, kReduce, kDone };

/// A queued logical task. `not_before` gates retries: a task re-enters the
/// queue immediately after its attempt fails but only becomes launchable
/// once its backoff elapses, keeping queue order deterministic.
struct PendingTask {
  int task_id = 0;
  SimMillis not_before = 0;
};

/// Attempt bookkeeping for one logical task (fault model).
struct TaskRunState {
  int failures = 0;             ///< Failed attempts so far.
  bool completed = false;       ///< Some attempt has finished.
  bool data_committed = false;  ///< A successful attempt's data is staged.
  bool speculated = false;      ///< A backup attempt was launched.
  bool primary_in_flight = false;
  bool backup_in_flight = false;
  SimMillis launch_time = 0;      ///< Launch of the in-flight primary.
  SimMillis expected_finish = 0;  ///< That attempt's completion time.
  SimMillis base_duration = 0;    ///< Its duration before straggler factor.
  int node = -1;                  ///< Node hosting the completed output.
  Status last_error;              ///< Most recent attempt failure.

  /// Poison-record state (map tasks only; survives node-crash resets — the
  /// records are a property of the data, not of any attempt). Positions are
  /// drawn once, at the task's first launch.
  bool poison_drawn = false;
  std::vector<uint64_t> poison;  ///< Sorted poison record indexes.
  int poison_failures = 0;       ///< Attempts that died on a poison record.
  bool skip_mode = false;        ///< Re-running with record skipping on.
};

/// One logical task's staged data: everything its successful attempt
/// produced, held per task until the job finishes (or, for map outputs of
/// map-reduce jobs, until a node crash invalidates it). Assembling job
/// outputs from this in task-id order at finish time is what keeps results
/// byte-identical whether or not tasks were re-executed out of order.
struct TaskData {
  bool valid = false;
  Counters counters;  ///< This task's contribution alone.
  Split output;       ///< Map-only or reduce output records.
  std::vector<std::pair<Value, Value>> emissions;  ///< Map of a reduce job.
  uint64_t emitted_bytes = 0;
  double observer_charge = 0.0;  ///< CPU units the observer replay costs.
  Split quarantine;   ///< Poison records skipped by this (map) task.
  std::vector<uint64_t> quarantine_indexes;  ///< Their record indexes.
  /// CRC-framed spill runs of a reduce task that sorted externally; written
  /// to the job's `.spill/` sibling DFS file at durable completion.
  std::vector<Split> spill_runs;
};

/// Execution state for one concurrently running job.
struct RunningJob {
  const JobSpec* spec = nullptr;
  int job_index = 0;
  JobPhase phase = JobPhase::kStartingUp;
  SimMillis ready_time = 0;  ///< submit + startup latency.

  std::vector<MapTaskRef> map_defs;  ///< task_id -> (input, split).
  std::vector<TaskRunState> map_states;
  std::vector<TaskData> map_data;  ///< task_id -> staged outputs.
  std::deque<PendingTask> pending_map;
  int map_tasks_remaining = 0;  ///< Logical tasks not completed/skipped.
  int active_map_tasks = 0;
  int map_seq = 0;  ///< Tasks launched so far (distributed-cache billing).

  /// Reduce-side state.
  int num_reduce_tasks = 0;
  std::vector<std::vector<std::pair<Value, Value>>> partitions;
  std::vector<TaskRunState> reduce_states;
  std::vector<TaskData> reduce_data;
  std::deque<PendingTask> pending_reduce;
  int reduce_tasks_remaining = 0;
  int active_reduce_tasks = 0;
  bool reduce_opened = false;  ///< First shuffle completed at least once.
  /// Bumped when a node crash invalidates map outputs mid-shuffle or later;
  /// a kShuffleDone event with a stale epoch is ignored.
  int shuffle_epoch = 0;
  /// Emission bytes already billed to the network, so a re-shuffle after a
  /// crash transfers only the re-executed maps' bytes.
  uint64_t shuffled_bytes = 0;

  /// Durations of completed attempts, per phase — the speculation median.
  std::vector<SimMillis> completed_map_ms;
  std::vector<SimMillis> completed_reduce_ms;

  /// When the reduce phase opened (shuffle done) — trace span start.
  SimMillis reduce_start = 0;

  /// Per-job fault stream (engaged only when injection is enabled), seeded
  /// from the config seed and the job name so draws are independent of
  /// cross-job scheduling interleavings.
  std::optional<Rng> fault_rng;

  std::shared_ptr<DfsFile> output;
  JobResult result;
  double observer_cpu_units = 0.0;
  bool failed = false;

  /// Running total of quarantined poison records across completed map
  /// tasks (checked against the max_skipped_records budget; decremented
  /// when a node crash invalidates a completed task).
  uint64_t records_quarantined = 0;

  /// DFS paths of spill-run files written by completed reduce tasks;
  /// deleted when the job ends (they are scratch, not output).
  std::vector<std::string> spill_paths;

  bool Finished() const { return phase == JobPhase::kDone; }
};

enum class EventKind {
  kJobReady,
  kMapDone,
  kShuffleDone,
  kReduceDone,
  kNodeCrash,
  kNodeRecover,
  /// No-op: exists to force a scheduling pass at a known time (a retry
  /// backoff expiring, an in-flight task crossing the speculation cutoff).
  kWakeup,
};

struct Event {
  SimMillis time;
  uint64_t seq;  ///< Tie-breaker for determinism.
  EventKind kind;
  int job_index;
  int task_id = -1;               ///< Logical task (kMapDone/kReduceDone).
  bool attempt_failed = false;    ///< The attempt died (injected or real).
  bool poison_failure = false;    ///< It died on a poison record.
  bool speculative = false;       ///< This is a backup attempt finishing.
  SimMillis attempt_duration = 0;
  int node = -1;           ///< kNodeCrash/kNodeRecover target.
  bool scripted = false;   ///< Crash from FaultConfig::scripted_node_crashes.
  int shuffle_epoch = 0;   ///< kShuffleDone staleness check.
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Everything one task's data flow produces. Filled on a worker thread,
/// then merged into the RunningJob on the scheduler thread in deterministic
/// launch order — the worker never touches shared job state.
struct TaskOutcome {
  Status status;
  Split output;  ///< Records written via ctx->Output().
  std::vector<std::pair<Value, Value>> emissions;
  uint64_t emitted_bytes = 0;
  uint64_t input_records = 0;
  uint64_t input_bytes = 0;  ///< Map only; partial when the attempt errored.
  /// Row-encoded size of the input scanned (== input_bytes for row splits).
  /// Feeds counters.map_input_bytes so statistics are format-independent.
  uint64_t input_logical_bytes = 0;
  /// Columnar batches decoded by this attempt (scan.batches metric).
  uint64_t batches_decoded = 0;
  uint64_t reduce_input_records = 0;
  uint64_t reduce_input_bytes = 0;
  double cpu_units = 0.0;  ///< Excludes observer charges (added at commit).
  bool poison_failure = false;  ///< The attempt died on a poison record.
  Split quarantine;  ///< Poison records skipped in skip mode.
  std::vector<uint64_t> quarantine_indexes;
  /// Encoded spill runs produced by an externally-sorted reduce attempt
  /// (empty when the task sorted in memory).
  std::vector<Split> spill_runs_written;
};

/// One launched task: the inputs decided by the scheduler plus the outcome
/// produced by the worker.
struct TaskLaunch {
  RunningJob* job = nullptr;
  bool is_map = true;
  int task_id = 0;
  MapTaskRef map_ref{0, 0};
  const Split* split = nullptr;  ///< Input split (map tasks).
  int partition = -1;            ///< Reduce tasks.
  int task_index = 0;
  SimMillis setup_ms = 0;  ///< Side-data load charge, decided at launch.
  std::vector<std::pair<Value, Value>> bucket;  ///< Reduce input.
  /// Node the attempt was placed on (always >= 0 once launched).
  int node = 0;
  /// Fault draws, decided at launch on the scheduler thread. An attempt
  /// marked `inject_failure` never runs its data flow (the simulated
  /// container dies `fail_fraction` of the way through); `slowdown` > 1
  /// stretches the attempt's simulated duration. `crash_node` schedules a
  /// crash of the hosting node `crash_fraction` of the way through the
  /// attempt (the commit computes the absolute time once the duration is
  /// known).
  bool inject_failure = false;
  double fail_fraction = 0.0;
  double slowdown = 1.0;
  bool crash_node = false;
  double crash_fraction = 0.0;
  /// Data-integrity draws (also decided at launch on the scheduler thread).
  /// A map attempt re-reads its input block once per corrupt replica; all
  /// `replicas` copies corrupt is `block_data_loss` (no data flow runs). A
  /// reduce attempt re-fetches its bucket once per corrupt fetch; more
  /// corrupt fetches than max_shuffle_fetch_retries is `shuffle_data_loss`.
  int replicas = 1;
  int corrupt_replica_reads = 0;
  bool block_data_loss = false;
  int corrupt_fetches = 0;
  bool shuffle_data_loss = false;
  /// Poison-record plan for this map attempt (points into the logical
  /// task's TaskRunState, stable for the wave's lifetime).
  const std::vector<uint64_t>* poison = nullptr;
  bool skip_mode = false;
  /// Reduce-memory plan, decided at launch on the scheduler thread
  /// (DESIGN.md §6.10). `spill_runs` > 1 means the attempt's simulated
  /// sort state exceeds the task memory budget and it sorts externally in
  /// that many runs, merged in `spill_merge_passes` bounded-memory passes;
  /// the commit bills the pass I/O from `bucket_bytes`. `corrupt_spill`
  /// (drawn like the other corruption faults) makes run 0 read back
  /// corrupt, failing the attempt with DataLoss.
  int spill_runs = 0;
  int spill_merge_passes = 0;
  uint64_t bucket_bytes = 0;
  /// Simulated memory this attempt holds: expanded state when in-memory,
  /// the task budget when spilling. Feeds JobResult::peak_task_memory_bytes.
  uint64_t task_memory_bytes = 0;
  bool corrupt_spill = false;
  TaskOutcome outcome;
};

/// One attempt in flight, keyed by the seq of its completion event. A node
/// crash kills attempts by erasing their registry entry; the completion
/// event of a killed attempt is then simply ignored (its node's slots went
/// down with the node).
struct InFlightAttempt {
  int job_index = 0;
  bool is_map = true;
  int task_id = 0;
  bool speculative = false;
  int node = 0;
};

/// MapContext implementation that buffers into the task's own outcome.
class TaskMapContext : public MapContext {
 public:
  TaskMapContext(TaskOutcome* out, int task_index)
      : out_(out), task_index_(task_index) {}

  void Emit(Value key, Value value) override {
    size_t bytes = key.EncodedSize() + value.EncodedSize();
    out_->emitted_bytes += bytes;
    out_->emissions.emplace_back(std::move(key), std::move(value));
  }

  void Output(Value record) override {
    record.EncodeTo(&out_->output.data);
    out_->output.num_records += 1;
  }

  void ChargeCpu(double units) override { extra_cpu_ += units; }

  int task_index() const override { return task_index_; }

  double extra_cpu() const { return extra_cpu_; }

 private:
  TaskOutcome* out_;
  int task_index_;
  double extra_cpu_ = 0.0;
};

class TaskReduceContext : public ReduceContext {
 public:
  explicit TaskReduceContext(TaskOutcome* out) : out_(out) {}

  void Output(Value record) override {
    record.EncodeTo(&out_->output.data);
    out_->output.num_records += 1;
  }

  void ChargeCpu(double units) override { extra_cpu_ += units; }

  double extra_cpu() const { return extra_cpu_; }

 private:
  TaskOutcome* out_;
  double extra_cpu_ = 0.0;
};

SimMillis CeilDiv(double amount, double rate) {
  if (amount <= 0.0) return 0;
  return static_cast<SimMillis>(std::ceil(amount / rate));
}

/// Runs one map task's data flow. Worker-thread safe: reads only the
/// immutable spec/split and writes only the task-local outcome. (User map
/// functions may still touch shared state of their own — e.g. Coordinator
/// counters — which must be internally synchronized and commutative.)
void ExecuteMapTask(const MapInput& input, const Split& split,
                    int task_index, const std::vector<uint64_t>* poison,
                    bool skip_mode, TaskOutcome* out) {
  // Verified read: the block checksum is checked before any record is
  // decoded (as HDFS does). At-rest corruption of the stored bytes
  // surfaces here as DataLoss, never as silently wrong rows.
  {
    Status verify = VerifySplit(split);
    if (!verify.ok()) {
      out->status = verify;
      return;
    }
  }
  TaskMapContext ctx(out, task_index);

  // Columnar splits are decoded whole-block into rows first; any frame
  // defect that slipped past the checksum is still DataLoss, never a wrong
  // answer. Row splits stream record-at-a-time as they always have.
  const bool is_columnar = split.format == SplitFormat::kColumnar;
  std::vector<Value> batch_rows;
  if (is_columnar) {
    // The whole block was read to decode it, so billing is all-or-nothing.
    out->input_bytes =
        input.bill_logical_read ? split.logical_bytes : split.num_bytes();
    out->input_logical_bytes = split.logical_bytes;
    Result<std::vector<Value>> rows = DecodeSplitRows(split);
    if (!rows.ok()) {
      out->status = rows.status();
      return;
    }
    out->batches_decoded += 1;
    batch_rows = std::move(*rows);
  }

  // Pushed-down filter over a columnar batch runs batch-at-a-time: the
  // selection vector is computed up front (vectorized conjuncts at a CPU
  // discount) and consulted per row below. The keep bits are identical to
  // row-at-a-time evaluation, so results never depend on the format.
  std::vector<uint8_t> batch_keep;
  if (is_columnar && input.scan_filter != nullptr) {
    Result<columnar::BatchFilterResult> filtered =
        columnar::EvalFilterOverRows(input.scan_filter, batch_rows);
    if (!filtered.ok()) {
      out->status = filtered.status();
      return;
    }
    out->cpu_units += filtered->cpu_units;
    batch_keep = std::move(filtered->keep);
  }

  SplitReader reader(&split);
  size_t poison_next = 0;
  uint64_t record_index = 0;
  const uint64_t num_rows =
      is_columnar ? batch_rows.size() : split.num_records;
  while (true) {
    const Value* record = nullptr;
    Value row_storage;
    if (is_columnar) {
      if (record_index >= num_rows) break;
      record = &batch_rows[record_index];
    } else {
      if (reader.AtEnd()) break;
      Result<Value> next = reader.Next();
      if (!next.ok()) {
        out->status = next.status();
        return;
      }
      row_storage = std::move(*next);
      record = &row_storage;
      // Accumulated per record so an attempt that errors mid-split still
      // reports how much of the split it actually scanned (billed as read
      // time for the failed attempt).
      out->input_bytes = reader.offset();
      out->input_logical_bytes = reader.offset();
    }
    out->input_records += 1;
    if (poison != nullptr && poison_next < poison->size() &&
        (*poison)[poison_next] == record_index) {
      ++poison_next;
      if (!skip_mode) {
        // The map function "throws" on this record, killing the attempt.
        out->cpu_units += 1.0;
        out->poison_failure = true;
        out->status = Status::Internal(
            StrFormat("map function threw on poison record %llu",
                      (unsigned long long)record_index));
        return;
      }
      // Skip mode: the record is read (and billed) but never reaches the
      // map function; it goes to the quarantine instead of any output.
      out->cpu_units += 1.0;
      record->EncodeTo(&out->quarantine.data);
      out->quarantine.num_records += 1;
      out->quarantine_indexes.push_back(record_index);
      ++record_index;
      continue;
    }
    if (input.scan_filter != nullptr) {
      bool pass;
      if (is_columnar) {
        pass = batch_keep[record_index] != 0;
      } else {
        // Row splits evaluate the pushed-down filter record-at-a-time at
        // its full declared cost.
        out->cpu_units += input.scan_filter_cpu;
        Result<Value> v = input.scan_filter->Eval(*record);
        if (!v.ok()) {
          out->status = v.status();
          return;
        }
        pass = v->type() == Value::Type::kBool && v->bool_value();
      }
      ++record_index;
      out->cpu_units += 1.0;
      if (!pass) continue;
      out->cpu_units += input.cpu_per_record;
    } else {
      ++record_index;
      out->cpu_units += 1.0 + input.cpu_per_record;
    }
    Status st = input.map_fn(*record, &ctx);
    if (!st.ok()) {
      out->status = st;
      return;
    }
  }
  if (input.flush_fn) {
    Status st = input.flush_fn(&ctx);
    if (!st.ok()) {
      out->status = st;
      return;
    }
  }
  out->cpu_units += ctx.extra_cpu();
}

/// Runs one reduce task's data flow over its (moved-in) partition bucket.
/// `spill_runs` > 1 switches the sort to the bounded-memory external path:
/// the bucket is cut input-order into that many chunks, each chunk is
/// stable-sorted and round-tripped through the CRC-framed spill-run codec
/// (the encoded runs are staged in the outcome for the DFS write at durable
/// completion), and the decoded runs are stable-merged with ties going to
/// the lowest run index — which is exactly one full stable sort, so spilled
/// output is row-for-row identical to the in-memory path. `corrupt_spill`
/// models a flipped bit in run 0's stored bytes: the checksum must reject
/// it and the attempt dies with DataLoss (never a wrong answer).
void ExecuteReduceTask(const JobSpec& spec,
                       std::vector<std::pair<Value, Value>> bucket,
                       int spill_runs, bool corrupt_spill,
                       TaskOutcome* out) {
  for (const auto& [key, value] : bucket) {
    out->reduce_input_bytes += key.EncodedSize() + value.EncodedSize();
  }
  out->reduce_input_records = bucket.size();
  auto key_less = [](const std::pair<Value, Value>& a,
                     const std::pair<Value, Value>& b) {
    return a.first.Compare(b.first) < 0;
  };
  if (spill_runs > 1 && !bucket.empty()) {
    const size_t n = bucket.size();
    const size_t per_run =
        (n + static_cast<size_t>(spill_runs) - 1) /
        static_cast<size_t>(spill_runs);
    std::vector<std::vector<std::pair<Value, Value>>> decoded;
    for (size_t start = 0; start < n; start += per_run) {
      const size_t end = std::min(n, start + per_run);
      std::vector<std::pair<Value, Value>> run(
          std::make_move_iterator(bucket.begin() + start),
          std::make_move_iterator(bucket.begin() + end));
      std::stable_sort(run.begin(), run.end(), key_less);
      out->spill_runs_written.push_back(EncodeSpillRun(run));
    }
    if (corrupt_spill) {
      Split bad = out->spill_runs_written.front();
      if (!bad.data.empty()) bad.data[0] ^= 0x01;
      if (DecodeSpillRun(bad).ok()) {
        out->status = Status::Internal(
            "checksum failed to detect a corrupted spill run");
        return;
      }
      out->status = Status::DataLoss(StrFormat(
          "spill run 0 of reduce task in %s failed checksum verification "
          "on read-back",
          spec.name.c_str()));
      return;
    }
    for (const Split& s : out->spill_runs_written) {
      Result<std::vector<std::pair<Value, Value>>> run = DecodeSpillRun(s);
      if (!run.ok()) {
        out->status = run.status();
        return;
      }
      decoded.push_back(std::move(*run));
    }
    // Bounded-memory merge of the sorted runs; ties go to the lowest run
    // index, matching what one stable sort of the whole bucket yields.
    bucket.clear();
    bucket.reserve(n);
    std::vector<size_t> pos(decoded.size(), 0);
    while (true) {
      int best = -1;
      for (size_t r = 0; r < decoded.size(); ++r) {
        if (pos[r] >= decoded[r].size()) continue;
        if (best < 0 ||
            decoded[r][pos[r]].first.Compare(
                decoded[best][pos[best]].first) < 0) {
          best = static_cast<int>(r);
        }
      }
      if (best < 0) break;
      bucket.push_back(std::move(decoded[best][pos[best]]));
      ++pos[best];
    }
  } else {
    std::stable_sort(bucket.begin(), bucket.end(), key_less);
  }

  TaskReduceContext ctx(out);
  out->cpu_units += static_cast<double>(bucket.size());
  size_t i = 0;
  while (i < bucket.size()) {
    size_t j = i + 1;
    while (j < bucket.size() &&
           bucket[j].first.Compare(bucket[i].first) == 0) {
      ++j;
    }
    std::vector<Value> values;
    values.reserve(j - i);
    for (size_t k = i; k < j; ++k) values.push_back(bucket[k].second);
    Status st = spec.reduce_fn(bucket[i].first, values, &ctx);
    if (!st.ok()) {
      out->status = st;
      return;
    }
    i = j;
  }
  out->cpu_units += ctx.extra_cpu();

  // n log n sort charge for the merge-sort of this partition.
  if (!bucket.empty()) {
    out->cpu_units += static_cast<double>(bucket.size()) *
                      std::log2(static_cast<double>(bucket.size()) + 1.0);
  }
}

}  // namespace

Split EncodeSpillRun(const std::vector<std::pair<Value, Value>>& pairs) {
  Split run;
  for (const auto& [key, value] : pairs) {
    key.EncodeTo(&run.data);
    value.EncodeTo(&run.data);
  }
  run.num_records = 2 * pairs.size();
  run.logical_bytes = run.data.size();
  run.crc32c = Crc32c(run.data);
  return run;
}

Result<std::vector<std::pair<Value, Value>>> DecodeSpillRun(
    const Split& run) {
  DYNO_RETURN_IF_ERROR(VerifySplit(run));
  if (run.num_records % 2 != 0) {
    return Status::DataLoss(StrFormat(
        "spill run holds %llu records, not an even key/value count",
        (unsigned long long)run.num_records));
  }
  std::vector<std::pair<Value, Value>> pairs;
  pairs.reserve(run.num_records / 2);
  SplitReader reader(&run);
  while (!reader.AtEnd()) {
    Result<Value> key = reader.Next();
    if (!key.ok()) return key.status();
    if (reader.AtEnd()) {
      return Status::DataLoss("spill run ends with a dangling key");
    }
    Result<Value> value = reader.Next();
    if (!value.ok()) return value.status();
    pairs.emplace_back(std::move(*key), std::move(*value));
  }
  return pairs;
}

ClusterConfig MapReduceEngine::ResolveFaultEnv(ClusterConfig config) {
  if (config.faults.use_env_defaults && !config.faults.enabled()) {
    config.faults.ApplyEnvOverrides();
  }
  // The memory knobs ride the same gate: env-driven only when the caller
  // did not configure a memory mode in code.
  if (config.faults.use_env_defaults &&
      config.reduce_memory_mode == ClusterConfig::ReduceMemoryMode::kUnbounded) {
    config.ApplyMemoryEnvOverrides();
  }
  return config;
}

MapReduceEngine::MapReduceEngine(Dfs* dfs, ClusterConfig config)
    : dfs_(dfs), config_(ResolveFaultEnv(std::move(config))) {
  node_states_.assign(std::max(1, config_.num_nodes), NodeState{});
}

MapReduceEngine::~MapReduceEngine() = default;

Result<JobResult> MapReduceEngine::Submit(const JobSpec& spec) {
  DYNO_ASSIGN_OR_RETURN(std::vector<JobResult> results, SubmitAll({spec}));
  return results[0];
}

Result<std::vector<JobResult>> MapReduceEngine::SubmitAll(
    const std::vector<JobSpec>& specs) {
  if (submit_gate_) return submit_gate_(specs);
  return SubmitAllDirect(specs);
}

Result<std::vector<JobResult>> MapReduceEngine::SubmitAllDirect(
    const std::vector<JobSpec>& specs) {
  // Wave-pressure bookkeeping (see last_wave_pressure()): compare committed
  // slot time against the slot capacity available over the wave's duration.
  const SimMillis wave_start_ms = now_;
  const SimMillis busy_before_ms = busy_slot_ms_total_;

  // Whether failed task attempts are retried (Hadoop semantics) instead of
  // failing the whole job at the first error (legacy fail-fast).
  const bool retries_enabled = config_.faults.enabled();
  const int max_attempts = std::max(1, config_.faults.max_task_attempts);

  // Effective reduce-memory mode of one job: the per-job override wins,
  // otherwise the cluster-wide knob applies (DESIGN.md §6.10).
  auto job_memory_mode = [&](const RunningJob& job) {
    if (job.spec->reduce_memory_mode >= 0) {
      return static_cast<ClusterConfig::ReduceMemoryMode>(
          job.spec->reduce_memory_mode);
    }
    return config_.reduce_memory_mode;
  };

  // Cache instrument pointers once per submission; the hot paths below then
  // pay only a relaxed atomic per update.
  obs::Counter* m_jobs = nullptr;
  obs::Counter* m_map_attempts = nullptr;
  obs::Counter* m_reduce_attempts = nullptr;
  obs::Counter* m_retries = nullptr;
  obs::Counter* m_injected = nullptr;
  obs::Counter* m_spec_launches = nullptr;
  obs::Counter* m_spec_wins = nullptr;
  obs::Counter* m_node_crashes = nullptr;
  obs::Counter* m_node_recoveries = nullptr;
  obs::Counter* m_node_kills = nullptr;
  obs::Counter* m_maps_invalidated = nullptr;
  obs::Counter* m_shuffle_retries = nullptr;
  obs::Counter* m_block_corruptions = nullptr;
  obs::Counter* m_checksum_refetches = nullptr;
  obs::Counter* m_quarantined = nullptr;
  obs::Counter* m_integrity_failures = nullptr;
  /// Registered lazily on the first committed columnar decode (see below).
  obs::Counter* m_scan_batches = nullptr;
  /// Memory-model counters, registered lazily on first use so runs that
  /// never spill or OOM keep their exact metric registry.
  obs::Counter* m_spilled_tasks = nullptr;
  obs::Counter* m_spill_bytes = nullptr;
  obs::Counter* m_oom_failures = nullptr;
  obs::Histogram* h_map_ms = nullptr;
  obs::Histogram* h_reduce_ms = nullptr;
  obs::Histogram* h_job_ms = nullptr;
  if (metrics_ != nullptr) {
    m_jobs = metrics_->GetCounter("mr.jobs");
    m_map_attempts = metrics_->GetCounter("mr.map_attempts");
    m_reduce_attempts = metrics_->GetCounter("mr.reduce_attempts");
    m_retries = metrics_->GetCounter("mr.task_retries");
    m_injected = metrics_->GetCounter("mr.task_failures_injected");
    m_spec_launches = metrics_->GetCounter("mr.speculative_launches");
    m_spec_wins = metrics_->GetCounter("mr.speculative_wins");
    m_node_crashes = metrics_->GetCounter("mr.node_crashes");
    m_node_recoveries = metrics_->GetCounter("mr.node_recoveries");
    m_node_kills = metrics_->GetCounter("mr.node_attempt_kills");
    m_maps_invalidated = metrics_->GetCounter("mr.maps_invalidated");
    m_shuffle_retries = metrics_->GetCounter("mr.shuffle_fetch_retries");
    m_block_corruptions = metrics_->GetCounter("mr.integrity_block_corruptions");
    m_checksum_refetches =
        metrics_->GetCounter("mr.integrity_shuffle_refetches");
    m_quarantined = metrics_->GetCounter("mr.integrity_records_quarantined");
    m_integrity_failures =
        metrics_->GetCounter("mr.integrity_data_loss_failures");
    h_map_ms = metrics_->GetHistogram("mr.map_attempt_ms");
    h_reduce_ms = metrics_->GetHistogram("mr.reduce_attempt_ms");
    h_job_ms = metrics_->GetHistogram("mr.job_ms");
  }

  // --- Validate and initialize job states. ---
  std::vector<RunningJob> jobs(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const JobSpec& spec = specs[i];
    if (spec.inputs.empty()) {
      return Status::InvalidArgument("job has no inputs: " + spec.name);
    }
    if (spec.output_path.empty()) {
      return Status::InvalidArgument("job has no output path: " + spec.name);
    }
    if (spec.reduce_memory_mode < -1 || spec.reduce_memory_mode > 2) {
      return Status::InvalidArgument(
          StrFormat("bad reduce_memory_mode %d in %s",
                    spec.reduce_memory_mode, spec.name.c_str()));
    }
    RunningJob& job = jobs[i];
    job.spec = &spec;
    job.job_index = static_cast<int>(i);
    job.ready_time =
        now_ + (spec.reuse_warm_containers ? 0 : config_.job_startup_ms);
    job.result.submit_time_ms = now_;
    for (size_t in = 0; in < spec.inputs.size(); ++in) {
      const MapInput& input = spec.inputs[in];
      if (input.file == nullptr) {
        return Status::InvalidArgument("null input file in " + spec.name);
      }
      if (input.split_indexes.empty()) {
        // With split_indexes_exact, an empty list is a fully-pruned scan:
        // this input contributes zero map tasks.
        if (input.split_indexes_exact) continue;
        for (size_t s = 0; s < input.file->splits().size(); ++s) {
          job.map_defs.push_back({static_cast<int>(in), static_cast<int>(s)});
        }
      } else {
        for (int s : input.split_indexes) {
          if (s < 0 || static_cast<size_t>(s) >= input.file->splits().size()) {
            return Status::InvalidArgument(
                StrFormat("split index %d out of range in %s", s,
                          spec.name.c_str()));
          }
          job.map_defs.push_back({static_cast<int>(in), s});
        }
      }
    }
    job.map_states.assign(job.map_defs.size(), TaskRunState{});
    job.map_data.assign(job.map_defs.size(), TaskData{});
    job.map_tasks_remaining = static_cast<int>(job.map_defs.size());
    for (size_t t = 0; t < job.map_defs.size(); ++t) {
      job.pending_map.push_back({static_cast<int>(t), 0});
    }
    if (retries_enabled) {
      // Per-job fault stream. Jobs are identified by name for legacy
      // submissions; when a query id is present it salts the seed so two
      // concurrent queries submitting identically-named jobs (e.g. "scan")
      // draw independent faults instead of sharing one RNG stream.
      uint64_t fault_seed = HashBytes(spec.name, Mix64(config_.faults.seed));
      if (!spec.query_id.empty()) {
        fault_seed = HashBytes(spec.query_id, fault_seed);
      }
      job.fault_rng.emplace(fault_seed);
    }
    auto output = dfs_->Create(spec.output_path);
    if (!output.ok()) return output.status();
    job.output = *output;
  }

  if (trace_ != nullptr) {
    for (const RunningJob& job : jobs) {
      obs::TraceEvent ev =
          obs::TraceEvent(now_, -1, obs::TraceLane::kEngine, "mr",
                          "job_submit")
              .Arg("job", job.spec->name)
              .ArgInt("map_tasks", (int64_t)job.map_defs.size())
              .ArgBool("map_only", job.spec->reduce_fn == nullptr);
      // The query tag is appended last and only for query-scoped jobs, so
      // legacy (empty query_id) traces keep their exact historical bytes.
      if (!job.spec->query_id.empty()) {
        ev = std::move(ev).Arg("query", job.spec->query_id);
      }
      trace_->Record(std::move(ev));
    }
  }

  if (getenv("DYNO_DEBUG_JOBS") != nullptr) {
    for (const RunningJob& job : jobs) {
      uint64_t in_bytes = 0;
      for (const MapInput& input : job.spec->inputs) {
        in_bytes += input.file->num_bytes();
      }
      std::fprintf(stderr,
                   "[job] %s inputs=%zu in_bytes=%llu side_mem=%llu %s\n",
                   job.spec->name.c_str(), job.spec->inputs.size(),
                   (unsigned long long)in_bytes,
                   (unsigned long long)job.spec->side_memory_bytes,
                   job.spec->reduce_fn ? "map-reduce" : "map-only");
    }
  }

  // Size the worker pool to the configured thread count. The pool persists
  // across submissions and is resized lazily when the config changes.
  int want_threads = config_.execution_threads;
  if (want_threads <= 1) {
    pool_.reset();
  } else if (pool_ == nullptr || pool_->size() != want_threads) {
    pool_ = std::make_unique<WorkerPool>(want_threads);
  }

  // --- Discrete-event simulation. ---
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  uint64_t seq = 0;
  for (RunningJob& job : jobs) {
    events.push({job.ready_time, seq++, EventKind::kJobReady, job.job_index});
  }

  // --- Node fault domains: slots live on nodes. ---
  const int num_nodes = static_cast<int>(node_states_.size());
  // Slots divided evenly across nodes, remainder to the low ids. Total
  // capacity is exactly map_slots/reduce_slots, so with every node alive
  // scheduling behaves as the flat slot pool did.
  auto node_capacity = [&](int total, int node) {
    return total / num_nodes + (node < total % num_nodes ? 1 : 0);
  };
  std::vector<int> free_map(num_nodes, 0);
  std::vector<int> free_reduce(num_nodes, 0);
  int free_map_slots = 0;
  int free_reduce_slots = 0;
  int alive_nodes = 0;
  // Nodes whose recovery time passed while the engine was idle rejoin now;
  // still-pending recoveries re-enter the event queue (it does not persist
  // across submissions).
  for (int n = 0; n < num_nodes; ++n) {
    NodeState& ns = node_states_[n];
    if (!ns.alive && ns.recover_at >= 0 && ns.recover_at <= now_) {
      ns.alive = true;
    }
    if (!ns.alive && ns.recover_at > now_) {
      Event ev{ns.recover_at, seq++, EventKind::kNodeRecover, -1};
      ev.node = n;
      events.push(ev);
    }
    if (ns.alive) {
      ++alive_nodes;
      free_map[n] = node_capacity(config_.map_slots, n);
      free_reduce[n] = node_capacity(config_.reduce_slots, n);
      free_map_slots += free_map[n];
      free_reduce_slots += free_reduce[n];
    }
  }
  // Scripted crashes that have not fired yet (test/chaos hook); re-pushed
  // every submission until they fire, consumed exactly once.
  for (size_t c = scripted_crashes_consumed_;
       c < config_.faults.scripted_node_crashes.size(); ++c) {
    const auto& script = config_.faults.scripted_node_crashes[c];
    Event ev{std::max(script.at_ms, now_), seq++, EventKind::kNodeCrash, -1};
    ev.node = script.node;
    ev.scripted = true;
    events.push(ev);
  }

  // Attempts currently executing, keyed by the seq of their completion
  // event. Killing an attempt = erasing its entry; its completion event is
  // then ignored. std::map iterates in seq (launch) order, keeping crash
  // handling deterministic.
  std::map<uint64_t, InFlightAttempt> in_flight;

  // Picks the alive node with the most free slots of the phase (lowest id
  // wins ties); prefers any node other than `exclude` (a backup attempt
  // should not land next to its primary). Returns -1 if nothing is free.
  auto pick_node = [&](bool is_map, int exclude) {
    const std::vector<int>& free = is_map ? free_map : free_reduce;
    int best = -1;
    for (int n = 0; n < num_nodes; ++n) {
      if (!node_states_[n].alive || free[n] <= 0 || n == exclude) continue;
      if (best < 0 || free[n] > free[best]) best = n;
    }
    if (best < 0 && exclude >= 0) {
      for (int n = 0; n < num_nodes; ++n) {
        if (!node_states_[n].alive || free[n] <= 0) continue;
        if (best < 0 || free[n] > free[best]) best = n;
      }
    }
    return best;
  };

  int unfinished = static_cast<int>(jobs.size());

  // Tears down a failed job once its last in-flight task has drained (or
  // immediately when none are in flight). The single home for the teardown
  // sequence formerly duplicated across fail_job and the kMapDone /
  // kReduceDone handlers.
  // Closes out a job's observability record (success or failure): the
  // whole-job span plus job-level counters/latency.
  auto record_job_end = [&](RunningJob* job) {
    SimMillis elapsed = now_ - job->result.submit_time_ms;
    if (h_job_ms != nullptr) h_job_ms->Observe(elapsed);
    if (m_jobs != nullptr) m_jobs->Add();
    if (!job->spec->query_id.empty()) {
      query_slot_ms_[job->spec->query_id] +=
          job->result.map_slot_ms + job->result.reduce_slot_ms;
    }
    busy_slot_ms_total_ += job->result.map_slot_ms + job->result.reduce_slot_ms;
    if (trace_ == nullptr) return;
    obs::TraceEvent ev =
        obs::TraceEvent(job->result.submit_time_ms, elapsed,
                        obs::TraceLane::kEngine, "mr", "job")
                       .Arg("job", job->spec->name)
                       .ArgBool("ok", job->result.status.ok())
                       .ArgInt("map_tasks_run", job->result.map_tasks_run)
                       .ArgInt("map_tasks_skipped",
                               job->result.map_tasks_skipped)
                       .ArgInt("reduce_tasks_run", job->result.reduce_tasks_run)
                       .ArgInt("retries", job->result.task_retries)
                       .ArgInt("failures_injected",
                               job->result.task_failures_injected)
                       .ArgInt("speculative_launches",
                               job->result.speculative_launches)
                       .ArgInt("speculative_wins",
                               job->result.speculative_wins)
                       .ArgInt("node_attempt_kills",
                               job->result.attempts_killed_by_node)
                       .ArgInt("maps_invalidated",
                               job->result.maps_invalidated)
                       .ArgInt("shuffle_fetch_retries",
                               job->result.shuffle_fetch_retries)
                       .ArgInt("block_corruptions",
                               job->result.block_corruptions)
                       .ArgInt("checksum_refetches",
                               job->result.checksum_refetches)
                       .ArgInt("records_quarantined",
                               (int64_t)job->result.records_quarantined)
                       .ArgInt("output_records",
                               (int64_t)job->result.counters.output_records);
    // Memory args only under an active memory mode, so knob-off traces
    // keep their exact historical bytes (golden traces predate them).
    if (job_memory_mode(*job) != ClusterConfig::ReduceMemoryMode::kUnbounded) {
      ev = std::move(ev)
               .ArgInt("reduce_spills", job->result.reduce_spills)
               .ArgInt("spill_runs", job->result.spill_runs)
               .ArgInt("spill_bytes_written",
                       (int64_t)job->result.spill_bytes_written)
               .ArgInt("peak_task_memory",
                       (int64_t)job->result.peak_task_memory_bytes);
    }
    if (!job->spec->query_id.empty()) {
      ev = std::move(ev).Arg("query", job->spec->query_id);
    }
    trace_->Record(std::move(ev));
  };

  // Spill-run files are scratch: they exist between a spilling reduce
  // task's durable completion and the end of its job, and are removed on
  // both the success and the failure path.
  auto cleanup_spill_files = [&](RunningJob* job) {
    for (const std::string& p : job->spill_paths) dfs_->Delete(p).ok();
    job->spill_paths.clear();
  };

  auto drain_failed_job = [&](RunningJob* job) {
    if (!job->failed || job->phase == JobPhase::kDone) return;
    if (job->active_map_tasks != 0 || job->active_reduce_tasks != 0) return;
    job->phase = JobPhase::kDone;
    job->result.finish_time_ms = now_;
    dfs_->Delete(job->spec->output_path).ok();
    job->output = nullptr;
    cleanup_spill_files(job);
    record_job_end(job);
    --unfinished;
  };

  auto fail_job = [&](RunningJob* job, Status status) {
    job->failed = true;
    job->result.status = std::move(status);
    job->pending_map.clear();
    job->pending_reduce.clear();
    drain_failed_job(job);
  };

  auto finish_job = [&](RunningJob* job) {
    // Assemble counters and output splits from the per-task staged data in
    // task-id / partition order — the exact order a fault-free run commits
    // in — so job outputs stay byte-identical even when node crashes forced
    // out-of-order re-execution of some tasks.
    Counters& totals = job->result.counters;
    std::vector<Split> quarantine_splits;
    for (TaskData& d : job->map_data) {
      if (!d.valid) continue;
      totals.MergeFrom(d.counters);
      if (!job->spec->reduce_fn && d.output.num_records > 0) {
        totals.output_bytes += d.output.num_bytes();
        job->output->AppendSplit(std::move(d.output));
      }
      if (d.quarantine.num_records > 0) {
        quarantine_splits.push_back(std::move(d.quarantine));
      }
      d = TaskData{};
    }
    for (TaskData& d : job->reduce_data) {
      if (!d.valid) continue;
      totals.MergeFrom(d.counters);
      if (d.output.num_records > 0) {
        totals.output_bytes += d.output.num_bytes();
        job->output->AppendSplit(std::move(d.output));
      }
      d = TaskData{};
    }
    if (!quarantine_splits.empty()) {
      // The per-job quarantine file: poison records in map-task order, a
      // durable sibling of the job output (Hadoop's skip mode keeps them
      // under "_logs/skip"). Replaces any leftover from a previous run of
      // a re-submitted job. Assembled in task-id order, so its bytes are
      // as deterministic as the output's.
      std::string qpath = job->spec->output_path + ".quarantine";
      dfs_->Delete(qpath).ok();
      auto qfile = dfs_->Create(qpath);
      if (qfile.ok()) {
        for (Split& s : quarantine_splits) {
          (*qfile)->AppendSplit(std::move(s));
        }
        job->result.quarantine_path = qpath;
      }
    }
    job->result.records_quarantined = job->records_quarantined;
    job->phase = JobPhase::kDone;
    job->result.finish_time_ms = now_;
    job->result.observer_overhead_ms = static_cast<SimMillis>(
        std::ceil(job->observer_cpu_units / config_.cpu_units_per_ms));
    if (trace_ != nullptr && job->spec->reduce_fn) {
      trace_->Record(obs::TraceEvent(job->reduce_start,
                                     now_ - job->reduce_start,
                                     obs::TraceLane::kEngine, "mr",
                                     "reduce_phase")
                         .Arg("job", job->spec->name)
                         .ArgInt("reduce_tasks", job->num_reduce_tasks));
    }
    cleanup_spill_files(job);
    record_job_end(job);
    --unfinished;
  };

  // Charges for loading broadcast side data, honoring the distributed-cache
  // mode (first `num_nodes` tasks pay; later waves find it cached locally).
  auto side_load_ms = [&](RunningJob* job) -> SimMillis {
    uint64_t bytes = job->spec->side_load_bytes;
    if (bytes == 0) return 0;
    if (job->spec->side_data_via_distributed_cache &&
        job->map_seq >= config_.num_nodes) {
      return 0;
    }
    return CeilDiv(static_cast<double>(bytes),
                   config_.side_load_bytes_per_ms);
  };

  // Launch-time fault draws, on the scheduler thread, from the job's own
  // stream — the order of draws depends only on the (deterministic) launch
  // order, never on worker timing.
  auto draw_faults = [&](RunningJob* job, TaskLaunch* launch) {
    if (!job->fault_rng.has_value()) return;
    const FaultConfig& f = config_.faults;
    if (f.task_failure_rate > 0.0 &&
        job->fault_rng->Bernoulli(f.task_failure_rate)) {
      launch->inject_failure = true;
      // The container dies somewhere in the latter 75% of the attempt.
      launch->fail_fraction = 0.25 + 0.75 * job->fault_rng->NextDouble();
    }
    if (f.straggler_rate > 0.0 &&
        job->fault_rng->Bernoulli(f.straggler_rate)) {
      launch->slowdown = std::max(1.0, f.straggler_slowdown);
    }
    if (f.node_failure_rate > 0.0 &&
        job->fault_rng->Bernoulli(f.node_failure_rate)) {
      // The hosting node dies somewhere during this attempt; the absolute
      // crash time is computed at commit, once the duration is known.
      launch->crash_node = true;
      launch->crash_fraction = job->fault_rng->NextDouble();
    }
    // --- Data-integrity draws (consume stream draws only when the
    // corruption knobs are on, so corruption-free runs keep the exact draw
    // sequence of earlier engine versions). ---
    if (launch->is_map) {
      launch->replicas = std::max(
          1,
          job->spec->inputs[launch->map_ref.input_index].file->replicas());
      if (f.block_corruption_rate > 0.0) {
        // Sequential replica reads: each independently corrupt with the
        // configured rate; stop at the first clean copy.
        int bad = 0;
        while (bad < launch->replicas &&
               job->fault_rng->Bernoulli(f.block_corruption_rate)) {
          ++bad;
        }
        launch->corrupt_replica_reads = bad;
      }
      if (f.poison_record_rate > 0.0) {
        TaskRunState& mst = job->map_states[launch->task_id];
        if (!mst.poison_drawn) {
          mst.poison_drawn = true;
          for (uint64_t r = 0; r < launch->split->num_records; ++r) {
            if (job->fault_rng->Bernoulli(f.poison_record_rate)) {
              mst.poison.push_back(r);
            }
          }
        }
      }
    } else if (f.shuffle_corruption_rate > 0.0 &&
               !job->partitions[launch->task_id].empty()) {
      const int tries = 1 + std::max(0, f.max_shuffle_fetch_retries);
      int bad = 0;
      while (bad < tries &&
             job->fault_rng->Bernoulli(f.shuffle_corruption_rate)) {
        ++bad;
      }
      launch->corrupt_fetches = bad;
    }
    // A spilling reduce attempt's run read-back can hit a flipped bit too.
    // The draw is consumed only when the attempt actually spills (possible
    // only with the memory mode on), so corruption campaigns without the
    // memory model keep their exact historical draw sequence.
    if (!launch->is_map && launch->spill_runs > 1 &&
        f.block_corruption_rate > 0.0 &&
        job->fault_rng->Bernoulli(f.block_corruption_rate)) {
      launch->corrupt_spill = true;
    }
    // Scripted corruption (exact placement for tests, no draws consumed).
    if (!f.scripted_corruptions.empty()) {
      const TaskRunState& st = launch->is_map
                                   ? job->map_states[launch->task_id]
                                   : job->reduce_states[launch->task_id];
      for (const auto& sc : f.scripted_corruptions) {
        const bool is_block =
            sc.target == FaultConfig::ScriptedCorruption::Target::kBlock;
        if (is_block != launch->is_map || sc.job != job->spec->name ||
            sc.task_id != launch->task_id || sc.attempt != st.failures + 1) {
          continue;
        }
        // An unscoped script matches any query (single-driver legacy); a
        // scoped one only hits the query it names.
        if (!sc.query.empty() && sc.query != job->spec->query_id) continue;
        if (launch->is_map) {
          launch->corrupt_replica_reads =
              std::clamp(sc.count, 0, launch->replicas);
        } else if (sc.target ==
                   FaultConfig::ScriptedCorruption::Target::kSpill) {
          // Fires only when the attempt actually spills: an in-memory
          // attempt has no run files to corrupt.
          if (launch->spill_runs > 1) launch->corrupt_spill = sc.count > 0;
        } else if (!job->partitions[launch->task_id].empty()) {
          launch->corrupt_fetches = std::clamp(
              sc.count, 0, 1 + std::max(0, f.max_shuffle_fetch_retries));
        }
      }
    }
    if (launch->is_map && launch->corrupt_replica_reads > 0 &&
        launch->corrupt_replica_reads >= launch->replicas) {
      launch->block_data_loss = true;
    }
    if (!launch->is_map &&
        launch->corrupt_fetches > std::max(0, f.max_shuffle_fetch_retries)) {
      launch->shuffle_data_loss = true;
    }
  };

  // Capped + jittered exponential backoff before re-queueing a failed
  // attempt (the legacy retry_backoff_ms * 2^n grew unbounded). The jitter
  // is drawn from the job's fault stream on the scheduler thread, so it
  // de-synchronizes concurrent retries while staying bit-identical across
  // execution thread counts.
  auto retry_backoff = [&](RunningJob* job, int failures) -> SimMillis {
    const FaultConfig& f = config_.faults;
    SimMillis backoff =
        f.retry_backoff_ms * (SimMillis{1} << std::min(failures - 1, 16));
    if (f.max_backoff_ms > 0) backoff = std::min(backoff, f.max_backoff_ms);
    if (f.retry_jitter_fraction > 0.0 && backoff > 0 &&
        job->fault_rng.has_value()) {
      backoff += static_cast<SimMillis>(f.retry_jitter_fraction *
                                        static_cast<double>(backoff) *
                                        job->fault_rng->NextDouble());
    }
    return backoff;
  };

  // Transition after the map phase drains.
  auto on_map_phase_complete = [&](RunningJob* job) {
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEvent(job->ready_time, now_ - job->ready_time,
                                     obs::TraceLane::kEngine, "mr",
                                     "map_phase")
                         .Arg("job", job->spec->name)
                         .ArgInt("tasks_run", job->result.map_tasks_run)
                         .ArgInt("tasks_skipped",
                                 job->result.map_tasks_skipped));
    }
    if (!job->spec->reduce_fn) {
      finish_job(job);
      return;
    }
    job->phase = JobPhase::kShuffle;
    uint64_t total_emitted = 0;
    for (const TaskData& d : job->map_data) {
      if (d.valid) total_emitted += d.emitted_bytes;
    }
    if (job->num_reduce_tasks == 0) {
      // First shuffle: fix the reducer count for the job's lifetime (a
      // re-shuffle after a node crash must not re-deal the keys).
      int reducers = job->spec->num_reduce_tasks;
      if (reducers <= 0) {
        reducers = static_cast<int>(
            total_emitted / config_.bytes_per_reduce_task + 1);
        reducers = std::clamp(reducers, 1, config_.reduce_slots);
      }
      job->num_reduce_tasks = reducers;
      job->result.reduce_tasks_planned = reducers;
      job->reduce_states.assign(reducers, TaskRunState{});
      job->reduce_data.assign(reducers, TaskData{});
      job->reduce_tasks_remaining = reducers;
    }
    const int reducers = job->num_reduce_tasks;
    // (Re)build the partition buckets of not-yet-completed reducers from
    // the staged emissions in task-id order — the same order a fault-free
    // run's commits feed the shuffle, so reducer input (and thus output)
    // bytes are identical whether or not maps were re-executed. Emissions
    // are retained per task while node crashes are possible, since a lost
    // node forces exactly this rebuild.
    const bool retain_emissions = config_.faults.node_faults();
    job->partitions.assign(reducers, {});
    for (TaskData& d : job->map_data) {
      if (!d.valid) continue;
      for (auto& kv : d.emissions) {
        size_t p = kv.first.Hash() % static_cast<size_t>(reducers);
        if (job->reduce_states[p].completed) continue;
        if (retain_emissions) {
          job->partitions[p].push_back(kv);
        } else {
          job->partitions[p].emplace_back(std::move(kv.first),
                                          std::move(kv.second));
        }
      }
      if (!retain_emissions) {
        d.emissions.clear();
        d.emissions.shrink_to_fit();
      }
    }
    // Memory check at shuffle start (DESIGN.md §6.10): each reducer's
    // simulated sort/hash state is its partition bytes scaled by
    // reduce_memory_factor. Strict mode fails the job with OutOfMemory as
    // soon as any reducer is over budget; spill mode fails only when a
    // reducer would need more runs than max_spill_runs (its merge state no
    // longer fits either) — that residual OOM is what the driver's
    // doubled-reducer retry rung resolves.
    const auto memory_mode = job_memory_mode(*job);
    if (memory_mode != ClusterConfig::ReduceMemoryMode::kUnbounded) {
      const double budget =
          std::max(1.0, static_cast<double>(config_.memory_per_task_bytes));
      for (int p = 0; p < reducers; ++p) {
        if (job->reduce_states[p].completed) continue;
        uint64_t bytes = 0;
        for (const auto& kv : job->partitions[p]) {
          bytes += kv.first.EncodedSize() + kv.second.EncodedSize();
        }
        const double state = std::ceil(static_cast<double>(bytes) *
                                       config_.reduce_memory_factor);
        if (state <= budget) continue;
        bool over = memory_mode == ClusterConfig::ReduceMemoryMode::kStrict;
        if (!over) {
          const double runs = std::ceil(state / budget);
          over = runs > static_cast<double>(std::max(1, config_.max_spill_runs));
        }
        if (!over) continue;
        if (m_oom_failures == nullptr && metrics_ != nullptr) {
          m_oom_failures = metrics_->GetCounter("mr.memory_oom_failures");
        }
        if (m_oom_failures != nullptr) m_oom_failures->Add();
        fail_job(job,
                 Status::OutOfMemory(StrFormat(
                     "reduce task %d of %s needs %.0f bytes of sort state "
                     "(task memory %llu, %s mode)",
                     p, job->spec->name.c_str(), state,
                     (unsigned long long)config_.memory_per_task_bytes,
                     memory_mode == ClusterConfig::ReduceMemoryMode::kStrict
                         ? "strict"
                         : "spill")));
        return;
      }
    }
    // Shuffle is billed at the cluster's aggregate cross-network rate: the
    // all-to-all transfer is bisection-bandwidth bound, not per-reducer
    // parallel, which is what makes repartitioning a large relation so much
    // more expensive than broadcasting a small one (paper §2.2.1). Only
    // bytes not already transferred are billed, so a re-shuffle after a
    // crash pays for the re-executed maps' output alone.
    uint64_t transfer =
        total_emitted - std::min(total_emitted, job->shuffled_bytes);
    job->shuffled_bytes = total_emitted;
    SimMillis shuffle_ms = CeilDiv(static_cast<double>(transfer),
                                   config_.shuffle_bytes_per_ms);
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEvent(now_, shuffle_ms,
                                     obs::TraceLane::kEngine, "mr",
                                     "shuffle_phase")
                         .Arg("job", job->spec->name)
                         .ArgInt("bytes", (int64_t)transfer)
                         .ArgInt("reducers", reducers));
    }
    Event done{now_ + shuffle_ms, seq++, EventKind::kShuffleDone,
               job->job_index};
    done.shuffle_epoch = job->shuffle_epoch;
    events.push(done);
  };

  // Applies a logical task's durable completion: replays its staged output
  // records through the job's output observer (scheduler thread only, so
  // observer state is never updated concurrently; observers must be
  // commutative across tasks, which the stats collectors are) and, for
  // reduce tasks, releases the partition bucket retained for retries. Runs
  // at *completion* rather than commit so an attempt killed by a node crash
  // after committing never double-applies when the task re-runs.
  auto apply_durable_completion = [&](RunningJob* job, bool is_map,
                                      int task_id) {
    TaskData& d = is_map ? job->map_data[task_id] : job->reduce_data[task_id];
    // Quarantined records become durable with the completing task (even for
    // map tasks of map-reduce jobs, whose *output* stays volatile until job
    // end); a node crash that invalidates the task un-accounts them. They
    // never reach the output or the observer — excluded, not emitted.
    if (is_map && d.valid && d.quarantine.num_records > 0) {
      job->records_quarantined += d.quarantine.num_records;
      job->result.records_quarantined = job->records_quarantined;
      if (m_quarantined != nullptr) {
        m_quarantined->Add(static_cast<int64_t>(d.quarantine.num_records));
      }
      if (trace_ != nullptr) {
        for (uint64_t idx : d.quarantine_indexes) {
          trace_->Record(obs::TraceEvent(now_, -1, obs::TraceLane::kTasks,
                                         "mr", "record_quarantined")
                             .Arg("job", job->spec->name)
                             .ArgInt("task", task_id)
                             .ArgInt("record", static_cast<int64_t>(idx)));
        }
      }
      const int budget = config_.faults.max_skipped_records;
      if (budget >= 0 &&
          job->records_quarantined > static_cast<uint64_t>(budget)) {
        if (m_integrity_failures != nullptr) m_integrity_failures->Add();
        fail_job(job,
                 Status::DataLoss(StrFormat(
                     "job %s quarantined %llu records, over the "
                     "max_skipped_records budget of %d",
                     job->spec->name.c_str(),
                     (unsigned long long)job->records_quarantined, budget)));
        return;
      }
    }
    if (is_map && job->spec->reduce_fn) return;  // Volatile until job end.
    if (d.valid && job->spec->output_observer && d.output.num_records > 0) {
      SplitReader reader(&d.output);
      while (!reader.AtEnd()) {
        Result<Value> record = reader.Next();
        if (!record.ok()) break;  // Unreachable: we encoded these records.
        job->spec->output_observer(*record);
      }
    }
    if (d.valid) job->observer_cpu_units += d.observer_charge;
    if (!is_map && d.valid && !d.spill_runs.empty()) {
      // The winning attempt's spill runs become durable DFS scratch under a
      // sibling path of the job output; the path carries its own write
      // epoch, so spill files never perturb the table versioning of the
      // output itself. Removed at job end (cleanup_spill_files).
      std::string spath =
          StrFormat("%s.spill/t%d", job->spec->output_path.c_str(), task_id);
      dfs_->Delete(spath).ok();
      auto sfile = dfs_->Create(spath);
      if (sfile.ok()) {
        for (Split& s : d.spill_runs) (*sfile)->AppendSplit(std::move(s));
        job->spill_paths.push_back(std::move(spath));
      }
      d.spill_runs.clear();
      d.spill_runs.shrink_to_fit();
    }
    if (!is_map) {
      job->partitions[task_id].clear();
      job->partitions[task_id].shrink_to_fit();
    }
  };

  auto median_ms = [](const std::vector<SimMillis>& v) -> SimMillis {
    std::vector<SimMillis> copy(v);
    size_t mid = copy.size() / 2;
    std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
    return copy[mid];
  };

  // Schedules a no-op wakeup at the earliest time an in-flight attempt of
  // `job` crosses the speculation cutoff, so stragglers are re-examined
  // even when no other event falls in between.
  auto push_speculation_wakeup = [&](RunningJob* job, bool is_map) {
    if (!retries_enabled || !config_.faults.speculative_execution) return;
    const auto& durations =
        is_map ? job->completed_map_ms : job->completed_reduce_ms;
    if (durations.empty()) return;
    const auto& states = is_map ? job->map_states : job->reduce_states;
    SimMillis cutoff = static_cast<SimMillis>(
        std::ceil(config_.faults.speculative_slowness_threshold *
                  static_cast<double>(median_ms(durations))));
    SimMillis best = -1;
    for (const TaskRunState& st : states) {
      if (!st.primary_in_flight || st.completed || st.speculated ||
          !st.data_committed) {
        continue;
      }
      SimMillis fire = st.launch_time + cutoff + 1;
      if (fire <= now_ || fire >= st.expected_finish) continue;
      if (best < 0 || fire < best) best = fire;
    }
    if (best >= 0) {
      Event wake{best, seq++, EventKind::kWakeup, job->job_index};
      events.push(wake);
    }
  };

  // Commits one finished task attempt back into its job: simulated
  // duration, per-task staged data (TaskData), in-flight registration and
  // completion event. Runs on the scheduler thread in launch order. Nothing
  // is merged into job-level counters or outputs here — that happens at
  // completion/finish time — so an attempt later killed by a node crash
  // leaves no residue in the job.
  auto commit_task = [&](TaskLaunch& t) {
    RunningJob* job = t.job;
    TaskOutcome& o = t.outcome;
    bool already_failed = job->failed;
    bool attempt_ok = !t.inject_failure && !t.block_data_loss &&
                      !t.shuffle_data_loss && o.status.ok();
    TaskRunState& st =
        t.is_map ? job->map_states[t.task_id] : job->reduce_states[t.task_id];
    double cpu = o.cpu_units;
    // Observer CPU is billed to the attempt now (durations must not depend
    // on when the replay runs), but the replay itself happens at durable
    // completion (apply_durable_completion), so a killed attempt never
    // feeds the observer.
    double obs_charge = 0.0;
    if (attempt_ok && !already_failed && job->spec->output_observer) {
      obs_charge = static_cast<double>(o.output.num_records) *
                   job->spec->observer_cpu_per_record;
      cpu += obs_charge;
    }
    SimMillis duration = 0;
    if (t.is_map) {
      // Pilot jobs bill block reads at the split's logical size so their
      // event timeline (and thus the sample the stop condition admits) is
      // identical whichever physical format the table was written in.
      const MapInput& map_input = job->spec->inputs[t.map_ref.input_index];
      const uint64_t block_bytes = map_input.bill_logical_read
                                       ? t.split->logical_bytes
                                       : t.split->num_bytes();
      if (t.inject_failure) {
        // The attempt dies `fail_fraction` of the way through. Its data
        // flow never ran, so model the full attempt from the split's size
        // and record count, then bill the completed fraction.
        double est_cpu = static_cast<double>(t.split->num_records) *
                         (1.0 + map_input.cpu_per_record);
        SimMillis full = t.setup_ms +
                         CeilDiv(static_cast<double>(block_bytes),
                                 config_.map_read_bytes_per_ms) +
                         CeilDiv(est_cpu, config_.cpu_units_per_ms);
        duration = std::max<SimMillis>(
            1, static_cast<SimMillis>(
                   std::ceil(static_cast<double>(full) * t.fail_fraction)));
        ++job->result.task_failures_injected;
      } else if (t.block_data_loss) {
        // Every replica of the input block read back corrupt: the attempt
        // billed one full block read per replica tried, verified each
        // against its checksum, and has nothing left to fall back to.
        duration = std::max<SimMillis>(
            1, t.setup_ms +
                   static_cast<SimMillis>(t.replicas) *
                       CeilDiv(static_cast<double>(block_bytes),
                               config_.map_read_bytes_per_ms));
      } else {
        // An errored attempt scanned only `input_bytes` of its split and
        // its partial spill is discarded, not written. Corrupt-but-healed
        // replica reads each bill one extra full block read.
        uint64_t written_bytes = 0;
        if (o.status.ok()) {
          written_bytes =
              job->spec->reduce_fn ? o.emitted_bytes : o.output.num_bytes();
        }
        duration = t.setup_ms +
                   static_cast<SimMillis>(t.corrupt_replica_reads) *
                       CeilDiv(static_cast<double>(block_bytes),
                               config_.map_read_bytes_per_ms) +
                   CeilDiv(static_cast<double>(o.input_bytes),
                           config_.map_read_bytes_per_ms) +
                   CeilDiv(cpu, config_.cpu_units_per_ms) +
                   CeilDiv(static_cast<double>(written_bytes),
                           config_.map_write_bytes_per_ms);
        if (!already_failed && o.status.ok()) {
          TaskData& d = job->map_data[t.task_id];
          d.valid = true;
          d.counters = Counters{};
          d.counters.map_input_records = o.input_records;
          d.counters.map_input_bytes = o.input_logical_bytes;
          if (o.batches_decoded > 0 && metrics_ != nullptr) {
            // Registered lazily so row-only runs keep their exact metric
            // registry (golden traces and dumps predate this counter).
            if (m_scan_batches == nullptr) {
              m_scan_batches = metrics_->GetCounter("scan.batches");
            }
            m_scan_batches->Add(o.batches_decoded);
          }
          d.counters.map_output_records = o.emissions.size();
          d.counters.map_output_bytes = o.emitted_bytes;
          d.counters.output_records = o.output.num_records;
          d.emitted_bytes = o.emitted_bytes;
          d.emissions = std::move(o.emissions);
          d.output = std::move(o.output);
          d.observer_charge = obs_charge;
          d.quarantine = std::move(o.quarantine);
          d.quarantine_indexes = std::move(o.quarantine_indexes);
        }
      }
    } else {
      if (t.inject_failure) {
        // Same idea for a dying reduce attempt: its bucket was left in
        // place (nothing ran), so size the full attempt from it.
        const auto& bucket = job->partitions[t.task_id];
        uint64_t bucket_bytes = 0;
        for (const auto& [key, value] : bucket) {
          bucket_bytes += key.EncodedSize() + value.EncodedSize();
        }
        double n = static_cast<double>(bucket.size());
        double est_cpu = n + n * std::log2(n + 1.0);
        SimMillis full = CeilDiv(static_cast<double>(bucket_bytes),
                                 config_.reduce_read_bytes_per_ms) +
                         CeilDiv(est_cpu, config_.cpu_units_per_ms);
        duration = std::max<SimMillis>(
            1, static_cast<SimMillis>(
                   std::ceil(static_cast<double>(full) * t.fail_fraction)));
        ++job->result.task_failures_injected;
      } else if (t.shuffle_data_loss) {
        // Every shuffle fetch of the bucket (the first plus each allowed
        // re-fetch) came back corrupt; each transfer is billed. The bucket
        // stayed in place for the retry.
        const auto& bucket = job->partitions[t.task_id];
        uint64_t bucket_bytes = 0;
        for (const auto& [key, value] : bucket) {
          bucket_bytes += key.EncodedSize() + value.EncodedSize();
        }
        duration = std::max<SimMillis>(
            1, static_cast<SimMillis>(t.corrupt_fetches) *
                   CeilDiv(static_cast<double>(bucket_bytes),
                           config_.reduce_read_bytes_per_ms));
      } else {
        uint64_t written_bytes = o.status.ok() ? o.output.num_bytes() : 0;
        duration = static_cast<SimMillis>(t.corrupt_fetches) *
                       CeilDiv(static_cast<double>(o.reduce_input_bytes),
                               config_.reduce_read_bytes_per_ms) +
                   CeilDiv(static_cast<double>(o.reduce_input_bytes),
                           config_.reduce_read_bytes_per_ms) +
                   CeilDiv(cpu, config_.cpu_units_per_ms) +
                   CeilDiv(static_cast<double>(written_bytes),
                           config_.reduce_write_bytes_per_ms);
        if (t.spill_runs > 1) {
          // External-sort I/O: run formation writes the bucket once, each
          // further merge pass re-reads and re-writes it, and the final
          // pass re-reads it into the reduce stream — pass_bytes of writes
          // and pass_bytes of reads in total. A corrupt run is discovered
          // on the first read-back, so a DataLoss attempt bills one pass.
          const int passes = o.status.ok() ? t.spill_merge_passes : 1;
          const double pass_bytes = static_cast<double>(t.bucket_bytes) *
                                    static_cast<double>(passes);
          duration +=
              CeilDiv(pass_bytes, config_.reduce_write_bytes_per_ms) +
              CeilDiv(pass_bytes, config_.reduce_read_bytes_per_ms);
          job->result.reduce_spills += 1;
          job->result.spill_runs += t.spill_runs;
          job->result.spill_merge_passes += passes;
          job->result.spill_bytes_written += static_cast<uint64_t>(pass_bytes);
          job->result.spill_bytes_read += static_cast<uint64_t>(pass_bytes);
          if (metrics_ != nullptr) {
            // Registered lazily: runs that never spill keep their exact
            // metric registry (like scan.batches above).
            if (m_spilled_tasks == nullptr) {
              m_spilled_tasks =
                  metrics_->GetCounter("mr.memory_spilled_tasks");
              m_spill_bytes = metrics_->GetCounter("mr.memory_spill_bytes");
            }
            m_spilled_tasks->Add();
            m_spill_bytes->Add(2 * static_cast<int64_t>(pass_bytes));
          }
          if (trace_ != nullptr) {
            trace_->Record(obs::TraceEvent(now_, -1, obs::TraceLane::kTasks,
                                           "mr", "task_spill")
                               .Arg("job", job->spec->name)
                               .ArgInt("task", t.task_id)
                               .ArgInt("attempt", st.failures + 1)
                               .ArgInt("runs", t.spill_runs)
                               .ArgInt("merge_passes", passes)
                               .ArgInt("bytes", (int64_t)t.bucket_bytes)
                               .ArgBool("ok", o.status.ok()));
          }
        }
        if (!already_failed && o.status.ok()) {
          TaskData& d = job->reduce_data[t.task_id];
          d.valid = true;
          d.counters = Counters{};
          d.counters.reduce_input_records = o.reduce_input_records;
          d.counters.output_records = o.output.num_records;
          d.output = std::move(o.output);
          d.observer_charge = obs_charge;
          d.spill_runs = std::move(o.spill_runs_written);
        }
      }
      job->result.peak_task_memory_bytes = std::max(
          job->result.peak_task_memory_bytes, t.task_memory_bytes);
    }
    SimMillis base = duration;
    if (t.slowdown > 1.0) {
      duration = static_cast<SimMillis>(
          std::ceil(static_cast<double>(duration) * t.slowdown));
    }
    st.primary_in_flight = true;
    st.launch_time = now_;
    st.expected_finish = now_ + duration;
    st.base_duration = base;
    st.node = t.node;
    if (attempt_ok) {
      st.data_committed = true;
    } else if (t.inject_failure) {
      st.last_error = Status::Internal(StrFormat(
          "injected failure: %s task %d of %s, attempt %d",
          t.is_map ? "map" : "reduce", t.task_id, job->spec->name.c_str(),
          st.failures + 1));
    } else if (t.block_data_loss) {
      st.last_error = Status::DataLoss(StrFormat(
          "all %d replicas of the input block for map task %d of %s failed "
          "checksum verification (attempt %d)",
          t.replicas, t.task_id, job->spec->name.c_str(), st.failures + 1));
    } else if (t.shuffle_data_loss) {
      st.last_error = Status::DataLoss(StrFormat(
          "shuffle fetch for reduce task %d of %s failed checksum "
          "verification %d times, exhausting %d re-fetches (attempt %d)",
          t.task_id, job->spec->name.c_str(), t.corrupt_fetches,
          std::max(0, config_.faults.max_shuffle_fetch_retries),
          st.failures + 1));
    } else {
      st.last_error = o.status;
    }
    // Data-integrity accounting: corrupt replica reads and shuffle
    // re-fetches are counted whether or not the attempt survived them.
    if (t.corrupt_replica_reads > 0) {
      job->result.block_corruptions += t.corrupt_replica_reads;
      if (m_block_corruptions != nullptr) {
        m_block_corruptions->Add(t.corrupt_replica_reads);
      }
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEvent(now_, -1, obs::TraceLane::kTasks, "mr",
                                       "block_corruption")
                           .Arg("job", job->spec->name)
                           .ArgInt("task", t.task_id)
                           .ArgInt("attempt", st.failures + 1)
                           .ArgInt("bad_replicas", t.corrupt_replica_reads)
                           .ArgBool("healed", !t.block_data_loss));
      }
    }
    if (t.corrupt_fetches > 0) {
      int refetches = std::min(
          t.corrupt_fetches, std::max(0, config_.faults.max_shuffle_fetch_retries));
      job->result.checksum_refetches += refetches;
      job->result.shuffle_fetch_retries += refetches;
      if (m_checksum_refetches != nullptr && refetches > 0) {
        m_checksum_refetches->Add(refetches);
      }
      if (m_shuffle_retries != nullptr && refetches > 0) {
        m_shuffle_retries->Add(refetches);
      }
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEvent(now_, -1, obs::TraceLane::kTasks, "mr",
                                       "shuffle_checksum_retry")
                           .Arg("job", job->spec->name)
                           .ArgInt("task", t.task_id)
                           .ArgInt("attempt", st.failures + 1)
                           .ArgInt("refetches", refetches)
                           .ArgBool("exhausted", t.shuffle_data_loss));
      }
    }
    if (t.is_map) {
      if (m_map_attempts != nullptr) m_map_attempts->Add();
      if (h_map_ms != nullptr) h_map_ms->Observe(duration);
      job->result.map_slot_ms += duration;
    } else {
      if (m_reduce_attempts != nullptr) m_reduce_attempts->Add();
      if (h_reduce_ms != nullptr) h_reduce_ms->Observe(duration);
      job->result.reduce_slot_ms += duration;
    }
    if (t.inject_failure && m_injected != nullptr) m_injected->Add();
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEvent(now_, duration, obs::TraceLane::kTasks,
                                     "mr",
                                     t.is_map ? "map_attempt"
                                              : "reduce_attempt")
                         .Arg("job", job->spec->name)
                         .ArgInt("task", t.task_id)
                         .ArgInt("attempt", st.failures + 1)
                         .ArgBool("ok", attempt_ok)
                         .ArgBool("injected_failure", t.inject_failure)
                         .ArgDouble("slowdown", t.slowdown));
    }
    // A drawn node crash lands partway through this attempt. The crash
    // event is pushed before the completion event so a crash falling on the
    // attempt's own finish time still kills it first (lower seq wins ties).
    if (t.crash_node) {
      SimMillis crash_after = std::max<SimMillis>(
          1, static_cast<SimMillis>(std::ceil(static_cast<double>(duration) *
                                              t.crash_fraction)));
      Event crash{now_ + crash_after, seq++, EventKind::kNodeCrash, -1};
      crash.node = t.node;
      events.push(crash);
    }
    Event done{now_ + duration, seq++,
               t.is_map ? EventKind::kMapDone : EventKind::kReduceDone,
               job->job_index};
    done.task_id = t.task_id;
    done.attempt_failed = !attempt_ok;
    done.poison_failure = o.poison_failure;
    done.attempt_duration = duration;
    in_flight[done.seq] = InFlightAttempt{job->job_index, t.is_map, t.task_id,
                                          /*speculative=*/false, t.node};
    events.push(done);
    // Legacy fail-fast: with the fault model off, the first real task
    // error kills the whole job at commit time.
    if (!retries_enabled && !already_failed && !o.status.ok()) {
      fail_job(job, o.status);
    }
  };

  // Launches a backup attempt for the slowest committed in-flight task of
  // one phase, when the phase has idle slots, nothing launchable pending,
  // and that task has been running `speculative_slowness_threshold` times
  // longer than the phase's median completed duration. The backup runs no
  // data flow — the primary's outcome is already committed — it is a pure
  // timing race: whichever attempt's completion event fires first wins,
  // and the loser still occupies its slot until its own finish time.
  auto maybe_speculate = [&](RunningJob& job, bool is_map) {
    int& free_slots = is_map ? free_map_slots : free_reduce_slots;
    if (free_slots <= 0 || !job.fault_rng.has_value()) return;
    const auto& durations =
        is_map ? job.completed_map_ms : job.completed_reduce_ms;
    if (durations.empty()) return;
    const auto& pending = is_map ? job.pending_map : job.pending_reduce;
    for (const PendingTask& p : pending) {
      if (p.not_before <= now_) return;  // Real work should use the slot.
    }
    auto& states = is_map ? job.map_states : job.reduce_states;
    double threshold = config_.faults.speculative_slowness_threshold *
                       static_cast<double>(median_ms(durations));
    int slowest = -1;
    SimMillis slowest_elapsed = -1;
    for (size_t t = 0; t < states.size(); ++t) {
      const TaskRunState& st = states[t];
      if (!st.primary_in_flight || st.completed || st.speculated ||
          !st.data_committed) {
        continue;
      }
      SimMillis elapsed = now_ - st.launch_time;
      if (static_cast<double>(elapsed) <= threshold) continue;
      if (elapsed > slowest_elapsed) {
        slowest_elapsed = elapsed;
        slowest = static_cast<int>(t);
      }
    }
    if (slowest < 0) return;
    TaskRunState& st = states[slowest];
    // The backup re-runs the same attempt from scratch on another node
    // (never the primary's, when avoidable — the point of speculation under
    // node faults), with its own straggler draw on the unslowed duration.
    int bnode = pick_node(is_map, /*exclude=*/st.node);
    if (bnode < 0) return;
    double slowdown = 1.0;
    if (config_.faults.straggler_rate > 0.0 &&
        job.fault_rng->Bernoulli(config_.faults.straggler_rate)) {
      slowdown = std::max(1.0, config_.faults.straggler_slowdown);
    }
    SimMillis duration = std::max<SimMillis>(
        1, static_cast<SimMillis>(
               std::ceil(static_cast<double>(st.base_duration) * slowdown)));
    --free_slots;
    std::vector<int>& free = is_map ? free_map : free_reduce;
    --free[bnode];
    if (is_map) {
      ++job.active_map_tasks;
    } else {
      ++job.active_reduce_tasks;
    }
    st.speculated = true;
    st.backup_in_flight = true;
    ++job.result.speculative_launches;
    if (m_spec_launches != nullptr) m_spec_launches->Add();
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEvent(now_, duration, obs::TraceLane::kTasks,
                                     "mr", "speculative_attempt")
                         .Arg("job", job.spec->name)
                         .ArgInt("task", slowest)
                         .ArgBool("map", is_map)
                         .ArgDouble("slowdown", slowdown));
    }
    Event done{now_ + duration, seq++,
               is_map ? EventKind::kMapDone : EventKind::kReduceDone,
               job.job_index};
    done.task_id = slowest;
    done.speculative = true;
    done.attempt_duration = duration;
    in_flight[done.seq] = InFlightAttempt{job.job_index, is_map, slowest,
                                          /*speculative=*/true, bnode};
    events.push(done);
  };

  // Assigns free slots to pending tasks (FIFO across jobs), executes the
  // resulting wave of task data flows — in parallel on the worker pool when
  // one is configured — and commits the outcomes in launch order. All
  // launch decisions, including stop-condition checks and fault draws,
  // observe only *committed* state: no task is in flight while they are
  // made, which is what makes the simulation bit-identical for any thread
  // count.
  auto schedule = [&]() {
    std::vector<TaskLaunch> wave;
    for (RunningJob& job : jobs) {
      if (job.phase == JobPhase::kMap && now_ >= job.ready_time) {
        // The stop condition is evaluated once per scheduling pass, before
        // the wave launches: concurrently launched tasks cannot observe
        // each other's output (they couldn't on a real cluster either);
        // tasks already running always finish their whole split (§4.2).
        if (!job.pending_map.empty() && job.spec->stop_condition &&
            job.spec->stop_condition()) {
          job.result.map_tasks_skipped +=
              static_cast<int>(job.pending_map.size());
          job.map_tasks_remaining -=
              static_cast<int>(job.pending_map.size());
          job.pending_map.clear();
        }
        std::deque<PendingTask> deferred;
        while (free_map_slots > 0 && !job.pending_map.empty()) {
          PendingTask next = job.pending_map.front();
          job.pending_map.pop_front();
          if (next.not_before > now_) {
            deferred.push_back(next);  // Backoff not elapsed yet.
            continue;
          }
          TaskLaunch launch;
          launch.job = &job;
          launch.is_map = true;
          launch.task_id = next.task_id;
          launch.map_ref = job.map_defs[next.task_id];
          launch.split = &job.spec->inputs[launch.map_ref.input_index]
                              .file->splits()[launch.map_ref.split_index];
          launch.setup_ms = side_load_ms(&job);
          launch.task_index = job.map_seq;
          ++job.map_seq;
          if (job.map_states[next.task_id].failures > 0) {
            ++job.result.task_retries;
            if (m_retries != nullptr) m_retries->Add();
          }
          draw_faults(&job, &launch);
          {
            // Poison positions are a property of the split's data: every
            // attempt of this logical task sees the same plan. Skip mode is
            // per-task state flipped after repeated poison failures.
            const TaskRunState& mst = job.map_states[next.task_id];
            if (!mst.poison.empty()) launch.poison = &mst.poison;
            launch.skip_mode = mst.skip_mode;
          }
          // free_map_slots > 0 guarantees some alive node has a free slot.
          launch.node = pick_node(/*is_map=*/true, /*exclude=*/-1);
          --free_map[launch.node];
          --free_map_slots;
          ++job.active_map_tasks;
          wave.push_back(std::move(launch));
        }
        while (!deferred.empty()) {
          job.pending_map.push_front(deferred.back());
          deferred.pop_back();
        }
        if (!job.failed && job.pending_map.empty() &&
            job.map_tasks_remaining == 0 && job.phase == JobPhase::kMap) {
          on_map_phase_complete(&job);
        }
      }
      if (job.phase == JobPhase::kReduce) {
        std::deque<PendingTask> deferred;
        while (free_reduce_slots > 0 && !job.pending_reduce.empty()) {
          PendingTask next = job.pending_reduce.front();
          job.pending_reduce.pop_front();
          if (next.not_before > now_) {
            deferred.push_back(next);
            continue;
          }
          TaskLaunch launch;
          launch.job = &job;
          launch.is_map = false;
          launch.task_id = next.task_id;
          launch.partition = next.task_id;
          if (job.reduce_states[next.task_id].failures > 0) {
            ++job.result.task_retries;
            if (m_retries != nullptr) m_retries->Add();
          }
          // Reduce-memory plan, decided before the fault draws (which gate
          // the spill-corruption draw on it). The simulated sort/hash state
          // is the bucket's bytes scaled by reduce_memory_factor; over
          // budget in spill mode, the attempt sorts externally in
          // ceil(state / budget) runs (capped at one run per record) and
          // merges them fan_in-at-a-time. on_map_phase_complete already
          // failed the job if the plan would exceed max_spill_runs.
          {
            const auto mode = job_memory_mode(job);
            uint64_t bytes = 0;
            for (const auto& kv : job.partitions[next.task_id]) {
              bytes += kv.first.EncodedSize() + kv.second.EncodedSize();
            }
            launch.bucket_bytes = bytes;
            const double state = std::ceil(
                static_cast<double>(bytes) * config_.reduce_memory_factor);
            launch.task_memory_bytes = static_cast<uint64_t>(state);
            const double budget = std::max(
                1.0, static_cast<double>(config_.memory_per_task_bytes));
            if (mode == ClusterConfig::ReduceMemoryMode::kSpill &&
                state > budget) {
              int runs = static_cast<int>(std::ceil(state / budget));
              runs = std::min<int>(
                  runs,
                  static_cast<int>(std::max<size_t>(
                      1, job.partitions[next.task_id].size())));
              if (runs > 1) {
                launch.spill_runs = runs;
                const int fan = std::max(2, config_.spill_merge_fan_in);
                int passes = 0;
                long long width = 1;
                while (width < runs) {
                  width *= fan;
                  ++passes;
                }
                launch.spill_merge_passes = std::max(1, passes);
                // A spilling task holds only the budget; the rest lives in
                // its run files.
                launch.task_memory_bytes = config_.memory_per_task_bytes;
              }
            }
          }
          draw_faults(&job, &launch);
          if (launch.inject_failure) {
            // The attempt dies before finishing; its bucket stays in place
            // for the retry (the commit sizes the attempt from it).
          } else if (retries_enabled) {
            // Keep the bucket for a possible retry after a *real* reduce
            // error; released when an attempt commits successfully.
            launch.bucket = job.partitions[next.task_id];
          } else {
            launch.bucket = std::move(job.partitions[next.task_id]);
          }
          launch.node = pick_node(/*is_map=*/false, /*exclude=*/-1);
          --free_reduce[launch.node];
          --free_reduce_slots;
          ++job.active_reduce_tasks;
          wave.push_back(std::move(launch));
        }
        while (!deferred.empty()) {
          job.pending_reduce.push_front(deferred.back());
          deferred.pop_back();
        }
      }
    }
    // Backup attempts claim only slots left over after real work, across
    // all jobs (never starving another job's pending tasks).
    if (retries_enabled && config_.faults.speculative_execution) {
      for (RunningJob& job : jobs) {
        if (job.failed) continue;
        if (job.phase == JobPhase::kMap && now_ >= job.ready_time) {
          maybe_speculate(job, /*is_map=*/true);
        }
        if (job.phase == JobPhase::kReduce) {
          maybe_speculate(job, /*is_map=*/false);
        }
      }
    }
    if (wave.empty()) return;

    auto execute = [](TaskLaunch& t) {
      // Attempts with an injected failure never run their data flow: the
      // simulated container dies. Re-running user code here would repeat
      // its side effects (Coordinator counters), which real retried tasks
      // do too, but would break the simulator's exactly-once accounting.
      if (t.inject_failure) return;
      // Drawn corruption is exercised against the *real* checksum machinery:
      // each corrupt copy is modeled by flipping one byte of a scratch copy
      // of the payload and verifying the stored CRC rejects it. The shared
      // split / bucket is never mutated, so healed re-reads decode the
      // intact original bytes.
      if (t.corrupt_replica_reads > 0 && t.is_map && t.split != nullptr &&
          !t.split->data.empty()) {
        Split corrupt = *t.split;
        corrupt.data[0] ^= 0x01;
        if (VerifySplit(corrupt).ok()) {
          t.outcome.status = Status::Internal(
              "checksum failed to detect a corrupted block replica");
          return;
        }
      }
      if (t.corrupt_fetches > 0 && !t.is_map && !t.bucket.empty()) {
        std::string frame;
        t.bucket.front().first.EncodeTo(&frame);
        t.bucket.front().second.EncodeTo(&frame);
        const uint32_t sent = Crc32c(frame);
        frame[0] ^= 0x01;
        if (Crc32c(frame) == sent) {
          t.outcome.status = Status::Internal(
              "checksum failed to detect a corrupted shuffle frame");
          return;
        }
      }
      // Data-loss attempts never get a clean copy: no data flow runs.
      if (t.block_data_loss || t.shuffle_data_loss) return;
      if (t.is_map) {
        ExecuteMapTask(t.job->spec->inputs[t.map_ref.input_index], *t.split,
                       t.task_index, t.poison, t.skip_mode, &t.outcome);
      } else {
        ExecuteReduceTask(*t.job->spec, std::move(t.bucket), t.spill_runs,
                          t.corrupt_spill, &t.outcome);
      }
    };
    if (pool_ != nullptr && wave.size() > 1) {
      std::vector<std::function<void()>> closures;
      closures.reserve(wave.size());
      for (TaskLaunch& t : wave) {
        closures.push_back([&t, &execute] { execute(t); });
      }
      pool_->RunBatch(std::move(closures));
    } else {
      for (TaskLaunch& t : wave) execute(t);
    }
    for (TaskLaunch& t : wave) commit_task(t);
    // New launches can only cross the speculation cutoff later; make sure
    // a pass happens when the earliest one does.
    for (RunningJob& job : jobs) {
      if (job.failed) continue;
      if (job.phase == JobPhase::kMap || job.phase == JobPhase::kShuffle) {
        push_speculation_wakeup(&job, /*is_map=*/true);
      }
      if (job.phase == JobPhase::kReduce) {
        push_speculation_wakeup(&job, /*is_map=*/false);
      }
    }
  };

  // True when the nodes that could ever host this job's tasks are all down
  // for good (no recovery scheduled): the job can never finish.
  auto cluster_doomed_for = [&](const RunningJob& job) {
    int pot_map = 0;
    int pot_reduce = 0;
    for (int n = 0; n < num_nodes; ++n) {
      if (node_states_[n].alive || node_states_[n].recover_at >= 0) {
        pot_map += node_capacity(config_.map_slots, n);
        pot_reduce += node_capacity(config_.reduce_slots, n);
      }
    }
    return pot_map == 0 ||
           (job.spec->reduce_fn != nullptr && pot_reduce == 0);
  };

  auto fail_doomed = [&](RunningJob* job) {
    fail_job(job, Status::Unavailable(StrFormat(
                      "no node that could run %s will ever come back "
                      "(cluster permanently degraded)",
                      job->spec->name.c_str())));
  };

  // A node dies: its slots leave the pool, every attempt running on it is
  // killed (a kill, not a failure — the task re-queues without charging an
  // attempt, Hadoop's KILLED vs FAILED), and the completed map outputs
  // resident on it are invalidated for any map-reduce job that still needs
  // them, regressing those jobs to the map phase for re-execution.
  auto handle_node_crash = [&](int node, bool scripted) {
    if (scripted) ++scripted_crashes_consumed_;
    if (node < 0 || node >= num_nodes) return;
    NodeState& ns = node_states_[node];
    if (!ns.alive) return;  // Already down; nothing new to lose.
    ns.alive = false;
    ns.recover_at = config_.faults.node_recovery_ms > 0
                        ? now_ + config_.faults.node_recovery_ms
                        : -1;
    if (ns.recover_at >= 0) {
      Event rec{ns.recover_at, seq++, EventKind::kNodeRecover, -1};
      rec.node = node;
      events.push(rec);
    }
    --alive_nodes;
    free_map_slots -= free_map[node];
    free_reduce_slots -= free_reduce[node];
    free_map[node] = 0;
    free_reduce[node] = 0;
    if (m_node_crashes != nullptr) m_node_crashes->Add();

    // Kill the node's in-flight attempts, in launch (seq) order. Their
    // slots went down with the node, so nothing is refunded; their pending
    // completion events will find no registry entry and be ignored.
    int killed = 0;
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (it->second.node != node) {
        ++it;
        continue;
      }
      const InFlightAttempt a = it->second;
      it = in_flight.erase(it);
      ++killed;
      RunningJob& job = jobs[a.job_index];
      if (a.is_map) {
        --job.active_map_tasks;
      } else {
        --job.active_reduce_tasks;
      }
      auto& states = a.is_map ? job.map_states : job.reduce_states;
      TaskRunState& st = states[a.task_id];
      if (a.speculative) {
        st.backup_in_flight = false;
        st.speculated = false;  // Eligible for a fresh backup later.
      } else {
        st.primary_in_flight = false;
      }
      ++job.result.attempts_killed_by_node;
      if (m_node_kills != nullptr) m_node_kills->Add();
      if (!job.failed && !st.completed && !st.primary_in_flight &&
          !st.backup_in_flight) {
        auto& pending = a.is_map ? job.pending_map : job.pending_reduce;
        pending.push_back({a.task_id, now_});
      }
    }

    // Invalidate the completed map outputs that lived on the node, for
    // every map-reduce job that still needs them. (Map-only outputs and
    // reduce outputs model durable DFS writes and survive; a reduce phase
    // with no reducer left to launch has already fetched everything.)
    for (RunningJob& job : jobs) {
      if (job.failed || job.Finished() || job.spec->reduce_fn == nullptr) {
        continue;
      }
      bool needs_map_outputs =
          job.phase == JobPhase::kMap || job.phase == JobPhase::kShuffle ||
          (job.phase == JobPhase::kReduce && !job.pending_reduce.empty());
      if (!needs_map_outputs) continue;
      int invalidated = 0;
      for (size_t t = 0; t < job.map_states.size(); ++t) {
        TaskRunState& st = job.map_states[t];
        if (!st.completed || st.node != node) continue;
        // Any attempt of this task still racing elsewhere is killed too:
        // the logical task is being reset, and a late completion would
        // otherwise re-complete it against cleared data. These kills DO
        // refund their (live-node) slots.
        for (auto it = in_flight.begin(); it != in_flight.end();) {
          const InFlightAttempt& a = it->second;
          if (a.job_index != job.job_index || !a.is_map ||
              a.task_id != static_cast<int>(t)) {
            ++it;
            continue;
          }
          ++free_map[a.node];
          ++free_map_slots;
          --job.active_map_tasks;
          ++job.result.attempts_killed_by_node;
          if (m_node_kills != nullptr) m_node_kills->Add();
          it = in_flight.erase(it);
        }
        TaskData& d = job.map_data[t];
        job.shuffled_bytes -= std::min(job.shuffled_bytes, d.emitted_bytes);
        // Quarantined records accounted by the lost attempt are un-counted;
        // the re-run re-quarantines (and re-accounts) the same positions.
        uint64_t unquarantined = d.quarantine_indexes.size();
        job.records_quarantined -=
            std::min(job.records_quarantined, unquarantined);
        job.result.records_quarantined = job.records_quarantined;
        d = TaskData{};
        // Real failures outlive the kill, and so does the poison plan: the
        // positions are a property of the split's data, and skip mode is a
        // decision already made for this logical task.
        int failures = st.failures;
        bool poison_drawn = st.poison_drawn;
        std::vector<uint64_t> poison = std::move(st.poison);
        int poison_failures = st.poison_failures;
        bool skip_mode = st.skip_mode;
        st = TaskRunState{};
        st.failures = failures;
        st.poison_drawn = poison_drawn;
        st.poison = std::move(poison);
        st.poison_failures = poison_failures;
        st.skip_mode = skip_mode;
        ++job.map_tasks_remaining;
        job.pending_map.push_back({static_cast<int>(t), now_});
        ++invalidated;
      }
      if (invalidated == 0) continue;
      job.result.maps_invalidated += invalidated;
      if (m_maps_invalidated != nullptr) m_maps_invalidated->Add(invalidated);
      if (job.phase == JobPhase::kReduce) {
        // The reducers still waiting to launch hit shuffle-fetch failures:
        // they stay queued behind the re-shuffle of the re-executed maps.
        int blocked = static_cast<int>(job.pending_reduce.size());
        job.result.shuffle_fetch_retries += blocked;
        if (m_shuffle_retries != nullptr) m_shuffle_retries->Add(blocked);
        if (trace_ != nullptr) {
          trace_->Record(obs::TraceEvent(now_, -1, obs::TraceLane::kEngine,
                                         "mr", "shuffle_fetch_retry")
                             .Arg("job", job.spec->name)
                             .ArgInt("blocked_reducers", blocked)
                             .ArgInt("node", node));
        }
      }
      if (job.phase != JobPhase::kMap) ++job.shuffle_epoch;
      job.phase = JobPhase::kMap;
    }

    for (RunningJob& job : jobs) {
      if (!job.Finished() && !job.failed) {
        ++job.result.node_crashes_observed;
      }
    }
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEvent(now_, -1, obs::TraceLane::kEngine, "mr",
                                     "node_crash")
                         .ArgInt("node", node)
                         .ArgBool("scripted", scripted)
                         .ArgInt("attempts_killed", killed)
                         .ArgInt("alive_nodes", alive_nodes));
    }
    // Permanent-failure classification: with no capacity left and none ever
    // coming back, unfinished jobs can never run.
    for (RunningJob& job : jobs) {
      if (!job.failed && !job.Finished() && cluster_doomed_for(job)) {
        fail_doomed(&job);
      }
    }
    // Failed jobs whose last in-flight attempts were just killed have no
    // completion event left to drain them.
    for (RunningJob& job : jobs) {
      if (job.failed) drain_failed_job(&job);
    }
  };

  auto handle_node_recover = [&](const Event& ev) {
    if (ev.node < 0 || ev.node >= num_nodes) return;
    NodeState& ns = node_states_[ev.node];
    if (ns.alive || ns.recover_at != ev.time) return;  // Stale event.
    ns.alive = true;
    ns.recover_at = 0;
    ++alive_nodes;
    // The node rejoins with empty disks: full slot capacity, no resident
    // map outputs (those were invalidated at crash time).
    free_map[ev.node] = node_capacity(config_.map_slots, ev.node);
    free_reduce[ev.node] = node_capacity(config_.reduce_slots, ev.node);
    free_map_slots += free_map[ev.node];
    free_reduce_slots += free_reduce[ev.node];
    if (m_node_recoveries != nullptr) m_node_recoveries->Add();
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEvent(now_, -1, obs::TraceLane::kEngine, "mr",
                                     "node_recover")
                         .ArgInt("node", ev.node)
                         .ArgInt("alive_nodes", alive_nodes));
    }
  };

  auto handle_event = [&](const Event& ev) {
    // Node events carry no job index; dispatch them before binding one.
    if (ev.kind == EventKind::kNodeCrash) {
      handle_node_crash(ev.node, ev.scripted);
      return;
    }
    if (ev.kind == EventKind::kNodeRecover) {
      handle_node_recover(ev);
      return;
    }
    RunningJob& job = jobs[ev.job_index];
    switch (ev.kind) {
      case EventKind::kJobReady:
        if (!job.failed && job.phase == JobPhase::kStartingUp &&
            cluster_doomed_for(job)) {
          // Submitted against a permanently dead cluster (every crash
          // already classified the jobs it doomed; this catches jobs
          // submitted afterwards).
          fail_doomed(&job);
          break;
        }
        if (!job.failed && job.phase == JobPhase::kStartingUp) {
          // Check the broadcast memory budget at task-launch time: the build
          // side is loaded by the first task wave, which is when Jaql's
          // broadcast join discovers it does not fit and dies.
          double need = static_cast<double>(job.spec->side_memory_bytes) *
                        config_.broadcast_memory_factor;
          if (job.spec->side_memory_bytes > 0) {
            job.result.peak_task_memory_bytes =
                std::max(job.result.peak_task_memory_bytes,
                         static_cast<uint64_t>(need));
          }
          if (need > static_cast<double>(config_.memory_per_task_bytes)) {
            if (m_oom_failures == nullptr && metrics_ != nullptr) {
              m_oom_failures = metrics_->GetCounter("mr.memory_oom_failures");
            }
            if (m_oom_failures != nullptr) m_oom_failures->Add();
            fail_job(&job,
                     Status::OutOfMemory(StrFormat(
                         "broadcast build side of %s needs %.0f bytes "
                         "(task memory %llu)",
                         job.spec->name.c_str(), need,
                         static_cast<unsigned long long>(
                             config_.memory_per_task_bytes))));
          } else {
            job.phase = JobPhase::kMap;
          }
        }
        break;
      case EventKind::kMapDone: {
        auto flight = in_flight.find(ev.seq);
        if (flight == in_flight.end()) break;  // Killed by a node crash.
        const int node = flight->second.node;
        in_flight.erase(flight);
        ++free_map[node];
        ++free_map_slots;
        --job.active_map_tasks;
        if (job.failed) {
          drain_failed_job(&job);
          break;
        }
        TaskRunState& st = job.map_states[ev.task_id];
        if (ev.speculative) {
          st.backup_in_flight = false;
          if (!st.completed) {
            // The backup beat its primary; the primary's own completion
            // event will only give back its slot.
            st.completed = true;
            st.node = node;
            --job.map_tasks_remaining;
            ++job.result.map_tasks_run;
            ++job.result.speculative_wins;
            if (m_spec_wins != nullptr) m_spec_wins->Add();
            if (trace_ != nullptr) {
              trace_->Record(obs::TraceEvent(now_, -1, obs::TraceLane::kTasks,
                                             "mr", "speculative_win")
                                 .Arg("job", job.spec->name)
                                 .ArgInt("task", ev.task_id)
                                 .ArgBool("map", true));
            }
            job.completed_map_ms.push_back(ev.attempt_duration);
            apply_durable_completion(&job, /*is_map=*/true, ev.task_id);
          }
        } else if (ev.attempt_failed) {
          st.primary_in_flight = false;
          ++st.failures;
          if (ev.poison_failure) {
            // A map function "threw" on a poison record. After two such
            // attempt deaths the task re-runs in skip mode, quarantining
            // the poison records instead of failing (Hadoop skip mode).
            ++st.poison_failures;
            if (st.poison_failures >= 2) st.skip_mode = true;
          }
          if (st.failures >= max_attempts) {
            // A DataLoss last error keeps its code through the job failure:
            // it is the signal that lets the driver's retry ladder classify
            // the failure as data corruption, not engine logic.
            std::string detail = StrFormat(
                "map task %d of %s failed %d attempts; last: %s", ev.task_id,
                job.spec->name.c_str(), st.failures,
                st.last_error.ToString().c_str());
            if (st.last_error.code() == StatusCode::kDataLoss) {
              if (m_integrity_failures != nullptr) m_integrity_failures->Add();
              fail_job(&job, Status::DataLoss(std::move(detail)));
            } else {
              fail_job(&job, Status::Internal(std::move(detail)));
            }
            break;
          }
          SimMillis backoff = retry_backoff(&job, st.failures);
          job.pending_map.push_back({ev.task_id, now_ + backoff});
          if (backoff > 0) {
            events.push(
                {now_ + backoff, seq++, EventKind::kWakeup, job.job_index});
          }
        } else {
          st.primary_in_flight = false;
          if (!st.completed) {
            st.completed = true;
            st.node = node;
            --job.map_tasks_remaining;
            ++job.result.map_tasks_run;
            job.completed_map_ms.push_back(ev.attempt_duration);
            apply_durable_completion(&job, /*is_map=*/true, ev.task_id);
          }
          // else: the primary lost its race against a faster backup; it
          // only held a slot until now.
        }
        // fail_job can fire inside apply_durable_completion (quarantine
        // budget); a failed job must not advance phases.
        if (!job.failed && job.pending_map.empty() &&
            job.map_tasks_remaining == 0 && job.phase == JobPhase::kMap) {
          on_map_phase_complete(&job);
        } else if (!job.failed) {
          push_speculation_wakeup(&job, /*is_map=*/true);
        }
        break;
      }
      case EventKind::kShuffleDone:
        // A stale epoch means a node crash invalidated map outputs while
        // this shuffle was in flight; the job re-entered the map phase and
        // will re-shuffle when the re-executed maps drain.
        if (!job.failed && ev.shuffle_epoch == job.shuffle_epoch &&
            job.phase == JobPhase::kShuffle) {
          job.phase = JobPhase::kReduce;
          if (!job.reduce_opened) {
            job.reduce_opened = true;
            job.reduce_start = now_;
            for (int r = 0; r < job.num_reduce_tasks; ++r) {
              job.pending_reduce.push_back({r, 0});
            }
          }
          // else: re-shuffle after invalidation — the reducers that were
          // blocked on the fetch failure are already queued in
          // pending_reduce (and freshly re-bucketed); just resume them.
        }
        break;
      case EventKind::kReduceDone: {
        auto flight = in_flight.find(ev.seq);
        if (flight == in_flight.end()) break;  // Killed by a node crash.
        const int node = flight->second.node;
        in_flight.erase(flight);
        ++free_reduce[node];
        ++free_reduce_slots;
        --job.active_reduce_tasks;
        if (job.failed) {
          drain_failed_job(&job);
          break;
        }
        TaskRunState& st = job.reduce_states[ev.task_id];
        if (ev.speculative) {
          st.backup_in_flight = false;
          if (!st.completed) {
            st.completed = true;
            st.node = node;
            --job.reduce_tasks_remaining;
            ++job.result.reduce_tasks_run;
            ++job.result.speculative_wins;
            if (m_spec_wins != nullptr) m_spec_wins->Add();
            if (trace_ != nullptr) {
              trace_->Record(obs::TraceEvent(now_, -1, obs::TraceLane::kTasks,
                                             "mr", "speculative_win")
                                 .Arg("job", job.spec->name)
                                 .ArgInt("task", ev.task_id)
                                 .ArgBool("map", false));
            }
            job.completed_reduce_ms.push_back(ev.attempt_duration);
            apply_durable_completion(&job, /*is_map=*/false, ev.task_id);
          }
        } else if (ev.attempt_failed) {
          st.primary_in_flight = false;
          ++st.failures;
          if (st.failures >= max_attempts) {
            std::string detail = StrFormat(
                "reduce task %d of %s failed %d attempts; last: %s",
                ev.task_id, job.spec->name.c_str(), st.failures,
                st.last_error.ToString().c_str());
            if (st.last_error.code() == StatusCode::kDataLoss) {
              if (m_integrity_failures != nullptr) m_integrity_failures->Add();
              fail_job(&job, Status::DataLoss(std::move(detail)));
            } else {
              fail_job(&job, Status::Internal(std::move(detail)));
            }
            break;
          }
          SimMillis backoff = retry_backoff(&job, st.failures);
          job.pending_reduce.push_back({ev.task_id, now_ + backoff});
          if (backoff > 0) {
            events.push(
                {now_ + backoff, seq++, EventKind::kWakeup, job.job_index});
          }
        } else {
          st.primary_in_flight = false;
          if (!st.completed) {
            st.completed = true;
            st.node = node;
            --job.reduce_tasks_remaining;
            ++job.result.reduce_tasks_run;
            job.completed_reduce_ms.push_back(ev.attempt_duration);
            apply_durable_completion(&job, /*is_map=*/false, ev.task_id);
          }
        }
        if (job.pending_reduce.empty() && job.reduce_tasks_remaining == 0 &&
            job.phase == JobPhase::kReduce) {
          finish_job(&job);
        } else {
          push_speculation_wakeup(&job, /*is_map=*/false);
        }
        break;
      }
      case EventKind::kWakeup:
        // Nothing to do: the point was to trigger the scheduling pass that
        // follows event handling at this timestamp.
        break;
      case EventKind::kNodeCrash:
      case EventKind::kNodeRecover:
        break;  // Dispatched before the switch; unreachable here.
    }
  };

  while (unfinished > 0) {
    schedule();
    if (events.empty()) {
      if (unfinished > 0) {
        return Status::Internal("scheduler deadlock: jobs pending, no events");
      }
      break;
    }
    Event ev = events.top();
    events.pop();
    now_ = std::max(now_, ev.time);
    handle_event(ev);
    // Drain every event at this same timestamp before rescheduling, so all
    // slots freed at one simulated instant are refilled as a single wave —
    // that wave is what the worker pool executes in parallel.
    while (!events.empty() && events.top().time <= now_) {
      Event next = events.top();
      events.pop();
      handle_event(next);
    }
  }

  const SimMillis wave_elapsed_ms = now_ - wave_start_ms;
  const int total_slots =
      std::max(1, config_.map_slots) + std::max(0, config_.reduce_slots);
  if (wave_elapsed_ms > 0) {
    double pressure =
        static_cast<double>(busy_slot_ms_total_ - busy_before_ms) /
        (static_cast<double>(wave_elapsed_ms) *
         static_cast<double>(total_slots));
    last_wave_pressure_ = std::clamp(pressure, 0.0, 1.0);
  }

  std::vector<JobResult> results;
  results.reserve(jobs.size());
  for (RunningJob& job : jobs) {
    job.result.output = job.output;
    results.push_back(std::move(job.result));
  }
  return results;
}

}  // namespace dyno
