#ifndef DYNO_MR_WORKER_POOL_H_
#define DYNO_MR_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dyno {

/// Fixed-size pool of OS worker threads used by MapReduceEngine to execute
/// task data flows in parallel. Purely a wall-clock accelerator: the caller
/// enqueues a batch of independent closures and blocks until every one has
/// run. Nothing about completion *order* is exposed — the engine commits
/// task results in launch order afterwards — which is what keeps simulated
/// results bit-identical for any pool size.
class WorkerPool {
 public:
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs every closure in `tasks` on the pool, returning once all of them
  /// have finished. Closures must not throw; any shared state they touch
  /// must be internally synchronized. Only one batch may run at a time
  /// (the engine's event loop is single-threaded, so this is structural).
  void RunBatch(std::vector<std::function<void()>> tasks);

  int size() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::vector<std::function<void()>> batch_;  ///< Current batch.
  size_t next_ = 0;       ///< First unclaimed index in batch_.
  size_t in_flight_ = 0;  ///< Claimed but not yet finished.
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dyno

#endif  // DYNO_MR_WORKER_POOL_H_
