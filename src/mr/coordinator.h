#ifndef DYNO_MR_COORDINATOR_H_
#define DYNO_MR_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dyno {

/// In-process stand-in for the ZooKeeper ensemble DYNO uses for cross-task
/// coordination: (1) the global output-record counter that lets PILR_ST
/// interrupt a sampling job once k records have been produced, and (2) the
/// registry where finished tasks publish the URLs of their partial
/// statistics files so the client can combine them without an extra MR job
/// (paper §4.2, §5.4).
///
/// Thread-safety: all operations are internally synchronized, because map
/// tasks running on the engine's worker threads increment counters
/// concurrently (just like tasks hitting a real ZooKeeper ensemble).
/// Counter totals are commutative, so the values observed at the engine's
/// deterministic read points (no tasks in flight) are thread-count
/// independent. `Fetch` returns a snapshot copy for the same reason.
class Coordinator {
 public:
  Coordinator() = default;
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Atomically adds `delta` to the named counter, returning the new value.
  int64_t Increment(const std::string& name, int64_t delta);

  /// Current value of the named counter (0 if never written).
  int64_t GetCounter(const std::string& name) const;

  void ResetCounter(const std::string& name);

  /// Appends a payload to a named channel (a task publishing its partial
  /// statistics file).
  void Publish(const std::string& channel, std::string payload);

  /// All payloads published to `channel`, in publication order.
  std::vector<std::string> Fetch(const std::string& channel) const;

  void ClearChannel(const std::string& channel);

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, std::vector<std::string>> channels_;
};

}  // namespace dyno

#endif  // DYNO_MR_COORDINATOR_H_
