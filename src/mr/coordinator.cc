#include "mr/coordinator.h"

namespace dyno {

int64_t Coordinator::Increment(const std::string& name, int64_t delta) {
  return counters_[name] += delta;
}

int64_t Coordinator::GetCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Coordinator::ResetCounter(const std::string& name) {
  counters_.erase(name);
}

void Coordinator::Publish(const std::string& channel, std::string payload) {
  channels_[channel].push_back(std::move(payload));
}

const std::vector<std::string>& Coordinator::Fetch(
    const std::string& channel) const {
  static const std::vector<std::string>* kEmpty =
      new std::vector<std::string>();
  auto it = channels_.find(channel);
  return it == channels_.end() ? *kEmpty : it->second;
}

void Coordinator::ClearChannel(const std::string& channel) {
  channels_.erase(channel);
}

}  // namespace dyno
