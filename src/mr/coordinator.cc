#include "mr/coordinator.h"

namespace dyno {

int64_t Coordinator::Increment(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name] += delta;
}

int64_t Coordinator::GetCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Coordinator::ResetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.erase(name);
}

void Coordinator::Publish(const std::string& channel, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  channels_[channel].push_back(std::move(payload));
}

std::vector<std::string> Coordinator::Fetch(const std::string& channel) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(channel);
  return it == channels_.end() ? std::vector<std::string>() : it->second;
}

void Coordinator::ClearChannel(const std::string& channel) {
  std::lock_guard<std::mutex> lock(mu_);
  channels_.erase(channel);
}

}  // namespace dyno
