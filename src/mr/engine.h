#ifndef DYNO_MR_ENGINE_H_
#define DYNO_MR_ENGINE_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "mr/cluster_config.h"
#include "mr/coordinator.h"
#include "mr/job.h"
#include "storage/dfs.h"

namespace dyno {

class WorkerPool;

namespace obs {
class MetricsRegistry;
class TraceSink;
}  // namespace obs

class Value;

/// Encodes one sorted spill run — a sequence of (key, value) pairs — into a
/// CRC-framed row-format Split (alternating encoded keys and values, so
/// num_records == 2 * pairs). Spill runs live in DFS files next to the job
/// output (`<output>.spill/t<task>`) while a spilling reduce task is the
/// winning attempt, and are decoded back through the same checksum path as
/// any other split: a flipped bit or truncation is DataLoss, never a wrong
/// answer (DESIGN.md §6.10).
Split EncodeSpillRun(const std::vector<std::pair<Value, Value>>& pairs);

/// Decodes a spill run back into (key, value) pairs. Verifies the CRC frame
/// first; corruption or an odd record count returns DataLoss.
Result<std::vector<std::pair<Value, Value>>> DecodeSpillRun(
    const Split& run);

/// The MapReduce cluster simulator. Jobs execute their *real* data flow
/// (map functions run over decoded rows, emissions are partitioned, sorted
/// and reduced, outputs are materialized to the DFS) while a discrete-event
/// scheduler charges simulated time: map/reduce slots are shared FIFO
/// across concurrently submitted jobs, every job pays a startup latency,
/// and each phase is billed by the byte/CPU rates in ClusterConfig.
///
/// The cluster clock persists across submissions, so end-to-end query time
/// is simply the clock delta around a sequence of Submit/SubmitAll calls.
///
/// When ClusterConfig::execution_threads > 1, task data flows execute on a
/// worker pool: each scheduling pass dispatches the whole wave of launched
/// tasks to the pool, joins, and commits their buffered results in launch
/// order on the scheduler thread. Simulated timestamps, counters and DFS
/// outputs are therefore bit-identical regardless of thread count.
///
/// ClusterConfig::faults enables a deterministic fault model — transient
/// task failures with retry/backoff, straggler slowdowns, and speculative
/// execution — whose draws all happen on the scheduler thread at launch
/// time, preserving the bit-identical guarantee (DESIGN.md §6.2).
///
/// The cluster's nodes are fault domains (DESIGN.md §6.4): slots are
/// divided across ClusterConfig::num_nodes, completed map outputs of
/// map-reduce jobs are resident on the node that produced them, and a node
/// crash (FaultConfig::node_failure_rate or a scripted crash) kills the
/// node's running attempts, invalidates its resident map outputs, and
/// forces dependent reducers through a shuffle re-fetch after the lost
/// maps re-execute on surviving nodes. Node liveness persists across
/// submissions (like the clock); set_config() re-provisions all nodes.
class MapReduceEngine {
 public:
  /// Liveness of one simulated node. `recover_at` < 0 means the node is
  /// down for good (FaultConfig::node_recovery_ms <= 0).
  struct NodeState {
    bool alive = true;
    SimMillis recover_at = 0;
  };

  MapReduceEngine(Dfs* dfs, ClusterConfig config);
  ~MapReduceEngine();

  /// Runs one job to completion. The returned JobResult carries a non-OK
  /// status if the job failed (e.g. a broadcast build side exceeded task
  /// memory); a Status return means the spec itself was invalid.
  Result<JobResult> Submit(const JobSpec& spec);

  /// Runs several jobs concurrently, sharing cluster slots (the paper's
  /// PILR_MT and the MO/two-at-a-time execution strategies). Results are in
  /// spec order. When a submit gate is installed (see set_submit_gate) the
  /// call is routed through it instead of executing directly.
  Result<std::vector<JobResult>> SubmitAll(const std::vector<JobSpec>& specs);

  /// Executes a batch immediately, bypassing any installed submit gate.
  /// This is the gate owner's path back into the engine: the QueryService
  /// intercepts per-driver SubmitAll calls, merges the batches of every
  /// waiting session into one combined wave, and runs that wave here so
  /// jobs from different queries genuinely share cluster slots.
  Result<std::vector<JobResult>> SubmitAllDirect(
      const std::vector<JobSpec>& specs);

  /// Scheduling hook for a multi-query service: when set, Submit/SubmitAll
  /// hand the batch to the gate and return whatever it returns. The gate
  /// runs on the submitting thread; it is expected to eventually execute
  /// the jobs via SubmitAllDirect (possibly merged with other sessions'
  /// batches) and hand each session its own results back, in spec order.
  using SubmitGate =
      std::function<Result<std::vector<JobResult>>(std::vector<JobSpec>)>;
  void set_submit_gate(SubmitGate gate) { submit_gate_ = std::move(gate); }
  bool has_submit_gate() const { return static_cast<bool>(submit_gate_); }

  /// Current simulated cluster time.
  SimMillis now() const { return now_; }

  /// Advances the clock by `ms` (models client-side work between jobs, e.g.
  /// optimizer calls).
  void AdvanceClock(SimMillis ms) { now_ += ms; }

  Dfs* dfs() const { return dfs_; }
  Coordinator* coordinator() { return &coordinator_; }
  const ClusterConfig& config() const { return config_; }

  /// Replaces the cluster configuration (used by benches that sweep rates).
  /// Re-provisions the node fleet: every node comes back alive.
  void set_config(const ClusterConfig& config) {
    config_ = ResolveFaultEnv(config);
    node_states_.assign(std::max(1, config_.num_nodes), NodeState{});
    scripted_crashes_consumed_ = 0;
  }

  /// Per-node liveness (index < ClusterConfig::num_nodes).
  const std::vector<NodeState>& node_states() const { return node_states_; }

  /// Attaches an observability sink/registry (non-owning, may be null).
  /// The engine records job/phase/attempt spans into the sink and bumps
  /// counters and latency histograms in the registry. All recording happens
  /// on the scheduler thread, so trace order inherits the simulator's
  /// bit-identical-across-thread-counts guarantee. Components driving the
  /// engine (pilot, optimizer, driver) reach the same sink through the
  /// accessors.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace() const { return trace_; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Per-query slot accounting: total committed attempt time (map + reduce
  /// slot occupancy, SimMillis) keyed by JobSpec::query_id, accumulated
  /// when jobs finish. Jobs with an empty query_id are not tracked. Read by
  /// the QueryService's least-attained fair-share policy and by
  /// bench_concurrency's utilization figure; updated only on the scheduler
  /// thread.
  const std::map<std::string, SimMillis>& query_slot_ms() const {
    return query_slot_ms_;
  }

  /// Cumulative committed attempt time across *all* jobs regardless of
  /// query_id, in slot-milliseconds. The single-query analogue of
  /// query_slot_ms(); the driver's retry-budget accounting falls back to
  /// deltas of this when it runs without a query id.
  SimMillis busy_slot_ms_total() const { return busy_slot_ms_total_; }

  /// Busy-slot fraction of the most recent SubmitAllDirect wave:
  /// committed slot-ms during the wave divided by (wave duration × total
  /// map+reduce slots), clamped to [0, 1]. 0 until a wave has run. The
  /// QueryService's load-shedding gate reads this as its running-slot
  /// pressure signal; updated only on the scheduler thread.
  double last_wave_pressure() const { return last_wave_pressure_; }

 private:
  /// Fills config.faults from DYNO_* env vars when the caller did not
  /// configure injection explicitly (FaultConfig::use_env_defaults).
  static ClusterConfig ResolveFaultEnv(ClusterConfig config);

  Dfs* dfs_;
  ClusterConfig config_;
  Coordinator coordinator_;
  SimMillis now_ = 0;
  /// Node liveness, persisted across submissions like the clock.
  std::vector<NodeState> node_states_;
  /// How many FaultConfig::scripted_node_crashes already fired.
  size_t scripted_crashes_consumed_ = 0;
  /// Lazily created when execution_threads > 1; resized on config change.
  std::unique_ptr<WorkerPool> pool_;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  SubmitGate submit_gate_;
  /// Committed slot time per JobSpec::query_id (see query_slot_ms()).
  std::map<std::string, SimMillis> query_slot_ms_;
  /// Committed slot time across all jobs (see busy_slot_ms_total()).
  SimMillis busy_slot_ms_total_ = 0;
  /// Busy-slot fraction of the last wave (see last_wave_pressure()).
  double last_wave_pressure_ = 0.0;
};

}  // namespace dyno

#endif  // DYNO_MR_ENGINE_H_
