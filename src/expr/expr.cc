#include "expr/expr.h"

#include <utility>

#include "common/string_util.h"

namespace dyno {

namespace {

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(Kind::kLiteral), value_(std::move(v)) {}

  Result<Value> Eval(const Value&) const override { return value_; }

  std::string ToString() const override { return value_.ToString(); }

  double CpuCost() const override { return 0.0; }

  void CollectColumns(std::vector<std::string>*) const override {}

  bool ContainsUdf() const override { return false; }

 private:
  Value value_;
};

class PathExpr : public Expr {
 public:
  explicit PathExpr(std::vector<PathStep> steps)
      : Expr(Kind::kPath), steps_(std::move(steps)) {}

  Result<Value> Eval(const Value& row) const override {
    const Value* cur = &row;
    for (const PathStep& step : steps_) {
      if (step.kind == PathStep::Kind::kField) {
        cur = cur->FindField(step.field);
      } else {
        cur = cur->FindElement(step.index);
      }
      if (cur == nullptr) return Value::Null();
    }
    return *cur;
  }

  std::string ToString() const override {
    std::string out;
    for (const PathStep& step : steps_) {
      if (step.kind == PathStep::Kind::kField) {
        if (!out.empty()) out += ".";
        out += step.field;
      } else {
        out += StrFormat("[%zu]", step.index);
      }
    }
    return out;
  }

  double CpuCost() const override {
    return static_cast<double>(steps_.size());
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    if (!steps_.empty() && steps_[0].kind == PathStep::Kind::kField) {
      out->push_back(steps_[0].field);
    }
  }

  bool ContainsUdf() const override { return false; }

  /// Name of the referenced column when this is a bare top-level field
  /// reference, empty otherwise.
  std::string SimpleColumn() const {
    if (steps_.size() == 1 && steps_[0].kind == PathStep::Kind::kField) {
      return steps_[0].field;
    }
    return "";
  }

 private:
  std::vector<PathStep> steps_;
};

Expr::CompareOp MirrorCompareOp(Expr::CompareOp op) {
  switch (op) {
    case Expr::CompareOp::kLt: return Expr::CompareOp::kGt;
    case Expr::CompareOp::kLe: return Expr::CompareOp::kGe;
    case Expr::CompareOp::kGt: return Expr::CompareOp::kLt;
    case Expr::CompareOp::kGe: return Expr::CompareOp::kLe;
    default: return op;  // =, <> are symmetric
  }
}

const char* CompareOpName(Expr::CompareOp op) {
  switch (op) {
    case Expr::CompareOp::kEq: return "=";
    case Expr::CompareOp::kNe: return "<>";
    case Expr::CompareOp::kLt: return "<";
    case Expr::CompareOp::kLe: return "<=";
    case Expr::CompareOp::kGt: return ">";
    case Expr::CompareOp::kGe: return ">=";
  }
  return "?";
}

class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kCompare),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  Result<Value> Eval(const Value& row) const override {
    DYNO_ASSIGN_OR_RETURN(Value l, lhs_->Eval(row));
    DYNO_ASSIGN_OR_RETURN(Value r, rhs_->Eval(row));
    // SQL-ish null semantics: comparisons involving null are false.
    if (l.is_null() || r.is_null()) return Value::Bool(false);
    int c = l.Compare(r);
    bool result = false;
    switch (op_) {
      case CompareOp::kEq: result = (c == 0); break;
      case CompareOp::kNe: result = (c != 0); break;
      case CompareOp::kLt: result = (c < 0); break;
      case CompareOp::kLe: result = (c <= 0); break;
      case CompareOp::kGt: result = (c > 0); break;
      case CompareOp::kGe: result = (c >= 0); break;
    }
    return Value::Bool(result);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + CompareOpName(op_) + " " +
           rhs_->ToString() + ")";
  }

  double CpuCost() const override {
    return 1.0 + lhs_->CpuCost() + rhs_->CpuCost();
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }

  bool ContainsUdf() const override {
    return lhs_->ContainsUdf() || rhs_->ContainsUdf();
  }

  bool AsSimpleComparison(std::string* column, CompareOp* op,
                          Value* literal) const override {
    auto extract = [](const ExprPtr& path_side, const ExprPtr& lit_side,
                      std::string* col, Value* lit) {
      if (path_side->kind() != Kind::kPath ||
          lit_side->kind() != Kind::kLiteral) {
        return false;
      }
      std::string name =
          static_cast<const PathExpr*>(path_side.get())->SimpleColumn();
      if (name.empty()) return false;
      Result<Value> v = lit_side->Eval(Value::Null());
      if (!v.ok()) return false;
      *col = std::move(name);
      *lit = std::move(v).value();
      return true;
    };
    if (extract(lhs_, rhs_, column, literal)) {
      *op = op_;
      return true;
    }
    if (extract(rhs_, lhs_, column, literal)) {
      *op = MirrorCompareOp(op_);
      return true;
    }
    return false;
  }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class LogicalExpr : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kLogical),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  Result<Value> Eval(const Value& row) const override {
    DYNO_ASSIGN_OR_RETURN(Value l, lhs_->Eval(row));
    bool lv = !l.is_null() && l.type() == Value::Type::kBool && l.bool_value();
    switch (op_) {
      case LogicalOp::kNot:
        return Value::Bool(!lv);
      case LogicalOp::kAnd: {
        if (!lv) return Value::Bool(false);  // short-circuit
        DYNO_ASSIGN_OR_RETURN(Value r, rhs_->Eval(row));
        return Value::Bool(!r.is_null() && r.type() == Value::Type::kBool &&
                           r.bool_value());
      }
      case LogicalOp::kOr: {
        if (lv) return Value::Bool(true);
        DYNO_ASSIGN_OR_RETURN(Value r, rhs_->Eval(row));
        return Value::Bool(!r.is_null() && r.type() == Value::Type::kBool &&
                           r.bool_value());
      }
    }
    return Status::Internal("bad logical op");
  }

  std::string ToString() const override {
    switch (op_) {
      case LogicalOp::kNot:
        return "NOT " + lhs_->ToString();
      case LogicalOp::kAnd:
        return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
      case LogicalOp::kOr:
        return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
    }
    return "?";
  }

  double CpuCost() const override {
    return 1.0 + lhs_->CpuCost() + (rhs_ ? rhs_->CpuCost() : 0.0);
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    lhs_->CollectColumns(out);
    if (rhs_) rhs_->CollectColumns(out);
  }

  bool ContainsUdf() const override {
    return lhs_->ContainsUdf() || (rhs_ && rhs_->ContainsUdf());
  }

  bool AsConjunction(ExprPtr* lhs, ExprPtr* rhs) const override {
    if (op_ != LogicalOp::kAnd) return false;
    *lhs = lhs_;
    *rhs = rhs_;
    return true;
  }

  bool AsLogical(LogicalOp* op, const Expr** lhs,
                 const Expr** rhs) const override {
    *op = op_;
    *lhs = lhs_.get();
    *rhs = rhs_.get();  // nullptr for NOT
    return true;
  }

 private:
  LogicalOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;  // null for NOT
};

const char* ArithOpName(Expr::ArithOp op) {
  switch (op) {
    case Expr::ArithOp::kAdd: return "+";
    case Expr::ArithOp::kSub: return "-";
    case Expr::ArithOp::kMul: return "*";
    case Expr::ArithOp::kDiv: return "/";
  }
  return "?";
}

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kArith),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  Result<Value> Eval(const Value& row) const override {
    DYNO_ASSIGN_OR_RETURN(Value l, lhs_->Eval(row));
    DYNO_ASSIGN_OR_RETURN(Value r, rhs_->Eval(row));
    if (l.is_null() || r.is_null()) return Value::Null();
    bool both_int = l.type() == Value::Type::kInt &&
                    r.type() == Value::Type::kInt &&
                    op_ != ArithOp::kDiv;
    if (both_int) {
      int64_t a = l.int_value();
      int64_t b = r.int_value();
      switch (op_) {
        case ArithOp::kAdd: return Value::Int(a + b);
        case ArithOp::kSub: return Value::Int(a - b);
        case ArithOp::kMul: return Value::Int(a * b);
        default: break;
      }
    }
    if ((l.type() != Value::Type::kInt && l.type() != Value::Type::kDouble) ||
        (r.type() != Value::Type::kInt && r.type() != Value::Type::kDouble)) {
      return Status::InvalidArgument("arithmetic on non-numeric value");
    }
    double a = l.AsDouble();
    double b = r.AsDouble();
    switch (op_) {
      case ArithOp::kAdd: return Value::Double(a + b);
      case ArithOp::kSub: return Value::Double(a - b);
      case ArithOp::kMul: return Value::Double(a * b);
      case ArithOp::kDiv:
        if (b == 0.0) return Value::Null();
        return Value::Double(a / b);
    }
    return Status::Internal("bad arith op");
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + ArithOpName(op_) + " " +
           rhs_->ToString() + ")";
  }

  double CpuCost() const override {
    return 1.0 + lhs_->CpuCost() + rhs_->CpuCost();
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }

  bool ContainsUdf() const override {
    return lhs_->ContainsUdf() || rhs_->ContainsUdf();
  }

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class UdfExpr : public Expr {
 public:
  UdfExpr(std::string name, double cpu_cost, UdfFn fn)
      : Expr(Kind::kUdf),
        name_(std::move(name)),
        cpu_cost_(cpu_cost),
        fn_(std::move(fn)) {}

  Result<Value> Eval(const Value& row) const override { return fn_(row); }

  std::string ToString() const override { return name_ + "(*)"; }

  double CpuCost() const override { return cpu_cost_; }

  void CollectColumns(std::vector<std::string>*) const override {
    // Opaque: the optimizer cannot see which columns the UDF reads.
  }

  bool ContainsUdf() const override { return true; }

 private:
  std::string name_;
  double cpu_cost_;
  UdfFn fn_;
};

}  // namespace

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }

ExprPtr Col(std::string name) {
  return Path({PathStep::Field(std::move(name))});
}

ExprPtr Path(std::vector<PathStep> steps) {
  return std::make_shared<PathExpr>(std::move(steps));
}

ExprPtr Compare(Expr::CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Compare(Expr::CompareOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return Compare(Expr::CompareOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Compare(Expr::CompareOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return Compare(Expr::CompareOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Compare(Expr::CompareOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return Compare(Expr::CompareOp::kGe, std::move(l), std::move(r));
}

ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(Expr::LogicalOp::kAnd, std::move(l),
                                       std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(Expr::LogicalOp::kOr, std::move(l),
                                       std::move(r));
}
ExprPtr Not(ExprPtr operand) {
  return std::make_shared<LogicalExpr>(Expr::LogicalOp::kNot,
                                       std::move(operand), nullptr);
}

ExprPtr Arith(Expr::ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr MakeUdf(std::string name, double cpu_cost, Expr::UdfFn fn) {
  return std::make_shared<UdfExpr>(std::move(name), cpu_cost, std::move(fn));
}

ExprPtr Conjoin(const std::vector<ExprPtr>& preds) {
  ExprPtr out;
  for (const ExprPtr& p : preds) {
    out = out ? And(out, p) : p;
  }
  return out;
}

void DecomposeConjunction(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  ExprPtr lhs;
  ExprPtr rhs;
  if (expr->AsConjunction(&lhs, &rhs)) {
    DecomposeConjunction(lhs, out);
    DecomposeConjunction(rhs, out);
  } else {
    out->push_back(expr);
  }
}

}  // namespace dyno
