#ifndef DYNO_EXPR_EXPR_H_
#define DYNO_EXPR_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "json/value.h"

namespace dyno {

class Expr;
/// Expressions are immutable shared trees; plans copy them freely.
using ExprPtr = std::shared_ptr<const Expr>;

/// One step of a path into a nested value: a struct field or array index.
/// `addr[0].zip` is {Field("addr"), Index(0), Field("zip")}.
struct PathStep {
  enum class Kind { kField, kIndex };
  Kind kind;
  std::string field;  ///< Valid when kind == kField.
  size_t index = 0;   ///< Valid when kind == kIndex.

  static PathStep Field(std::string name) {
    return PathStep{Kind::kField, std::move(name), 0};
  }
  static PathStep Index(size_t i) {
    return PathStep{Kind::kIndex, {}, i};
  }
};

/// A scalar expression evaluated against one input row (a struct Value).
/// The tree is closed: the full node-kind set is below, and evaluation
/// dispatches on `kind()`. UDF nodes wrap opaque user code — the optimizer
/// can see that a UDF exists (and its declared CPU cost) but never its
/// selectivity, exactly the information asymmetry the paper targets.
class Expr {
 public:
  enum class Kind {
    kLiteral,
    kPath,      // column / nested-path reference
    kCompare,   // =, <>, <, <=, >, >=
    kLogical,   // AND, OR, NOT
    kArith,     // +, -, *, /
    kUdf,       // opaque user-defined function
  };

  enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
  enum class LogicalOp { kAnd, kOr, kNot };
  enum class ArithOp { kAdd, kSub, kMul, kDiv };

  /// Signature of opaque user code: row in, value out. Filter UDFs return
  /// Bool; transform UDFs may return anything (including values larger than
  /// their input — the case that makes broadcast-join sizing dangerous).
  using UdfFn = std::function<Result<Value>(const Value& row)>;

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Evaluates against `row`. Missing struct fields and out-of-range array
  /// indexes evaluate to null (JSON semantics), not errors.
  virtual Result<Value> Eval(const Value& row) const = 0;

  /// Deterministic textual form; doubles as the expression-signature
  /// component for statistics reuse (paper §4.1).
  virtual std::string ToString() const = 0;

  /// Per-row CPU cost in abstract units (1 unit = one cheap scalar op).
  /// UDFs report their declared cost. Used by the simulator's task timing.
  virtual double CpuCost() const = 0;

  /// Appends the names of top-level columns this expression reads.
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;

  /// True if any node in the tree is a UDF.
  virtual bool ContainsUdf() const = 0;

  /// If this node is `column <op> literal` (or `literal <op> column`) over
  /// a single top-level column, fills the outputs and returns true. This is
  /// the shape a traditional optimizer can estimate from histograms;
  /// anything else (UDFs, nested paths, cross-column comparisons) is opaque
  /// to it.
  virtual bool AsSimpleComparison(std::string* column, CompareOp* op,
                                  Value* literal) const {
    (void)column;
    (void)op;
    (void)literal;
    return false;
  }

  /// If this node is `lhs AND rhs`, fills the outputs and returns true —
  /// used to decompose predicate conjunctions for per-factor selectivity
  /// estimation (where the independence assumption then bites).
  virtual bool AsConjunction(ExprPtr* lhs, ExprPtr* rhs) const {
    (void)lhs;
    (void)rhs;
    return false;
  }

  /// If this node is a logical connective, fills the outputs and returns
  /// true. `*rhs` is nullptr for NOT. Lets structural analyses (zone-map
  /// pruning) walk AND/OR/NOT trees without evaluating them.
  virtual bool AsLogical(LogicalOp* op, const Expr** lhs,
                         const Expr** rhs) const {
    (void)op;
    (void)lhs;
    (void)rhs;
    return false;
  }

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// --- Factory functions (the public construction API) ---

/// A constant.
ExprPtr Lit(Value v);
/// Shorthand literals.
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);

/// A top-level column reference.
ExprPtr Col(std::string name);
/// A nested path reference, e.g. Path({Field("addr"),Index(0),Field("zip")}).
ExprPtr Path(std::vector<PathStep> steps);

ExprPtr Compare(Expr::CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);

ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);

ExprPtr Arith(Expr::ArithOp op, ExprPtr lhs, ExprPtr rhs);

/// An opaque UDF. `name` identifies it in plans and signatures; `cpu_cost`
/// is the declared per-row cost (UDF bodies are often expensive — sentiment
/// analysis in the paper's Q1); `fn` is the hidden implementation.
ExprPtr MakeUdf(std::string name, double cpu_cost, Expr::UdfFn fn);

/// Conjunction of a predicate list (nullptr for an empty list).
ExprPtr Conjoin(const std::vector<ExprPtr>& preds);

/// Flattens nested conjunctions into their factors (a single non-AND
/// expression yields itself).
void DecomposeConjunction(const ExprPtr& expr, std::vector<ExprPtr>* out);

}  // namespace dyno

#endif  // DYNO_EXPR_EXPR_H_
