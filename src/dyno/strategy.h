#ifndef DYNO_DYNO_STRATEGY_H_
#define DYNO_DYNO_STRATEGY_H_

#include <string>
#include <vector>

#include "exec/plan_executor.h"

namespace dyno {

/// Execution strategies for choosing which leaf jobs of the current best
/// plan to run next (paper §5.3). They trade cluster utilization (more jobs
/// in parallel) against re-optimization opportunities (every extra parallel
/// job removes one checkpoint). The evaluation (Fig. 5) finds UNC-1 best
/// overall: execute the single most *uncertain* job first — the one whose
/// result-size estimate compounds the most join-selectivity guesses — so
/// actual statistics arrive where they matter most.
enum class ExecutionStrategy {
  /// DYNOPT-SIMPLE SO: no re-optimization, one leaf job at a time.
  kSimpleSerial,
  /// DYNOPT-SIMPLE MO: no re-optimization, all ready jobs in parallel.
  kSimpleParallel,
  /// Re-optimize after each step; run the most uncertain leaf job.
  kUncertain1,
  /// Run the two cheapest most-uncertain leaf jobs together (one if only
  /// one exists).
  kUncertain2,
  /// Run the cheapest leaf job.
  kCheapest1,
  /// Run the two cheapest leaf jobs together.
  kCheapest2,
};

const char* ExecutionStrategyName(ExecutionStrategy strategy);

/// True for the DYNOPT-SIMPLE variants (single optimizer call, no runtime
/// statistics, no re-optimization).
bool IsSimpleStrategy(ExecutionStrategy strategy);

/// Picks the leaf jobs to execute this iteration from `leaf_jobs` (all
/// units whose inputs are materialized relations), per `strategy`. Only
/// meaningful for the re-optimizing strategies.
std::vector<const JobUnit*> PickLeafJobs(
    ExecutionStrategy strategy, const std::vector<const JobUnit*>& leaf_jobs);

}  // namespace dyno

#endif  // DYNO_DYNO_STRATEGY_H_
