#include "dyno/checkpoint.h"

#include <utility>

namespace dyno {

namespace {

Value StatsToValue(const TableStats& stats) {
  ArrayElements cols;
  for (const auto& [name, cs] : stats.columns) {
    StructFields f;
    f.emplace_back("name", Value::String(name));
    f.emplace_back("ndv", Value::Double(cs.ndv));
    // Presence of "min"/"max" encodes engagement of the optionals.
    if (cs.min_value.has_value()) f.emplace_back("min", *cs.min_value);
    if (cs.max_value.has_value()) f.emplace_back("max", *cs.max_value);
    cols.push_back(Value::Struct(std::move(f)));
  }
  StructFields f;
  f.emplace_back("cardinality", Value::Double(stats.cardinality));
  f.emplace_back("avg_record_size", Value::Double(stats.avg_record_size));
  f.emplace_back("from_sample", Value::Bool(stats.from_sample));
  f.emplace_back("columns", Value::Array(std::move(cols)));
  return Value::Struct(std::move(f));
}

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("checkpoint manifest: " + what);
}

Result<const Value*> RequireField(const Value& v, const char* name,
                                  Value::Type type) {
  const Value* f = v.FindField(name);
  if (f == nullptr) return Corrupt(std::string("missing field '") + name + "'");
  if (f->type() != type) {
    return Corrupt(std::string("field '") + name + "' has wrong type");
  }
  return f;
}

Result<TableStats> StatsFromValue(const Value& v) {
  if (v.type() != Value::Type::kStruct) return Corrupt("stats is not a struct");
  TableStats stats;
  DYNO_ASSIGN_OR_RETURN(const Value* card,
                        RequireField(v, "cardinality", Value::Type::kDouble));
  stats.cardinality = card->double_value();
  DYNO_ASSIGN_OR_RETURN(
      const Value* rec_size,
      RequireField(v, "avg_record_size", Value::Type::kDouble));
  stats.avg_record_size = rec_size->double_value();
  DYNO_ASSIGN_OR_RETURN(const Value* sample,
                        RequireField(v, "from_sample", Value::Type::kBool));
  stats.from_sample = sample->bool_value();
  DYNO_ASSIGN_OR_RETURN(const Value* cols,
                        RequireField(v, "columns", Value::Type::kArray));
  for (const Value& col : cols->array()) {
    if (col.type() != Value::Type::kStruct) {
      return Corrupt("column stats is not a struct");
    }
    DYNO_ASSIGN_OR_RETURN(const Value* name,
                          RequireField(col, "name", Value::Type::kString));
    DYNO_ASSIGN_OR_RETURN(const Value* ndv,
                          RequireField(col, "ndv", Value::Type::kDouble));
    if (stats.columns.count(name->string_value()) != 0) {
      return Corrupt("duplicate column '" + name->string_value() + "'");
    }
    ColumnStats cs;
    cs.ndv = ndv->double_value();
    if (const Value* min = col.FindField("min")) cs.min_value = *min;
    if (const Value* max = col.FindField("max")) cs.max_value = *max;
    stats.columns.emplace(name->string_value(), std::move(cs));
  }
  return stats;
}

Result<CheckpointEntry> EntryFromValue(const Value& v) {
  if (v.type() != Value::Type::kStruct) return Corrupt("entry is not a struct");
  CheckpointEntry entry;
  DYNO_ASSIGN_OR_RETURN(const Value* sig,
                        RequireField(v, "signature", Value::Type::kString));
  entry.signature = sig->string_value();
  if (entry.signature.empty()) return Corrupt("empty signature");
  DYNO_ASSIGN_OR_RETURN(const Value* rel,
                        RequireField(v, "relation_id", Value::Type::kString));
  entry.relation_id = rel->string_value();
  if (entry.relation_id.empty()) return Corrupt("empty relation_id");
  DYNO_ASSIGN_OR_RETURN(const Value* path,
                        RequireField(v, "path", Value::Type::kString));
  entry.path = path->string_value();
  if (entry.path.empty()) return Corrupt("empty path");
  DYNO_ASSIGN_OR_RETURN(const Value* covered,
                        RequireField(v, "covered", Value::Type::kArray));
  if (covered->array().empty()) return Corrupt("empty cover set");
  for (const Value& alias : covered->array()) {
    if (alias.type() != Value::Type::kString || alias.string_value().empty()) {
      return Corrupt("cover set holds a non-string alias");
    }
    // Cover sets are written sorted; enforce strict ascent so the set
    // semantics survive the round trip.
    if (!entry.covered.empty() &&
        !(entry.covered.back() < alias.string_value())) {
      return Corrupt("cover set is not sorted/unique");
    }
    entry.covered.push_back(alias.string_value());
  }
  DYNO_ASSIGN_OR_RETURN(const Value* stats,
                        RequireField(v, "stats", Value::Type::kStruct));
  DYNO_ASSIGN_OR_RETURN(entry.stats, StatsFromValue(*stats));
  DYNO_ASSIGN_OR_RETURN(
      const Value* versions,
      RequireField(v, "table_versions", Value::Type::kArray));
  for (const Value& tv : versions->array()) {
    if (tv.type() != Value::Type::kStruct) {
      return Corrupt("table version is not a struct");
    }
    DYNO_ASSIGN_OR_RETURN(const Value* table,
                          RequireField(tv, "table", Value::Type::kString));
    DYNO_ASSIGN_OR_RETURN(const Value* version,
                          RequireField(tv, "version", Value::Type::kInt));
    if (table->string_value().empty()) return Corrupt("empty table name");
    // Versions are 64-bit hashes; the sign bit survives the int64 round
    // trip via the bit cast below.
    if (!entry.table_versions
             .emplace(table->string_value(),
                      static_cast<uint64_t>(version->int_value()))
             .second) {
      return Corrupt("duplicate table version '" + table->string_value() +
                     "'");
    }
  }
  return entry;
}

}  // namespace

Value CheckpointManifest::ToValue() const {
  ArrayElements rows;
  for (const CheckpointEntry& entry : entries) {
    ArrayElements covered;
    for (const std::string& alias : entry.covered) {
      covered.push_back(Value::String(alias));
    }
    ArrayElements versions;
    for (const auto& [table, version] : entry.table_versions) {
      StructFields tv;
      tv.emplace_back("table", Value::String(table));
      tv.emplace_back("version", Value::Int(static_cast<int64_t>(version)));
      versions.push_back(Value::Struct(std::move(tv)));
    }
    StructFields f;
    f.emplace_back("signature", Value::String(entry.signature));
    f.emplace_back("relation_id", Value::String(entry.relation_id));
    f.emplace_back("path", Value::String(entry.path));
    f.emplace_back("covered", Value::Array(std::move(covered)));
    f.emplace_back("stats", StatsToValue(entry.stats));
    f.emplace_back("table_versions", Value::Array(std::move(versions)));
    rows.push_back(Value::Struct(std::move(f)));
  }
  ArrayElements leaves;
  for (const auto& [alias, signature] : leaf_signatures) {
    StructFields lf;
    lf.emplace_back("alias", Value::String(alias));
    lf.emplace_back("signature", Value::String(signature));
    leaves.push_back(Value::Struct(std::move(lf)));
  }
  StructFields f;
  f.emplace_back("version", Value::Int(kVersion));
  f.emplace_back("temp_counter", Value::Int(temp_counter));
  f.emplace_back("leaf_signatures", Value::Array(std::move(leaves)));
  f.emplace_back("entries", Value::Array(std::move(rows)));
  return Value::Struct(std::move(f));
}

Result<CheckpointManifest> CheckpointManifest::FromValue(const Value& value) {
  if (value.type() != Value::Type::kStruct) {
    return Corrupt("root is not a struct");
  }
  DYNO_ASSIGN_OR_RETURN(const Value* version,
                        RequireField(value, "version", Value::Type::kInt));
  if (version->int_value() != kVersion) {
    return Corrupt("unsupported version " +
                   std::to_string(version->int_value()));
  }
  CheckpointManifest manifest;
  DYNO_ASSIGN_OR_RETURN(
      const Value* counter,
      RequireField(value, "temp_counter", Value::Type::kInt));
  manifest.temp_counter = counter->int_value();
  if (manifest.temp_counter < 0) return Corrupt("negative temp_counter");
  DYNO_ASSIGN_OR_RETURN(
      const Value* leaves,
      RequireField(value, "leaf_signatures", Value::Type::kArray));
  for (const Value& leaf : leaves->array()) {
    if (leaf.type() != Value::Type::kStruct) {
      return Corrupt("leaf signature is not a struct");
    }
    DYNO_ASSIGN_OR_RETURN(const Value* alias,
                          RequireField(leaf, "alias", Value::Type::kString));
    DYNO_ASSIGN_OR_RETURN(
        const Value* sig,
        RequireField(leaf, "signature", Value::Type::kString));
    if (alias->string_value().empty()) return Corrupt("empty leaf alias");
    if (!manifest.leaf_signatures
             .emplace(alias->string_value(), sig->string_value())
             .second) {
      return Corrupt("duplicate leaf alias '" + alias->string_value() + "'");
    }
  }
  DYNO_ASSIGN_OR_RETURN(const Value* entries,
                        RequireField(value, "entries", Value::Type::kArray));
  for (const Value& row : entries->array()) {
    DYNO_ASSIGN_OR_RETURN(CheckpointEntry entry, EntryFromValue(row));
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

Status CheckpointManifest::WriteTo(Dfs* dfs, const std::string& path) const {
  // Two-generation scheme: the old manifest becomes `<path>.prev` before
  // the live one is replaced, so a driver death between the Delete and the
  // WriteRows (a torn write) still leaves a recoverable generation.
  if (auto old = dfs->Open(path); old.ok()) {
    const std::string prev = path + kPrevSuffix;
    dfs->Delete(prev);
    if (auto copy = dfs->Create(prev); copy.ok()) {
      for (const Split& split : (*old)->splits()) {
        Split duplicate = split;
        (*copy)->AppendSplit(std::move(duplicate));  // Re-stamps the CRC.
      }
    }
  }
  // DFS files are immutable; checkpointing replaces the whole manifest.
  dfs->Delete(path);
  DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file,
                        WriteRows(dfs, path, {ToValue()}));
  (void)file;
  return Status::OK();
}

Result<CheckpointManifest> CheckpointManifest::ReadFrom(
    const Dfs& dfs, const std::string& path) {
  DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file, dfs.Open(path));
  // ReadAllRows verifies every split's CRC32C, so a bit-flipped or torn
  // manifest surfaces as DataLoss here rather than as parsed garbage.
  DYNO_ASSIGN_OR_RETURN(std::vector<Value> rows, ReadAllRows(*file));
  if (rows.size() != 1) return Corrupt("expected exactly one manifest row");
  return FromValue(rows[0]);
}

Result<CheckpointManifest> CheckpointManifest::ReadWithFallback(
    const Dfs& dfs, const std::string& path, bool* used_fallback) {
  if (used_fallback != nullptr) *used_fallback = false;
  auto live = ReadFrom(dfs, path);
  if (live.ok()) return live;
  auto prev = ReadFrom(dfs, path + kPrevSuffix);
  if (prev.ok() && used_fallback != nullptr) *used_fallback = true;
  // When both generations are gone/corrupt, report the live manifest's
  // error: it names the path the caller actually configured.
  return prev.ok() ? std::move(prev) : std::move(live);
}

}  // namespace dyno
