#include "dyno/driver.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "columnar/knobs.h"
#include "common/string_util.h"
#include "exec/aggregates.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pilot/predicate_order.h"
#include "exec/row_ops.h"

namespace dyno {

namespace {

/// Map-only materialization of one leaf (single-table join "blocks").
/// DYNO_COLUMNAR pushes the filter into the engine's scan (batch evaluation
/// on columnar splits); DYNO_ZONE_MAPS skips splits the filter provably
/// cannot match before the job is submitted.
Result<JobResult> RunScanFilterJob(MapReduceEngine* engine,
                                   std::shared_ptr<DfsFile> file,
                                   const ExprPtr& filter,
                                   const std::vector<std::string>& projection,
                                   const std::string& output_path,
                                   const std::string& query_id) {
  JobSpec spec;
  spec.name = "scan";
  spec.query_id = query_id;
  spec.output_path = output_path;
  MapInput input;
  input.file = file;
  ExprPtr closure_filter = filter;
  if (columnar::ColumnarEnabled() && filter != nullptr) {
    input.scan_filter = filter;
    input.scan_filter_cpu = filter->CpuCost();
    input.cpu_per_record = 1.0;
    closure_filter = nullptr;
  } else {
    input.cpu_per_record = 1.0 + (filter ? filter->CpuCost() : 0.0);
  }
  if (columnar::ZoneMapsEnabled() && filter != nullptr) {
    PruneResult pruned = PruneSplitIndexes(*file, filter);
    if (pruned.pruned > 0) {
      input.split_indexes.assign(pruned.kept.begin(), pruned.kept.end());
      input.split_indexes_exact = true;
      if (engine->metrics() != nullptr) {
        engine->metrics()->GetCounter("scan.splits_pruned")->Add(pruned.pruned);
      }
      if (engine->trace() != nullptr) {
        engine->trace()->Record(
            obs::TraceEvent(engine->now(), -1, obs::TraceLane::kEngine,
                            "scan", "split_pruned")
                .Arg("file", file->path())
                .ArgInt("pruned", static_cast<int64_t>(pruned.pruned))
                .ArgInt("total",
                        static_cast<int64_t>(file->splits().size())));
      }
    }
  }
  std::vector<std::string> proj = projection;
  ExprPtr f = std::move(closure_filter);
  input.map_fn = [f, proj](const Value& record, MapContext* ctx) -> Status {
    DYNO_ASSIGN_OR_RETURN(bool keep, EvalFilter(f, record));
    if (!keep) return Status::OK();
    ctx->Output(proj.empty() ? record : ProjectRow(record, proj));
    return Status::OK();
  };
  spec.inputs = {std::move(input)};
  DYNO_ASSIGN_OR_RETURN(JobResult job, engine->Submit(spec));
  if (!job.status.ok()) return job.status;
  return job;
}

/// The paper's §8 "dynamic join operator": when a broadcast join's build
/// side turns out not to fit in task memory (discovered while building the
/// hash tables, before wasting the probe scan), re-run the unit's joins as
/// repartition jobs instead of failing the query, threading the original
/// request's statistics/projection onto the last job. Returns the final
/// step; `extra_jobs` counts the repartition jobs run.
Result<StepResult> RunRepartitionFallback(
    PlanExecutor* executor, const JobUnit& unit,
    const PlanExecutor::UnitRequest& original, int* extra_jobs) {
  DYNO_ASSIGN_OR_RETURN(std::string current,
                        executor->ResolveInput(unit.inputs[0]));
  StepResult last;
  for (size_t i = 0; i < unit.nodes.size(); ++i) {
    const PlanNode& node = *unit.nodes[i];
    DYNO_ASSIGN_OR_RETURN(std::string build_id,
                          executor->ResolveInput(unit.inputs[i + 1]));
    auto plan = PlanNode::Join(JoinMethod::kRepartition,
                               PlanNode::Leaf(current),
                               PlanNode::Leaf(build_id), node.key_pairs);
    plan->post_filter = node.post_filter;
    DYNO_ASSIGN_OR_RETURN(std::vector<JobUnit> units,
                          PlanExecutor::Decompose(*plan));
    PlanExecutor::UnitRequest request;
    request.unit = &units[0];
    if (i + 1 == unit.nodes.size()) {
      request.stats_columns = original.stats_columns;
      request.projection = original.projection;
    }
    DYNO_ASSIGN_OR_RETURN(StepResult step, executor->ExecuteOne(request));
    ++*extra_jobs;
    current = step.relation_id;
    // Fault counters accumulate across the fallback's jobs so the caller
    // can account the whole recovery with one step.
    step.job.task_failures_injected += last.job.task_failures_injected;
    step.job.task_retries += last.job.task_retries;
    step.job.speculative_launches += last.job.speculative_launches;
    step.job.speculative_wins += last.job.speculative_wins;
    last = std::move(step);
  }
  // The stats describe the original unit's subtree, so they must be keyed
  // by *its* signature: the synthesized per-join decompositions above have
  // signatures no later query will ever compute, and publishing under them
  // would pollute the stats store.
  last.subtree_signature = executor->CanonicalSignature(*unit.nodes.back());
  return last;
}

/// Folds one job's fault-model counters into a query report.
void AddFaultCounters(const JobResult& job, QueryRunReport* report) {
  report->task_failures_injected += job.task_failures_injected;
  report->task_retries += job.task_retries;
  report->speculative_launches += job.speculative_launches;
  report->speculative_wins += job.speculative_wins;
  report->node_crashes_observed += job.node_crashes_observed;
  report->attempts_killed_by_node += job.attempts_killed_by_node;
  report->maps_invalidated += job.maps_invalidated;
  report->shuffle_fetch_retries += job.shuffle_fetch_retries;
  report->block_corruptions += job.block_corruptions;
  report->checksum_refetches += job.checksum_refetches;
  report->records_quarantined += job.records_quarantined;
  report->reduce_spills += job.reduce_spills;
  report->spill_bytes_written += job.spill_bytes_written;
  report->spill_bytes_read += job.spill_bytes_read;
  report->peak_task_memory_bytes =
      std::max(report->peak_task_memory_bytes, job.peak_task_memory_bytes);
}

void AddFaultCounters(const JobResult& job, StaticRunResult* result) {
  result->task_failures_injected += job.task_failures_injected;
  result->task_retries += job.task_retries;
  result->speculative_launches += job.speculative_launches;
  result->speculative_wins += job.speculative_wins;
  result->node_crashes_observed += job.node_crashes_observed;
  result->attempts_killed_by_node += job.attempts_killed_by_node;
  result->maps_invalidated += job.maps_invalidated;
  result->shuffle_fetch_retries += job.shuffle_fetch_retries;
  result->block_corruptions += job.block_corruptions;
  result->checksum_refetches += job.checksum_refetches;
  result->records_quarantined += job.records_quarantined;
  result->reduce_spills += job.reduce_spills;
  result->spill_bytes_written += job.spill_bytes_written;
  result->spill_bytes_read += job.spill_bytes_read;
  result->peak_task_memory_bytes =
      std::max(result->peak_task_memory_bytes, job.peak_task_memory_bytes);
}

/// How many permanent job failures one block tolerates (each triggers a
/// re-plan around the materialized subtrees) before the query gives up.
constexpr int kMaxPermanentJobFailures = 3;

}  // namespace

/// Mutable optimization state of one join block: the relations still to be
/// joined (base leaves and virtual intermediates), the surviving join
/// edges, and the not-yet-applied non-local predicates.
struct DynoDriver::BlockState {
  std::map<std::string, TableStats> relations;
  std::vector<OptEdge> edges;
  std::vector<OptNonLocalPred> preds;

  OptJoinGraph BuildGraph() const {
    OptJoinGraph graph;
    for (const auto& [id, stats] : relations) {
      graph.relations.push_back({id, stats});
    }
    graph.edges = edges;
    graph.non_local_preds = preds;
    return graph;
  }

  /// Replaces the executed relation set `covered` with the virtual relation
  /// `new_id` carrying `stats`: edges inside `covered` are consumed,
  /// crossing edges re-attach to `new_id`, and non-local predicates whose
  /// relations have all been merged are dropped (the join applied them).
  void Substitute(const std::set<std::string>& covered,
                  const std::string& new_id, TableStats stats) {
    for (const std::string& id : covered) relations.erase(id);
    relations[new_id] = std::move(stats);

    std::vector<OptEdge> kept_edges;
    for (OptEdge edge : edges) {
      if (covered.count(edge.left_id)) edge.left_id = new_id;
      if (covered.count(edge.right_id)) edge.right_id = new_id;
      if (edge.left_id == edge.right_id) continue;  // consumed by the join
      kept_edges.push_back(std::move(edge));
    }
    edges = std::move(kept_edges);

    std::vector<OptNonLocalPred> kept_preds;
    for (OptNonLocalPred pred : preds) {
      std::set<std::string> ids;
      for (std::string& id : pred.relation_ids) {
        if (covered.count(id)) id = new_id;
        ids.insert(id);
      }
      pred.relation_ids.assign(ids.begin(), ids.end());
      if (pred.relation_ids.size() >= 2) kept_preds.push_back(std::move(pred));
      // size == 1: the executed join covered the predicate and its
      // post_filter already applied it.
    }
    preds = std::move(kept_preds);
  }

  /// Columns of relations in `covered` that future joins still need — the
  /// attribute set online statistics are collected for (paper §5.4).
  std::vector<std::string> StatsColumnsFor(
      const std::set<std::string>& covered) const {
    std::set<std::string> cols;
    for (const OptEdge& edge : edges) {
      bool left_in = covered.count(edge.left_id) > 0;
      bool right_in = covered.count(edge.right_id) > 0;
      if (left_in && !right_in) cols.insert(edge.left_column);
      if (right_in && !left_in) cols.insert(edge.right_column);
    }
    return {cols.begin(), cols.end()};
  }
};

DynoDriver::DynoDriver(MapReduceEngine* engine, Catalog* catalog,
                       StatsStore* store, DynoOptions options)
    : engine_(engine), catalog_(catalog), store_(store),
      options_(std::move(options)) {
  if (options_.max_job_attempts <= 0) {
    options_.max_job_attempts = 1;
    if (const char* env = std::getenv("DYNO_MAX_JOB_ATTEMPTS")) {
      char* end = nullptr;
      long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && parsed >= 1 && parsed <= 1000) {
        options_.max_job_attempts = static_cast<int>(parsed);
      }
    }
  }
  if (options_.retry_budget_ms < 0) {
    options_.retry_budget_ms = 0;
    if (const char* env = std::getenv("DYNO_RETRY_BUDGET_MS")) {
      options_.retry_budget_ms = EnvInt64OrDie("DYNO_RETRY_BUDGET_MS", env, 0,
                                               int64_t{1} << 40);
    }
  }
  if (options_.oom_retry_ladder < 0) {
    options_.oom_retry_ladder = 0;
    if (const char* env = std::getenv("DYNO_OOM_RETRIES")) {
      options_.oom_retry_ladder =
          static_cast<int>(EnvInt64OrDie("DYNO_OOM_RETRIES", env, 0, 16));
    }
  }
  if (options_.sync_cost_memory) {
    // Single source of truth for the memory model: the optimizer's
    // feasibility/spill knobs are the engine's, so plan-time admission can
    // never disagree with run-time enforcement. Spill costing only engages
    // when the engine actually enforces reduce memory — otherwise the cost
    // model must reproduce the legacy (memory-oblivious) plans bit for bit.
    const ClusterConfig& cluster = engine_->config();
    bool enforced = cluster.reduce_memory_mode !=
                    ClusterConfig::ReduceMemoryMode::kUnbounded;
    options_.cost.AdoptClusterMemoryModel(
        cluster.memory_per_task_bytes, cluster.broadcast_memory_factor,
        enforced ? cluster.bytes_per_reduce_task : 0, cluster.reduce_slots);
  }
}

Result<QueryRunReport> DynoDriver::Execute(const Query& query) {
  return ExecuteInternal(query, nullptr);
}

Result<QueryRunReport> DynoDriver::Resume(const Query& query) {
  CheckpointManifest manifest;
  bool from_scratch = true;
  bool used_fallback = false;
  if (!options_.checkpoint_path.empty()) {
    auto loaded = CheckpointManifest::ReadWithFallback(
        *engine_->dfs(), options_.checkpoint_path, &used_fallback);
    if (loaded.ok()) {
      manifest = std::move(*loaded);
      from_scratch = manifest.entries.empty();
    }
  }
  if (obs::TraceSink* trace = engine_->trace()) {
    trace->Record(obs::TraceEvent(engine_->now(), -1, obs::TraceLane::kDriver,
                                  "driver", "resume")
                      .ArgBool("from_scratch", from_scratch)
                      .ArgInt("checkpointed_steps",
                              static_cast<int64_t>(manifest.entries.size())));
    if (used_fallback) {
      trace->Record(obs::TraceEvent(engine_->now(), -1,
                                    obs::TraceLane::kDriver, "driver",
                                    "manifest_fallback")
                        .Arg("path", options_.checkpoint_path)
                        .ArgInt("recovered_steps",
                                static_cast<int64_t>(manifest.entries.size())));
    }
  }
  if (obs::MetricsRegistry* metrics = engine_->metrics()) {
    metrics->GetCounter("driver.recovery_resumes")->Add();
    if (used_fallback) {
      metrics->GetCounter("driver.manifest_fallbacks")->Add();
    }
  }
  auto report = ExecuteInternal(query, from_scratch ? nullptr : &manifest);
  if (report.ok() && used_fallback) ++report->manifest_fallbacks;
  return report;
}

Result<QueryRunReport> DynoDriver::ExecuteInternal(
    const Query& query, const CheckpointManifest* resume) {
  // Seeding with the resume manifest keeps the already-applied entries
  // available should this run itself be killed and resumed again.
  manifest_ = resume != nullptr ? *resume : CheckpointManifest{};
  QueryRunReport report;
  SimMillis start = engine_->now();
  DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> joined,
                        RunJoinBlock(query.join_block, &report, resume));
  std::shared_ptr<DfsFile> current = std::move(joined);
  if (query.group_by.has_value()) {
    std::string path =
        StrFormat("%s/gb_%lld", options_.exec.ScopedTempPrefix().c_str(),
                  static_cast<long long>(engine_->now()));
    DYNO_ASSIGN_OR_RETURN(
        JobResult job,
        RunGroupBy(engine_, current, *query.group_by, path,
                   /*use_combiner=*/true, options_.exec.query_id));
    current = job.output;
    ++report.jobs_run;
    AddFaultCounters(job, &report);
  }
  if (query.order_by.has_value()) {
    std::string path =
        StrFormat("%s/ob_%lld", options_.exec.ScopedTempPrefix().c_str(),
                  static_cast<long long>(engine_->now()));
    DYNO_ASSIGN_OR_RETURN(
        JobResult job,
        RunOrderBy(engine_, current, *query.order_by, path,
                   options_.exec.query_id));
    current = job.output;
    ++report.jobs_run;
    AddFaultCounters(job, &report);
  }
  report.result = current;
  report.result_records = current ? current->num_records() : 0;
  report.total_ms = engine_->now() - start;
  return report;
}

Result<QueryRunReport> DynoDriver::ExecuteMultiBlock(
    const MultiBlockQuery& query) {
  if (query.blocks.empty()) {
    return Status::InvalidArgument("multi-block query has no blocks");
  }
  manifest_ = CheckpointManifest{};
  QueryRunReport report;
  SimMillis start = engine_->now();

  std::set<std::string> names;
  for (const auto& block : query.blocks) {
    if (block.name.empty() || StartsWith(block.name, kBlockRefPrefix)) {
      return Status::InvalidArgument("bad block name: " + block.name);
    }
    if (!names.insert(block.name).second) {
      return Status::InvalidArgument("duplicate block name: " + block.name);
    }
  }

  // Dependencies: block -> blocks it reads via "@block:" table references.
  auto deps_of = [&](const MultiBlockQuery::Block& block)
      -> Result<std::vector<std::string>> {
    std::vector<std::string> deps;
    for (const TableRef& ref : block.join_block.tables) {
      if (!StartsWith(ref.table, kBlockRefPrefix)) continue;
      std::string dep = ref.table.substr(sizeof(kBlockRefPrefix) - 1);
      if (!names.count(dep)) {
        return Status::InvalidArgument("unknown block reference: " +
                                       ref.table);
      }
      deps.push_back(std::move(dep));
    }
    return deps;
  };

  // Catalog names for block outputs. The catalog is shared by every driver
  // on the engine, so a concurrent query defining an identically-named
  // block must not collide: a query-scoped driver registers (and reads)
  // block outputs under "@block:<query_id>/<name>" instead of the bare
  // legacy "@block:<name>".
  auto scoped_block_name = [&](const std::string& bare) {
    return options_.exec.query_id.empty()
               ? kBlockRefPrefix + bare
               : kBlockRefPrefix + options_.exec.query_id + "/" + bare;
  };
  auto scope_block_refs = [&](const JoinBlock& jb) {
    JoinBlock scoped = jb;
    for (TableRef& ref : scoped.tables) {
      if (!StartsWith(ref.table, kBlockRefPrefix)) continue;
      ref.table =
          scoped_block_name(ref.table.substr(sizeof(kBlockRefPrefix) - 1));
    }
    return scoped;
  };

  // Execute in dependency order (Kahn-style over declaration order).
  std::set<std::string> done;
  std::vector<const MultiBlockQuery::Block*> pending;
  for (const auto& block : query.blocks) pending.push_back(&block);
  std::shared_ptr<DfsFile> last_output;

  while (!pending.empty()) {
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      DYNO_ASSIGN_OR_RETURN(std::vector<std::string> deps, deps_of(**it));
      bool ready = true;
      for (const std::string& dep : deps) {
        if (!done.count(dep)) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        ++it;
        continue;
      }
      const MultiBlockQuery::Block& block = **it;
      JoinBlock scoped_join_block = scope_block_refs(block.join_block);
      DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> joined,
                            RunJoinBlock(scoped_join_block, &report, nullptr));
      std::shared_ptr<DfsFile> output = std::move(joined);
      if (block.group_by.has_value()) {
        std::string path =
            StrFormat("%s/mb_gb_%lld", options_.exec.ScopedTempPrefix().c_str(),
                      static_cast<long long>(engine_->now()));
        DYNO_ASSIGN_OR_RETURN(
            JobResult job,
            RunGroupBy(engine_, output, *block.group_by, path,
                       /*use_combiner=*/true, options_.exec.query_id));
        output = job.output;
        ++report.jobs_run;
        AddFaultCounters(job, &report);
      }
      // Expose the block's output to downstream blocks through the catalog.
      // ReplaceTable (not RegisterTable) so re-running a query under the
      // same scope — e.g. Resume after a kill — re-points the name instead
      // of failing AlreadyExists, and bumps its data version.
      DYNO_RETURN_IF_ERROR(catalog_->ReplaceTable(
          scoped_block_name(block.name), output->path()));
      done.insert(block.name);
      last_output = std::move(output);
      it = pending.erase(it);
      progressed = true;
    }
    if (!progressed) {
      return Status::InvalidArgument("cyclic block references");
    }
  }

  if (query.final_order_by.has_value()) {
    std::string path =
        StrFormat("%s/mb_ob_%lld", options_.exec.ScopedTempPrefix().c_str(),
                  static_cast<long long>(engine_->now()));
    DYNO_ASSIGN_OR_RETURN(
        JobResult job,
        RunOrderBy(engine_, last_output, *query.final_order_by, path,
                   options_.exec.query_id));
    last_output = job.output;
    ++report.jobs_run;
    AddFaultCounters(job, &report);
  }
  report.result = last_output;
  report.result_records = last_output ? last_output->num_records() : 0;
  report.total_ms = engine_->now() - start;
  return report;
}

Result<std::shared_ptr<DfsFile>> DynoDriver::RunJoinBlock(
    const JoinBlock& block, QueryRunReport* report,
    const CheckpointManifest* resume) {
  DYNO_RETURN_IF_ERROR(ValidateJoinBlock(block));
  SimMillis block_start = engine_->now();
  std::vector<Predicate> non_local;
  std::vector<LeafExpr> leaves = ExtractLeafExprs(block, &non_local);

  // Optional §4.4 extension: order each leaf's conjuncts by measured rank
  // so cheap, selective predicates run first at every scan.
  if (options_.reorder_local_predicates) {
    for (LeafExpr& leaf : leaves) {
      if (leaf.filter == nullptr) continue;
      PredicateOrderOptions order_options;
      DYNO_ASSIGN_OR_RETURN(
          leaf.filter,
          ReorderConjunction(catalog_, leaf.table, leaf.filter,
                             order_options));
    }
  }

  PlanExecutor executor(engine_, options_.exec);

  // --- Bind base leaves. ---
  for (const LeafExpr& leaf : leaves) {
    DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file,
                          catalog_->OpenTable(leaf.table));
    RelationBinding binding;
    binding.file = std::move(file);
    binding.scan_filter = leaf.filter;
    binding.scan_cpu_per_record = leaf.filter ? leaf.filter->CpuCost() : 0.0;
    binding.signature = LeafSignature(leaf);
    executor.Bind(leaf.alias, std::move(binding));
  }

  // --- Acquire leaf statistics: pilot runs, or base statistics when the
  // pilot is ablated away. ---
  BlockState state;
  if (options_.use_pilot_runs) {
    // Pilot jobs inherit the query scope so identically-aliased leaves of
    // concurrent queries keep independent engine fault streams.
    PilotRunOptions pilot_options = options_.pilot;
    if (pilot_options.query_id.empty()) {
      pilot_options.query_id = options_.exec.query_id;
    }
    PilotRunner pilot(engine_, catalog_, store_, pilot_options);
    DYNO_ASSIGN_OR_RETURN(PilotRunReport pilot_report, pilot.Run(leaves));
    report->pilot_ms += pilot_report.elapsed_ms;
    for (const LeafExpr& leaf : leaves) {
      const PilotLeafResult* result = pilot_report.Find(leaf.alias);
      if (result == nullptr) {
        return Status::Internal("pilot run missing leaf " + leaf.alias);
      }
      state.relations[leaf.alias] = result->stats;
      if (options_.reuse_pilot_full_outputs && result->full_output != nullptr) {
        // The pilot consumed the whole relation: its output *is* the leaf.
        RelationBinding binding;
        binding.file = result->full_output;
        binding.signature = result->signature;
        executor.Bind(leaf.alias, std::move(binding));
      }
    }
  } else {
    for (const LeafExpr& leaf : leaves) {
      auto cached = store_->Get(leaf.table + "|");
      if (cached.has_value()) {
        state.relations[leaf.alias] = *cached;
      } else {
        DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file,
                              catalog_->OpenTable(leaf.table));
        TableStats stats;
        stats.cardinality = static_cast<double>(file->num_records());
        stats.avg_record_size = file->avg_record_size();
        state.relations[leaf.alias] = std::move(stats);
      }
    }
  }

  // --- Single-table block: a bare scan job. ---
  if (leaves.size() == 1) {
    DYNO_ASSIGN_OR_RETURN(RelationBinding binding,
                          executor.GetBinding(leaves[0].alias));
    std::string path =
        StrFormat("%s/scan_%lld", options_.exec.ScopedTempPrefix().c_str(),
                  static_cast<long long>(engine_->now()));
    DYNO_ASSIGN_OR_RETURN(
        JobResult job,
        RunScanFilterJob(engine_, binding.file, binding.scan_filter,
                         block.output_columns, path,
                         options_.exec.query_id));
    ++report->jobs_run;
    ++report->map_only_jobs;
    AddFaultCounters(job, report);
    return job.output;
  }

  for (const JoinEdge& edge : block.edges) {
    state.edges.push_back({edge.left_alias, edge.left_column,
                           edge.right_alias, edge.right_column});
  }
  for (const Predicate& pred : non_local) {
    OptNonLocalPred opt_pred;
    opt_pred.expr = pred.expr;
    opt_pred.relation_ids = pred.aliases;
    state.preds.push_back(std::move(opt_pred));
  }

  JoinOptimizer optimizer(options_.cost);
  bool reoptimize = options_.reoptimize && !IsSimpleStrategy(options_.strategy);
  std::string previous_plan;
  obs::TraceSink* trace = engine_->trace();
  obs::MetricsRegistry* metrics = engine_->metrics();

  // Base-leaf cover set of every live relation: which original leaves it
  // embodies. Checkpoint entries are keyed by cover, because relation ids
  // are run-local — a resumed run matches entries through this map.
  std::map<std::string, std::set<std::string>> base_cover;
  for (const LeafExpr& leaf : leaves) base_cover[leaf.alias] = {leaf.alias};

  std::map<std::string, std::string> alias_to_table;
  for (const LeafExpr& leaf : leaves) alias_to_table[leaf.alias] = leaf.table;

  // Current data version of every base table a set of base aliases reads —
  // what cache entries and checkpoint entries are validated against.
  auto table_versions_for = [&](const std::set<std::string>& base_aliases) {
    std::map<std::string, uint64_t> versions;
    for (const std::string& alias : base_aliases) {
      auto it = alias_to_table.find(alias);
      if (it == alias_to_table.end()) continue;
      versions[it->second] = catalog_->TableVersion(it->second);
    }
    return versions;
  };

  // Cross-query cache key for one unit: the canonical subtree signature
  // decorated with the requested output statistics columns and projection.
  // Both change the entry's usability (a consumer needing column synopses
  // the entry lacks would plan differently; a projected root output holds
  // different bytes), so they are part of the key, not a lookup-time check.
  auto cache_key_for = [&](const JobUnit& unit,
                           const PlanExecutor::UnitRequest& request) {
    std::string key = executor.CanonicalSignature(*unit.nodes.back());
    key += "|stats=";
    for (const std::string& c : request.stats_columns) {
      key += c;
      key += ',';
    }
    key += "|proj=";
    for (const std::string& c : request.projection) {
      key += c;
      key += ',';
    }
    return key;
  };

  // Record the query's leaf signatures in the manifest, so a later Resume
  // can prove the checkpoints were written for this exact query text.
  if (!options_.checkpoint_path.empty()) {
    for (const LeafExpr& leaf : leaves) {
      manifest_.leaf_signatures.insert_or_assign(leaf.alias,
                                                 LeafSignature(leaf));
    }
  }

  if (resume != nullptr) {
    // Refuse to substitute checkpoints into a changed query: every base
    // alias a manifest entry covers must still exist with the same leaf
    // signature (table + local filter). Silently reusing a materialization
    // of different predicates would return wrong rows, so a mismatch is an
    // error, not a skip.
    std::map<std::string, std::string> current_sigs;
    for (const LeafExpr& leaf : leaves) {
      current_sigs[leaf.alias] = LeafSignature(leaf);
    }
    for (const CheckpointEntry& entry : resume->entries) {
      for (const std::string& alias : entry.covered) {
        auto current = current_sigs.find(alias);
        if (current == current_sigs.end()) {
          return Status::InvalidArgument(StrFormat(
              "checkpoint manifest covers leaf '%s', which the resumed "
              "query does not have — the query text changed since the "
              "checkpoint was written",
              alias.c_str()));
        }
        auto recorded = resume->leaf_signatures.find(alias);
        if (recorded == resume->leaf_signatures.end() ||
            recorded->second != current->second) {
          return Status::InvalidArgument(StrFormat(
              "checkpoint manifest was written for a different definition "
              "of leaf '%s' (recorded signature \"%s\", current \"%s\")",
              alias.c_str(),
              recorded == resume->leaf_signatures.end()
                  ? "<missing>"
                  : recorded->second.c_str(),
              current->second.c_str()));
        }
      }
    }
    int applied = 0;
    for (const CheckpointEntry& entry : resume->entries) {
      std::set<std::string> want(entry.covered.begin(), entry.covered.end());
      // The entry replaces the live relations whose covers tile `want`
      // exactly; anything else (already superseded, or from a different
      // query sharing the path) is skipped and re-executed normally.
      std::set<std::string> replaced;
      std::set<std::string> got;
      for (const auto& [id, cover] : base_cover) {
        if (state.relations.count(id) == 0) continue;
        if (!std::includes(want.begin(), want.end(), cover.begin(),
                           cover.end())) {
          continue;
        }
        replaced.insert(id);
        got.insert(cover.begin(), cover.end());
      }
      if (replaced.empty() || got != want) continue;
      // Skip entries whose base data was rewritten after the checkpoint:
      // their materializations hold pre-rewrite rows.
      bool stale = false;
      for (const auto& [table, version] : entry.table_versions) {
        if (catalog_->TableVersion(table) != version) {
          stale = true;
          break;
        }
      }
      if (stale) continue;
      auto file = engine_->dfs()->Open(entry.path);
      if (!file.ok()) continue;  // Materialization gone; re-execute it.
      RelationBinding binding;
      binding.file = std::move(*file);
      binding.signature = entry.signature;
      executor.Bind(entry.relation_id, std::move(binding));
      state.Substitute(replaced, entry.relation_id, entry.stats);
      store_->Put(entry.signature, entry.stats);
      base_cover[entry.relation_id] = std::move(want);
      ++applied;
    }
    if (applied > 0) {
      // Continuation relation ids (and so subtree signatures) must match
      // the ones the killed run would have assigned next.
      executor.ReserveTempIds(static_cast<int>(resume->temp_counter));
      report->resumed_steps += applied;
      if (metrics != nullptr) {
        metrics->GetCounter("driver.recovery_resumed_steps")->Add(applied);
      }
      if (trace != nullptr) {
        trace->Record(obs::TraceEvent(engine_->now(), -1,
                                      obs::TraceLane::kDriver, "driver",
                                      "resume_applied")
                          .ArgInt("steps", applied)
                          .ArgInt("reserved_temp_ids", resume->temp_counter));
      }
    }
    if (state.relations.size() == 1) {
      // Every join ran before the kill: the last checkpoint is already the
      // block's projected output.
      DYNO_ASSIGN_OR_RETURN(
          RelationBinding binding,
          executor.GetBinding(state.relations.begin()->first));
      return binding.file;
    }
  }

  auto record_plan = [&](const OptimizeResult& opt) {
    PlanEvent event;
    event.at_ms = engine_->now() - block_start;
    event.plan_tree = opt.plan->ToTreeString();
    event.plan_compact = opt.plan->ToString();
    event.est_cost = opt.plan->est_cost;
    event.plan_changed =
        !previous_plan.empty() && previous_plan != event.plan_compact;
    if (event.plan_changed) ++report->plan_changes;
    if (trace != nullptr) {
      trace->Record(
          obs::TraceEvent(engine_->now(), opt.report.simulated_ms,
                          obs::TraceLane::kOptimizer, "optimizer", "optimize")
              .ArgInt("groups_explored", opt.report.groups_explored)
              .ArgInt("expressions_costed", opt.report.expressions_costed)
              .ArgInt("plans_pruned_memory", opt.report.plans_pruned_memory)
              .ArgInt("broadcast_chain_collapses",
                      opt.report.broadcast_chain_collapses)
              .ArgDouble("best_cost", opt.plan->est_cost)
              .Arg("plan", event.plan_compact)
              .Arg("prev_plan", previous_plan)
              .ArgBool("plan_changed", event.plan_changed));
    }
    if (metrics != nullptr) {
      metrics->GetCounter("driver.optimizer_calls")->Add();
      if (event.plan_changed) {
        metrics->GetCounter("driver.plan_changes")->Add();
      }
      metrics->GetCounter("optimizer.groups_explored")
          ->Add(opt.report.groups_explored);
      metrics->GetCounter("optimizer.plans_pruned_memory")
          ->Add(opt.report.plans_pruned_memory);
    }
    previous_plan = event.plan_compact;
    report->plan_history.push_back(std::move(event));
    report->optimizer_ms += opt.report.simulated_ms;
    ++report->optimizer_calls;
    engine_->AdvanceClock(opt.report.simulated_ms);
  };

  auto account_step = [&](const JobUnit& unit, const StepResult& step,
                          const std::set<std::string>& covered,
                          const std::string& cache_key, bool from_cache) {
    if (!from_cache) {
      ++report->jobs_run;
      if (unit.map_only) ++report->map_only_jobs;
      report->stats_overhead_ms += step.job.observer_overhead_ms;
      AddFaultCounters(step.job, report);
      if (step.job.records_quarantined > 0 && metrics != nullptr) {
        metrics->GetCounter("driver.quarantine_records")
            ->Add(static_cast<int64_t>(step.job.records_quarantined));
        metrics->GetCounter("driver.quarantine_steps")->Add();
      }
    }
    store_->Put(step.subtree_signature, step.stats);
    // Fold the new relation's base-leaf cover and checkpoint the step.
    std::set<std::string> base;
    for (const std::string& id : covered) {
      auto it = base_cover.find(id);
      if (it != base_cover.end()) {
        base.insert(it->second.begin(), it->second.end());
      } else {
        base.insert(id);
      }
    }
    base_cover[step.relation_id] = base;
    auto binding = executor.GetBinding(step.relation_id);
    if (!binding.ok() || binding->file == nullptr) return;
    if (options_.subtree_cache != nullptr && !from_cache &&
        !cache_key.empty() && step.job.records_quarantined == 0) {
      // Publish for other queries. Quarantine-affected outputs stay
      // private: their rows depend on this query's corruption stream, not
      // just on the subtree definition.
      (void)options_.subtree_cache->Publish(cache_key,
                                            table_versions_for(base),
                                            *binding->file, step.stats,
                                            engine_->now());
    }
    if (options_.checkpoint_path.empty()) return;
    CheckpointEntry entry;
    entry.signature = step.subtree_signature;
    entry.relation_id = step.relation_id;
    entry.path = binding->file->path();
    entry.covered.assign(base.begin(), base.end());
    entry.stats = step.stats;
    entry.table_versions = table_versions_for(base);
    manifest_.entries.push_back(std::move(entry));
    manifest_.temp_counter = executor.temp_counter();
    Status persisted =
        manifest_.WriteTo(engine_->dfs(), options_.checkpoint_path);
    if (persisted.ok() && metrics != nullptr) {
      metrics->GetCounter("driver.recovery_checkpoint_writes")->Add();
    }
  };

  // Aborts the query once the kill switch trips (checkpoint/resume tests).
  auto abort_requested = [&]() {
    return options_.abort_after_jobs >= 0 &&
           report->jobs_run >= options_.abort_after_jobs;
  };

  // Whole-job retry: re-submit a transiently failed unit until the attempt
  // budget runs out. OutOfMemory (handled by the broadcast fallback) and
  // Unavailable (the cluster can never run it) are not retried, nor are
  // Cancelled / DeadlineExceeded (the service told the query to stop —
  // retrying would fight the scheduler).
  int permanent_failures = 0;

  // Slot-ms attributable to this query, for charging re-submissions against
  // DynoOptions::retry_budget_ms. With a query id the engine's per-query
  // ledger is exact even when other sessions share the wave; without one the
  // driver owns the engine, so the global ledger is equivalent.
  auto attained_slot_ms = [&]() -> SimMillis {
    if (!options_.exec.query_id.empty()) {
      const auto& ledger = engine_->query_slot_ms();
      auto it = ledger.find(options_.exec.query_id);
      return it == ledger.end() ? 0 : it->second;
    }
    return engine_->busy_slot_ms_total();
  };

  auto execute_with_retry =
      [&](const PlanExecutor::UnitRequest& request,
          Status first_error) -> Result<StepResult> {
    Status last = std::move(first_error);
    for (int attempt = 2; attempt <= options_.max_job_attempts &&
                          last.code() != StatusCode::kOutOfMemory &&
                          last.code() != StatusCode::kUnavailable &&
                          last.code() != StatusCode::kCancelled &&
                          last.code() != StatusCode::kDeadlineExceeded;
         ++attempt) {
      if (options_.retry_budget_ms > 0 &&
          report->retry_slot_ms >= options_.retry_budget_ms) {
        report->retry_budget_exhausted = true;
        if (metrics != nullptr) {
          metrics->GetCounter("driver.retry_budget_exhausted")->Add();
        }
        if (trace != nullptr) {
          trace->Record(obs::TraceEvent(engine_->now(), -1,
                                        obs::TraceLane::kDriver, "driver",
                                        "retry_budget_exhausted")
                            .ArgInt("unit", request.unit->uid)
                            .ArgInt("retry_slot_ms", report->retry_slot_ms)
                            .ArgInt("budget_ms", options_.retry_budget_ms));
        }
        break;
      }
      ++report->job_retries;
      if (metrics != nullptr) {
        metrics->GetCounter("driver.recovery_job_retries")->Add();
      }
      if (trace != nullptr) {
        trace->Record(obs::TraceEvent(engine_->now(), -1,
                                      obs::TraceLane::kDriver, "driver",
                                      "job_retry")
                          .ArgInt("unit", request.unit->uid)
                          .ArgInt("attempt", attempt)
                          .Arg("error", last.ToString()));
      }
      const SimMillis before_ms = attained_slot_ms();
      auto again = executor.ExecuteOne(request);
      report->retry_slot_ms += attained_slot_ms() - before_ms;
      if (again.ok()) return std::move(*again);
      last = again.status();
    }
    return last;
  };

  // OOM retry ladder (DESIGN.md §6.10): a repartition unit whose reducers
  // died of OutOfMemory under the strict memory mode is re-submitted with
  // spill mode forced (rung 1); each further rung doubles the reducer count
  // so every reducer's sort state halves. Runs until the ladder is
  // exhausted, success, or a non-OOM failure (handed back for the normal
  // retry/abandon machinery). Map-only (broadcast) OOMs never come here —
  // the adaptive join fallback owns those.
  auto oom_ladder = [&](const PlanExecutor::UnitRequest& original,
                        int planned_reducers,
                        Status first_error) -> Result<StepResult> {
    PlanExecutor::UnitRequest request = original;
    request.reduce_memory_mode = 1;  // ClusterConfig::ReduceMemoryMode::kSpill
    Status last = std::move(first_error);
    int reducers = planned_reducers;
    for (int rung = 1; rung <= options_.oom_retry_ladder; ++rung) {
      if (rung >= 2) {
        if (reducers <= 0) reducers = 1;
        reducers *= 2;
        request.num_reduce_tasks = reducers;
      }
      ++report->oom_retries;
      if (metrics != nullptr) {
        metrics->GetCounter("driver.oom_retries")->Add();
      }
      if (trace != nullptr) {
        trace->Record(obs::TraceEvent(engine_->now(), -1,
                                      obs::TraceLane::kDriver, "driver",
                                      "oom_retry")
                          .ArgInt("unit", request.unit->uid)
                          .ArgInt("rung", rung)
                          .ArgInt("reduce_tasks", request.num_reduce_tasks)
                          .Arg("error", last.ToString()));
      }
      DYNO_ASSIGN_OR_RETURN(std::vector<StepResult> again,
                            executor.Execute({request}));
      StepResult& step = again[0];
      if (step.status.ok()) return std::move(step);
      if (step.status.code() != StatusCode::kOutOfMemory) return step.status;
      last = step.status;
      // The failed attempt still froze a reducer count; double from it.
      if (step.job.reduce_tasks_planned > 0) {
        reducers = step.job.reduce_tasks_planned;
      }
    }
    return last;  // Ladder exhausted: the OOM is permanent.
  };

  // A permanently failed unit is abandoned: the driver re-plans around the
  // subtrees it already materialized (bounded, and pointless when the
  // failure is environmental). Returns true when the loop should re-plan.
  auto abandon_job = [&](const JobUnit& unit, const Status& error) {
    ++permanent_failures;
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(engine_->now(), -1,
                                    obs::TraceLane::kDriver, "driver",
                                    "job_permanent_failure")
                        .ArgInt("unit", unit.uid)
                        .ArgInt("permanent_failures", permanent_failures)
                        .Arg("error", error.ToString()));
    }
    if (metrics != nullptr) {
      metrics->GetCounter("driver.recovery_replans")->Add();
    }
  };

  if (!reoptimize) {
    // --- DYNOPT-SIMPLE: one optimizer call, then run the plan as-is. ---
    DYNO_ASSIGN_OR_RETURN(OptimizeResult opt,
                          optimizer.Optimize(state.BuildGraph()));
    record_plan(opt);
    DYNO_ASSIGN_OR_RETURN(
        StaticRunResult run,
        RunStaticPlan(&executor, *opt.plan,
                      options_.strategy == ExecutionStrategy::kSimpleParallel,
                      block.output_columns,
                      options_.adaptive_join_fallback));
    report->jobs_run += run.jobs_run;
    report->map_only_jobs += run.map_only_jobs;
    report->broadcast_fallbacks += run.broadcast_fallbacks;
    report->task_failures_injected += run.task_failures_injected;
    report->task_retries += run.task_retries;
    report->speculative_launches += run.speculative_launches;
    report->speculative_wins += run.speculative_wins;
    report->block_corruptions += run.block_corruptions;
    report->checksum_refetches += run.checksum_refetches;
    report->records_quarantined += run.records_quarantined;
    report->reduce_spills += run.reduce_spills;
    report->spill_bytes_written += run.spill_bytes_written;
    report->spill_bytes_read += run.spill_bytes_read;
    report->peak_task_memory_bytes = std::max(report->peak_task_memory_bytes,
                                              run.peak_task_memory_bytes);
    return run.output;
  }

  // --- DYNOPT (Algorithm 2): optimize, execute leaf jobs, collect
  // statistics, substitute, and repeat. Re-optimization is conditional: if
  // every executed job's observed cardinality landed within
  // `reopt_row_error_threshold` of its estimate, the current plan is
  // continued instead of re-planned (paper §3/§5.1: "the decision to
  // re-optimize could be conditional on a threshold difference between the
  // estimated result size and the observed one"). The default threshold of
  // 0 re-optimizes after every step, the paper's implementation.
  std::unique_ptr<PlanNode> plan;
  std::vector<JobUnit> units;
  std::set<int64_t> executed_units;
  bool replan = true;

  for (;;) {
    if (replan) {
      DYNO_ASSIGN_OR_RETURN(OptimizeResult opt,
                            optimizer.Optimize(state.BuildGraph()));
      record_plan(opt);
      plan = std::move(opt.plan);
      DYNO_ASSIGN_OR_RETURN(units, PlanExecutor::Decompose(*plan));
      executed_units.clear();
      if (units.empty()) {
        return Status::Internal("optimizer returned a plan with no jobs");
      }
    }

    // A unit is ready when all its inputs are materialized: bound base
    // leaves or outputs of already-executed units of this decomposition.
    auto is_ready = [&](const JobUnit& unit) {
      if (executed_units.count(unit.uid)) return false;
      for (const JobInput& input : unit.inputs) {
        if (!input.IsLeaf() && !executed_units.count(input.unit_uid)) {
          return false;
        }
      }
      return true;
    };

    // The root unit completing means the block is done: run it with the
    // final projection (Algorithm 2, line 6).
    const JobUnit& root = units.back();
    bool root_is_last = executed_units.size() + 1 == units.size();
    if (root_is_last && is_ready(root)) {
      std::set<std::string> root_covered;
      for (const JobInput& input : root.inputs) {
        DYNO_ASSIGN_OR_RETURN(std::string id, executor.ResolveInput(input));
        root_covered.insert(std::move(id));
      }
      PlanExecutor::UnitRequest request;
      request.unit = &root;
      request.projection = block.output_columns;
      std::string root_key = cache_key_for(root, request);
      if (options_.subtree_cache != nullptr) {
        auto hit = options_.subtree_cache->Lookup(root_key, engine_->now());
        if (hit.has_value()) {
          StepResult step;
          step.subtree_signature =
              executor.CanonicalSignature(*root.nodes.back());
          step.stats = hit->stats;
          RelationBinding cached;
          cached.file = hit->file;
          cached.signature = step.subtree_signature;
          step.relation_id = executor.BindCachedRelation(std::move(cached));
          executor.RegisterUnitOutput(root.uid, step.relation_id);
          account_step(root, step, root_covered, root_key,
                       /*from_cache=*/true);
          if (trace != nullptr) {
            trace->Record(obs::TraceEvent(engine_->now(), -1,
                                          obs::TraceLane::kDriver, "driver",
                                          "final_step_cached")
                              .Arg("relation", step.relation_id)
                              .Arg("plan", previous_plan));
          }
          return hit->file;
        }
      }
      auto attempt = executor.ExecuteOne(request);
      if (!attempt.ok() &&
          attempt.status().code() == StatusCode::kOutOfMemory &&
          !root.map_only && options_.oom_retry_ladder > 0) {
        // Reduce-side OOM: climb the ladder before giving up. On success
        // the ladder's Execute already bound the unit's output.
        attempt = oom_ladder(request, 0, attempt.status());
      }
      StepResult step;
      if (attempt.ok()) {
        step = std::move(*attempt);
      } else if (attempt.status().code() == StatusCode::kOutOfMemory &&
                 options_.adaptive_join_fallback && root.map_only) {
        int extra_jobs = 0;
        DYNO_ASSIGN_OR_RETURN(
            step, RunRepartitionFallback(&executor, root, request,
                                         &extra_jobs));
        report->jobs_run += extra_jobs - 1;  // account_step adds one more
        ++report->broadcast_fallbacks;
        if (trace != nullptr) {
          trace->Record(obs::TraceEvent(engine_->now(), -1,
                                        obs::TraceLane::kDriver, "driver",
                                        "broadcast_fallback")
                            .ArgInt("unit", root.uid)
                            .ArgInt("extra_jobs", extra_jobs));
        }
      } else {
        auto retried = execute_with_retry(request, attempt.status());
        if (retried.ok()) {
          step = std::move(*retried);
        } else if (retried.status().code() == StatusCode::kUnavailable ||
                   retried.status().code() == StatusCode::kCancelled ||
                   retried.status().code() == StatusCode::kDeadlineExceeded ||
                   permanent_failures + 1 > kMaxPermanentJobFailures) {
          return retried.status();
        } else {
          abandon_job(root, retried.status());
          replan = true;
          continue;  // Re-plan around the materialized subtrees.
        }
      }
      account_step(root, step, root_covered, root_key, /*from_cache=*/false);
      if (abort_requested()) {
        return Status::Cancelled(
            StrFormat("query aborted after %d jobs (test kill switch)",
                      report->jobs_run));
      }
      if (trace != nullptr) {
        trace->Record(obs::TraceEvent(engine_->now(), -1,
                                      obs::TraceLane::kDriver, "driver",
                                      "final_step")
                          .Arg("relation", step.relation_id)
                          .ArgDouble("est_rows",
                                     std::max(root.est_rows, 1.0))
                          .ArgDouble("observed_rows",
                                     std::max(step.stats.cardinality, 1.0))
                          .Arg("plan", previous_plan));
      }
      DYNO_ASSIGN_OR_RETURN(RelationBinding binding,
                            executor.GetBinding(step.relation_id));
      return binding.file;
    }

    std::vector<const JobUnit*> ready_jobs;
    for (const JobUnit& unit : units) {
      if (&unit != &root && is_ready(unit)) ready_jobs.push_back(&unit);
    }
    if (ready_jobs.empty()) {
      return Status::Internal("plan decomposition produced no ready jobs");
    }
    std::vector<const JobUnit*> chosen =
        PickLeafJobs(options_.strategy, ready_jobs);

    std::vector<PlanExecutor::UnitRequest> requests;
    std::vector<std::set<std::string>> covered_sets;
    for (const JobUnit* unit : chosen) {
      std::set<std::string> covered;
      for (const JobInput& input : unit->inputs) {
        DYNO_ASSIGN_OR_RETURN(std::string id,
                              executor.ResolveInput(input));
        covered.insert(std::move(id));
      }
      PlanExecutor::UnitRequest request;
      request.unit = unit;
      request.stats_columns = state.StatsColumnsFor(covered);
      requests.push_back(std::move(request));
      covered_sets.push_back(std::move(covered));
    }

    // Consult the cross-query cache: a unit whose decorated subtree key is
    // pinned (and still valid against current table versions) is satisfied
    // without running a job; only the remainder executes as a wave. All
    // decisions happen on this (baton-serialized) driver thread, so hit
    // patterns depend only on admission order — never on engine threading.
    replan = options_.reopt_row_error_threshold <= 0.0;
    std::vector<std::string> cache_keys(chosen.size());
    if (options_.subtree_cache != nullptr) {
      std::vector<bool> satisfied(chosen.size(), false);
      for (size_t i = 0; i < chosen.size(); ++i) {
        cache_keys[i] = cache_key_for(*chosen[i], requests[i]);
        auto hit =
            options_.subtree_cache->Lookup(cache_keys[i], engine_->now());
        if (!hit.has_value()) continue;
        StepResult step;
        step.subtree_signature =
            executor.CanonicalSignature(*chosen[i]->nodes.back());
        step.stats = hit->stats;
        RelationBinding cached;
        cached.file = hit->file;
        cached.signature = step.subtree_signature;
        step.relation_id = executor.BindCachedRelation(std::move(cached));
        executor.RegisterUnitOutput(chosen[i]->uid, step.relation_id);
        account_step(*chosen[i], step, covered_sets[i], cache_keys[i],
                     /*from_cache=*/true);
        state.Substitute(covered_sets[i], step.relation_id, step.stats);
        executed_units.insert(chosen[i]->uid);
        // The entry's stats are the ones executing would have observed, so
        // the re-optimization decision matches a cold run exactly.
        double estimated = std::max(chosen[i]->est_rows, 1.0);
        double observed = std::max(step.stats.cardinality, 1.0);
        double error = std::abs(observed - estimated) / estimated;
        if (error > options_.reopt_row_error_threshold) replan = true;
        if (trace != nullptr) {
          trace->Record(
              obs::TraceEvent(engine_->now(), -1, obs::TraceLane::kDriver,
                              "driver", "checkpoint_cached")
                  .Arg("relation", step.relation_id)
                  .ArgDouble("est_rows", estimated)
                  .ArgDouble("observed_rows", observed)
                  .Arg("plan", previous_plan));
        }
        satisfied[i] = true;
      }
      size_t kept = 0;
      for (size_t i = 0; i < chosen.size(); ++i) {
        if (satisfied[i]) continue;
        if (kept != i) {  // A self-move would empty the slot.
          chosen[kept] = chosen[i];
          requests[kept] = std::move(requests[i]);
          covered_sets[kept] = std::move(covered_sets[i]);
          cache_keys[kept] = std::move(cache_keys[i]);
        }
        ++kept;
      }
      chosen.resize(kept);
      requests.resize(kept);
      covered_sets.resize(kept);
      cache_keys.resize(kept);
      if (requests.empty()) continue;  // Whole wave served from cache.
    }

    DYNO_ASSIGN_OR_RETURN(std::vector<StepResult> steps,
                          executor.Execute(requests));
    for (size_t i = 0; i < steps.size(); ++i) {
      if (!steps[i].status.ok() &&
          steps[i].status.code() == StatusCode::kOutOfMemory &&
          !chosen[i]->map_only && options_.oom_retry_ladder > 0) {
        auto climbed = oom_ladder(requests[i],
                                  steps[i].job.reduce_tasks_planned,
                                  steps[i].status);
        if (climbed.ok()) {
          steps[i] = std::move(*climbed);
          replan = true;  // the plan's memory footprint was provably wrong
        } else {
          steps[i].status = climbed.status();
        }
      }
      if (!steps[i].status.ok()) {
        if (steps[i].status.code() == StatusCode::kOutOfMemory &&
            options_.adaptive_join_fallback && chosen[i]->map_only) {
          int extra_jobs = 0;
          DYNO_ASSIGN_OR_RETURN(
              steps[i], RunRepartitionFallback(&executor, *chosen[i],
                                               requests[i], &extra_jobs));
          report->jobs_run += extra_jobs - 1;
          ++report->broadcast_fallbacks;
          executor.RegisterUnitOutput(chosen[i]->uid, steps[i].relation_id);
          replan = true;  // the plan was provably wrong here
          if (trace != nullptr) {
            trace->Record(obs::TraceEvent(engine_->now(), -1,
                                          obs::TraceLane::kDriver, "driver",
                                          "broadcast_fallback")
                              .ArgInt("unit", chosen[i]->uid)
                              .ArgInt("extra_jobs", extra_jobs));
          }
        } else {
          auto retried = execute_with_retry(requests[i], steps[i].status);
          if (retried.ok()) {
            steps[i] = std::move(*retried);
          } else if (retried.status().code() == StatusCode::kUnavailable ||
                     retried.status().code() == StatusCode::kCancelled ||
                     retried.status().code() ==
                         StatusCode::kDeadlineExceeded ||
                     permanent_failures + 1 > kMaxPermanentJobFailures) {
            return retried.status();
          } else {
            abandon_job(*chosen[i], retried.status());
            replan = true;
            continue;  // Skip accounting; re-plan around what succeeded.
          }
        }
      }
      account_step(*chosen[i], steps[i], covered_sets[i], cache_keys[i],
                   /*from_cache=*/false);
      if (abort_requested()) {
        return Status::Cancelled(
            StrFormat("query aborted after %d jobs (test kill switch)",
                      report->jobs_run));
      }
      state.Substitute(covered_sets[i], steps[i].relation_id,
                       steps[i].stats);
      executed_units.insert(chosen[i]->uid);
      // Estimation error check for conditional re-optimization.
      double estimated = std::max(chosen[i]->est_rows, 1.0);
      double observed = std::max(steps[i].stats.cardinality, 1.0);
      double error = std::abs(observed - estimated) / estimated;
      bool step_triggers_replan = error > options_.reopt_row_error_threshold;
      if (step_triggers_replan) replan = true;
      // Observed spilling re-plans even when the cardinality landed: the
      // cost model charges spill I/O (SpillCost), so the re-optimizer can
      // trade the next joins toward broadcasts or cheaper shapes.
      if (steps[i].job.reduce_spills > 0) replan = true;
      if (trace != nullptr) {
        trace->Record(
            obs::TraceEvent(engine_->now(), -1, obs::TraceLane::kDriver,
                            "driver", "checkpoint")
                .Arg("relation", steps[i].relation_id)
                .ArgDouble("est_rows", estimated)
                .ArgDouble("observed_rows", observed)
                .ArgDouble("row_error", error)
                .ArgDouble("threshold", options_.reopt_row_error_threshold)
                .ArgBool("replan", step_triggers_replan)
                .Arg("plan", previous_plan));
      }
      if (metrics != nullptr) {
        metrics->GetCounter("driver.checkpoints")->Add();
        if (step_triggers_replan) {
          metrics->GetCounter("driver.replans_triggered")->Add();
        }
      }
    }
  }
}

Result<StaticRunResult> RunStaticPlan(
    PlanExecutor* executor, const PlanNode& plan, bool parallel_waves,
    const std::vector<std::string>& final_projection,
    bool broadcast_fallback) {
  StaticRunResult result;
  if (plan.IsLeaf()) {
    DYNO_ASSIGN_OR_RETURN(RelationBinding binding,
                          executor->GetBinding(plan.relation_id));
    result.output = binding.file;
    result.final_relation_id = plan.relation_id;
    return result;
  }
  DYNO_ASSIGN_OR_RETURN(std::vector<JobUnit> units,
                        PlanExecutor::Decompose(plan));
  executor->ResetUnitOutputs();
  std::set<int64_t> executed;
  std::string last_id;
  int64_t final_uid = units.empty() ? -1 : units.back().uid;

  while (executed.size() < units.size()) {
    // Ready = all unit inputs already executed.
    std::vector<const JobUnit*> ready;
    for (const JobUnit& unit : units) {
      if (executed.count(unit.uid)) continue;
      bool ok = true;
      for (const JobInput& input : unit.inputs) {
        if (!input.IsLeaf() && !executed.count(input.unit_uid)) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(&unit);
    }
    if (ready.empty()) {
      return Status::Internal("static plan has unexecutable units");
    }
    if (!parallel_waves) ready.resize(1);
    std::vector<PlanExecutor::UnitRequest> requests;
    for (const JobUnit* unit : ready) {
      PlanExecutor::UnitRequest request;
      request.unit = unit;
      if (unit->uid == final_uid) request.projection = final_projection;
      requests.push_back(std::move(request));
    }
    DYNO_ASSIGN_OR_RETURN(std::vector<StepResult> steps,
                          executor->Execute(requests));
    for (size_t i = 0; i < steps.size(); ++i) {
      if (!steps[i].status.ok()) {
        if (steps[i].status.code() == StatusCode::kOutOfMemory &&
            broadcast_fallback && ready[i]->map_only) {
          int extra_jobs = 0;
          DYNO_ASSIGN_OR_RETURN(
              steps[i], RunRepartitionFallback(executor, *ready[i],
                                               requests[i], &extra_jobs));
          result.jobs_run += extra_jobs - 1;
          ++result.broadcast_fallbacks;
          // The fallback's final output stands in for this unit's output,
          // so dependants resolving through the unit uid find it.
          executor->RegisterUnitOutput(ready[i]->uid, steps[i].relation_id);
        } else {
          return steps[i].status;
        }
      }
      executed.insert(ready[i]->uid);
      ++result.jobs_run;
      if (ready[i]->map_only) ++result.map_only_jobs;
      AddFaultCounters(steps[i].job, &result);
      if (ready[i]->uid == final_uid) {
        last_id = steps[i].relation_id;
        result.output = steps[i].job.output;
      }
    }
  }
  result.final_relation_id = last_id;
  return result;
}

}  // namespace dyno
