#ifndef DYNO_DYNO_CHECKPOINT_H_
#define DYNO_DYNO_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "json/value.h"
#include "stats/table_stats.h"
#include "storage/dfs.h"

namespace dyno {

/// One recovery checkpoint: a subtree of the query that was executed to
/// completion and whose output is materialized in the DFS. `covered` names
/// the *base* leaf aliases the subtree subsumes — relation ids differ
/// between a killed run and its resume (each run allocates its own temp
/// ids), so cover sets are the stable join key between the two.
struct CheckpointEntry {
  std::string signature;    ///< Subtree signature (stats-store key).
  std::string relation_id;  ///< Relation id the original run assigned.
  std::string path;         ///< DFS path of the materialized output.
  std::vector<std::string> covered;  ///< Base leaf aliases, sorted.
  TableStats stats;         ///< Observed output statistics.
  /// Catalog::TableVersion of every base table the subtree read, captured
  /// when the step executed. Resume() skips (re-executes) an entry whose
  /// recorded versions no longer match — the data was rewritten under the
  /// checkpoint, and its materialization holds pre-rewrite rows.
  std::map<std::string, uint64_t> table_versions;
};

/// The driver's crash-recovery manifest (DESIGN.md §6.4): after every
/// successfully accounted execution step the driver rewrites this manifest
/// at DynoOptions::checkpoint_path. DynoDriver::Resume() reads it back and
/// substitutes the already-materialized subtrees into a restarted query
/// instead of re-executing them. Serialization is strict: any malformed
/// field fails FromValue, and Resume() treats that as "no checkpoint"
/// (re-run from scratch) rather than trusting partial state.
struct CheckpointManifest {
  /// v3 added per-entry `table_versions` (data-version validation for the
  /// subtree cache / resume). FromValue rejects any other version — newer
  /// manifests are refused outright rather than half-parsed.
  static constexpr int64_t kVersion = 3;

  /// Suffix of the previous-generation manifest kept beside the live one:
  /// WriteTo() moves the old manifest to `<path>.prev` before replacing it,
  /// so a write torn by a driver death mid-rewrite still leaves one intact,
  /// checksum-verified generation for ReadWithFallback().
  static constexpr char kPrevSuffix[] = ".prev";

  /// Executor temp-id high-water mark at checkpoint time. Resume
  /// fast-forwards its executor past this so continuation relation ids
  /// (and therefore subtree signatures) match the uninterrupted run.
  int64_t temp_counter = 0;

  /// Leaf signature (table + local filter) of every base alias of the query
  /// the manifest was written for, sorted by alias. Resume() refuses (with
  /// InvalidArgument) to substitute checkpoints into a query whose text no
  /// longer matches these — silently reusing materializations of different
  /// predicates would produce wrong answers.
  std::map<std::string, std::string> leaf_signatures;

  std::vector<CheckpointEntry> entries;

  Value ToValue() const;
  static Result<CheckpointManifest> FromValue(const Value& value);

  /// Persists the manifest as a single-row DFS file, replacing any
  /// previous version at `path` (after preserving it at `path + kPrevSuffix`).
  Status WriteTo(Dfs* dfs, const std::string& path) const;

  /// Loads and validates a manifest. Missing file, wrong version or any
  /// corruption — including a block-checksum mismatch from a torn or
  /// bit-flipped write — yields a non-OK status (never crashes).
  static Result<CheckpointManifest> ReadFrom(const Dfs& dfs,
                                             const std::string& path);

  /// ReadFrom(path), falling back to the previous generation at
  /// `path + kPrevSuffix` when the live manifest is missing or corrupt.
  /// `used_fallback` (optional) reports which generation was returned.
  static Result<CheckpointManifest> ReadWithFallback(const Dfs& dfs,
                                                     const std::string& path,
                                                     bool* used_fallback);
};

}  // namespace dyno

#endif  // DYNO_DYNO_CHECKPOINT_H_
