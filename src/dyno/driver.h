#ifndef DYNO_DYNO_DRIVER_H_
#define DYNO_DYNO_DRIVER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/subtree_cache.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "dyno/checkpoint.h"
#include "dyno/strategy.h"
#include "exec/plan_executor.h"
#include "lang/query.h"
#include "mr/engine.h"
#include "optimizer/optimizer.h"
#include "pilot/pilot_runner.h"
#include "stats/stats_store.h"
#include "storage/catalog.h"

namespace dyno {

/// Configuration of the full DYNO pipeline.
struct DynoOptions {
  PilotRunOptions pilot;
  CostModelParams cost;
  ExecOptions exec;
  ExecutionStrategy strategy = ExecutionStrategy::kUncertain1;

  /// Master switch for pilot runs (off = the "no pilot" ablation: the
  /// optimizer plans from base-table statistics, blind to predicates).
  bool use_pilot_runs = true;
  /// When a very selective pilot run consumed its whole relation, reuse its
  /// output as the leaf's materialization (paper §4.1).
  bool reuse_pilot_full_outputs = true;

  /// Re-optimize after each execution step (DYNOPT). The SIMPLE strategies
  /// force this off.
  bool reoptimize = true;

  /// The paper's §8 extension: when a broadcast build side turns out not
  /// to fit in memory, switch that join to a repartition join instead of
  /// failing the query (Jaql's native behaviour, kept for the baselines,
  /// is to die with OutOfMemory).
  bool adaptive_join_fallback = true;

  /// Reorder each leaf's conjunction by measured rank (cheap, selective
  /// predicates first — paper §4.4's pointer to [24]/[11], made actionable
  /// by pilot-style sampling). Off by default, as in the paper.
  bool reorder_local_predicates = false;

  /// Conditional re-optimization (paper §3): re-plan only when some
  /// executed job's observed output cardinality deviates from its estimate
  /// by more than this relative error. 0 re-optimizes after every step
  /// (the paper's implementation); e.g. 0.5 tolerates 50% estimation error
  /// before paying another optimizer call.
  double reopt_row_error_threshold = 0.0;

  /// DFS path where the driver rewrites a CheckpointManifest after every
  /// successfully accounted execution step (DESIGN.md §6.4). Empty disables
  /// checkpointing. Resume() reads the same path; a path therefore
  /// identifies one logical query — do not share it across queries.
  std::string checkpoint_path;

  /// Whole-job retry budget: a job that fails for a transient reason (task
  /// attempts exhausted under heavy node loss) is re-submitted up to this
  /// many total attempts before the driver treats the failure as permanent
  /// and re-plans around the subtrees it already materialized. <= 0 reads
  /// DYNO_MAX_JOB_ATTEMPTS, defaulting to 1 (no retry). OutOfMemory and
  /// Unavailable failures are never retried (the former has its own
  /// fallback, the latter cannot succeed).
  int max_job_attempts = 0;

  /// Slot-millisecond cap on whole-job *retries* (attempts 2..N): once the
  /// cluster time burned by re-submissions reaches this budget, the driver
  /// stops retrying and lets the failure take its permanent-failure path, so
  /// a pathological query cannot eat the cluster through its retry ladder.
  /// The first attempt of every job is never charged. < 0 reads
  /// DYNO_RETRY_BUDGET_MS (strict-or-abort parsing), defaulting to 0 =
  /// unlimited.
  SimMillis retry_budget_ms = -1;

  /// OOM retry ladder for spillable (reduce-side) operators, replacing the
  /// historical "OutOfMemory is never retried" rule: rung 1 re-runs the
  /// failed unit with spill mode forced (JobSpec::reduce_memory_mode = 1),
  /// each further rung also doubles the engine's planned reducer count so
  /// per-reducer state shrinks, and exhausting the ladder surfaces the
  /// OutOfMemory as permanent. The value is the number of rungs; 0 keeps
  /// the legacy behavior. < 0 reads DYNO_OOM_RETRIES (strict-or-abort),
  /// defaulting to 0. Broadcast (map-only) OOM keeps its own fallback
  /// (adaptive_join_fallback).
  int oom_retry_ladder = -1;

  /// Copy the engine's ClusterConfig memory model (memory_per_task_bytes,
  /// broadcast_memory_factor) into `cost` at construction, so plan-time
  /// broadcast feasibility and run-time enforcement cannot disagree. Tests
  /// that deliberately lie to the optimizer opt out.
  bool sync_cost_memory = true;

  /// Test kill switch: abort the query with Cancelled once this many jobs
  /// have been accounted (< 0 = never). Simulates the driver process dying
  /// mid-query so checkpoint/resume tests can exercise Resume().
  int abort_after_jobs = -1;

  /// Cross-query materialized-subtree cache, shared across drivers (one per
  /// QueryService, or test-owned). Null (the default) disables consult and
  /// publish entirely — single-query behavior, traces and results are
  /// byte-identical to pre-cache builds. Non-owning; must outlive the
  /// driver.
  SubtreeCache* subtree_cache = nullptr;
};

/// One (re-)optimization event in a query's life.
struct PlanEvent {
  SimMillis at_ms = 0;
  std::string plan_tree;      ///< Multi-line rendering (Fig. 2 style).
  std::string plan_compact;   ///< One-line rendering.
  double est_cost = 0.0;
  bool plan_changed = false;  ///< Structurally different from previous.
};

/// Full accounting of one query execution — the raw material for every
/// overhead/speedup figure.
struct QueryRunReport {
  SimMillis total_ms = 0;
  SimMillis pilot_ms = 0;
  SimMillis optimizer_ms = 0;        ///< Sum over (re-)optimizer calls.
  SimMillis stats_overhead_ms = 0;   ///< Online statistics collection.
  int optimizer_calls = 0;
  int jobs_run = 0;
  int map_only_jobs = 0;
  int plan_changes = 0;              ///< Re-optimizations that changed plan.
  /// Broadcast joins demoted to repartition at runtime (§8 dynamic join).
  int broadcast_fallbacks = 0;
  /// Fault-model totals over every job of the query (all zero unless the
  /// engine's FaultConfig enables injection).
  int task_failures_injected = 0;
  int task_retries = 0;
  int speculative_launches = 0;
  int speculative_wins = 0;
  /// Node fault-domain totals (see JobResult; DESIGN.md §6.4).
  int node_crashes_observed = 0;
  int attempts_killed_by_node = 0;
  int maps_invalidated = 0;
  int shuffle_fetch_retries = 0;
  /// Data-integrity totals (see JobResult; DESIGN.md §6.5).
  int block_corruptions = 0;
  int checksum_refetches = 0;
  /// Records excluded from every output and statistic by bad-record
  /// quarantine — observed checkpoint stats count these as excluded.
  uint64_t records_quarantined = 0;
  /// Reduce-memory totals (see JobResult; DESIGN.md §6.10). All zero with
  /// the memory model off.
  int reduce_spills = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_bytes_read = 0;
  /// Max over the query's jobs of JobResult::peak_task_memory_bytes.
  uint64_t peak_task_memory_bytes = 0;
  /// OOM-ladder re-executions (jobs re-run in spill mode / with doubled
  /// reducers after an OutOfMemory).
  int oom_retries = 0;
  /// Driver-level recovery accounting.
  int job_retries = 0;    ///< Whole-job re-submissions after a failure.
  /// Slot-ms charged against DynoOptions::retry_budget_ms by those
  /// re-submissions, and whether the budget ran dry.
  SimMillis retry_slot_ms = 0;
  bool retry_budget_exhausted = false;
  int resumed_steps = 0;  ///< Steps satisfied from a checkpoint manifest.
  /// Resume() reads that had to fall back to the previous manifest
  /// generation after a torn/corrupt live manifest.
  int manifest_fallbacks = 0;
  std::vector<PlanEvent> plan_history;
  std::shared_ptr<DfsFile> result;
  uint64_t result_records = 0;
};

/// A query of several join blocks (paper §5.1): blocks are separated by
/// grouping operators, and a later block may consume an earlier block's
/// output by referencing the table name "@block:<name>". DYNOPT is invoked
/// once per block, in dependency order.
struct MultiBlockQuery {
  struct Block {
    std::string name;
    JoinBlock join_block;
    /// Grouping applied to this block's join output before it is exposed
    /// to downstream blocks.
    std::optional<GroupBySpec> group_by;
  };
  std::vector<Block> blocks;
  /// Ordering applied to the final block's output.
  std::optional<OrderBySpec> final_order_by;
};

/// Table-name prefix marking a reference to another block's output.
inline constexpr char kBlockRefPrefix[] = "@block:";

/// The DYNO driver: pilot runs → cost-based join enumeration → step-wise
/// execution with online statistics and re-optimization (Algorithm 2).
class DynoDriver {
 public:
  DynoDriver(MapReduceEngine* engine, Catalog* catalog, StatsStore* store,
             DynoOptions options);

  /// Executes `query` end to end (join block, then grouping/ordering) and
  /// returns the result file plus full accounting.
  Result<QueryRunReport> Execute(const Query& query);

  /// Executes a multi-block query: blocks run in an order that respects
  /// their "@block:" references (paper §5.1 — "a block can be executed
  /// only after all blocks it depends on"), each through the full DYNOPT
  /// pipeline; accounting aggregates across blocks. Fails on reference
  /// cycles or unknown block names.
  Result<QueryRunReport> ExecuteMultiBlock(const MultiBlockQuery& query);

  /// Restarts `query` after a driver death: reads the CheckpointManifest at
  /// DynoOptions::checkpoint_path, rebinds every still-materialized subtree
  /// it records instead of re-executing it, and fast-forwards relation-id
  /// allocation so the continuation is byte-identical (same final rows,
  /// same checkpointed statistics) to an uninterrupted run. A missing or
  /// corrupt manifest degrades to a plain Execute() from scratch.
  Result<QueryRunReport> Resume(const Query& query);

  const DynoOptions& options() const { return options_; }

  /// The manifest recorded by the most recent Execute/Resume call (empty
  /// when checkpointing is disabled). Exposed for tests.
  const CheckpointManifest& manifest() const { return manifest_; }

 private:
  struct BlockState;

  Result<QueryRunReport> ExecuteInternal(const Query& query,
                                         const CheckpointManifest* resume);

  Result<std::shared_ptr<DfsFile>> RunJoinBlock(
      const JoinBlock& block, QueryRunReport* report,
      const CheckpointManifest* resume);

  MapReduceEngine* engine_;
  Catalog* catalog_;
  StatsStore* store_;
  DynoOptions options_;
  /// Checkpoint state of the in-flight/most recent query run.
  CheckpointManifest manifest_;
};

/// Outcome of executing a fixed physical plan (no re-optimization).
struct StaticRunResult {
  std::shared_ptr<DfsFile> output;
  std::string final_relation_id;
  int jobs_run = 0;
  int map_only_jobs = 0;
  int broadcast_fallbacks = 0;
  /// Fault-model totals over the plan's jobs (see QueryRunReport).
  int task_failures_injected = 0;
  int task_retries = 0;
  int speculative_launches = 0;
  int speculative_wins = 0;
  int node_crashes_observed = 0;
  int attempts_killed_by_node = 0;
  int maps_invalidated = 0;
  int shuffle_fetch_retries = 0;
  /// Data-integrity totals (see JobResult).
  int block_corruptions = 0;
  int checksum_refetches = 0;
  uint64_t records_quarantined = 0;
  /// Reduce-memory totals (see JobResult; DESIGN.md §6.10).
  int reduce_spills = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_bytes_read = 0;
  uint64_t peak_task_memory_bytes = 0;
  int oom_retries = 0;
};

/// Executes `plan` as-is on `executor` (whose bindings must cover every
/// leaf): wave-parallel when `parallel_waves` (all ready jobs submitted
/// together — SIMPLE_MO), else strictly one job at a time (SIMPLE_SO).
/// Used by DYNOPT-SIMPLE and by the RELOPT / BESTSTATIC baselines. With
/// `broadcast_fallback`, an over-memory broadcast is demoted to
/// repartition jobs instead of failing (DYNO's §8 dynamic join operator);
/// the baselines keep Jaql's fail-on-OOM behaviour.
Result<StaticRunResult> RunStaticPlan(
    PlanExecutor* executor, const PlanNode& plan, bool parallel_waves,
    const std::vector<std::string>& final_projection,
    bool broadcast_fallback = false);

}  // namespace dyno

#endif  // DYNO_DYNO_DRIVER_H_
