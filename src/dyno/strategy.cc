#include "dyno/strategy.h"

#include <algorithm>

namespace dyno {

const char* ExecutionStrategyName(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kSimpleSerial: return "SIMPLE_SO";
    case ExecutionStrategy::kSimpleParallel: return "SIMPLE_MO";
    case ExecutionStrategy::kUncertain1: return "UNC-1";
    case ExecutionStrategy::kUncertain2: return "UNC-2";
    case ExecutionStrategy::kCheapest1: return "CHEAP-1";
    case ExecutionStrategy::kCheapest2: return "CHEAP-2";
  }
  return "?";
}

bool IsSimpleStrategy(ExecutionStrategy strategy) {
  return strategy == ExecutionStrategy::kSimpleSerial ||
         strategy == ExecutionStrategy::kSimpleParallel;
}

std::vector<const JobUnit*> PickLeafJobs(
    ExecutionStrategy strategy,
    const std::vector<const JobUnit*>& leaf_jobs) {
  if (leaf_jobs.empty()) return {};
  std::vector<const JobUnit*> sorted = leaf_jobs;
  switch (strategy) {
    case ExecutionStrategy::kUncertain1:
    case ExecutionStrategy::kUncertain2:
      // Most joins first; cost breaks ties (cheaper first) so we reach the
      // next re-optimization point sooner.
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const JobUnit* a, const JobUnit* b) {
                         if (a->uncertainty != b->uncertainty) {
                           return a->uncertainty > b->uncertainty;
                         }
                         return a->est_cost < b->est_cost;
                       });
      break;
    case ExecutionStrategy::kCheapest1:
    case ExecutionStrategy::kCheapest2:
    case ExecutionStrategy::kSimpleSerial:
    case ExecutionStrategy::kSimpleParallel:
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const JobUnit* a, const JobUnit* b) {
                         return a->est_cost < b->est_cost;
                       });
      break;
  }
  size_t take = 1;
  if (strategy == ExecutionStrategy::kUncertain2 ||
      strategy == ExecutionStrategy::kCheapest2) {
    take = 2;
  }
  if (take > sorted.size()) take = sorted.size();
  sorted.resize(take);
  return sorted;
}

}  // namespace dyno
