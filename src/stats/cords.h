#ifndef DYNO_STATS_CORDS_H_
#define DYNO_STATS_CORDS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"

namespace dyno {

/// A detected relationship between two columns of one table.
struct ColumnPairCorrelation {
  std::string column_a;
  std::string column_b;
  double ndv_a = 0.0;     ///< Distinct values of a in the sample.
  double ndv_b = 0.0;
  double ndv_pair = 0.0;  ///< Distinct (a, b) pairs in the sample.
  /// Correlation strength in [0, 1]: 0 = the pair NDV matches the
  /// independence prediction min(ndv_a·ndv_b, rows); 1 = fully determined.
  double strength = 0.0;
  /// Soft functional dependencies: a→b holds when knowing a (almost)
  /// determines b, i.e. ndv_pair ≈ ndv_a.
  bool fd_a_to_b = false;
  bool fd_b_to_a = false;
};

/// Sampling-based correlation discovery options.
struct CordsOptions {
  int sample_rows = 2000;
  uint64_t seed = 1234;
  /// ndv_pair may exceed ndv_a by this factor and still count as a soft FD
  /// (CORDS' notion of *soft* functional dependency).
  double fd_tolerance = 1.1;
  /// Pairs with strength below this are not reported.
  double min_strength = 0.2;
};

/// CORDS-lite (Ilyas et al., the paper's [26]): discovers correlations and
/// soft functional dependencies between column pairs of `table` by
/// comparing sampled pair-NDVs against the independence prediction. The
/// paper ran CORDS to find the correlated predicate pair it injected into
/// Q8'; this detector finds such pairs (e.g. o_channel → o_clerk_group in
/// the bundled TPC-H generator, or zip → state in the restaurant data) so
/// an operator knows which predicates a traditional optimizer will
/// mis-estimate. Results are sorted by descending strength.
Result<std::vector<ColumnPairCorrelation>> DetectCorrelations(
    Catalog* catalog, const std::string& table,
    const std::vector<std::string>& columns, const CordsOptions& options);

}  // namespace dyno

#endif  // DYNO_STATS_CORDS_H_
