#ifndef DYNO_STATS_KMV_H_
#define DYNO_STATS_KMV_H_

#include <cstdint>
#include <vector>

#include "json/value.h"

namespace dyno {

/// K-Minimum-Values distinct-value synopsis (Beyer et al., SIGMOD'07),
/// exactly as DYNO uses it (paper §4.3): each map task builds a synopsis
/// over its split, partial synopses are unioned at the client, and the
/// unbiased estimator `DV = (k-1)·M / h_k` gives the distinct count, where
/// `h_k` is the k-th smallest hash over domain [0, M). With k = 1024 the
/// expected relative error is about 6%.
class KmvSynopsis {
 public:
  static constexpr int kDefaultK = 1024;

  explicit KmvSynopsis(int k = kDefaultK);

  /// Inserts a value (hashed internally, duplicates collapse).
  void Add(const Value& v);

  /// Inserts a pre-hashed value.
  void AddHash(uint64_t h);

  /// Unions another synopsis into this one (both must share `k`).
  void Merge(const KmvSynopsis& other);

  /// Unbiased distinct-value estimate. Exact (= number of stored hashes)
  /// while fewer than k distinct values have been seen.
  double Estimate() const;

  int k() const { return k_; }
  size_t size() const { return hashes_.size(); }

  /// Serialization for publication through the Coordinator.
  std::string Serialize() const;
  static KmvSynopsis Deserialize(const std::string& data);

 private:
  void Compact();

  int k_;
  /// Kept as an unsorted buffer that is compacted (sorted, deduped,
  /// truncated to k) when it overflows 2k — amortizes the maintenance cost.
  std::vector<uint64_t> hashes_;
  bool compacted_ = true;
};

}  // namespace dyno

#endif  // DYNO_STATS_KMV_H_
