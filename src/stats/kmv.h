#ifndef DYNO_STATS_KMV_H_
#define DYNO_STATS_KMV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "json/value.h"

namespace dyno {

/// K-Minimum-Values distinct-value synopsis (Beyer et al., SIGMOD'07),
/// exactly as DYNO uses it (paper §4.3): each map task builds a synopsis
/// over its split, partial synopses are unioned at the client, and the
/// unbiased estimator `DV = (k-1)·M / h_k` gives the distinct count, where
/// `h_k` is the k-th smallest hash over domain [0, M). With k = 1024 the
/// expected relative error is about 6%.
class KmvSynopsis {
 public:
  static constexpr int kDefaultK = 1024;
  /// Upper bound accepted when deserializing — a corrupt header must not be
  /// able to trigger a multi-gigabyte allocation.
  static constexpr int kMaxK = 1 << 20;

  explicit KmvSynopsis(int k = kDefaultK);

  /// Inserts a value (hashed internally, duplicates collapse).
  void Add(const Value& v);

  /// Inserts a pre-hashed value.
  void AddHash(uint64_t h);

  /// Unions another synopsis into this one (both must share `k`).
  void Merge(const KmvSynopsis& other);

  /// Unbiased distinct-value estimate. Exact (= number of stored hashes)
  /// while fewer than k distinct values have been seen.
  double Estimate() const;

  int k() const { return k_; }

  /// Number of stored (distinct, k-smallest) hashes; compacts first.
  size_t size() const;

  /// Serialization for publication through the Coordinator.
  std::string Serialize() const;

  /// Parses a serialized synopsis, rejecting corrupt payloads: short or
  /// misaligned buffers, k outside [1, kMaxK], or more hashes than k.
  static Result<KmvSynopsis> Deserialize(const std::string& data);

 private:
  /// Sorts, dedups, and truncates the buffer to the k smallest hashes.
  /// Logically const: the set of distinct values represented is unchanged.
  void Compact() const;
  void EnsureCompacted() const;

  int k_;
  /// Kept as an unsorted buffer that is compacted (sorted, deduped,
  /// truncated to k) when it overflows 2k — amortizing maintenance — or
  /// lazily on first read. `mutable` because compaction is a cache-like
  /// state change invisible to callers.
  mutable std::vector<uint64_t> hashes_;
  mutable bool compacted_ = true;
};

}  // namespace dyno

#endif  // DYNO_STATS_KMV_H_
