#ifndef DYNO_STATS_TABLE_STATS_H_
#define DYNO_STATS_TABLE_STATS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "json/value.h"
#include "stats/kmv.h"

namespace dyno {

/// Per-attribute statistics: min/max and a distinct-value estimate (paper
/// §4.3 — "statistics per attribute: min/max values, and number of distinct
/// values"). Only join-relevant attributes are tracked, to bound collection
/// overhead.
struct ColumnStats {
  std::optional<Value> min_value;
  std::optional<Value> max_value;
  /// Estimated number of distinct values, already extrapolated to the full
  /// relation when the source was a sample.
  double ndv = 0.0;

  void UpdateMinMax(const Value& v);
};

/// Statistics describing one (possibly virtual) relation: a base table, the
/// output of a leaf expression measured by a pilot run, or a materialized
/// intermediate join result.
struct TableStats {
  /// Estimated row count.
  double cardinality = 0.0;
  /// Average encoded record size in bytes.
  double avg_record_size = 0.0;
  /// True when derived from a sample (pilot run) rather than a full pass.
  bool from_sample = false;

  std::map<std::string, ColumnStats> columns;

  double SizeBytes() const { return cardinality * avg_record_size; }

  /// NDV for `column`, defaulting to `cardinality` (unique-key assumption)
  /// when the column was not tracked.
  double ColumnNdv(const std::string& column) const;
};

/// Streaming statistics collector run inside map/reduce tasks. Tracks
/// record count, byte size, and per-column min/max + KMV synopses; partial
/// collectors are serialized, published via the Coordinator, and merged at
/// the client (paper §4.3, §5.4).
class StatsCollector {
 public:
  StatsCollector(std::vector<std::string> tracked_columns,
                 int kmv_k = KmvSynopsis::kDefaultK);

  /// Updates all statistics with one output record (a struct Value).
  void Observe(const Value& record);

  void MergeFrom(const StatsCollector& other);

  uint64_t num_records() const { return num_records_; }
  uint64_t num_bytes() const { return num_bytes_; }
  const std::vector<std::string>& tracked_columns() const {
    return tracked_columns_;
  }

  /// Declared CPU cost per observed record, charged by the MR simulator.
  double CpuCostPerRecord() const {
    return 2.0 + 3.0 * static_cast<double>(tracked_columns_.size());
  }

  /// Produces TableStats for the observed output, extrapolated from a
  /// sample: `scanned_fraction` is (bytes scanned)/(total relation bytes)
  /// and must be in (0, 1]. Cardinality scales by 1/scanned_fraction. NDV
  /// uses the GEE estimator sqrt(1/q)·f1 + (d − f1) over the tracked value
  /// frequencies (Charikar et al., the paper's [9] — robust whether the
  /// column is a near-key or a small domain); when frequency tracking
  /// overflowed, it falls back to the paper's linear rule
  /// DV_R = (|R|/|Rs|)·DV_Rs. Either way the result is capped by the
  /// extrapolated cardinality.
  TableStats Finalize(double scanned_fraction) const;

  /// Wire format for Coordinator publication.
  std::string Serialize() const;
  static Result<StatsCollector> Deserialize(const std::string& data);

  /// Frequency-tracking cap: beyond this many distinct values per column
  /// the collector stops tracking exact frequencies (the KMV/linear path
  /// takes over, which is accurate in the many-distincts regime anyway).
  static constexpr size_t kMaxTrackedFrequencies = 1 << 16;

 private:
  struct ColumnState {
    ColumnStats minmax;
    KmvSynopsis synopsis;
    /// Value-hash -> occurrence count, for the GEE distinct-value
    /// estimator (Charikar et al., the paper's [9]); disabled (cleared,
    /// `freq_valid=false`) when it outgrows kMaxTrackedFrequencies.
    std::map<uint64_t, uint32_t> frequencies;
    bool freq_valid = true;
    explicit ColumnState(int k) : synopsis(k) {}
  };

  std::vector<std::string> tracked_columns_;
  int kmv_k_;
  uint64_t num_records_ = 0;
  uint64_t num_bytes_ = 0;
  std::vector<ColumnState> column_states_;
};

}  // namespace dyno

#endif  // DYNO_STATS_TABLE_STATS_H_
