#include "stats/table_stats.h"

#include <algorithm>
#include <cmath>

namespace dyno {

void ColumnStats::UpdateMinMax(const Value& v) {
  if (v.is_null()) return;
  if (!min_value || v.Compare(*min_value) < 0) min_value = v;
  if (!max_value || v.Compare(*max_value) > 0) max_value = v;
}

double TableStats::ColumnNdv(const std::string& column) const {
  auto it = columns.find(column);
  if (it == columns.end() || it->second.ndv <= 0.0) return cardinality;
  return std::min(it->second.ndv, std::max(cardinality, 1.0));
}

StatsCollector::StatsCollector(std::vector<std::string> tracked_columns,
                               int kmv_k)
    : tracked_columns_(std::move(tracked_columns)), kmv_k_(kmv_k) {
  column_states_.reserve(tracked_columns_.size());
  for (size_t i = 0; i < tracked_columns_.size(); ++i) {
    column_states_.emplace_back(kmv_k_);
  }
}

void StatsCollector::Observe(const Value& record) {
  ++num_records_;
  num_bytes_ += record.EncodedSize();
  for (size_t i = 0; i < tracked_columns_.size(); ++i) {
    const Value* v = record.FindField(tracked_columns_[i]);
    if (v == nullptr || v->is_null()) continue;
    ColumnState& state = column_states_[i];
    state.minmax.UpdateMinMax(*v);
    uint64_t h = v->Hash();
    state.synopsis.AddHash(h);
    if (state.freq_valid) {
      ++state.frequencies[h];
      if (state.frequencies.size() > kMaxTrackedFrequencies) {
        state.frequencies.clear();
        state.freq_valid = false;
      }
    }
  }
}

void StatsCollector::MergeFrom(const StatsCollector& other) {
  num_records_ += other.num_records_;
  num_bytes_ += other.num_bytes_;
  for (size_t i = 0;
       i < column_states_.size() && i < other.column_states_.size(); ++i) {
    const ColumnState& theirs = other.column_states_[i];
    ColumnState& mine = column_states_[i];
    if (theirs.minmax.min_value) {
      mine.minmax.UpdateMinMax(*theirs.minmax.min_value);
    }
    if (theirs.minmax.max_value) {
      mine.minmax.UpdateMinMax(*theirs.minmax.max_value);
    }
    mine.synopsis.Merge(theirs.synopsis);
    if (mine.freq_valid && theirs.freq_valid) {
      for (const auto& [hash, count] : theirs.frequencies) {
        mine.frequencies[hash] += count;
      }
      if (mine.frequencies.size() > kMaxTrackedFrequencies) {
        mine.frequencies.clear();
        mine.freq_valid = false;
      }
    } else {
      mine.frequencies.clear();
      mine.freq_valid = false;
    }
  }
}

TableStats StatsCollector::Finalize(double scanned_fraction) const {
  TableStats out;
  double scale = 1.0;
  if (scanned_fraction > 0.0 && scanned_fraction < 1.0) {
    scale = 1.0 / scanned_fraction;
    out.from_sample = true;
  }
  out.cardinality = static_cast<double>(num_records_) * scale;
  out.avg_record_size =
      num_records_ == 0
          ? 0.0
          : static_cast<double>(num_bytes_) / static_cast<double>(num_records_);
  for (size_t i = 0; i < tracked_columns_.size(); ++i) {
    const ColumnState& state = column_states_[i];
    ColumnStats cs = state.minmax;
    double sample_ndv = state.synopsis.Estimate();
    double ndv;
    if (scale <= 1.0) {
      ndv = sample_ndv;  // Full pass: the synopsis is (near-)exact.
    } else if (state.freq_valid && !state.frequencies.empty()) {
      // GEE: sqrt(1/q)·f1 + (d − f1). Saturated domains (few singletons)
      // barely extrapolate; near-key columns (mostly singletons) scale by
      // sqrt(1/q) — the provably best guarantee for sampling-based
      // distinct counting.
      double d = static_cast<double>(state.frequencies.size());
      double f1 = 0.0;
      for (const auto& [hash, count] : state.frequencies) {
        if (count == 1) f1 += 1.0;
      }
      ndv = std::sqrt(scale) * f1 + (d - f1);
      ndv = std::max(ndv, d);
    } else {
      // Fallback: the paper's linear rule DV_R = (|R|/|Rs|)·DV_Rs.
      ndv = sample_ndv * scale;
    }
    cs.ndv = std::min(ndv, std::max(out.cardinality, 1.0));
    out.columns[tracked_columns_[i]] = std::move(cs);
  }
  return out;
}

std::string StatsCollector::Serialize() const {
  // Layout: one struct Value holding scalars + per-column entries; KMV blobs
  // ride along as strings.
  StructFields fields;
  fields.emplace_back("num_records",
                      Value::Int(static_cast<int64_t>(num_records_)));
  fields.emplace_back("num_bytes",
                      Value::Int(static_cast<int64_t>(num_bytes_)));
  fields.emplace_back("kmv_k", Value::Int(kmv_k_));
  ArrayElements cols;
  for (size_t i = 0; i < tracked_columns_.size(); ++i) {
    StructFields col;
    col.emplace_back("name", Value::String(tracked_columns_[i]));
    const ColumnStats& cs = column_states_[i].minmax;
    col.emplace_back("min", cs.min_value ? *cs.min_value : Value::Null());
    col.emplace_back("max", cs.max_value ? *cs.max_value : Value::Null());
    col.emplace_back("kmv",
                     Value::String(column_states_[i].synopsis.Serialize()));
    col.emplace_back("freq_valid",
                     Value::Bool(column_states_[i].freq_valid));
    ArrayElements freq;
    freq.reserve(column_states_[i].frequencies.size() * 2);
    for (const auto& [hash, count] : column_states_[i].frequencies) {
      freq.push_back(Value::Int(static_cast<int64_t>(hash)));
      freq.push_back(Value::Int(count));
    }
    col.emplace_back("freq", Value::Array(std::move(freq)));
    cols.push_back(Value::Struct(std::move(col)));
  }
  fields.emplace_back("columns", Value::Array(std::move(cols)));
  std::string out;
  Value::Struct(std::move(fields)).EncodeTo(&out);
  return out;
}

Result<StatsCollector> StatsCollector::Deserialize(const std::string& data) {
  size_t offset = 0;
  DYNO_ASSIGN_OR_RETURN(Value v, Value::Decode(data, &offset));
  const Value* num_records = v.FindField("num_records");
  const Value* num_bytes = v.FindField("num_bytes");
  const Value* kmv_k = v.FindField("kmv_k");
  const Value* columns = v.FindField("columns");
  if (!num_records || !num_bytes || !kmv_k || !columns) {
    return Status::Internal("malformed stats collector blob");
  }
  std::vector<std::string> names;
  for (const Value& col : columns->array()) {
    const Value* name = col.FindField("name");
    if (!name) return Status::Internal("column without name");
    names.push_back(name->string_value());
  }
  StatsCollector out(std::move(names),
                     static_cast<int>(kmv_k->int_value()));
  out.num_records_ = static_cast<uint64_t>(num_records->int_value());
  out.num_bytes_ = static_cast<uint64_t>(num_bytes->int_value());
  const auto& cols = columns->array();
  for (size_t i = 0; i < cols.size(); ++i) {
    const Value* min_v = cols[i].FindField("min");
    const Value* max_v = cols[i].FindField("max");
    const Value* kmv = cols[i].FindField("kmv");
    if (min_v && !min_v->is_null()) {
      out.column_states_[i].minmax.min_value = *min_v;
    }
    if (max_v && !max_v->is_null()) {
      out.column_states_[i].minmax.max_value = *max_v;
    }
    if (kmv) {
      DYNO_ASSIGN_OR_RETURN(out.column_states_[i].synopsis,
                            KmvSynopsis::Deserialize(kmv->string_value()));
    }
    const Value* freq_valid = cols[i].FindField("freq_valid");
    const Value* freq = cols[i].FindField("freq");
    out.column_states_[i].freq_valid =
        freq_valid != nullptr && freq_valid->bool_value();
    if (out.column_states_[i].freq_valid && freq != nullptr) {
      const auto& elems = freq->array();
      for (size_t e = 0; e + 1 < elems.size(); e += 2) {
        out.column_states_[i]
            .frequencies[static_cast<uint64_t>(elems[e].int_value())] =
            static_cast<uint32_t>(elems[e + 1].int_value());
      }
    }
  }
  return out;
}

}  // namespace dyno
