#ifndef DYNO_STATS_HISTOGRAM_H_
#define DYNO_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "json/value.h"

namespace dyno {

/// Equi-depth histogram over one attribute, as maintained by the
/// traditional shared-nothing optimizer the paper compares against
/// ("DBMS-X is capable of using more detailed statistics (e.g.,
/// histograms)", §6.1). DYNO itself does not use histograms — they exist
/// here so the RELOPT baseline can estimate simple-predicate selectivity
/// well while still being blind to UDFs and cross-column correlation.
class EquiDepthHistogram {
 public:
  /// Builds from a full pass over the values (base-table ANALYZE).
  static EquiDepthHistogram Build(std::vector<Value> values,
                                  int num_buckets = 64);

  /// Estimated selectivity of `col <op> literal` under uniformity within
  /// buckets. Returns a value in [0, 1].
  double EstimateSelectivity(Expr::CompareOp op, const Value& literal) const;

  uint64_t total_count() const { return total_count_; }
  size_t num_buckets() const { return bucket_uppers_.size(); }
  double distinct_estimate() const { return distinct_estimate_; }

 private:
  /// bucket_uppers_[i] is the largest value in bucket i; buckets hold
  /// counts_[i] rows each. bucket_lowers_[i] the smallest.
  std::vector<Value> bucket_lowers_;
  std::vector<Value> bucket_uppers_;
  std::vector<uint64_t> counts_;
  std::vector<double> bucket_ndv_;
  uint64_t total_count_ = 0;
  double distinct_estimate_ = 0.0;
};

}  // namespace dyno

#endif  // DYNO_STATS_HISTOGRAM_H_
