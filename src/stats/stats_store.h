#ifndef DYNO_STATS_STATS_STORE_H_
#define DYNO_STATS_STATS_STORE_H_

#include <map>
#include <optional>
#include <string>

#include "stats/table_stats.h"

namespace dyno {

/// The statistics metastore (paper §4.1). Entries are keyed by an
/// *expression signature* — a deterministic rendering of a leaf expression
/// (table + pushed-down predicates/UDFs) or of an executed sub-plan — so
/// statistics can be reused across pilot runs, across re-optimization
/// steps, and across recurring queries.
class StatsStore {
 public:
  StatsStore() = default;

  /// Inserts or replaces the statistics for `signature`.
  void Put(const std::string& signature, TableStats stats);

  /// Statistics for `signature`, if present.
  std::optional<TableStats> Get(const std::string& signature) const;

  bool Contains(const std::string& signature) const;

  void Erase(const std::string& signature);
  void Clear();

  size_t size() const { return entries_.size(); }

  /// Number of Get calls that found an entry / missed — instrumentation for
  /// the statistics-reuse ablation.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::map<std::string, TableStats> entries_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace dyno

#endif  // DYNO_STATS_STATS_STORE_H_
