#ifndef DYNO_STATS_STATS_STORE_H_
#define DYNO_STATS_STATS_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "stats/table_stats.h"

namespace dyno {

/// The statistics metastore (paper §4.1). Entries are keyed by an
/// *expression signature* — a deterministic rendering of a leaf expression
/// (table + pushed-down predicates/UDFs) or of an executed sub-plan — so
/// statistics can be reused across pilot runs, across re-optimization
/// steps, and across recurring queries.
///
/// One store is shared by every concurrent QueryService session, so all
/// accessors are thread-safe: the entry map is mutex-guarded and the
/// hit/miss instrumentation uses relaxed atomics (Get stays `const`).
///
/// Entries carry the data version (Catalog::TableVersion at observation
/// time) they were computed against. A Get with a version only returns an
/// entry whose version matches; `kAnyVersion` on either side acts as a
/// wildcard, which keeps version-oblivious callers (exact-stats baselines,
/// sub-plan signatures whose inputs are run-local temps) working unchanged.
class StatsStore {
 public:
  /// Wildcard data version: matches any version on lookup, and marks an
  /// entry as version-oblivious when used in Put.
  static constexpr uint64_t kAnyVersion = 0;

  StatsStore() = default;

  /// Inserts or replaces the statistics for `signature` with no data
  /// version attached (matches any versioned or unversioned Get).
  void Put(const std::string& signature, TableStats stats);

  /// Inserts or replaces the statistics for `signature`, recording the data
  /// version of the inputs they were observed on.
  void Put(const std::string& signature, uint64_t version, TableStats stats);

  /// Statistics for `signature`, if present (any version).
  std::optional<TableStats> Get(const std::string& signature) const;

  /// Statistics for `signature` valid at `version`. An entry whose stored
  /// version is neither `version` nor `kAnyVersion` is a *stale miss*: the
  /// data was rewritten since the stats were observed, so they are not
  /// returned.
  std::optional<TableStats> Get(const std::string& signature,
                                uint64_t version) const;

  bool Contains(const std::string& signature) const;

  void Erase(const std::string& signature);
  void Clear();

  size_t size() const;

  /// Number of Get calls that found a valid entry / missed — instrumentation
  /// for the statistics-reuse ablation. `stale_misses` counts the subset of
  /// misses where an entry existed but its data version no longer matched.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t stale_misses() const {
    return stale_misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    TableStats stats;
    uint64_t version = kAnyVersion;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> stale_misses_{0};
};

}  // namespace dyno

#endif  // DYNO_STATS_STATS_STORE_H_
