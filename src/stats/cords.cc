#include "stats/cords.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "common/hash.h"
#include "common/random.h"
#include "json/value.h"
#include "storage/dfs.h"

namespace dyno {

namespace {

/// Hash of one column value within a row (missing/null gets a sentinel).
uint64_t ColumnHash(const Value& row, const std::string& column) {
  const Value* v = row.FindField(column);
  return v == nullptr || v->is_null() ? 0x6e756c6cULL : v->Hash();
}

}  // namespace

Result<std::vector<ColumnPairCorrelation>> DetectCorrelations(
    Catalog* catalog, const std::string& table,
    const std::vector<std::string>& columns, const CordsOptions& options) {
  if (columns.size() < 2) {
    return Status::InvalidArgument("need at least two columns");
  }
  DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file,
                        catalog->OpenTable(table));

  // Reservoir-sample rows.
  std::vector<Value> sample;
  sample.reserve(options.sample_rows);
  Rng rng(options.seed);
  uint64_t seen = 0;
  for (const Split& split : file->splits()) {
    DYNO_ASSIGN_OR_RETURN(std::vector<Value> rows, DecodeSplitRows(split));
    for (Value& row : rows) {
      ++seen;
      if (sample.size() < static_cast<size_t>(options.sample_rows)) {
        sample.push_back(std::move(row));
      } else {
        uint64_t j = rng.Uniform(seen);
        if (j < sample.size()) sample[j] = std::move(row);
      }
    }
  }
  if (sample.empty()) return std::vector<ColumnPairCorrelation>{};

  // Per-column and per-pair distinct counts over the sample.
  std::vector<double> ndv(columns.size());
  std::vector<std::vector<uint64_t>> hashes(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    std::unordered_set<uint64_t> distinct;
    hashes[c].reserve(sample.size());
    for (const Value& row : sample) {
      uint64_t h = ColumnHash(row, columns[c]);
      hashes[c].push_back(h);
      distinct.insert(h);
    }
    ndv[c] = static_cast<double>(distinct.size());
  }

  std::vector<ColumnPairCorrelation> findings;
  double rows = static_cast<double>(sample.size());
  // Chi-squared needs a contingency table; only feasible for categorical
  // columns (CORDS samples and tests low-cardinality pairs the same way).
  constexpr size_t kMaxCategories = 256;
  for (size_t a = 0; a < columns.size(); ++a) {
    for (size_t b = a + 1; b < columns.size(); ++b) {
      std::unordered_set<uint64_t> pair_distinct;
      for (size_t i = 0; i < sample.size(); ++i) {
        pair_distinct.insert(HashCombine(hashes[a][i], Mix64(hashes[b][i])));
      }
      ColumnPairCorrelation f;
      f.column_a = columns[a];
      f.column_b = columns[b];
      f.ndv_a = ndv[a];
      f.ndv_b = ndv[b];
      f.ndv_pair = static_cast<double>(pair_distinct.size());

      if (f.ndv_a <= kMaxCategories && f.ndv_b <= kMaxCategories &&
          f.ndv_a > 1 && f.ndv_b > 1) {
        // Cramér's V from the chi-squared statistic over the contingency
        // table — robust to the "every rare combination occurs at least
        // once" effect that defeats pure pair-NDV comparisons.
        std::map<uint64_t, int> index_a;
        std::map<uint64_t, int> index_b;
        for (size_t i = 0; i < sample.size(); ++i) {
          index_a.emplace(hashes[a][i], static_cast<int>(index_a.size()));
          index_b.emplace(hashes[b][i], static_cast<int>(index_b.size()));
        }
        size_t r = index_a.size();
        size_t c = index_b.size();
        std::vector<double> counts(r * c, 0.0);
        std::vector<double> row_totals(r, 0.0);
        std::vector<double> col_totals(c, 0.0);
        for (size_t i = 0; i < sample.size(); ++i) {
          int ia = index_a[hashes[a][i]];
          int ib = index_b[hashes[b][i]];
          counts[ia * c + ib] += 1.0;
          row_totals[ia] += 1.0;
          col_totals[ib] += 1.0;
        }
        double chi2 = 0.0;
        for (size_t ia = 0; ia < r; ++ia) {
          for (size_t ib = 0; ib < c; ++ib) {
            double expected = row_totals[ia] * col_totals[ib] / rows;
            if (expected <= 0.0) continue;
            double diff = counts[ia * c + ib] - expected;
            chi2 += diff * diff / expected;
          }
        }
        double dof = static_cast<double>(std::min(r, c)) - 1.0;
        f.strength =
            dof <= 0.0 ? 0.0 : std::sqrt(chi2 / (rows * dof));
        f.strength = std::clamp(f.strength, 0.0, 1.0);
      } else {
        // High-cardinality fallback: compare the pair NDV against the
        // independence prediction min(ndv_a·ndv_b, rows).
        double independent = std::min(f.ndv_a * f.ndv_b, rows);
        double correlated = std::max(f.ndv_a, f.ndv_b);
        double span = independent - correlated;
        f.strength = span <= 0.0
                         ? 0.0
                         : std::clamp((independent - f.ndv_pair) / span,
                                      0.0, 1.0);
      }
      f.fd_a_to_b = f.ndv_pair <= f.ndv_a * options.fd_tolerance;
      f.fd_b_to_a = f.ndv_pair <= f.ndv_b * options.fd_tolerance;
      if (f.strength >= options.min_strength) {
        findings.push_back(std::move(f));
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const ColumnPairCorrelation& x, const ColumnPairCorrelation& y) {
              return x.strength > y.strength;
            });
  return findings;
}

}  // namespace dyno
