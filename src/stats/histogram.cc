#include "stats/histogram.h"

#include <algorithm>

namespace dyno {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<Value> values,
                                             int num_buckets) {
  EquiDepthHistogram h;
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](const Value& v) { return v.is_null(); }),
               values.end());
  if (values.empty()) return h;
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  h.total_count_ = values.size();

  size_t n = values.size();
  size_t buckets = std::min<size_t>(num_buckets, n);
  size_t per_bucket = (n + buckets - 1) / buckets;
  for (size_t start = 0; start < n; start += per_bucket) {
    size_t end = std::min(n, start + per_bucket);
    h.bucket_lowers_.push_back(values[start]);
    h.bucket_uppers_.push_back(values[end - 1]);
    h.counts_.push_back(end - start);
    // Distinct values *present* in the bucket (a value spanning the
    // boundary legitimately appears in both buckets' local counts; the
    // global estimate below counts it once).
    double ndv = 1.0;
    for (size_t i = start + 1; i < end; ++i) {
      if (values[i].Compare(values[i - 1]) != 0) ndv += 1.0;
    }
    h.bucket_ndv_.push_back(ndv);
  }
  // Global distinct count: transitions over the full sorted array — exact.
  double distinct = 1.0;
  for (size_t i = 1; i < n; ++i) {
    if (values[i].Compare(values[i - 1]) != 0) distinct += 1.0;
  }
  h.distinct_estimate_ = distinct;
  return h;
}

double EquiDepthHistogram::EstimateSelectivity(Expr::CompareOp op,
                                               const Value& literal) const {
  if (total_count_ == 0) return 1.0;
  double selected = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const Value& lo = bucket_lowers_[b];
    const Value& hi = bucket_uppers_[b];
    double count = static_cast<double>(counts_[b]);
    int cmp_lo = literal.Compare(lo);
    int cmp_hi = literal.Compare(hi);
    switch (op) {
      case Expr::CompareOp::kEq:
        if (cmp_lo >= 0 && cmp_hi <= 0) selected += count / bucket_ndv_[b];
        break;
      case Expr::CompareOp::kNe:
        if (cmp_lo >= 0 && cmp_hi <= 0) {
          selected += count * (1.0 - 1.0 / bucket_ndv_[b]);
        } else {
          selected += count;
        }
        break;
      case Expr::CompareOp::kLt:
      case Expr::CompareOp::kLe: {
        // Fraction of the bucket strictly below (or at) the literal.
        if (cmp_lo <= 0) {
          // literal <= lo: nothing (for <), possibly equal part for <=.
          if (op == Expr::CompareOp::kLe && cmp_lo == 0) {
            selected += count / bucket_ndv_[b];
          }
        } else if (cmp_hi >= 0) {
          selected += count;  // whole bucket below the literal
          if (op == Expr::CompareOp::kLt && cmp_hi == 0) {
            selected -= count / bucket_ndv_[b];
          }
        } else {
          // Literal inside the bucket: interpolate numerically when
          // possible, otherwise assume half.
          double frac = 0.5;
          bool numeric = (lo.type() == Value::Type::kInt ||
                          lo.type() == Value::Type::kDouble) &&
                         (hi.type() == Value::Type::kInt ||
                          hi.type() == Value::Type::kDouble) &&
                         (literal.type() == Value::Type::kInt ||
                          literal.type() == Value::Type::kDouble);
          if (numeric) {
            double span = hi.AsDouble() - lo.AsDouble();
            if (span > 0) frac = (literal.AsDouble() - lo.AsDouble()) / span;
          }
          selected += count * frac;
        }
        break;
      }
      case Expr::CompareOp::kGt:
      case Expr::CompareOp::kGe: {
        if (cmp_hi >= 0) {
          if (op == Expr::CompareOp::kGe && cmp_hi == 0) {
            selected += count / bucket_ndv_[b];
          }
        } else if (cmp_lo <= 0) {
          selected += count;
          if (op == Expr::CompareOp::kGt && cmp_lo == 0) {
            selected -= count / bucket_ndv_[b];
          }
        } else {
          double frac = 0.5;
          bool numeric = (lo.type() == Value::Type::kInt ||
                          lo.type() == Value::Type::kDouble) &&
                         (hi.type() == Value::Type::kInt ||
                          hi.type() == Value::Type::kDouble) &&
                         (literal.type() == Value::Type::kInt ||
                          literal.type() == Value::Type::kDouble);
          if (numeric) {
            double span = hi.AsDouble() - lo.AsDouble();
            if (span > 0) frac = (hi.AsDouble() - literal.AsDouble()) / span;
          }
          selected += count * frac;
        }
        break;
      }
    }
  }
  double sel = selected / static_cast<double>(total_count_);
  return std::clamp(sel, 0.0, 1.0);
}

}  // namespace dyno
