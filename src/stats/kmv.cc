#include "stats/kmv.h"

#include <algorithm>
#include <cstring>

namespace dyno {

KmvSynopsis::KmvSynopsis(int k) : k_(k) { hashes_.reserve(2 * k); }

void KmvSynopsis::Add(const Value& v) { AddHash(v.Hash()); }

void KmvSynopsis::AddHash(uint64_t h) {
  hashes_.push_back(h);
  compacted_ = false;
  if (hashes_.size() >= static_cast<size_t>(2 * k_)) Compact();
}

void KmvSynopsis::Compact() {
  std::sort(hashes_.begin(), hashes_.end());
  hashes_.erase(std::unique(hashes_.begin(), hashes_.end()), hashes_.end());
  if (hashes_.size() > static_cast<size_t>(k_)) {
    hashes_.resize(k_);
  }
  compacted_ = true;
}

void KmvSynopsis::Merge(const KmvSynopsis& other) {
  hashes_.insert(hashes_.end(), other.hashes_.begin(), other.hashes_.end());
  Compact();
}

double KmvSynopsis::Estimate() const {
  // Work on a compacted view without mutating state.
  std::vector<uint64_t> sorted = hashes_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.size() > static_cast<size_t>(k_)) sorted.resize(k_);
  if (sorted.empty()) return 0.0;
  if (sorted.size() < static_cast<size_t>(k_)) {
    // Fewer than k distincts observed: the synopsis is exact.
    return static_cast<double>(sorted.size());
  }
  double hk = static_cast<double>(sorted.back());
  if (hk <= 0.0) return static_cast<double>(sorted.size());
  // M = 2^64; (k-1) * M / h_k.
  constexpr double kDomain = 18446744073709551616.0;  // 2^64
  return (static_cast<double>(k_) - 1.0) * kDomain / hk;
}

std::string KmvSynopsis::Serialize() const {
  std::vector<uint64_t> sorted = hashes_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.size() > static_cast<size_t>(k_)) sorted.resize(k_);
  std::string out;
  out.resize(8 + 8 * sorted.size());
  uint64_t k64 = static_cast<uint64_t>(k_);
  std::memcpy(out.data(), &k64, 8);
  if (!sorted.empty()) {
    std::memcpy(out.data() + 8, sorted.data(), 8 * sorted.size());
  }
  return out;
}

KmvSynopsis KmvSynopsis::Deserialize(const std::string& data) {
  uint64_t k64 = KmvSynopsis::kDefaultK;
  if (data.size() >= 8) std::memcpy(&k64, data.data(), 8);
  KmvSynopsis out(static_cast<int>(k64));
  size_t n = data.size() >= 8 ? (data.size() - 8) / 8 : 0;
  out.hashes_.resize(n);
  if (n > 0) std::memcpy(out.hashes_.data(), data.data() + 8, 8 * n);
  out.compacted_ = true;
  return out;
}

}  // namespace dyno
