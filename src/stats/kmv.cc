#include "stats/kmv.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace dyno {

KmvSynopsis::KmvSynopsis(int k) : k_(k) { hashes_.reserve(2 * k); }

void KmvSynopsis::Add(const Value& v) { AddHash(v.Hash()); }

void KmvSynopsis::AddHash(uint64_t h) {
  hashes_.push_back(h);
  compacted_ = false;
  if (hashes_.size() >= static_cast<size_t>(2 * k_)) Compact();
}

void KmvSynopsis::Compact() const {
  std::sort(hashes_.begin(), hashes_.end());
  hashes_.erase(std::unique(hashes_.begin(), hashes_.end()), hashes_.end());
  if (hashes_.size() > static_cast<size_t>(k_)) {
    hashes_.resize(k_);
  }
  compacted_ = true;
}

void KmvSynopsis::EnsureCompacted() const {
  if (!compacted_) Compact();
}

void KmvSynopsis::Merge(const KmvSynopsis& other) {
  hashes_.insert(hashes_.end(), other.hashes_.begin(), other.hashes_.end());
  compacted_ = false;
  // Same amortization as AddHash: defer the sort until the buffer doubles
  // or a reader needs a compact view.
  if (hashes_.size() >= static_cast<size_t>(2 * k_)) Compact();
}

size_t KmvSynopsis::size() const {
  EnsureCompacted();
  return hashes_.size();
}

double KmvSynopsis::Estimate() const {
  EnsureCompacted();
  if (hashes_.empty()) return 0.0;
  if (hashes_.size() < static_cast<size_t>(k_)) {
    // Fewer than k distincts observed: the synopsis is exact.
    return static_cast<double>(hashes_.size());
  }
  double hk = static_cast<double>(hashes_.back());
  if (hk <= 0.0) return static_cast<double>(hashes_.size());
  // M = 2^64; (k-1) * M / h_k.
  constexpr double kDomain = 18446744073709551616.0;  // 2^64
  return (static_cast<double>(k_) - 1.0) * kDomain / hk;
}

std::string KmvSynopsis::Serialize() const {
  EnsureCompacted();
  std::string out;
  out.resize(8 + 8 * hashes_.size());
  uint64_t k64 = static_cast<uint64_t>(k_);
  std::memcpy(out.data(), &k64, 8);
  if (!hashes_.empty()) {
    std::memcpy(out.data() + 8, hashes_.data(), 8 * hashes_.size());
  }
  return out;
}

Result<KmvSynopsis> KmvSynopsis::Deserialize(const std::string& data) {
  if (data.size() < 8) {
    return Status::InvalidArgument(
        StrFormat("KMV synopsis too short: %zu bytes", data.size()));
  }
  if ((data.size() - 8) % 8 != 0) {
    return Status::InvalidArgument(
        StrFormat("KMV synopsis misaligned: %zu trailing bytes",
                  (data.size() - 8) % 8));
  }
  uint64_t k64 = 0;
  std::memcpy(&k64, data.data(), 8);
  if (k64 == 0 || k64 > static_cast<uint64_t>(kMaxK)) {
    return Status::InvalidArgument(
        StrFormat("KMV synopsis k out of range: %llu",
                  static_cast<unsigned long long>(k64)));
  }
  size_t n = (data.size() - 8) / 8;
  if (n > k64) {
    return Status::InvalidArgument(
        StrFormat("KMV synopsis holds %zu hashes but k is %llu", n,
                  static_cast<unsigned long long>(k64)));
  }
  KmvSynopsis out(static_cast<int>(k64));
  out.hashes_.resize(n);
  if (n > 0) std::memcpy(out.hashes_.data(), data.data() + 8, 8 * n);
  // Serialize() writes a sorted deduped list, but defend against payloads
  // produced elsewhere: recompact rather than trust the wire format.
  out.compacted_ = false;
  out.Compact();
  return out;
}

}  // namespace dyno
