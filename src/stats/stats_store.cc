#include "stats/stats_store.h"

namespace dyno {

void StatsStore::Put(const std::string& signature, TableStats stats) {
  entries_[signature] = std::move(stats);
}

std::optional<TableStats> StatsStore::Get(const std::string& signature) const {
  auto it = entries_.find(signature);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

bool StatsStore::Contains(const std::string& signature) const {
  return entries_.count(signature) > 0;
}

void StatsStore::Erase(const std::string& signature) {
  entries_.erase(signature);
}

void StatsStore::Clear() { entries_.clear(); }

}  // namespace dyno
