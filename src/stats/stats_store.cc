#include "stats/stats_store.h"

#include <utility>

namespace dyno {

void StatsStore::Put(const std::string& signature, TableStats stats) {
  Put(signature, kAnyVersion, std::move(stats));
}

void StatsStore::Put(const std::string& signature, uint64_t version,
                     TableStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[signature] = Entry{std::move(stats), version};
}

std::optional<TableStats> StatsStore::Get(const std::string& signature) const {
  return Get(signature, kAnyVersion);
}

std::optional<TableStats> StatsStore::Get(const std::string& signature,
                                          uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(signature);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const Entry& entry = it->second;
  if (version != kAnyVersion && entry.version != kAnyVersion &&
      entry.version != version) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    stale_misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry.stats;
}

bool StatsStore::Contains(const std::string& signature) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(signature) > 0;
}

void StatsStore::Erase(const std::string& signature) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(signature);
}

void StatsStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t StatsStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace dyno
