#include "lang/plan.h"

#include "common/string_util.h"

namespace dyno {

std::unique_ptr<PlanNode> PlanNode::Leaf(std::string relation_id) {
  auto node = std::make_unique<PlanNode>();
  node->kind = Kind::kLeaf;
  node->relation_id = std::move(relation_id);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Join(
    JoinMethod method, std::unique_ptr<PlanNode> left,
    std::unique_ptr<PlanNode> right,
    std::vector<std::pair<std::string, std::string>> key_pairs) {
  auto node = std::make_unique<PlanNode>();
  node->kind = Kind::kJoin;
  node->method = method;
  node->left = std::move(left);
  node->right = std::move(right);
  node->key_pairs = std::move(key_pairs);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->relation_id = relation_id;
  node->method = method;
  if (left) node->left = left->Clone();
  if (right) node->right = right->Clone();
  node->key_pairs = key_pairs;
  node->post_filter = post_filter;
  node->chain_with_left = chain_with_left;
  node->est_rows = est_rows;
  node->est_bytes = est_bytes;
  node->est_cost = est_cost;
  return node;
}

void PlanNode::CollectLeafIds(std::vector<std::string>* out) const {
  if (IsLeaf()) {
    out->push_back(relation_id);
    return;
  }
  if (left) left->CollectLeafIds(out);
  if (right) right->CollectLeafIds(out);
}

int PlanNode::NumJoins() const {
  if (IsLeaf()) return 0;
  int n = 1;
  if (left) n += left->NumJoins();
  if (right) n += right->NumJoins();
  return n;
}

std::string PlanNode::ToString() const {
  if (IsLeaf()) return relation_id;
  const char* op = method == JoinMethod::kBroadcast ? "*b" : "*r";
  std::string out = "(" + left->ToString() + " " + op + " " +
                    right->ToString() + ")";
  if (post_filter != nullptr) out += "[f]";
  return out;
}

void PlanNode::AppendTree(int depth, std::string* out) const {
  out->append(static_cast<size_t>(2 * depth), ' ');
  if (IsLeaf()) {
    out->append(relation_id);
    out->append(StrFormat("  (rows~%.0f)\n", est_rows));
    return;
  }
  out->append(method == JoinMethod::kBroadcast ? "JOIN[broadcast]"
                                               : "JOIN[repartition]");
  if (chain_with_left) out->append(" (chained)");
  if (post_filter != nullptr) {
    out->append(" filter=" + post_filter->ToString());
  }
  out->append(StrFormat("  (rows~%.0f)\n", est_rows));
  left->AppendTree(depth + 1, out);
  right->AppendTree(depth + 1, out);
}

std::string PlanNode::ToTreeString() const {
  std::string out;
  AppendTree(0, &out);
  return out;
}

namespace {

/// Emits one node (and its subtree) as DOT; returns the node's DOT id.
int AppendDotNode(const PlanNode& node, int* counter, std::string* out) {
  int id = (*counter)++;
  if (node.IsLeaf()) {
    out->append(StrFormat(
        "  n%d [shape=ellipse, label=\"%s\\n~%.0f rows\"];\n", id,
        node.relation_id.c_str(), node.est_rows));
    return id;
  }
  std::string keys;
  for (const auto& [left_col, right_col] : node.key_pairs) {
    if (!keys.empty()) keys += ", ";
    keys += left_col + "=" + right_col;
  }
  out->append(StrFormat(
      "  n%d [shape=box%s, label=\"%s\\n%s\\n~%.0f rows%s\"];\n", id,
      node.method == JoinMethod::kBroadcast ? ", style=rounded" : "",
      node.method == JoinMethod::kBroadcast ? "broadcast join"
                                            : "repartition join",
      keys.c_str(), node.est_rows,
      node.post_filter != nullptr ? "\\n+filter" : ""));
  int left = AppendDotNode(*node.left, counter, out);
  int right = AppendDotNode(*node.right, counter, out);
  out->append(StrFormat("  n%d -> n%d [label=\"probe\"];\n", id, left));
  out->append(StrFormat("  n%d -> n%d [label=\"build\"%s];\n", id, right,
                        node.chain_with_left ? ", style=dashed" : ""));
  return id;
}

}  // namespace

std::string PlanNode::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n  rankdir=BT;\n";
  int counter = 0;
  AppendDotNode(*this, &counter, &out);
  out += "}\n";
  return out;
}

bool PlanNode::StructurallyEquals(const PlanNode& other) const {
  if (kind != other.kind) return false;
  if (IsLeaf()) return relation_id == other.relation_id;
  if (method != other.method) return false;
  if (key_pairs != other.key_pairs) return false;
  if (chain_with_left != other.chain_with_left) return false;
  return left->StructurallyEquals(*other.left) &&
         right->StructurallyEquals(*other.right);
}

}  // namespace dyno
