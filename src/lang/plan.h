#ifndef DYNO_LANG_PLAN_H_
#define DYNO_LANG_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"

namespace dyno {

/// The two physical join implementations of the runtime (paper §2.2.1):
/// repartition (one full map-reduce job) and broadcast (map-only; the build
/// side must fit in task memory).
enum class JoinMethod { kRepartition, kBroadcast };

/// A physical join tree over *relations* identified by string ids — a base
/// leaf expression (identified by its alias) or a materialized intermediate
/// (a virtual relation created by an earlier execution step). Keeping the
/// plan id-based decouples it from storage; the executor resolves ids to
/// DFS files through its bindings map.
struct PlanNode {
  enum class Kind { kLeaf, kJoin };

  Kind kind = Kind::kLeaf;

  /// --- Leaf fields ---
  std::string relation_id;

  /// --- Join fields ---
  JoinMethod method = JoinMethod::kRepartition;
  std::unique_ptr<PlanNode> left;
  /// Build side for broadcast joins.
  std::unique_ptr<PlanNode> right;
  /// Equi-join keys: pairs of (left-side column, right-side column).
  std::vector<std::pair<std::string, std::string>> key_pairs;
  /// Non-local predicates that become applicable at this join's output
  /// (e.g. Q8's UDF over orders⋈customer). Null when none.
  ExprPtr post_filter;

  /// Broadcast chaining (paper §5.2): when true, this broadcast join runs
  /// in the same map-only job as its left child's broadcast join, probing a
  /// stream through several hash tables without materializing between them.
  bool chain_with_left = false;

  /// --- Optimizer estimates (populated during plan extraction) ---
  double est_rows = 0.0;
  double est_bytes = 0.0;
  double est_cost = 0.0;

  static std::unique_ptr<PlanNode> Leaf(std::string relation_id);
  static std::unique_ptr<PlanNode> Join(
      JoinMethod method, std::unique_ptr<PlanNode> left,
      std::unique_ptr<PlanNode> right,
      std::vector<std::pair<std::string, std::string>> key_pairs);

  std::unique_ptr<PlanNode> Clone() const;

  bool IsLeaf() const { return kind == Kind::kLeaf; }

  /// Appends the relation ids of every leaf under this node (left-to-right).
  void CollectLeafIds(std::vector<std::string>* out) const;

  /// Number of join nodes in this subtree — the paper's *uncertainty*
  /// metric for execution strategies (§5.3).
  int NumJoins() const;

  /// Single-line rendering, e.g. "(l ⋈r (p ⋈b s))".
  std::string ToString() const;

  /// Multi-line indented rendering for plan-evolution figures.
  std::string ToTreeString() const;

  /// Graphviz DOT rendering of the plan tree (joins as boxes labelled with
  /// method/keys/estimates, leaves as ellipses). `graph_name` must be a
  /// valid DOT identifier.
  std::string ToDot(const std::string& graph_name = "plan") const;

  /// Structural equality (method, shape, leaf ids, keys); estimates and
  /// filters are ignored. Used to detect plan changes at re-optimization.
  bool StructurallyEquals(const PlanNode& other) const;

 private:
  void AppendTree(int depth, std::string* out) const;
};

}  // namespace dyno

#endif  // DYNO_LANG_PLAN_H_
