#ifndef DYNO_LANG_PARSER_H_
#define DYNO_LANG_PARSER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "lang/query.h"

namespace dyno {

/// Builds a UDF expression given the column references its SQL call named
/// (e.g. `checkid(rv.rv_id, t.t_id)` passes ["rv_id", "t_id"]).
using UdfFactory = std::function<ExprPtr(const std::vector<std::string>&)>;

/// Name → factory for UDFs callable from SQL (case-insensitive names).
using UdfRegistry = std::map<std::string, UdfFactory>;

/// Parses a SQL-92-flavoured query into the engine's Query IR:
///
///   SELECT <cols | aggregates> FROM t1 a, t2 b, ...
///   WHERE a.x = b.y AND a.z = 42 AND myudf(a.x) ...
///   [GROUP BY col, ...] [ORDER BY col [DESC], ...] [LIMIT n]
///
/// Conventions (matching the engine's data model):
///  * WHERE references must be alias-qualified (`a.col`); column names are
///    globally unique across the query's tables, so SELECT/GROUP BY/ORDER
///    BY use bare column names.
///  * `a.col = b.col` between two aliases is an equi-join edge; any other
///    predicate attaches to the aliases it references (one alias = local,
///    pushed into the scan; several = applied on the covering join result).
///  * Nested paths use bracket/dot syntax: `rs.rs_addr[0].zip = 94301`.
///  * UDF calls (`sentanalysis(rv.rv_id)`) resolve through the registry;
///    aggregates in SELECT (`COUNT(*) AS n`, `SUM(col) AS s`, MIN/MAX/AVG)
///    require GROUP BY.
///
/// Returns InvalidArgument with a position-annotated message on bad input.
Result<Query> ParseQuery(const std::string& sql,
                         const UdfRegistry& udfs = {});

}  // namespace dyno

#endif  // DYNO_LANG_PARSER_H_
