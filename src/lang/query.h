#ifndef DYNO_LANG_QUERY_H_
#define DYNO_LANG_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"

namespace dyno {

/// A base-relation occurrence in a query. Column names are assumed unique
/// across the tables of a query (TPC-H's `o_`/`l_`/`c_` prefixes), so joined
/// rows are flat field merges and expressions reference columns directly.
struct TableRef {
  std::string table;  ///< Catalog table name.
  std::string alias;  ///< Unique within the query.
};

/// A filter (possibly containing UDFs). `aliases` lists the table aliases
/// the expression reads: exactly one makes it a *local* predicate that the
/// rewriter pushes onto the scan; two or more make it non-local — it is
/// applied on the first join result covering all of its aliases (the Q8'
/// UDF on orders⋈customer).
struct Predicate {
  ExprPtr expr;
  std::vector<std::string> aliases;

  bool IsLocal() const { return aliases.size() == 1; }
};

/// An equi-join edge `left_alias.left_column = right_alias.right_column`.
struct JoinEdge {
  std::string left_alias;
  std::string left_column;
  std::string right_alias;
  std::string right_column;
};

/// An n-way join query block: scans + filters + equi-joins, the unit the
/// cost-based optimizer and DYNOPT operate on. Blocks are separated from
/// each other by aggregation/ordering operators (paper §3).
struct JoinBlock {
  std::vector<TableRef> tables;  ///< In FROM-clause order.
  std::vector<JoinEdge> edges;
  std::vector<Predicate> predicates;
  /// Output projection; empty keeps all columns.
  std::vector<std::string> output_columns;
};

/// Post-join aggregate function.
struct Aggregate {
  enum class Kind { kCount, kSum, kMin, kMax, kAvg };
  Kind kind = Kind::kCount;
  std::string input_column;  ///< Ignored for kCount.
  std::string output_name;
};

/// GROUP BY over the join-block output.
struct GroupBySpec {
  std::vector<std::string> keys;
  std::vector<Aggregate> aggregates;
};

/// ORDER BY over the final output. `descending` per key.
struct OrderBySpec {
  std::vector<std::pair<std::string, bool>> keys;
  int64_t limit = -1;  ///< -1 = no limit.
};

/// A full query: one join block plus optional grouping/ordering, the shape
/// of every workload in the paper's evaluation. (Grouping and ordering are
/// inserted by the compiler after the join block and are not enumerated by
/// the optimizer, §5.1.)
struct Query {
  JoinBlock join_block;
  std::optional<GroupBySpec> group_by;
  std::optional<OrderBySpec> order_by;
};

/// One scan + its pushed-down local predicates — the unit of pilot runs.
struct LeafExpr {
  std::string alias;
  std::string table;
  /// Conjunction of local predicates (null = none).
  ExprPtr filter;
  /// Columns of this leaf that appear in join conditions (the attributes
  /// statistics are collected for).
  std::vector<std::string> join_columns;
};

/// Validates structural invariants: unique aliases, edges referencing known
/// aliases, predicates referencing known aliases.
Status ValidateJoinBlock(const JoinBlock& block);

/// Performs predicate push-down: returns the leaf expression of each table
/// (its scan plus the conjunction of its local predicates) and, via
/// `non_local`, the predicates that could not be pushed.
std::vector<LeafExpr> ExtractLeafExprs(const JoinBlock& block,
                                       std::vector<Predicate>* non_local);

/// Deterministic signature of a leaf expression, the StatsStore key for
/// statistics reuse (§4.1): "table|<filter rendering>".
std::string LeafSignature(const LeafExpr& leaf);

/// True if the join graph is connected (no cartesian products needed).
bool IsJoinGraphConnected(const JoinBlock& block);

}  // namespace dyno

#endif  // DYNO_LANG_QUERY_H_
