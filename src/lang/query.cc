#include "lang/query.h"

#include <algorithm>
#include <map>
#include <set>

namespace dyno {

Status ValidateJoinBlock(const JoinBlock& block) {
  if (block.tables.empty()) {
    return Status::InvalidArgument("join block has no tables");
  }
  std::set<std::string> aliases;
  for (const TableRef& ref : block.tables) {
    if (ref.alias.empty()) {
      return Status::InvalidArgument("empty alias for table " + ref.table);
    }
    if (!aliases.insert(ref.alias).second) {
      return Status::InvalidArgument("duplicate alias: " + ref.alias);
    }
  }
  for (const JoinEdge& edge : block.edges) {
    if (!aliases.count(edge.left_alias)) {
      return Status::InvalidArgument("unknown alias in join edge: " +
                                     edge.left_alias);
    }
    if (!aliases.count(edge.right_alias)) {
      return Status::InvalidArgument("unknown alias in join edge: " +
                                     edge.right_alias);
    }
    if (edge.left_alias == edge.right_alias) {
      return Status::InvalidArgument("self-join edge on alias: " +
                                     edge.left_alias);
    }
  }
  for (const Predicate& pred : block.predicates) {
    if (pred.expr == nullptr) {
      return Status::InvalidArgument("null predicate expression");
    }
    if (pred.aliases.empty()) {
      return Status::InvalidArgument("predicate with no aliases: " +
                                     pred.expr->ToString());
    }
    for (const std::string& alias : pred.aliases) {
      if (!aliases.count(alias)) {
        return Status::InvalidArgument("unknown alias in predicate: " +
                                       alias);
      }
    }
  }
  return Status::OK();
}

std::vector<LeafExpr> ExtractLeafExprs(const JoinBlock& block,
                                       std::vector<Predicate>* non_local) {
  // Gather local predicates per alias, preserving query order (the paper
  // does not reorder predicates within a leaf, §4.4).
  std::map<std::string, std::vector<ExprPtr>> local;
  for (const Predicate& pred : block.predicates) {
    if (pred.IsLocal()) {
      local[pred.aliases[0]].push_back(pred.expr);
    } else if (non_local != nullptr) {
      non_local->push_back(pred);
    }
  }
  // Join columns per alias.
  std::map<std::string, std::set<std::string>> join_cols;
  for (const JoinEdge& edge : block.edges) {
    join_cols[edge.left_alias].insert(edge.left_column);
    join_cols[edge.right_alias].insert(edge.right_column);
  }

  std::vector<LeafExpr> leaves;
  leaves.reserve(block.tables.size());
  for (const TableRef& ref : block.tables) {
    LeafExpr leaf;
    leaf.alias = ref.alias;
    leaf.table = ref.table;
    auto it = local.find(ref.alias);
    if (it != local.end()) leaf.filter = Conjoin(it->second);
    auto jc = join_cols.find(ref.alias);
    if (jc != join_cols.end()) {
      leaf.join_columns.assign(jc->second.begin(), jc->second.end());
    }
    leaves.push_back(std::move(leaf));
  }
  return leaves;
}

std::string LeafSignature(const LeafExpr& leaf) {
  std::string sig = leaf.table;
  sig += "|";
  if (leaf.filter != nullptr) sig += leaf.filter->ToString();
  return sig;
}

bool IsJoinGraphConnected(const JoinBlock& block) {
  if (block.tables.size() <= 1) return true;
  std::map<std::string, int> index;
  for (size_t i = 0; i < block.tables.size(); ++i) {
    index[block.tables[i].alias] = static_cast<int>(i);
  }
  // Union-find over aliases.
  std::vector<int> parent(block.tables.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const JoinEdge& edge : block.edges) {
    int a = find(index[edge.left_alias]);
    int b = find(index[edge.right_alias]);
    if (a != b) parent[a] = b;
  }
  int root = find(0);
  for (size_t i = 1; i < parent.size(); ++i) {
    if (find(static_cast<int>(i)) != root) return false;
  }
  return true;
}

}  // namespace dyno
