#include "lang/parser.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/string_util.h"

namespace dyno {

namespace {

// --- Tokenizer ---

enum class TokenKind { kIdent, kInt, kDouble, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier / symbol / string body
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  // byte offset, for error messages
};

std::string ToUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '@') {
      size_t start = i;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_' || sql[i] == '@' || sql[i] == ':')) {
        ++i;
      }
      token.kind = TokenKind::kIdent;
      token.text = sql.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.')) {
        if (sql[i] == '.') {
          // A dot followed by a digit is a decimal point; otherwise it is
          // punctuation (e.g. nothing like `1.x` is valid anyway).
          if (i + 1 < sql.size() &&
              std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
            is_double = true;
          } else {
            break;
          }
        }
        ++i;
      }
      std::string text = sql.substr(start, i - start);
      if (is_double) {
        token.kind = TokenKind::kDouble;
        token.double_value = std::stod(text);
      } else {
        token.kind = TokenKind::kInt;
        token.int_value = std::stoll(text);
      }
    } else if (c == '\'') {
      size_t start = ++i;
      while (i < sql.size() && sql[i] != '\'') ++i;
      if (i >= sql.size()) {
        return Status::InvalidArgument(
            StrFormat("unterminated string at offset %zu", start - 1));
      }
      token.kind = TokenKind::kString;
      token.text = sql.substr(start, i - start);
      ++i;  // closing quote
    } else {
      // Multi-char operators first.
      auto two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        token.kind = TokenKind::kSymbol;
        token.text = two;
        i += 2;
      } else if (std::string("=<>,.()[]*").find(c) != std::string::npos) {
        token.kind = TokenKind::kSymbol;
        token.text = std::string(1, c);
        ++i;
      } else {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = sql.size();
  tokens.push_back(end);
  return tokens;
}

// --- Parser ---

/// A parsed alias-qualified reference, e.g. `rs.rs_addr[0].zip`.
struct ColumnRef {
  std::string alias;
  std::string column;            ///< First path segment (the column).
  std::vector<PathStep> steps;   ///< Full path (column + nested steps).

  bool IsSimple() const { return steps.size() == 1; }
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const UdfRegistry& udfs)
      : tokens_(std::move(tokens)), udfs_(udfs) {}

  Result<Query> Parse() {
    DYNO_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    DYNO_RETURN_IF_ERROR(ParseSelectList());
    DYNO_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DYNO_RETURN_IF_ERROR(ParseTableList());
    if (AcceptKeyword("WHERE")) {
      DYNO_RETURN_IF_ERROR(ParseWhere());
    }
    if (AcceptKeyword("GROUP")) {
      DYNO_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DYNO_RETURN_IF_ERROR(ParseGroupBy());
    }
    if (AcceptKeyword("ORDER")) {
      DYNO_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DYNO_RETURN_IF_ERROR(ParseOrderBy());
    }
    if (AcceptKeyword("LIMIT")) {
      if (Current().kind != TokenKind::kInt) {
        return Error("expected integer after LIMIT");
      }
      limit_ = Current().int_value;
      Advance();
    }
    if (Current().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return Finalize();
  }

 private:
  const Token& Current() const { return tokens_[index_]; }
  const Token& Peek() const {
    return tokens_[std::min(index_ + 1, tokens_.size() - 1)];
  }
  void Advance() { ++index_; }

  bool AcceptSymbol(const std::string& symbol) {
    if (Current().kind == TokenKind::kSymbol && Current().text == symbol) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptKeyword(const std::string& keyword) {
    if (Current().kind == TokenKind::kIdent &&
        ToUpper(Current().text) == keyword) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!AcceptKeyword(keyword)) {
      return Error("expected " + keyword).status();
    }
    return Status::OK();
  }

  Result<Query> Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu (near \"%s\")", message.c_str(),
                  Current().position, Current().text.c_str()));
  }

  static bool IsAggregateName(const std::string& upper) {
    return upper == "COUNT" || upper == "SUM" || upper == "MIN" ||
           upper == "MAX" || upper == "AVG";
  }

  Status ParseSelectList() {
    if (AcceptSymbol("*")) return Status::OK();  // empty = all columns
    for (;;) {
      if (Current().kind != TokenKind::kIdent) {
        return Error("expected column or aggregate in SELECT").status();
      }
      std::string name = Current().text;
      std::string upper = ToUpper(name);
      if (IsAggregateName(upper) && Peek().kind == TokenKind::kSymbol &&
          Peek().text == "(") {
        Advance();  // aggregate name
        Advance();  // '('
        Aggregate aggregate;
        if (upper == "COUNT") {
          aggregate.kind = Aggregate::Kind::kCount;
          if (!AcceptSymbol("*")) {
            if (Current().kind != TokenKind::kIdent) {
              return Error("expected * or column in COUNT()").status();
            }
            aggregate.input_column = Current().text;
            Advance();
          }
        } else {
          aggregate.kind = upper == "SUM"   ? Aggregate::Kind::kSum
                           : upper == "MIN" ? Aggregate::Kind::kMin
                           : upper == "MAX" ? Aggregate::Kind::kMax
                                            : Aggregate::Kind::kAvg;
          if (Current().kind != TokenKind::kIdent) {
            return Error("expected column in aggregate").status();
          }
          aggregate.input_column = Current().text;
          Advance();
        }
        if (!AcceptSymbol(")")) return Error("expected )").status();
        DYNO_RETURN_IF_ERROR(ExpectKeyword("AS"));
        if (Current().kind != TokenKind::kIdent) {
          return Error("expected name after AS").status();
        }
        aggregate.output_name = Current().text;
        Advance();
        aggregates_.push_back(std::move(aggregate));
      } else {
        select_columns_.push_back(name);
        Advance();
      }
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  Status ParseTableList() {
    for (;;) {
      if (Current().kind != TokenKind::kIdent) {
        return Error("expected table name").status();
      }
      TableRef ref;
      ref.table = Current().text;
      Advance();
      // Optional alias: a bare identifier that is not a clause keyword.
      if (Current().kind == TokenKind::kIdent) {
        std::string upper = ToUpper(Current().text);
        if (upper != "WHERE" && upper != "GROUP" && upper != "ORDER" &&
            upper != "LIMIT") {
          ref.alias = Current().text;
          Advance();
        }
      }
      if (ref.alias.empty()) ref.alias = ref.table;
      aliases_.insert(ref.alias);
      tables_.push_back(std::move(ref));
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  Result<ColumnRef> ParseColumnRef() {
    if (Current().kind != TokenKind::kIdent) {
      return Status::InvalidArgument(
          StrFormat("expected alias.column at offset %zu",
                    Current().position));
    }
    ColumnRef ref;
    ref.alias = Current().text;
    Advance();
    if (!AcceptSymbol(".")) {
      return Status::InvalidArgument(
          StrFormat("WHERE references must be alias-qualified (offset %zu)",
                    Current().position));
    }
    if (!aliases_.count(ref.alias)) {
      return Status::InvalidArgument("unknown alias: " + ref.alias);
    }
    if (Current().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected column after '.'");
    }
    ref.column = Current().text;
    ref.steps.push_back(PathStep::Field(ref.column));
    Advance();
    // Nested path: [index] and .field steps.
    for (;;) {
      if (AcceptSymbol("[")) {
        if (Current().kind != TokenKind::kInt) {
          return Status::InvalidArgument("expected index in []");
        }
        ref.steps.push_back(
            PathStep::Index(static_cast<size_t>(Current().int_value)));
        Advance();
        if (!AcceptSymbol("]")) {
          return Status::InvalidArgument("expected ]");
        }
      } else if (Current().kind == TokenKind::kSymbol &&
                 Current().text == "." &&
                 Peek().kind == TokenKind::kIdent) {
        Advance();
        ref.steps.push_back(PathStep::Field(Current().text));
        Advance();
      } else {
        break;
      }
    }
    return ref;
  }

  Result<ExprPtr> ParseLiteral() {
    const Token& token = Current();
    switch (token.kind) {
      case TokenKind::kInt:
        Advance();
        return LitInt(token.int_value);
      case TokenKind::kDouble:
        Advance();
        return LitDouble(token.double_value);
      case TokenKind::kString:
        Advance();
        return LitString(token.text);
      default:
        return Status::InvalidArgument(
            StrFormat("expected literal at offset %zu", token.position));
    }
  }

  Status ParseWhere() {
    do {
      DYNO_RETURN_IF_ERROR(ParseConjunct());
    } while (AcceptKeyword("AND"));
    return Status::OK();
  }

  Status ParseConjunct() {
    // UDF call: ident '(' ... — an identifier that is not an alias ref.
    if (Current().kind == TokenKind::kIdent &&
        Peek().kind == TokenKind::kSymbol && Peek().text == "(") {
      return ParseUdfCall();
    }
    DYNO_ASSIGN_OR_RETURN(ColumnRef left, ParseColumnRef());
    if (Current().kind != TokenKind::kSymbol) {
      return Error("expected comparison operator").status();
    }
    std::string op_text = Current().text;
    Expr::CompareOp op;
    if (op_text == "=") {
      op = Expr::CompareOp::kEq;
    } else if (op_text == "<>" || op_text == "!=") {
      op = Expr::CompareOp::kNe;
    } else if (op_text == "<") {
      op = Expr::CompareOp::kLt;
    } else if (op_text == "<=") {
      op = Expr::CompareOp::kLe;
    } else if (op_text == ">") {
      op = Expr::CompareOp::kGt;
    } else if (op_text == ">=") {
      op = Expr::CompareOp::kGe;
    } else {
      return Error("unknown operator " + op_text).status();
    }
    Advance();

    if (Current().kind == TokenKind::kIdent) {
      // ref op ref.
      DYNO_ASSIGN_OR_RETURN(ColumnRef right, ParseColumnRef());
      if (left.alias != right.alias && op == Expr::CompareOp::kEq &&
          left.IsSimple() && right.IsSimple()) {
        edges_.push_back(
            {left.alias, left.column, right.alias, right.column});
        return Status::OK();
      }
      Predicate pred;
      pred.expr = Compare(op, Path(left.steps), Path(right.steps));
      std::set<std::string> alias_set = {left.alias, right.alias};
      pred.aliases.assign(alias_set.begin(), alias_set.end());
      predicates_.push_back(std::move(pred));
      return Status::OK();
    }
    DYNO_ASSIGN_OR_RETURN(ExprPtr literal, ParseLiteral());
    Predicate pred;
    pred.expr = Compare(op, Path(left.steps), std::move(literal));
    pred.aliases = {left.alias};
    predicates_.push_back(std::move(pred));
    return Status::OK();
  }

  Status ParseUdfCall() {
    std::string name = Current().text;
    auto it = udfs_.find(ToUpper(name));
    if (it == udfs_.end()) it = udfs_.find(name);
    if (it == udfs_.end()) {
      return Error("unknown UDF: " + name).status();
    }
    Advance();  // name
    Advance();  // '('
    std::vector<std::string> columns;
    std::set<std::string> alias_set;
    for (;;) {
      DYNO_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      columns.push_back(ref.column);
      alias_set.insert(ref.alias);
      if (!AcceptSymbol(",")) break;
    }
    if (!AcceptSymbol(")")) return Error("expected )").status();
    ExprPtr expr = it->second(columns);
    if (expr == nullptr) {
      return Error("UDF factory returned null: " + name).status();
    }
    Predicate pred;
    pred.expr = std::move(expr);
    pred.aliases.assign(alias_set.begin(), alias_set.end());
    predicates_.push_back(std::move(pred));
    return Status::OK();
  }

  Status ParseGroupBy() {
    for (;;) {
      if (Current().kind != TokenKind::kIdent) {
        return Error("expected column in GROUP BY").status();
      }
      group_keys_.push_back(Current().text);
      Advance();
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  Status ParseOrderBy() {
    for (;;) {
      if (Current().kind != TokenKind::kIdent) {
        return Error("expected column in ORDER BY").status();
      }
      std::string column = Current().text;
      Advance();
      bool descending = false;
      if (AcceptKeyword("DESC")) {
        descending = true;
      } else {
        AcceptKeyword("ASC");
      }
      order_keys_.emplace_back(std::move(column), descending);
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  Result<Query> Finalize() {
    if (!aggregates_.empty() && group_keys_.empty()) {
      return Status::InvalidArgument("aggregates require GROUP BY");
    }
    Query query;
    query.join_block.tables = std::move(tables_);
    query.join_block.edges = std::move(edges_);
    query.join_block.predicates = std::move(predicates_);
    if (!group_keys_.empty()) {
      // Project the join output down to what grouping consumes.
      std::set<std::string> needed(group_keys_.begin(), group_keys_.end());
      for (const Aggregate& aggregate : aggregates_) {
        if (!aggregate.input_column.empty()) {
          needed.insert(aggregate.input_column);
        }
      }
      query.join_block.output_columns.assign(needed.begin(), needed.end());
      GroupBySpec group_by;
      group_by.keys = group_keys_;
      group_by.aggregates = aggregates_;
      query.group_by = std::move(group_by);
    } else {
      query.join_block.output_columns = select_columns_;
    }
    if (!order_keys_.empty() || limit_ >= 0) {
      OrderBySpec order_by;
      order_by.keys = order_keys_;
      order_by.limit = limit_;
      query.order_by = std::move(order_by);
    }
    DYNO_RETURN_IF_ERROR(ValidateJoinBlock(query.join_block));
    return query;
  }

  std::vector<Token> tokens_;
  const UdfRegistry& udfs_;
  size_t index_ = 0;

  std::vector<std::string> select_columns_;
  std::vector<Aggregate> aggregates_;
  std::vector<TableRef> tables_;
  std::set<std::string> aliases_;
  std::vector<JoinEdge> edges_;
  std::vector<Predicate> predicates_;
  std::vector<std::string> group_keys_;
  std::vector<std::pair<std::string, bool>> order_keys_;
  int64_t limit_ = -1;
};

}  // namespace

Result<Query> ParseQuery(const std::string& sql, const UdfRegistry& udfs) {
  DYNO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), udfs);
  return parser.Parse();
}

}  // namespace dyno
