#include "exec/broadcast.h"

#include <utility>

#include "exec/row_ops.h"

namespace dyno {

Result<std::shared_ptr<BroadcastTable>> BuildBroadcastTable(
    const DfsFile& file, const ExprPtr& filter,
    const std::vector<std::string>& key_columns, uint64_t* splits_pruned) {
  auto table = std::make_shared<BroadcastTable>();
  std::vector<size_t> split_indexes;
  if (splits_pruned != nullptr) {
    PruneResult pruned = PruneSplitIndexes(file, filter);
    *splits_pruned = pruned.pruned;
    split_indexes = std::move(pruned.kept);
  } else {
    split_indexes.reserve(file.splits().size());
    for (size_t i = 0; i < file.splits().size(); ++i) {
      split_indexes.push_back(i);
    }
  }
  for (size_t index : split_indexes) {
    const Split& split = file.splits()[index];
    table->load_bytes += split.num_bytes();
    DYNO_ASSIGN_OR_RETURN(std::vector<Value> rows, DecodeSplitRows(split));
    DYNO_ASSIGN_OR_RETURN(std::vector<uint8_t> keep,
                          FilterKeepMask(filter, rows));
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!keep[i]) continue;
      Value& row = rows[i];
      table->built_bytes += row.EncodedSize();
      ++table->num_rows;
      table->rows_by_key[EncodeJoinKey(row, key_columns)].push_back(
          std::move(row));
    }
  }
  return table;
}

}  // namespace dyno
