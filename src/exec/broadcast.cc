#include "exec/broadcast.h"

#include "exec/row_ops.h"

namespace dyno {

Result<std::shared_ptr<BroadcastTable>> BuildBroadcastTable(
    const DfsFile& file, const ExprPtr& filter,
    const std::vector<std::string>& key_columns) {
  auto table = std::make_shared<BroadcastTable>();
  table->load_bytes = file.num_bytes();
  for (const Split& split : file.splits()) {
    SplitReader reader(&split);
    while (!reader.AtEnd()) {
      DYNO_ASSIGN_OR_RETURN(Value row, reader.Next());
      if (filter != nullptr) {
        DYNO_ASSIGN_OR_RETURN(Value keep, filter->Eval(row));
        if (keep.type() != Value::Type::kBool || !keep.bool_value()) continue;
      }
      table->built_bytes += row.EncodedSize();
      ++table->num_rows;
      table->rows_by_key[EncodeJoinKey(row, key_columns)].push_back(
          std::move(row));
    }
  }
  return table;
}

}  // namespace dyno
