#include "exec/plan_executor.h"

#include <cstdlib>
#include <cstdio>
#include <atomic>
#include <cmath>
#include <utility>

#include "columnar/knobs.h"
#include "common/string_util.h"
#include "exec/broadcast.h"
#include "exec/row_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dyno {

namespace {

std::vector<std::string> LeftKeyColumns(const PlanNode& node) {
  std::vector<std::string> cols;
  cols.reserve(node.key_pairs.size());
  for (const auto& [left_col, right_col] : node.key_pairs) {
    cols.push_back(left_col);
  }
  return cols;
}

std::vector<std::string> RightKeyColumns(const PlanNode& node) {
  std::vector<std::string> cols;
  cols.reserve(node.key_pairs.size());
  for (const auto& [left_col, right_col] : node.key_pairs) {
    cols.push_back(right_col);
  }
  return cols;
}

/// Records one pruned leaf scan: the scan.splits_pruned counter plus a
/// split_pruned instant event per skipped file (both absent when zone maps
/// are off, keeping golden traces and metric dumps byte-stable).
void RecordSplitsPruned(MapReduceEngine* engine, const std::string& path,
                        uint64_t pruned, uint64_t total) {
  if (pruned == 0) return;
  if (engine->metrics() != nullptr) {
    engine->metrics()->GetCounter("scan.splits_pruned")->Add(pruned);
  }
  if (engine->trace() != nullptr) {
    engine->trace()->Record(
        obs::TraceEvent(engine->now(), -1, obs::TraceLane::kEngine, "scan",
                        "split_pruned")
            .Arg("file", path)
            .ArgInt("pruned", static_cast<int64_t>(pruned))
            .ArgInt("total", static_cast<int64_t>(total)));
  }
}

/// Configures one leaf-scan MapInput from its binding: when DYNO_COLUMNAR=1
/// the scan filter is pushed into the engine (batch evaluation on columnar
/// splits), otherwise it stays inside the map closure exactly as before.
/// When DYNO_ZONE_MAPS=1 the filter additionally prunes whole splits via
/// their zone maps before the job is submitted. Returns the filter the map
/// closure must still apply (null when pushed down).
ExprPtr ConfigureLeafScan(MapReduceEngine* engine,
                          const RelationBinding& binding, MapInput* input) {
  input->file = binding.file;
  ExprPtr closure_filter = binding.scan_filter;
  if (columnar::ColumnarEnabled() && binding.scan_filter != nullptr) {
    input->scan_filter = binding.scan_filter;
    input->scan_filter_cpu = binding.scan_cpu_per_record;
    input->cpu_per_record = 1.0;
    closure_filter = nullptr;
  } else {
    input->cpu_per_record = 1.0 + binding.scan_cpu_per_record;
  }
  if (columnar::ZoneMapsEnabled() && binding.scan_filter != nullptr) {
    PruneResult pruned = PruneSplitIndexes(*binding.file, binding.scan_filter);
    if (pruned.pruned > 0) {
      input->split_indexes.assign(pruned.kept.begin(), pruned.kept.end());
      input->split_indexes_exact = true;
      RecordSplitsPruned(engine, binding.file->path(), pruned.pruned,
                         binding.file->splits().size());
    }
  }
  return closure_filter;
}

// Globally unique unit uids, so outputs of units from different
// decompositions never collide in one executor's bookkeeping.
std::atomic<int64_t> g_unit_uid{0};

/// Recursively walks a plan, emitting JobUnits bottom-up.
Result<JobInput> DecomposeNode(const PlanNode& node,
                               std::vector<JobUnit>* units) {
  if (node.IsLeaf()) {
    return JobInput{node.relation_id, -1};
  }
  if (node.left == nullptr || node.right == nullptr) {
    return Status::InvalidArgument("join node missing a child");
  }
  // Collect the chain: a node with chain_with_left runs in the same map
  // job as its left child, so keep descending left while the flag is set
  // (all members must be broadcast joins).
  std::vector<const PlanNode*> chain_top_down;
  const PlanNode* cur = &node;
  chain_top_down.push_back(cur);
  while (cur->chain_with_left) {
    if (cur->method != JoinMethod::kBroadcast) {
      return Status::InvalidArgument("chain_with_left on a repartition join");
    }
    if (cur->left->IsLeaf()) {
      return Status::InvalidArgument("chain_with_left above a leaf");
    }
    cur = cur->left.get();
    if (cur->method != JoinMethod::kBroadcast) {
      return Status::InvalidArgument("chained node is not a broadcast join");
    }
    chain_top_down.push_back(cur);
  }
  // Bottom-up order.
  std::vector<const PlanNode*> nodes(chain_top_down.rbegin(),
                                     chain_top_down.rend());
  const PlanNode* bottom = nodes.front();

  JobUnit unit;
  unit.nodes = nodes;
  unit.map_only = node.method == JoinMethod::kBroadcast;

  if (node.method == JoinMethod::kRepartition) {
    DYNO_ASSIGN_OR_RETURN(JobInput left, DecomposeNode(*node.left, units));
    DYNO_ASSIGN_OR_RETURN(JobInput right, DecomposeNode(*node.right, units));
    unit.inputs = {left, right};
  } else {
    // Probe side of the bottom node (ignoring the chain flag on bottom
    // itself — that was already consumed).
    DYNO_ASSIGN_OR_RETURN(JobInput probe,
                          DecomposeNode(*bottom->left, units));
    unit.inputs.push_back(probe);
    for (const PlanNode* n : nodes) {
      DYNO_ASSIGN_OR_RETURN(JobInput build, DecomposeNode(*n->right, units));
      unit.inputs.push_back(build);
    }
  }

  // Per-job cost: cumulative cost at the root minus the cumulative cost of
  // input jobs.
  double child_cost = 0.0;
  for (const JobInput& in : unit.inputs) {
    if (in.IsLeaf()) continue;
    for (const JobUnit& child : *units) {
      if (child.uid == in.unit_uid) {
        child_cost += child.nodes.back()->est_cost;
        break;
      }
    }
  }
  unit.est_cost = node.est_cost - child_cost;
  unit.est_rows = node.est_rows;
  unit.est_bytes = node.est_bytes;
  unit.uncertainty = static_cast<int>(unit.nodes.size());
  unit.index = static_cast<int>(units->size());
  unit.uid = ++g_unit_uid;
  units->push_back(std::move(unit));
  return JobInput{"", units->back().uid};
}

}  // namespace

namespace {
// Process-wide executor instance counter, giving every executor a unique
// DFS namespace for its intermediate results.
std::atomic<int> g_executor_instances{0};
}  // namespace

PlanExecutor::PlanExecutor(MapReduceEngine* engine, ExecOptions options)
    : engine_(engine),
      options_(std::move(options)),
      instance_id_(++g_executor_instances) {}

void PlanExecutor::Bind(const std::string& id, RelationBinding binding) {
  bindings_[id] = std::move(binding);
}

bool PlanExecutor::IsBound(const std::string& id) const {
  return bindings_.count(id) > 0;
}

Result<RelationBinding> PlanExecutor::GetBinding(const std::string& id) const {
  auto it = bindings_.find(id);
  if (it == bindings_.end()) {
    return Status::NotFound("unbound relation: " + id);
  }
  return it->second;
}

std::string PlanExecutor::CanonicalSignature(const PlanNode& node) const {
  if (node.IsLeaf()) {
    auto it = bindings_.find(node.relation_id);
    if (it != bindings_.end() && !it->second.signature.empty()) {
      return "[" + it->second.signature + "]";
    }
    // Unbound (or signature-less) leaves fall back to the run-local id;
    // such signatures are still usable within the run, just not shareable.
    return "[" + node.relation_id + "]";
  }
  std::string keys;
  for (const auto& [left_col, right_col] : node.key_pairs) {
    if (!keys.empty()) keys += ",";
    keys += left_col + "=" + right_col;
  }
  std::string out = "(" + CanonicalSignature(*node.left) +
                    (node.method == JoinMethod::kBroadcast ? " *b<" : " *r<") +
                    keys + "> " + CanonicalSignature(*node.right) + ")";
  if (node.post_filter != nullptr) out += "{" + node.post_filter->ToString() + "}";
  return out;
}

std::string PlanExecutor::BindCachedRelation(RelationBinding binding) {
  ++temp_counter_;
  std::string id = StrFormat("t%d", temp_counter_);
  Bind(id, std::move(binding));
  return id;
}

Result<std::vector<JobUnit>> PlanExecutor::Decompose(const PlanNode& plan) {
  std::vector<JobUnit> units;
  if (plan.IsLeaf()) return units;  // Nothing to execute.
  DYNO_ASSIGN_OR_RETURN(JobInput top, DecomposeNode(plan, &units));
  (void)top;
  return units;
}

Result<std::string> PlanExecutor::ResolveInput(const JobInput& input) const {
  if (input.IsLeaf()) {
    if (!IsBound(input.leaf_id)) {
      return Status::NotFound("unbound relation: " + input.leaf_id);
    }
    return input.leaf_id;
  }
  return OutputOf(input.unit_uid);
}

Result<std::string> PlanExecutor::OutputOf(int64_t unit_uid) const {
  auto it = unit_outputs_.find(unit_uid);
  if (it == unit_outputs_.end()) {
    return Status::FailedPrecondition(
        StrFormat("unit %lld has not executed yet",
                  static_cast<long long>(unit_uid)));
  }
  return it->second;
}

Status PlanExecutor::MaterializeFilteredLeaf(const std::string& id) {
  DYNO_ASSIGN_OR_RETURN(RelationBinding binding, GetBinding(id));
  if (binding.scan_filter == nullptr) return Status::OK();

  JobSpec spec;
  ++temp_counter_;
  spec.name = StrFormat("filter:%s", id.c_str());
  spec.query_id = options_.query_id;
  spec.output_path = options_.ScopedTempPrefix() +
                     StrFormat("/e%d_f%d_%s", instance_id_, temp_counter_,
                               id.c_str());
  MapInput input;
  ExprPtr filter = ConfigureLeafScan(engine_, binding, &input);
  input.map_fn = [filter](const Value& record, MapContext* ctx) -> Status {
    DYNO_ASSIGN_OR_RETURN(bool keep, EvalFilter(filter, record));
    if (keep) ctx->Output(record);
    return Status::OK();
  };
  spec.inputs = {std::move(input)};
  DYNO_ASSIGN_OR_RETURN(JobResult job, engine_->Submit(spec));
  if (!job.status.ok()) return job.status;

  RelationBinding rebound;
  rebound.file = job.output;
  rebound.scan_filter = nullptr;
  rebound.scan_cpu_per_record = 0.0;
  rebound.signature = binding.signature;
  Bind(id, std::move(rebound));
  return Status::OK();
}

Result<StepResult> PlanExecutor::ExecuteOne(const UnitRequest& request) {
  DYNO_ASSIGN_OR_RETURN(std::vector<StepResult> results, Execute({request}));
  if (!results[0].status.ok()) return results[0].status;
  return std::move(results[0]);
}

Result<std::vector<StepResult>> PlanExecutor::Execute(
    const std::vector<UnitRequest>& requests) {
  struct Prepared {
    JobSpec spec;
    std::shared_ptr<StatsCollector> collector;
    std::string output_id;
    std::string signature;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(requests.size());

  for (const UnitRequest& request : requests) {
    if (request.unit == nullptr || request.unit->nodes.empty()) {
      return Status::InvalidArgument("empty unit request");
    }
    const JobUnit& unit = *request.unit;
    const PlanNode& root = *unit.nodes.back();

    Prepared p;
    ++temp_counter_;
    p.output_id = StrFormat("t%d", temp_counter_);
    p.signature = CanonicalSignature(root);
    p.spec.name = p.output_id;
    p.spec.query_id = options_.query_id;
    p.spec.output_path = options_.ScopedTempPrefix() +
                         StrFormat("/e%d_%s", instance_id_,
                                   p.output_id.c_str());

    if (request.collect_stats()) {
      p.collector = std::make_shared<StatsCollector>(request.stats_columns,
                                                     options_.kmv_k);
      std::shared_ptr<StatsCollector> collector = p.collector;
      p.spec.output_observer = [collector](const Value& record) {
        collector->Observe(record);
      };
      p.spec.observer_cpu_per_record = p.collector->CpuCostPerRecord();
    }

    std::vector<std::string> projection = request.projection;

    if (!unit.map_only) {
      // --- Repartition join: one full map-reduce job. ---
      // The driver's OOM retry ladder re-runs a unit with spill mode forced
      // and/or a pinned (doubled) reducer count; both default to "inherit".
      p.spec.reduce_memory_mode = request.reduce_memory_mode;
      if (request.num_reduce_tasks > 0) {
        p.spec.num_reduce_tasks = request.num_reduce_tasks;
      }
      const PlanNode& node = root;
      DYNO_ASSIGN_OR_RETURN(std::string left_id, ResolveInput(unit.inputs[0]));
      DYNO_ASSIGN_OR_RETURN(std::string right_id,
                            ResolveInput(unit.inputs[1]));
      DYNO_ASSIGN_OR_RETURN(RelationBinding left, GetBinding(left_id));
      DYNO_ASSIGN_OR_RETURN(RelationBinding right, GetBinding(right_id));

      auto make_tagged_map = [](ExprPtr filter,
                                std::vector<std::string> key_cols,
                                int64_t tag) -> MapFn {
        return [filter = std::move(filter), key_cols = std::move(key_cols),
                tag](const Value& record, MapContext* ctx) -> Status {
          DYNO_ASSIGN_OR_RETURN(bool keep, EvalFilter(filter, record));
          if (!keep) return Status::OK();
          Value key = JoinKeyValue(record, key_cols);
          Value tagged = Value::Struct(
              {{"__t", Value::Int(tag)}, {"__r", record}});
          ctx->Emit(std::move(key), std::move(tagged));
          return Status::OK();
        };
      };

      MapInput left_input;
      ExprPtr left_closure = ConfigureLeafScan(engine_, left, &left_input);
      left_input.map_fn =
          make_tagged_map(std::move(left_closure), LeftKeyColumns(node), 0);
      MapInput right_input;
      ExprPtr right_closure = ConfigureLeafScan(engine_, right, &right_input);
      right_input.map_fn =
          make_tagged_map(std::move(right_closure), RightKeyColumns(node), 1);
      p.spec.inputs = {std::move(left_input), std::move(right_input)};

      ExprPtr post_filter = node.post_filter;
      double post_cpu = post_filter ? post_filter->CpuCost() : 0.0;
      p.spec.reduce_fn = [post_filter, post_cpu, projection](
                             const Value& key, const std::vector<Value>& values,
                             ReduceContext* ctx) -> Status {
        (void)key;
        // Separate the two sides, then join them pairwise.
        std::vector<const Value*> lefts;
        std::vector<const Value*> rights;
        for (const Value& v : values) {
          const Value* tag = v.FindField("__t");
          const Value* row = v.FindField("__r");
          if (tag == nullptr || row == nullptr) {
            return Status::Internal("untagged shuffle record");
          }
          (tag->int_value() == 0 ? lefts : rights).push_back(row);
        }
        for (const Value* l : lefts) {
          for (const Value* r : rights) {
            Value merged = MergeRows(*l, *r);
            ctx->ChargeCpu(2.0);
            if (post_filter != nullptr) {
              ctx->ChargeCpu(post_cpu);
              DYNO_ASSIGN_OR_RETURN(bool keep,
                                    EvalFilter(post_filter, merged));
              if (!keep) continue;
            }
            ctx->Output(projection.empty() ? std::move(merged)
                                           : ProjectRow(merged, projection));
          }
        }
        return Status::OK();
      };
    } else {
      // --- Broadcast chain: a single map-only job probing one stream
      // through the hash tables of every chained build side. ---
      DYNO_ASSIGN_OR_RETURN(std::string probe_id,
                            ResolveInput(unit.inputs[0]));
      DYNO_ASSIGN_OR_RETURN(RelationBinding probe, GetBinding(probe_id));

      struct Stage {
        std::shared_ptr<BroadcastTable> table;
        std::vector<std::string> probe_key_cols;
        ExprPtr post_filter;
        double post_cpu = 0.0;
      };
      auto stages = std::make_shared<std::vector<Stage>>();
      uint64_t side_load = 0;
      uint64_t side_memory = 0;
      // Waves the probe scan will run: in Jaql mode every task of every
      // wave re-loads the side data, so a filtered build side whose *raw*
      // file is large gets expensive fast.
      double probe_waves = 1.0;
      {
        DYNO_ASSIGN_OR_RETURN(std::string probe_id,
                              ResolveInput(unit.inputs[0]));
        DYNO_ASSIGN_OR_RETURN(RelationBinding probe, GetBinding(probe_id));
        probe_waves = std::max(
            1.0, std::ceil(static_cast<double>(probe.file->splits().size()) /
                           std::max(1, engine_->config().map_slots)));
      }
      for (size_t i = 0; i < unit.nodes.size(); ++i) {
        const PlanNode& n = *unit.nodes[i];
        DYNO_ASSIGN_OR_RETURN(std::string build_id,
                              ResolveInput(unit.inputs[i + 1]));
        DYNO_ASSIGN_OR_RETURN(RelationBinding build, GetBinding(build_id));
        uint64_t build_pruned = 0;
        uint64_t* build_pruned_out =
            columnar::ZoneMapsEnabled() ? &build_pruned : nullptr;
        DYNO_ASSIGN_OR_RETURN(
            std::shared_ptr<BroadcastTable> table,
            BuildBroadcastTable(*build.file, build.scan_filter,
                                RightKeyColumns(n), build_pruned_out));
        RecordSplitsPruned(engine_, build.file->path(), build_pruned,
                           build.file->splits().size());
        // A filtered build side makes every map task re-read the raw file.
        // When the filter is selective and the probe runs for many waves,
        // materialize the filtered relation once as a map-only job and
        // ship the small result instead — what a production compiler does
        // under a broadcast join. Decided by comparing the side-load time
        // saved against the cost of the extra filter job.
        if (build.scan_filter != nullptr &&
            table->load_bytes > 2 * table->built_bytes) {
          const ClusterConfig& config = engine_->config();
          double saved_bytes = static_cast<double>(table->load_bytes) -
                               static_cast<double>(table->built_bytes);
          double repeat = options_.hive_broadcast ? 1.0 : probe_waves;
          double benefit_ms =
              repeat * saved_bytes / config.side_load_bytes_per_ms;
          double filter_job_ms =
              static_cast<double>(config.job_startup_ms) +
              static_cast<double>(table->load_bytes) /
                  (config.map_read_bytes_per_ms *
                   std::max(1, config.map_slots)) +
              static_cast<double>(table->built_bytes) /
                  config.map_write_bytes_per_ms;
          if (benefit_ms > 2.0 * filter_job_ms) {
            DYNO_RETURN_IF_ERROR(MaterializeFilteredLeaf(build_id));
            DYNO_ASSIGN_OR_RETURN(build, GetBinding(build_id));
            table->load_bytes = build.file->num_bytes();
          }
        }
        side_load += table->load_bytes;
        side_memory += table->built_bytes;
        if (getenv("DYNO_DEBUG_BUILDS")) {
          fprintf(stderr, "[build] unit=%s build_id=%s rows=%llu bytes=%llu est_right=%.0f\n",
                  p.output_id.c_str(), build_id.c_str(),
                  (unsigned long long)table->num_rows,
                  (unsigned long long)table->built_bytes, n.right->est_bytes);
        }
        Stage stage;
        stage.table = std::move(table);
        stage.probe_key_cols = LeftKeyColumns(n);
        stage.post_filter = n.post_filter;
        stage.post_cpu = n.post_filter ? n.post_filter->CpuCost() : 0.0;
        stages->push_back(std::move(stage));
      }
      p.spec.side_load_bytes = side_load;
      p.spec.side_memory_bytes = side_memory;
      p.spec.side_data_via_distributed_cache = options_.hive_broadcast;

      MapInput probe_input;
      ExprPtr scan_filter = ConfigureLeafScan(engine_, probe, &probe_input);
      probe_input.cpu_per_record += 2.0 * static_cast<double>(stages->size());
      probe_input.map_fn = [scan_filter, stages, projection](
                               const Value& record,
                               MapContext* ctx) -> Status {
        DYNO_ASSIGN_OR_RETURN(bool keep, EvalFilter(scan_filter, record));
        if (!keep) return Status::OK();
        // Depth-first probe through the chain.
        std::function<Status(const Value&, size_t)> probe_stage =
            [&](const Value& row, size_t stage_idx) -> Status {
          if (stage_idx == stages->size()) {
            ctx->Output(projection.empty() ? row
                                           : ProjectRow(row, projection));
            return Status::OK();
          }
          const Stage& stage = (*stages)[stage_idx];
          auto it = stage.table->rows_by_key.find(
              EncodeJoinKey(row, stage.probe_key_cols));
          if (it == stage.table->rows_by_key.end()) return Status::OK();
          for (const Value& build_row : it->second) {
            Value merged = MergeRows(row, build_row);
            ctx->ChargeCpu(2.0);
            if (stage.post_filter != nullptr) {
              ctx->ChargeCpu(stage.post_cpu);
              DYNO_ASSIGN_OR_RETURN(bool pass,
                                    EvalFilter(stage.post_filter, merged));
              if (!pass) continue;
            }
            DYNO_RETURN_IF_ERROR(probe_stage(merged, stage_idx + 1));
          }
          return Status::OK();
        };
        return probe_stage(record, 0);
      };
      p.spec.inputs = {std::move(probe_input)};
    }
    prepared.push_back(std::move(p));
  }

  // Submit all jobs concurrently.
  std::vector<JobSpec> specs;
  specs.reserve(prepared.size());
  for (const Prepared& p : prepared) specs.push_back(p.spec);
  DYNO_ASSIGN_OR_RETURN(std::vector<JobResult> job_results,
                        engine_->SubmitAll(specs));

  std::vector<StepResult> results;
  results.reserve(prepared.size());
  for (size_t i = 0; i < prepared.size(); ++i) {
    const JobResult& job = job_results[i];
    if (!job.status.ok()) {
      StepResult failed;
      failed.status = Status(job.status.code(),
                             "job " + prepared[i].output_id + " failed: " +
                                 job.status.message());
      failed.job = job;
      results.push_back(std::move(failed));
      continue;
    }
    StepResult step;
    step.relation_id = prepared[i].output_id;
    step.job = job;
    step.subtree_signature = prepared[i].signature;
    if (prepared[i].collector != nullptr) {
      step.stats = prepared[i].collector->Finalize(1.0);
    } else {
      step.stats.cardinality = static_cast<double>(job.counters.output_records);
      step.stats.avg_record_size =
          job.counters.output_records == 0
              ? 0.0
              : static_cast<double>(job.counters.output_bytes) /
                    static_cast<double>(job.counters.output_records);
    }
    // Exact cardinality from counters always wins over synopsis scaling.
    step.stats.cardinality = static_cast<double>(job.counters.output_records);
    if (job.counters.output_records > 0) {
      step.stats.avg_record_size =
          static_cast<double>(job.counters.output_bytes) /
          static_cast<double>(job.counters.output_records);
    }
    stats_overhead_ms_ += job.observer_overhead_ms;

    RelationBinding binding;
    binding.file = job.output;
    binding.scan_filter = nullptr;
    binding.scan_cpu_per_record = 0.0;
    binding.signature = prepared[i].signature;
    Bind(step.relation_id, std::move(binding));
    unit_outputs_[requests[i].unit->uid] = step.relation_id;
    results.push_back(std::move(step));
  }
  return results;
}

}  // namespace dyno
