#include "exec/aggregates.h"

#include <algorithm>
#include <map>
#include <memory>
#include <cmath>

#include "common/string_util.h"
#include "exec/row_ops.h"

namespace dyno {

namespace {

/// Folds one group of rows into the aggregate output fields.
Status FoldAggregates(const GroupBySpec& spec, const Value& key,
                      const std::vector<Value>& rows, StructFields* out) {
  for (size_t i = 0; i < spec.keys.size(); ++i) {
    const Value* kv = key.FindElement(i);
    out->emplace_back(spec.keys[i], kv == nullptr ? Value::Null() : *kv);
  }
  for (const Aggregate& agg : spec.aggregates) {
    switch (agg.kind) {
      case Aggregate::Kind::kCount:
        out->emplace_back(agg.output_name,
                          Value::Int(static_cast<int64_t>(rows.size())));
        break;
      case Aggregate::Kind::kSum:
      case Aggregate::Kind::kAvg: {
        double sum = 0.0;
        int64_t n = 0;
        for (const Value& row : rows) {
          const Value* v = row.FindField(agg.input_column);
          if (v == nullptr || v->is_null()) continue;
          if (v->type() != Value::Type::kInt &&
              v->type() != Value::Type::kDouble) {
            return Status::InvalidArgument("SUM/AVG over non-numeric column " +
                                           agg.input_column);
          }
          sum += v->AsDouble();
          ++n;
        }
        if (agg.kind == Aggregate::Kind::kSum) {
          out->emplace_back(agg.output_name, Value::Double(sum));
        } else {
          out->emplace_back(agg.output_name,
                            n == 0 ? Value::Null()
                                   : Value::Double(sum / static_cast<double>(n)));
        }
        break;
      }
      case Aggregate::Kind::kMin:
      case Aggregate::Kind::kMax: {
        const Value* best = nullptr;
        for (const Value& row : rows) {
          const Value* v = row.FindField(agg.input_column);
          if (v == nullptr || v->is_null()) continue;
          if (best == nullptr ||
              (agg.kind == Aggregate::Kind::kMin ? v->Compare(*best) < 0
                                                 : v->Compare(*best) > 0)) {
            best = v;
          }
        }
        out->emplace_back(agg.output_name,
                          best == nullptr ? Value::Null() : *best);
        break;
      }
    }
  }
  return Status::OK();
}

/// Per-group partial aggregation state used by the map-side combiner.
/// Serialized as a struct Value: {"__rows": n, "v<j>": partial, "c<j>": m}.
struct PartialState {
  int64_t rows = 0;
  /// One slot per aggregate: sum (kSum/kAvg) or best (kMin/kMax); unused
  /// for kCount.
  std::vector<Value> values;
  /// Non-null input counts (needed by kAvg).
  std::vector<int64_t> counts;
};

/// Folds one raw row into a partial state.
void AccumulateRow(const GroupBySpec& spec, const Value& row,
                   PartialState* state) {
  state->values.resize(spec.aggregates.size(), Value::Null());
  state->counts.resize(spec.aggregates.size(), 0);
  ++state->rows;
  for (size_t j = 0; j < spec.aggregates.size(); ++j) {
    const Aggregate& aggregate = spec.aggregates[j];
    if (aggregate.kind == Aggregate::Kind::kCount) continue;
    const Value* v = row.FindField(aggregate.input_column);
    if (v == nullptr || v->is_null()) continue;
    ++state->counts[j];
    Value& slot = state->values[j];
    switch (aggregate.kind) {
      case Aggregate::Kind::kSum:
      case Aggregate::Kind::kAvg:
        slot = Value::Double((slot.is_null() ? 0.0 : slot.double_value()) +
                             v->AsDouble());
        break;
      case Aggregate::Kind::kMin:
        if (slot.is_null() || v->Compare(slot) < 0) slot = *v;
        break;
      case Aggregate::Kind::kMax:
        if (slot.is_null() || v->Compare(slot) > 0) slot = *v;
        break;
      case Aggregate::Kind::kCount:
        break;
    }
  }
}

Value EncodePartial(const PartialState& state) {
  StructFields fields;
  fields.emplace_back("__rows", Value::Int(state.rows));
  for (size_t j = 0; j < state.values.size(); ++j) {
    fields.emplace_back(StrFormat("v%zu", j), state.values[j]);
    fields.emplace_back(StrFormat("c%zu", j), Value::Int(state.counts[j]));
  }
  return Value::Struct(std::move(fields));
}

Status MergePartialInto(const GroupBySpec& spec, const Value& encoded,
                        PartialState* state) {
  state->values.resize(spec.aggregates.size(), Value::Null());
  state->counts.resize(spec.aggregates.size(), 0);
  const Value* rows = encoded.FindField("__rows");
  if (rows == nullptr) return Status::Internal("malformed partial");
  state->rows += rows->int_value();
  for (size_t j = 0; j < spec.aggregates.size(); ++j) {
    const Value* v = encoded.FindField(StrFormat("v%zu", j));
    const Value* c = encoded.FindField(StrFormat("c%zu", j));
    if (v == nullptr || c == nullptr) {
      return Status::Internal("malformed partial slot");
    }
    state->counts[j] += c->int_value();
    if (v->is_null()) continue;
    Value& slot = state->values[j];
    switch (spec.aggregates[j].kind) {
      case Aggregate::Kind::kSum:
      case Aggregate::Kind::kAvg:
        slot = Value::Double((slot.is_null() ? 0.0 : slot.double_value()) +
                             v->AsDouble());
        break;
      case Aggregate::Kind::kMin:
        if (slot.is_null() || v->Compare(slot) < 0) slot = *v;
        break;
      case Aggregate::Kind::kMax:
        if (slot.is_null() || v->Compare(slot) > 0) slot = *v;
        break;
      case Aggregate::Kind::kCount:
        break;
    }
  }
  return Status::OK();
}

Value FinalizeState(const GroupBySpec& spec, const Value& key,
                    const PartialState& state) {
  StructFields fields;
  for (size_t i = 0; i < spec.keys.size(); ++i) {
    const Value* kv = key.FindElement(i);
    fields.emplace_back(spec.keys[i], kv == nullptr ? Value::Null() : *kv);
  }
  for (size_t j = 0; j < spec.aggregates.size(); ++j) {
    const Aggregate& aggregate = spec.aggregates[j];
    switch (aggregate.kind) {
      case Aggregate::Kind::kCount:
        fields.emplace_back(aggregate.output_name, Value::Int(state.rows));
        break;
      case Aggregate::Kind::kSum:
        fields.emplace_back(aggregate.output_name,
                            Value::Double(state.values[j].is_null()
                                              ? 0.0
                                              : state.values[j].double_value()));
        break;
      case Aggregate::Kind::kAvg:
        fields.emplace_back(
            aggregate.output_name,
            state.counts[j] == 0
                ? Value::Null()
                : Value::Double(state.values[j].double_value() /
                                static_cast<double>(state.counts[j])));
        break;
      case Aggregate::Kind::kMin:
      case Aggregate::Kind::kMax:
        fields.emplace_back(aggregate.output_name, state.values[j]);
        break;
    }
  }
  return Value::Struct(std::move(fields));
}

}  // namespace

Result<JobResult> RunGroupBy(MapReduceEngine* engine,
                             std::shared_ptr<DfsFile> input,
                             const GroupBySpec& spec,
                             const std::string& output_path,
                             bool use_combiner,
                             const std::string& query_id) {
  JobSpec job;
  job.name = "groupby";
  job.query_id = query_id;
  job.output_path = output_path;
  MapInput map_input;
  map_input.file = std::move(input);
  std::vector<std::string> keys = spec.keys;
  GroupBySpec spec_copy = spec;

  if (use_combiner) {
    // Map side: accumulate one PartialState per (task, group); the flush
    // hook ships one partial per group instead of every raw row.
    auto per_task = std::make_shared<
        std::map<int, std::map<std::string, std::pair<Value, PartialState>>>>();
    map_input.map_fn = [keys, spec_copy, per_task](
                           const Value& record, MapContext* ctx) -> Status {
      Value key = JoinKeyValue(record, keys);
      std::string encoded = EncodeJoinKey(record, keys);
      auto& groups = (*per_task)[ctx->task_index()];
      auto [it, inserted] =
          groups.try_emplace(std::move(encoded), key, PartialState{});
      AccumulateRow(spec_copy, record, &it->second.second);
      ctx->ChargeCpu(1.0 + static_cast<double>(spec_copy.aggregates.size()));
      return Status::OK();
    };
    map_input.flush_fn = [per_task](MapContext* ctx) -> Status {
      auto it = per_task->find(ctx->task_index());
      if (it == per_task->end()) return Status::OK();
      for (auto& [encoded, entry] : it->second) {
        ctx->Emit(entry.first, EncodePartial(entry.second));
      }
      per_task->erase(it);
      return Status::OK();
    };
    job.reduce_fn = [spec_copy](const Value& key,
                                const std::vector<Value>& values,
                                ReduceContext* ctx) -> Status {
      PartialState merged;
      for (const Value& partial : values) {
        DYNO_RETURN_IF_ERROR(MergePartialInto(spec_copy, partial, &merged));
      }
      ctx->ChargeCpu(static_cast<double>(values.size()));
      ctx->Output(FinalizeState(spec_copy, key, merged));
      return Status::OK();
    };
  } else {
    map_input.map_fn = [keys](const Value& record, MapContext* ctx) -> Status {
      ctx->Emit(JoinKeyValue(record, keys), record);
      return Status::OK();
    };
    job.reduce_fn = [spec_copy](const Value& key,
                                const std::vector<Value>& values,
                                ReduceContext* ctx) -> Status {
      StructFields fields;
      DYNO_RETURN_IF_ERROR(FoldAggregates(spec_copy, key, values, &fields));
      ctx->ChargeCpu(static_cast<double>(values.size()) *
                     (1.0 +
                      static_cast<double>(spec_copy.aggregates.size())));
      ctx->Output(Value::Struct(std::move(fields)));
      return Status::OK();
    };
  }
  job.inputs = {std::move(map_input)};
  DYNO_ASSIGN_OR_RETURN(JobResult result, engine->Submit(job));
  if (!result.status.ok()) return result.status;
  return result;
}

Result<JobResult> RunOrderBy(MapReduceEngine* engine,
                             std::shared_ptr<DfsFile> input,
                             const OrderBySpec& spec,
                             const std::string& output_path,
                             const std::string& query_id) {
  JobSpec job;
  job.name = "orderby";
  job.query_id = query_id;
  job.output_path = output_path;
  job.num_reduce_tasks = 1;  // Global order needs a single reducer.
  MapInput map_input;
  map_input.file = std::move(input);
  map_input.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Emit(Value::Int(0), record);
    return Status::OK();
  };
  job.inputs = {std::move(map_input)};
  OrderBySpec spec_copy = spec;
  job.reduce_fn = [spec_copy](const Value& key,
                              const std::vector<Value>& values,
                              ReduceContext* ctx) -> Status {
    (void)key;
    std::vector<Value> rows = values;
    std::stable_sort(rows.begin(), rows.end(),
                     [&spec_copy](const Value& a, const Value& b) {
                       for (const auto& [col, desc] : spec_copy.keys) {
                         const Value* va = a.FindField(col);
                         const Value* vb = b.FindField(col);
                         Value na = va == nullptr ? Value::Null() : *va;
                         Value nb = vb == nullptr ? Value::Null() : *vb;
                         int c = na.Compare(nb);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
    ctx->ChargeCpu(static_cast<double>(rows.size()) *
                   std::log2(static_cast<double>(rows.size()) + 2.0));
    int64_t limit = spec_copy.limit < 0
                        ? static_cast<int64_t>(rows.size())
                        : std::min<int64_t>(spec_copy.limit,
                                            static_cast<int64_t>(rows.size()));
    for (int64_t i = 0; i < limit; ++i) ctx->Output(std::move(rows[i]));
    return Status::OK();
  };
  DYNO_ASSIGN_OR_RETURN(JobResult result, engine->Submit(job));
  if (!result.status.ok()) return result.status;
  return result;
}

}  // namespace dyno
