#include "exec/row_ops.h"

#include <set>

#include "columnar/batch_eval.h"

namespace dyno {

Result<bool> EvalFilter(const ExprPtr& filter, const Value& row) {
  if (filter == nullptr) return true;
  DYNO_ASSIGN_OR_RETURN(Value v, filter->Eval(row));
  return v.type() == Value::Type::kBool && v.bool_value();
}

Result<std::vector<uint8_t>> FilterKeepMask(const ExprPtr& filter,
                                            const std::vector<Value>& rows) {
  if (filter == nullptr) return std::vector<uint8_t>(rows.size(), 1);
  DYNO_ASSIGN_OR_RETURN(columnar::BatchFilterResult result,
                        columnar::EvalFilterOverRows(filter, rows));
  return std::move(result.keep);
}

std::string EncodeJoinKey(const Value& row,
                          const std::vector<std::string>& columns) {
  std::string out;
  for (const std::string& col : columns) {
    const Value* v = row.FindField(col);
    if (v == nullptr) {
      Value::Null().EncodeTo(&out);
    } else {
      v->EncodeTo(&out);
    }
  }
  return out;
}

Value JoinKeyValue(const Value& row,
                   const std::vector<std::string>& columns) {
  ArrayElements elems;
  elems.reserve(columns.size());
  for (const std::string& col : columns) {
    const Value* v = row.FindField(col);
    elems.push_back(v == nullptr ? Value::Null() : *v);
  }
  return Value::Array(std::move(elems));
}

Value MergeRows(const Value& left, const Value& right) {
  StructFields merged = left.fields();
  std::set<std::string> seen;
  for (const auto& [name, value] : merged) seen.insert(name);
  for (const auto& [name, value] : right.fields()) {
    if (seen.insert(name).second) merged.emplace_back(name, value);
  }
  return Value::Struct(std::move(merged));
}

Value ProjectRow(const Value& row, const std::vector<std::string>& columns) {
  StructFields out;
  out.reserve(columns.size());
  for (const std::string& col : columns) {
    const Value* v = row.FindField(col);
    if (v != nullptr) out.emplace_back(col, *v);
  }
  return Value::Struct(std::move(out));
}

}  // namespace dyno
