#include "exec/row_ops.h"

#include <set>

namespace dyno {

std::string EncodeJoinKey(const Value& row,
                          const std::vector<std::string>& columns) {
  std::string out;
  for (const std::string& col : columns) {
    const Value* v = row.FindField(col);
    if (v == nullptr) {
      Value::Null().EncodeTo(&out);
    } else {
      v->EncodeTo(&out);
    }
  }
  return out;
}

Value JoinKeyValue(const Value& row,
                   const std::vector<std::string>& columns) {
  ArrayElements elems;
  elems.reserve(columns.size());
  for (const std::string& col : columns) {
    const Value* v = row.FindField(col);
    elems.push_back(v == nullptr ? Value::Null() : *v);
  }
  return Value::Array(std::move(elems));
}

Value MergeRows(const Value& left, const Value& right) {
  StructFields merged = left.fields();
  std::set<std::string> seen;
  for (const auto& [name, value] : merged) seen.insert(name);
  for (const auto& [name, value] : right.fields()) {
    if (seen.insert(name).second) merged.emplace_back(name, value);
  }
  return Value::Struct(std::move(merged));
}

Value ProjectRow(const Value& row, const std::vector<std::string>& columns) {
  StructFields out;
  out.reserve(columns.size());
  for (const std::string& col : columns) {
    const Value* v = row.FindField(col);
    if (v != nullptr) out.emplace_back(col, *v);
  }
  return Value::Struct(std::move(out));
}

}  // namespace dyno
