#ifndef DYNO_EXEC_PLAN_EXECUTOR_H_
#define DYNO_EXEC_PLAN_EXECUTOR_H_

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "lang/plan.h"
#include "mr/engine.h"
#include "stats/table_stats.h"
#include "storage/dfs.h"

namespace dyno {

/// How a plan-leaf relation id resolves to scannable data: a DFS file plus
/// the local predicates to apply while scanning it (null for materialized
/// intermediates, whose filters were already applied).
struct RelationBinding {
  std::shared_ptr<DfsFile> file;
  ExprPtr scan_filter;
  /// Per-record CPU of the scan filter (0 when scan_filter is null).
  double scan_cpu_per_record = 0.0;
  /// Statistics signature of this relation (for the StatsStore).
  std::string signature;
};

/// Execution knobs.
struct ExecOptions {
  /// Hive-style broadcast joins: the build side is shipped through the
  /// DistributedCache and loaded once per node instead of once per task
  /// (the Fig. 8 backend).
  bool hive_broadcast = false;
  /// KMV parameter for online statistics collection.
  int kmv_k = 1024;
  /// DFS directory for intermediate results.
  std::string temp_prefix = "/tmp/dyno";
  /// Unique id of the query these jobs belong to. Empty (the default)
  /// keeps single-query behavior: intermediates go directly under
  /// temp_prefix and job specs are unscoped. When set, every intermediate
  /// lands under ScopedTempPrefix() and every JobSpec carries the id, so
  /// concurrent queries — even two with identical text — never collide on
  /// DFS paths or share engine fault streams.
  std::string query_id;

  /// temp_prefix, extended with a per-query subdirectory when query_id is
  /// set ("<temp_prefix>/q/<query_id>").
  std::string ScopedTempPrefix() const {
    return query_id.empty() ? temp_prefix : temp_prefix + "/q/" + query_id;
  }
};

/// One input of a job unit: either a bound relation (leaf of the plan) or
/// the output of another unit (referenced by its globally unique uid, so
/// several decompositions can coexist on one executor).
struct JobInput {
  std::string leaf_id;   ///< Non-empty for plan leaves.
  int64_t unit_uid = -1; ///< >= 0 when fed by another unit.

  bool IsLeaf() const { return unit_uid < 0; }
};

/// One MapReduce job carved out of a physical plan: a repartition join, or
/// a maximal chain of broadcast joins executing as a single map-only job.
struct JobUnit {
  int index = 0;       ///< Position within its decomposition.
  int64_t uid = -1;    ///< Globally unique across decompositions.
  /// Join nodes executed by this job, bottom-up (size > 1 only for chains).
  std::vector<const PlanNode*> nodes;
  /// inputs[0] is the probe/left input; for repartition joins inputs[1] is
  /// the right input; for broadcast chains inputs[1..] are the build sides
  /// of nodes[0..] in order.
  std::vector<JobInput> inputs;
  bool map_only = false;

  /// Cost of *this job alone* (root cumulative cost minus child jobs').
  double est_cost = 0.0;
  /// Estimated output cardinality/bytes (root node estimates).
  double est_rows = 0.0;
  double est_bytes = 0.0;

  /// Paper's uncertainty metric: join count feeding this job's estimates —
  /// joins in the job itself plus joins below its inputs (§5.3).
  int uncertainty = 0;

  /// True when every input is a bound relation — an executable "leaf job".
  bool IsLeafJob() const {
    for (const JobInput& in : inputs) {
      if (!in.IsLeaf()) return false;
    }
    return true;
  }
};

/// Outcome of running one job unit.
struct StepResult {
  /// Per-unit outcome; a failed broadcast (OutOfMemory) surfaces here so
  /// the driver can react (e.g. fall back to a repartition join) without
  /// losing sibling units that succeeded.
  Status status;
  /// Id of the new virtual relation ("t1", "t2", ... as in Fig. 2).
  std::string relation_id;
  JobResult job;
  /// Online statistics over the job output (cardinality is exact; column
  /// stats only for the requested columns).
  TableStats stats;
  /// The plan subtree this job computed (for signature/bookkeeping).
  std::string subtree_signature;
};

/// Executes physical join plans as MapReduce jobs. Owns the bindings from
/// relation ids to DFS files and the naming of intermediate results; the
/// DYNOPT driver and the static executors are built on top of it.
class PlanExecutor {
 public:
  PlanExecutor(MapReduceEngine* engine, ExecOptions options);

  /// Registers a relation id (base leaf or externally materialized).
  void Bind(const std::string& id, RelationBinding binding);
  bool IsBound(const std::string& id) const;
  Result<RelationBinding> GetBinding(const std::string& id) const;

  /// Canonical signature of a plan subtree: the tree rendered with every
  /// leaf replaced by its *binding* signature (recursively grounded in
  /// "table|filter" leaf signatures), join keys, and full post-filter text.
  /// Unlike PlanNode::ToString(), which names run-local temp relations
  /// ("t7"), this is stable across queries and sessions — two queries that
  /// compute the same subtree over the same base data render identically,
  /// which is what makes it usable as a cross-query cache key.
  std::string CanonicalSignature(const PlanNode& node) const;

  /// Binds an externally materialized relation (e.g. a subtree-cache hit)
  /// under a freshly allocated temp id and returns that id. Allocation goes
  /// through the same "t<N>" counter as executed units, so a run that hits
  /// the cache assigns the exact ids an uninterrupted cold run would have.
  std::string BindCachedRelation(RelationBinding binding);

  /// Splits `plan` into its MapReduce jobs, children before parents. The
  /// returned units hold pointers into `plan`, which must outlive them.
  static Result<std::vector<JobUnit>> Decompose(const PlanNode& plan);

  /// Execution request for one unit.
  struct UnitRequest {
    const JobUnit* unit = nullptr;
    /// Columns to collect statistics for on the output (empty = none).
    std::vector<std::string> stats_columns;
    /// Output projection (empty = keep all columns).
    std::vector<std::string> projection;
    /// Per-job reduce-memory override (JobSpec::reduce_memory_mode): -1
    /// inherits the cluster knob, 1 forces spill mode. Set by the driver's
    /// OOM retry ladder when it re-runs a unit that died of OutOfMemory.
    int reduce_memory_mode = -1;
    /// Reducer-count override for the unit's repartition job (> 0 pins
    /// JobSpec::num_reduce_tasks). The OOM ladder's doubled-reducer rung
    /// uses this so each reducer's partition — and thus its memory state —
    /// shrinks.
    int num_reduce_tasks = 0;
    /// Per-record CPU charged for statistics collection; reported in the
    /// JobResult's observer overhead.
    bool collect_stats() const { return !stats_columns.empty(); }
  };

  /// Runs the requested units concurrently (they must be mutually
  /// independent and all of their inputs resolvable: bound relations or
  /// outputs of previously executed units). Results are in request order;
  /// per-unit job failures (e.g. a broadcast build side exceeding task
  /// memory) are reported in StepResult::status, not as a call failure.
  Result<std::vector<StepResult>> Execute(
      const std::vector<UnitRequest>& requests);

  /// Convenience: run one unit; its job failure becomes the call's error.
  Result<StepResult> ExecuteOne(const UnitRequest& request);

  /// Id assigned to the output of the unit with `uid`, if it already ran.
  Result<std::string> OutputOf(int64_t unit_uid) const;

  /// Resolves a job input to a relation id (bound leaf or executed unit
  /// output).
  Result<std::string> ResolveInput(const JobInput& input) const;

  /// Records `relation_id` as the output of unit `uid` — used when a
  /// fallback execution path computed the unit's result under a different
  /// identity (the relation must already be bound).
  void RegisterUnitOutput(int64_t uid, const std::string& relation_id) {
    unit_outputs_[uid] = relation_id;
  }

  /// Runs a map-only filter job over `id`'s bound relation and rebinds the
  /// id to the materialized (already filtered) output. Used when shipping
  /// a raw-but-filtered file as broadcast side data would be wasteful.
  Status MaterializeFilteredLeaf(const std::string& id);

  /// Forgets unit outputs from previous decompositions (optional between
  /// DYNOPT iterations; uids never collide, this only bounds the map).
  void ResetUnitOutputs() { unit_outputs_.clear(); }

  MapReduceEngine* engine() const { return engine_; }
  const ExecOptions& options() const { return options_; }

  /// Total simulated observer (statistics-collection) overhead so far.
  SimMillis total_stats_overhead_ms() const { return stats_overhead_ms_; }

  /// Temp-id high-water mark: relation ids are "t<N>" with N up to this.
  int temp_counter() const { return temp_counter_; }

  /// Fast-forwards temp-id allocation past `upto`. Checkpoint resume uses
  /// this so a continuation's relation ids — and therefore its subtree
  /// signatures — match the ones an uninterrupted run would have assigned.
  void ReserveTempIds(int upto) {
    temp_counter_ = std::max(temp_counter_, upto);
  }

 private:
  MapReduceEngine* engine_;
  ExecOptions options_;
  int instance_id_ = 0;
  std::map<std::string, RelationBinding> bindings_;
  std::map<int64_t, std::string> unit_outputs_;
  int temp_counter_ = 0;
  SimMillis stats_overhead_ms_ = 0;
};

}  // namespace dyno

#endif  // DYNO_EXEC_PLAN_EXECUTOR_H_
