#ifndef DYNO_EXEC_ROW_OPS_H_
#define DYNO_EXEC_ROW_OPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "json/value.h"

namespace dyno {

/// Evaluates a boolean filter against one row; non-bool/null results count
/// as false (the engine's scan semantics). A null filter keeps everything.
Result<bool> EvalFilter(const ExprPtr& filter, const Value& row);

/// Batch-at-a-time variant: one keep byte per row, bit-identical to calling
/// EvalFilter row-by-row. `column <op> literal` conjuncts run as vectorized
/// selection-cascade compare loops (columnar::EvalFilterOverRows); client-
/// side callers (broadcast build, result checks) use this so the row path
/// stays available as the oracle it is tested against.
Result<std::vector<uint8_t>> FilterKeepMask(const ExprPtr& filter,
                                            const std::vector<Value>& rows);

/// Extracts the join key of `row` over `columns` as an encoded string
/// (usable as a hash map key without collision concerns). Missing columns
/// contribute nulls.
std::string EncodeJoinKey(const Value& row, const std::vector<std::string>& columns);

/// Join key as a Value (an array), used as the shuffle key of repartition
/// joins so the simulator sorts/groups on it.
Value JoinKeyValue(const Value& row, const std::vector<std::string>& columns);

/// Concatenates the fields of two joined rows. Column names are unique
/// across a query's tables (TPC-H prefixes), so the merge is a plain append;
/// on a (pathological) duplicate the left side wins.
Value MergeRows(const Value& left, const Value& right);

/// Projects `row` onto `columns` (order preserved, missing columns dropped).
Value ProjectRow(const Value& row, const std::vector<std::string>& columns);

}  // namespace dyno

#endif  // DYNO_EXEC_ROW_OPS_H_
