#ifndef DYNO_EXEC_AGGREGATES_H_
#define DYNO_EXEC_AGGREGATES_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "lang/query.h"
#include "mr/engine.h"
#include "storage/dfs.h"

namespace dyno {

/// Runs GROUP BY + aggregates over `input` as one map-reduce job. With
/// `use_combiner` (the default) each map task pre-aggregates its split into
/// one partial state per group and ships only those through the shuffle —
/// the standard MapReduce combiner, which cuts shuffle volume by up to
/// rows/groups. Grouping operators sit outside the join block and are
/// compiled directly, not enumerated by the optimizer (paper §5.1).
Result<JobResult> RunGroupBy(MapReduceEngine* engine,
                             std::shared_ptr<DfsFile> input,
                             const GroupBySpec& spec,
                             const std::string& output_path,
                             bool use_combiner = true,
                             const std::string& query_id = std::string());

/// Runs ORDER BY (with optional LIMIT) over `input` as a single-reducer
/// map-reduce job.
Result<JobResult> RunOrderBy(MapReduceEngine* engine,
                             std::shared_ptr<DfsFile> input,
                             const OrderBySpec& spec,
                             const std::string& output_path,
                             const std::string& query_id = std::string());

}  // namespace dyno

#endif  // DYNO_EXEC_AGGREGATES_H_
