#ifndef DYNO_EXEC_BROADCAST_H_
#define DYNO_EXEC_BROADCAST_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "storage/dfs.h"

namespace dyno {

/// The in-memory build side of a broadcast join: rows of the small relation
/// (after local predicates) keyed by their encoded join key. One instance
/// is shared by all map tasks of the probing job — physically each task
/// builds its own copy, which the simulator bills via side-load bytes.
struct BroadcastTable {
  std::unordered_map<std::string, std::vector<Value>> rows_by_key;
  /// Raw bytes retained (memory-budget check input).
  uint64_t built_bytes = 0;
  /// Bytes read to build (full file scan, billing input).
  uint64_t load_bytes = 0;
  uint64_t num_rows = 0;
};

/// Builds the hash table for the build side `file`, applying `filter` (null
/// = keep all) and keying on `key_columns`. Splits are checksum-verified
/// and decoded per their format; corruption surfaces as DataLoss.
///
/// When `splits_pruned` is non-null the caller opts into zone-map pruning:
/// splits whose zone map proves no row can pass `filter` are skipped
/// without being read (they are excluded from load_bytes), and the skip
/// count is written out. The table contents are identical either way — a
/// pruned split contributes no rows by construction.
Result<std::shared_ptr<BroadcastTable>> BuildBroadcastTable(
    const DfsFile& file, const ExprPtr& filter,
    const std::vector<std::string>& key_columns,
    uint64_t* splits_pruned = nullptr);

}  // namespace dyno

#endif  // DYNO_EXEC_BROADCAST_H_
