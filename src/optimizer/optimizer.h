#ifndef DYNO_OPTIMIZER_OPTIMIZER_H_
#define DYNO_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "common/sim_time.h"
#include "common/status.h"
#include "lang/plan.h"
#include "optimizer/cost_model.h"
#include "optimizer/join_graph.h"

namespace dyno {

/// Instrumentation from one optimizer call, also driving the simulated
/// optimizer latency (the paper's Columbia runs on the client; its 8-way
/// initial call dominates total re-optimization time, Fig. 4).
struct OptimizerReport {
  int groups_explored = 0;        ///< Memo groups (connected subsets).
  int expressions_costed = 0;     ///< (split, method) alternatives costed.
  /// Broadcast alternatives never costed because the build side exceeds
  /// M_max (the paper's memory-feasibility prune).
  int plans_pruned_memory = 0;
  /// Consecutive broadcast joins collapsed into their left neighbor's
  /// map-only job by ApplyBroadcastChaining.
  int broadcast_chain_collapses = 0;
  double best_cost = 0.0;
  SimMillis simulated_ms = 0;     ///< Modeled client-side latency.
};

/// Result of join enumeration: the minimum-cost physical join tree, with
/// per-node cardinality/size/cost estimates and broadcast chains marked.
struct OptimizeResult {
  std::unique_ptr<PlanNode> plan;
  OptimizerReport report;
};

/// Cost-based join enumerator in the spirit of Columbia/Cascades restricted
/// to join reordering (paper §5.2): logical operators are Scan and Join
/// only; physical operators are the repartition and broadcast joins;
/// transformation rules generate the bushy join space (commutativity +
/// associativity), realized here as a memoized top-down search over
/// connected relation subsets with branch-and-bound pruning. Join result
/// cardinalities use the textbook formula |R||S| / max(ndv(a), ndv(b)),
/// computed over the *accurate* input statistics supplied by pilot runs or
/// prior steps. Cartesian products are never enumerated.
class JoinOptimizer {
 public:
  explicit JoinOptimizer(CostModelParams params) : params_(params) {}

  /// Returns the minimum-cost plan for `graph`. Fails on disconnected join
  /// graphs (cartesian products) or invalid input.
  Result<OptimizeResult> Optimize(const OptJoinGraph& graph) const;

  const CostModelParams& params() const { return params_; }

 private:
  CostModelParams params_;
};

/// Bottom-up pass that marks maximal runs of consecutive broadcast joins
/// whose build sides *simultaneously* fit in memory as chains executing in
/// one map-only job, then recomputes cumulative node costs with the chain
/// formula (paper §5.2's chaining rule). Exposed separately for tests and
/// ablations; Optimize() applies it when enable_broadcast_chains is set.
void ApplyBroadcastChaining(PlanNode* root, const CostModelParams& params);

/// Recomputes every node's cumulative est_cost (respecting chain flags).
/// `chained_by_parent` must be false for the root.
double RecostPlan(PlanNode* node, const CostModelParams& params,
                  bool chained_by_parent);

}  // namespace dyno

#endif  // DYNO_OPTIMIZER_OPTIMIZER_H_
