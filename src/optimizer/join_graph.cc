#include "optimizer/join_graph.h"

#include <set>

namespace dyno {

int OptJoinGraph::IndexOf(const std::string& id) const {
  for (size_t i = 0; i < relations.size(); ++i) {
    if (relations[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

Status ValidateJoinGraph(const OptJoinGraph& graph) {
  if (graph.relations.empty()) {
    return Status::InvalidArgument("join graph has no relations");
  }
  if (graph.relations.size() > 63) {
    return Status::InvalidArgument("join graph too large (max 63 relations)");
  }
  std::set<std::string> ids;
  for (const OptRelation& rel : graph.relations) {
    if (!ids.insert(rel.id).second) {
      return Status::InvalidArgument("duplicate relation id: " + rel.id);
    }
  }
  for (const OptEdge& edge : graph.edges) {
    if (!ids.count(edge.left_id)) {
      return Status::InvalidArgument("unknown relation in edge: " +
                                     edge.left_id);
    }
    if (!ids.count(edge.right_id)) {
      return Status::InvalidArgument("unknown relation in edge: " +
                                     edge.right_id);
    }
    if (edge.left_id == edge.right_id) {
      return Status::InvalidArgument("self edge on " + edge.left_id);
    }
  }
  for (const OptNonLocalPred& pred : graph.non_local_preds) {
    if (pred.expr == nullptr) {
      return Status::InvalidArgument("null non-local predicate");
    }
    if (pred.relation_ids.size() < 2) {
      return Status::InvalidArgument(
          "non-local predicate covers fewer than 2 relations");
    }
    for (const std::string& id : pred.relation_ids) {
      if (!ids.count(id)) {
        return Status::InvalidArgument("unknown relation in predicate: " + id);
      }
    }
  }
  return Status::OK();
}

}  // namespace dyno
