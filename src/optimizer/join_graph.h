#ifndef DYNO_OPTIMIZER_JOIN_GRAPH_H_
#define DYNO_OPTIMIZER_JOIN_GRAPH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "stats/table_stats.h"

namespace dyno {

/// One relation presented to the join enumerator. The optimizer never sees
/// local predicates: each relation arrives with statistics that already
/// reflect them, "as if they are base tables" (paper contribution #2) —
/// measured either by pilot runs or by a previous execution step.
struct OptRelation {
  std::string id;  ///< Alias of a leaf expression or a virtual relation.
  TableStats stats;
};

/// An equi-join edge between two relations.
struct OptEdge {
  std::string left_id;
  std::string left_column;
  std::string right_id;
  std::string right_column;
};

/// A predicate (typically a UDF) that applies to the join result of several
/// relations and thus cannot be pushed into any leaf (Q8's UDF(o, c)). Its
/// selectivity is unknown to the optimizer; `assumed_selectivity` is the
/// planning default (1.0 = conservative no-op, DBMS-X style).
struct OptNonLocalPred {
  ExprPtr expr;
  std::vector<std::string> relation_ids;
  double assumed_selectivity = 1.0;
};

/// The join-enumeration problem: relations (with statistics), edges, and
/// non-local predicates.
struct OptJoinGraph {
  std::vector<OptRelation> relations;
  std::vector<OptEdge> edges;
  std::vector<OptNonLocalPred> non_local_preds;

  /// Index of relation `id`, or -1.
  int IndexOf(const std::string& id) const;
};

/// Validates ids and sizes (at most 63 relations — the memo is based on
/// 64-bit bitmasks and `(1 << n) - 1` must not overflow).
Status ValidateJoinGraph(const OptJoinGraph& graph);

}  // namespace dyno

#endif  // DYNO_OPTIMIZER_JOIN_GRAPH_H_
