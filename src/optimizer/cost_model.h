#ifndef DYNO_OPTIMIZER_COST_MODEL_H_
#define DYNO_OPTIMIZER_COST_MODEL_H_

#include <algorithm>
#include <cstdint>

namespace dyno {

/// The paper's join cost model (§5.2), over estimated relation sizes in
/// bytes:
///
///   C(R ⋈r S) = c_rep·(|R| + |S|) + c_out·|R ⋈ S|
///   C(R ⋈b S) = c_probe·|R| + c_build·|S| + c_out·|R ⋈ S|,  |S| ≤ M_max
///   C(chain)  = c_probe·|R| + c_build·Σ|Si| + c_out·|R ⋈ S1 ⋈ … ⋈ Sk|
///
/// with c_rep ≫ c_probe > c_build > c_out, reflecting that the repartition
/// join sorts and reshuffles both inputs over the network while the
/// broadcast join streams the probe side through an in-memory hash table.
struct CostModelParams {
  double c_rep = 12.0;
  double c_probe = 1.5;
  double c_build = 1.0;
  double c_out = 0.5;

  /// Fixed cost (in the same abstract units) of launching one MapReduce
  /// job — startup latency plus the materialization round-trip a job
  /// boundary implies. The paper's formulas omit it (0.0 reproduces them
  /// verbatim); setting it biases ties toward plans with fewer jobs, which
  /// is what Jaql's chaining machinery fights for. During enumeration a
  /// repartition join always pays it, a broadcast join pays it only when
  /// its build side is itself a join result (a leaf build can ride along a
  /// chain); the post-chaining recost charges it per actual job.
  double c_job = 0.0;

  /// Maximum memory available to one task for hash-join build sides, and
  /// the hash-table expansion factor applied to raw build bytes. Mirror
  /// ClusterConfig so plan-time feasibility matches run-time enforcement.
  /// These are normally not set by hand: DynoDriver copies the engine's
  /// ClusterConfig values in via AdoptClusterMemoryModel (unless
  /// DynoOptions::sync_cost_memory is off), so the optimizer and the engine
  /// cannot disagree about whether a broadcast fits.
  uint64_t max_memory_bytes = 1 << 20;
  double memory_factor = 1.5;

  /// Per-byte cost of reduce-side spill I/O, in the same abstract units.
  /// Charged by SpillCost when a repartition join's estimated per-reducer
  /// state exceeds max_memory_bytes: every overflowing byte is written to a
  /// run file and read back at least once. 0 disables the charge.
  double c_spill = 2.0;

  /// Mirror of the engine's reducer planning (ClusterConfig::
  /// bytes_per_reduce_task and reduce_slots), so EstimatedReducers can
  /// predict how many reducers a repartition join would be dealt — the
  /// denominator of its per-reducer sort state. 0 disables plan-time spill
  /// costing entirely (the legacy, memory-oblivious cost model); the driver
  /// seeds it via AdoptClusterMemoryModel only when the engine actually
  /// enforces reduce memory.
  uint64_t bytes_per_reduce_task = 0;
  int reduce_slots = 0;

  /// Extra headroom demanded before broadcasting a build side whose size
  /// is an *estimate* (a multi-relation subtree rather than a measured
  /// relation). Join-cardinality estimates carry compounding error, and a
  /// broadcast that turns out not to fit kills the query — "most systems
  /// are quite conservative" (paper §6.4). 1.0 reproduces the paper's
  /// cost model verbatim; the default keeps 2x headroom on estimates.
  double estimated_build_margin = 4.0;

  /// Rule switches (ablations).
  bool enable_broadcast = true;
  bool enable_broadcast_chains = true;
  bool left_deep_only = false;

  /// Pipelined-MPP mode, used to model the DBMS-X baseline's *own* cost
  /// model: operators stream into each other without materialization, so a
  /// repartition join costs only the exchange of both inputs at their
  /// current width, and a broadcast join costs only replicating and
  /// building the hash table (the probe side flows through the pipeline
  /// for free). Under this model broadcasts of small relations are
  /// position-indifferent while exchanges get pricier as the row widens —
  /// so DBMS-X exchanges the narrow stream early and attaches broadcasts
  /// late, the paper's Fig. 3 plan shape.
  bool mpp_pipelined = false;

  /// Copies the engine's memory model (ClusterConfig::memory_per_task_bytes
  /// and broadcast_memory_factor) into the plan-time knobs — the single
  /// source of truth that prevents the optimizer choosing a broadcast the
  /// engine then kills with OutOfMemory at launch. Takes the raw values
  /// rather than ClusterConfig itself so this header stays dependency-free.
  void AdoptClusterMemoryModel(uint64_t memory_per_task_bytes,
                               double broadcast_memory_factor,
                               uint64_t reduce_task_bytes = 0,
                               int cluster_reduce_slots = 0) {
    max_memory_bytes = memory_per_task_bytes;
    memory_factor = broadcast_memory_factor;
    bytes_per_reduce_task = reduce_task_bytes;
    reduce_slots = cluster_reduce_slots;
  }

  /// Reducer count the engine would deal a repartition join shuffling
  /// `input_bytes` (mirrors the engine's first-shuffle planning). 0 when
  /// spill costing is disabled.
  int EstimatedReducers(double input_bytes) const {
    if (bytes_per_reduce_task == 0 || reduce_slots <= 0) return 0;
    int reducers = static_cast<int>(
        input_bytes / static_cast<double>(bytes_per_reduce_task) + 1.0);
    return std::clamp(reducers, 1, reduce_slots);
  }

  bool BroadcastFits(double build_bytes) const {
    return build_bytes * memory_factor <=
           static_cast<double>(max_memory_bytes);
  }

  /// Feasibility check for a build side that is itself a join result.
  bool BroadcastFitsEstimated(double build_bytes) const {
    return BroadcastFits(build_bytes * estimated_build_margin);
  }

  double RepartitionCost(double left_bytes, double right_bytes,
                         double out_bytes) const {
    if (mpp_pipelined) return c_rep * (left_bytes + right_bytes);
    return c_rep * (left_bytes + right_bytes) + c_out * out_bytes;
  }

  /// Spill I/O charge for a repartition join whose estimated per-reducer
  /// sort state (total input bytes * memory_factor / reducers) overflows
  /// the task budget: each overflowing byte pays c_spill. The driver feeds
  /// observed reducer counts here on re-optimization, which is how heavy
  /// spilling can flip the plan toward a broadcast or more reducers.
  double SpillCost(double input_bytes, int reducers) const {
    if (c_spill <= 0.0 || reducers <= 0) return 0.0;
    double per_reducer = input_bytes * memory_factor /
                         static_cast<double>(reducers);
    double budget = static_cast<double>(max_memory_bytes);
    if (per_reducer <= budget) return 0.0;
    return c_spill * (per_reducer - budget) * static_cast<double>(reducers) /
           memory_factor;
  }

  double BroadcastCost(double probe_bytes, double build_bytes,
                       double out_bytes) const {
    if (mpp_pipelined) return c_build * build_bytes;
    return c_probe * probe_bytes + c_build * build_bytes + c_out * out_bytes;
  }
};

}  // namespace dyno

#endif  // DYNO_OPTIMIZER_COST_MODEL_H_
