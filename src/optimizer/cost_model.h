#ifndef DYNO_OPTIMIZER_COST_MODEL_H_
#define DYNO_OPTIMIZER_COST_MODEL_H_

#include <cstdint>

namespace dyno {

/// The paper's join cost model (§5.2), over estimated relation sizes in
/// bytes:
///
///   C(R ⋈r S) = c_rep·(|R| + |S|) + c_out·|R ⋈ S|
///   C(R ⋈b S) = c_probe·|R| + c_build·|S| + c_out·|R ⋈ S|,  |S| ≤ M_max
///   C(chain)  = c_probe·|R| + c_build·Σ|Si| + c_out·|R ⋈ S1 ⋈ … ⋈ Sk|
///
/// with c_rep ≫ c_probe > c_build > c_out, reflecting that the repartition
/// join sorts and reshuffles both inputs over the network while the
/// broadcast join streams the probe side through an in-memory hash table.
struct CostModelParams {
  double c_rep = 12.0;
  double c_probe = 1.5;
  double c_build = 1.0;
  double c_out = 0.5;

  /// Fixed cost (in the same abstract units) of launching one MapReduce
  /// job — startup latency plus the materialization round-trip a job
  /// boundary implies. The paper's formulas omit it (0.0 reproduces them
  /// verbatim); setting it biases ties toward plans with fewer jobs, which
  /// is what Jaql's chaining machinery fights for. During enumeration a
  /// repartition join always pays it, a broadcast join pays it only when
  /// its build side is itself a join result (a leaf build can ride along a
  /// chain); the post-chaining recost charges it per actual job.
  double c_job = 0.0;

  /// Maximum memory available to one task for hash-join build sides, and
  /// the hash-table expansion factor applied to raw build bytes. Mirror
  /// ClusterConfig so plan-time feasibility matches run-time enforcement.
  uint64_t max_memory_bytes = 1 << 20;
  double memory_factor = 1.5;

  /// Extra headroom demanded before broadcasting a build side whose size
  /// is an *estimate* (a multi-relation subtree rather than a measured
  /// relation). Join-cardinality estimates carry compounding error, and a
  /// broadcast that turns out not to fit kills the query — "most systems
  /// are quite conservative" (paper §6.4). 1.0 reproduces the paper's
  /// cost model verbatim; the default keeps 2x headroom on estimates.
  double estimated_build_margin = 4.0;

  /// Rule switches (ablations).
  bool enable_broadcast = true;
  bool enable_broadcast_chains = true;
  bool left_deep_only = false;

  /// Pipelined-MPP mode, used to model the DBMS-X baseline's *own* cost
  /// model: operators stream into each other without materialization, so a
  /// repartition join costs only the exchange of both inputs at their
  /// current width, and a broadcast join costs only replicating and
  /// building the hash table (the probe side flows through the pipeline
  /// for free). Under this model broadcasts of small relations are
  /// position-indifferent while exchanges get pricier as the row widens —
  /// so DBMS-X exchanges the narrow stream early and attaches broadcasts
  /// late, the paper's Fig. 3 plan shape.
  bool mpp_pipelined = false;

  bool BroadcastFits(double build_bytes) const {
    return build_bytes * memory_factor <=
           static_cast<double>(max_memory_bytes);
  }

  /// Feasibility check for a build side that is itself a join result.
  bool BroadcastFitsEstimated(double build_bytes) const {
    return BroadcastFits(build_bytes * estimated_build_margin);
  }

  double RepartitionCost(double left_bytes, double right_bytes,
                         double out_bytes) const {
    if (mpp_pipelined) return c_rep * (left_bytes + right_bytes);
    return c_rep * (left_bytes + right_bytes) + c_out * out_bytes;
  }

  double BroadcastCost(double probe_bytes, double build_bytes,
                       double out_bytes) const {
    if (mpp_pipelined) return c_build * build_bytes;
    return c_probe * probe_bytes + c_build * build_bytes + c_out * out_bytes;
  }
};

}  // namespace dyno

#endif  // DYNO_OPTIMIZER_COST_MODEL_H_
