#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

namespace dyno {

namespace {

// Subset masks over the relations of the join graph. 64-bit: with a
// narrower type, `(Mask(1) << n_) - 1` is undefined behavior once the graph
// reaches the type's width. ValidateJoinGraph caps graphs at 63 relations
// so the all-relations mask below always fits.
using Mask = uint64_t;

int Popcount(Mask m) { return __builtin_popcountll(m); }

/// Logical properties of a relation subset (a memo group).
struct GroupProps {
  double rows = 0.0;
  double avg_size = 0.0;
  double bytes = 0.0;
  /// NDV per join column present in the group, keyed by
  /// "<relation id>.<column>" (bare column names would let two relations
  /// that share a column name overwrite each other), capped by group
  /// cardinality.
  std::map<std::string, double> ndv;
};

/// The winning physical alternative for a group.
struct Winner {
  bool valid = false;
  double cost = std::numeric_limits<double>::infinity();
  Mask left_mask = 0;
  JoinMethod method = JoinMethod::kRepartition;
};

struct IndexedEdge {
  int a;
  int b;
  std::string a_col;
  std::string b_col;
};

/// Number of joins folded into their left neighbor's map-only job.
int CountChainCollapses(const PlanNode* node) {
  if (node == nullptr || node->IsLeaf()) return 0;
  return (node->chain_with_left ? 1 : 0) +
         CountChainCollapses(node->left.get()) +
         CountChainCollapses(node->right.get());
}

class Search {
 public:
  Search(const OptJoinGraph& graph, const CostModelParams& params)
      : graph_(graph), params_(params) {
    n_ = static_cast<int>(graph.relations.size());
    adjacency_.assign(n_, 0);
    for (const OptEdge& e : graph.edges) {
      IndexedEdge ie;
      ie.a = graph.IndexOf(e.left_id);
      ie.b = graph.IndexOf(e.right_id);
      ie.a_col = e.left_column;
      ie.b_col = e.right_column;
      edges_.push_back(ie);
      adjacency_[ie.a] |= Mask(1) << ie.b;
      adjacency_[ie.b] |= Mask(1) << ie.a;
    }
    for (const OptNonLocalPred& pred : graph.non_local_preds) {
      Mask m = 0;
      for (const std::string& id : pred.relation_ids) {
        m |= Mask(1) << graph.IndexOf(id);
      }
      pred_masks_.push_back(m);
    }
  }

  Result<OptimizeResult> Run() {
    Mask all = (Mask(1) << n_) - 1;
    if (!Connected(all)) {
      return Status::InvalidArgument(
          "join graph is disconnected (cartesian product required)");
    }
    double best = BestCost(all);
    if (!std::isfinite(best)) {
      return Status::Internal("no feasible plan found");
    }
    OptimizeResult out;
    out.plan = Extract(all);
    if (params_.enable_broadcast_chains) {
      ApplyBroadcastChaining(out.plan.get(), params_);
      report_.broadcast_chain_collapses = CountChainCollapses(out.plan.get());
    } else {
      RecostPlan(out.plan.get(), params_, /*chained_by_parent=*/false);
    }
    report_.best_cost = out.plan->est_cost;
    report_.groups_explored = static_cast<int>(props_.size());
    // Modeled client latency: the paper's Columbia call grows with the
    // number of alternatives; the 8-way initial optimization dominates
    // later (smaller) re-optimizations, matching Fig. 4.
    report_.simulated_ms =
        2 + static_cast<SimMillis>(10 * report_.expressions_costed);
    out.report = report_;
    return out;
  }

 private:
  bool Connected(Mask m) const {
    if (m == 0) return false;
    Mask start = m & (~m + 1);  // lowest bit
    Mask reached = start;
    Mask frontier = start;
    while (frontier != 0) {
      Mask next = 0;
      for (int i = 0; i < n_; ++i) {
        if (frontier & (Mask(1) << i)) next |= adjacency_[i] & m;
      }
      next &= ~reached;
      reached |= next;
      frontier = next;
    }
    return reached == m;
  }

  bool HasCrossEdge(Mask a, Mask b) const {
    for (const IndexedEdge& e : edges_) {
      Mask ma = Mask(1) << e.a;
      Mask mb = Mask(1) << e.b;
      if (((ma & a) && (mb & b)) || ((ma & b) && (mb & a))) return true;
    }
    return false;
  }

  /// Qualified ndv-map key for column `col` of relation index `rel`.
  std::string NdvKey(int rel, const std::string& col) const {
    return graph_.relations[rel].id + "." + col;
  }

  /// NDV of one relation's column as known to the group: the qualified map
  /// entry when present, else the base table statistic.
  double GroupNdv(const GroupProps& p, int rel,
                  const std::string& col) const {
    auto it = p.ndv.find(NdvKey(rel, col));
    if (it != p.ndv.end()) return it->second;
    return graph_.relations[rel].stats.ColumnNdv(col);
  }

  const GroupProps& Props(Mask m) {
    auto it = props_.find(m);
    if (it != props_.end()) return it->second;
    GroupProps p;
    p.rows = 1.0;
    for (int i = 0; i < n_; ++i) {
      if (!(m & (Mask(1) << i))) continue;
      const TableStats& stats = graph_.relations[i].stats;
      p.rows *= std::max(stats.cardinality, 1.0);
      p.avg_size += std::max(stats.avg_record_size, 1.0);
      for (const auto& [col, cs] : stats.columns) {
        // Unknown NDVs (<= 0) are left out; GroupNdv then falls back to
        // ColumnNdv, which substitutes the relation cardinality.
        if (cs.ndv <= 0.0) continue;
        p.ndv[NdvKey(i, col)] =
            std::min(cs.ndv, std::max(stats.cardinality, 1.0));
      }
    }
    // Textbook join selectivity per connecting edge: 1 / max(ndv_a, ndv_b).
    // Multiple edges between the *same* relation pair form a composite key
    // (Q9's ps⋈l on partkey+suppkey); their columns are correlated, so
    // multiplying full per-edge selectivities grossly underestimates.
    // Apply exponential backoff: the most selective edge counts fully, the
    // i-th additional edge with exponent 1/2^i (SQL Server-style).
    std::map<std::pair<int, int>, std::vector<double>> denom_by_pair;
    for (const IndexedEdge& e : edges_) {
      if ((m & (Mask(1) << e.a)) && (m & (Mask(1) << e.b))) {
        double ndv_a = GroupNdv(p, e.a, e.a_col);
        double ndv_b = GroupNdv(p, e.b, e.b_col);
        denom_by_pair[{std::min(e.a, e.b), std::max(e.a, e.b)}].push_back(
            std::max({ndv_a, ndv_b, 1.0}));
      }
    }
    for (auto& [pair, denoms] : denom_by_pair) {
      std::sort(denoms.begin(), denoms.end(), std::greater<double>());
      double exponent = 1.0;
      for (double d : denoms) {
        p.rows /= std::pow(d, exponent);
        exponent *= 0.5;
      }
    }
    // Non-local predicates covered by this group.
    for (size_t i = 0; i < pred_masks_.size(); ++i) {
      if ((pred_masks_[i] & m) == pred_masks_[i]) {
        p.rows *= graph_.non_local_preds[i].assumed_selectivity;
      }
    }
    p.rows = std::max(p.rows, 1.0);
    for (auto& [col, ndv] : p.ndv) ndv = std::min(ndv, p.rows);
    p.bytes = p.rows * p.avg_size;
    return props_.emplace(m, std::move(p)).first->second;
  }

  double BestCost(Mask m) {
    if (Popcount(m) == 1) return 0.0;
    auto it = winners_.find(m);
    if (it != winners_.end()) return it->second.cost;

    Winner w;
    const GroupProps& out_props = Props(m);
    // Enumerate ordered splits (sub = left/probe side).
    for (Mask sub = (m - 1) & m; sub != 0; sub = (sub - 1) & m) {
      Mask rest = m & ~sub;
      if (params_.left_deep_only && Popcount(rest) != 1) continue;
      if (!HasCrossEdge(sub, rest)) continue;  // never a cartesian product
      if (!Connected(sub) || !Connected(rest)) continue;
      double left_cost = BestCost(sub);
      double right_cost = BestCost(rest);
      if (!std::isfinite(left_cost) || !std::isfinite(right_cost)) continue;
      const GroupProps& lp = Props(sub);
      const GroupProps& rp = Props(rest);

      // Repartition alternative. SpillCost is the memory model's charge for
      // reduce-side sort state overflowing the task budget (0 unless the
      // driver adopted an enforcing cluster memory model).
      ++report_.expressions_costed;
      double rep_input = lp.bytes + rp.bytes;
      double rep = left_cost + right_cost + params_.c_job +
                   params_.RepartitionCost(lp.bytes, rp.bytes,
                                           out_props.bytes) +
                   params_.SpillCost(rep_input,
                                     params_.EstimatedReducers(rep_input));
      if (rep < w.cost) {
        w = {true, rep, sub, JoinMethod::kRepartition};
      }
      // Broadcast alternative (rest as build side). Measured single
      // relations are trusted as-is; estimated multi-relation builds must
      // clear the safety margin.
      bool build_fits = Popcount(rest) == 1
                            ? params_.BroadcastFits(rp.bytes)
                            : params_.BroadcastFitsEstimated(rp.bytes);
      if (params_.enable_broadcast && !build_fits) {
        ++report_.plans_pruned_memory;
      }
      if (params_.enable_broadcast && build_fits) {
        ++report_.expressions_costed;
        // A join-result build side forces its own materialization job; a
        // single-relation build can ride along a broadcast chain.
        double job_penalty = Popcount(rest) > 1 ? params_.c_job : 0.0;
        double bc = left_cost + right_cost + job_penalty +
                    params_.BroadcastCost(lp.bytes, rp.bytes,
                                          out_props.bytes);
        if (bc < w.cost) {
          w = {true, bc, sub, JoinMethod::kBroadcast};
        }
      }
    }
    winners_[m] = w;
    return w.cost;
  }

  std::unique_ptr<PlanNode> Extract(Mask m) {
    const GroupProps& props = Props(m);
    if (Popcount(m) == 1) {
      int i = __builtin_ctzll(m);
      auto leaf = PlanNode::Leaf(graph_.relations[i].id);
      leaf->est_rows = props.rows;
      leaf->est_bytes = props.bytes;
      leaf->est_cost = 0.0;
      return leaf;
    }
    const Winner& w = winners_.at(m);
    Mask rest = m & ~w.left_mask;
    auto left = Extract(w.left_mask);
    auto right = Extract(rest);

    std::vector<std::pair<std::string, std::string>> key_pairs;
    for (const IndexedEdge& e : edges_) {
      Mask ma = Mask(1) << e.a;
      Mask mb = Mask(1) << e.b;
      if ((ma & w.left_mask) && (mb & rest)) {
        key_pairs.emplace_back(e.a_col, e.b_col);
      } else if ((mb & w.left_mask) && (ma & rest)) {
        key_pairs.emplace_back(e.b_col, e.a_col);
      }
    }
    auto node = PlanNode::Join(w.method, std::move(left), std::move(right),
                               std::move(key_pairs));
    // Non-local predicates that become applicable exactly at this join.
    std::vector<ExprPtr> preds;
    for (size_t i = 0; i < pred_masks_.size(); ++i) {
      Mask pm = pred_masks_[i];
      bool covered_here = (pm & m) == pm;
      bool covered_below =
          ((pm & w.left_mask) == pm) || ((pm & rest) == pm);
      if (covered_here && !covered_below) {
        preds.push_back(graph_.non_local_preds[i].expr);
      }
    }
    node->post_filter = Conjoin(preds);
    node->est_rows = props.rows;
    node->est_bytes = props.bytes;
    node->est_cost = w.cost;
    return node;
  }

  const OptJoinGraph& graph_;
  CostModelParams params_;
  int n_ = 0;
  std::vector<Mask> adjacency_;
  std::vector<IndexedEdge> edges_;
  std::vector<Mask> pred_masks_;
  std::unordered_map<Mask, GroupProps> props_;
  std::unordered_map<Mask, Winner> winners_;
  OptimizerReport report_;
};

/// Bottom-up chain marking; returns the accumulated in-memory build bytes
/// of the broadcast chain ending at `node`, or a negative value when `node`
/// cannot be chained into a parent.
double ChainPass(PlanNode* node, const CostModelParams& params) {
  if (node->IsLeaf()) return -1.0;
  double left_chain = ChainPass(node->left.get(), params);
  ChainPass(node->right.get(), params);
  if (node->method != JoinMethod::kBroadcast) return -1.0;
  double own = node->right->est_bytes * params.memory_factor;
  if (left_chain >= 0.0 &&
      own + left_chain <= static_cast<double>(params.max_memory_bytes)) {
    node->chain_with_left = true;
    return own + left_chain;
  }
  node->chain_with_left = false;
  return own;
}

}  // namespace

Result<OptimizeResult> JoinOptimizer::Optimize(
    const OptJoinGraph& graph) const {
  DYNO_RETURN_IF_ERROR(ValidateJoinGraph(graph));
  if (graph.relations.size() == 1) {
    // Degenerate single-relation block: a bare leaf.
    OptimizeResult out;
    out.plan = PlanNode::Leaf(graph.relations[0].id);
    out.plan->est_rows = graph.relations[0].stats.cardinality;
    out.plan->est_bytes = graph.relations[0].stats.SizeBytes();
    out.report.simulated_ms = 1;
    return out;
  }
  Search search(graph, params_);
  return search.Run();
}

void ApplyBroadcastChaining(PlanNode* root, const CostModelParams& params) {
  ChainPass(root, params);
  RecostPlan(root, params, /*chained_by_parent=*/false);
}

double RecostPlan(PlanNode* node, const CostModelParams& params,
                  bool chained_by_parent) {
  if (node->IsLeaf()) {
    node->est_cost = 0.0;
    return 0.0;
  }
  double left_cost =
      RecostPlan(node->left.get(), params, node->chain_with_left);
  double right_cost =
      RecostPlan(node->right.get(), params, /*chained_by_parent=*/false);
  double own = 0.0;
  if (node->method == JoinMethod::kRepartition) {
    double rep_input = node->left->est_bytes + node->right->est_bytes;
    own = params.c_job +
          params.RepartitionCost(node->left->est_bytes,
                                 node->right->est_bytes, node->est_bytes) +
          params.SpillCost(rep_input, params.EstimatedReducers(rep_input));
  } else {
    own = params.c_build * node->right->est_bytes;
    if (!node->chain_with_left) {
      own += params.c_probe * node->left->est_bytes;
    }
    if (!chained_by_parent) {
      // Head of a (possibly single-join) chain: one map-only job.
      own += params.c_out * node->est_bytes + params.c_job;
    }
  }
  node->est_cost = left_cost + right_cost + own;
  return node->est_cost;
}

}  // namespace dyno
