#include "columnar/knobs.h"

#include <cstdlib>

#include "common/string_util.h"

namespace dyno::columnar {

namespace {

/// Re-read on every call (tests toggle the knobs between runs); the call
/// sites are per-scan / per-table-write, never per-row.
bool BoolKnob(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return false;
  return EnvInt64OrDie(name, value, 0, 1) == 1;
}

}  // namespace

bool ColumnarEnabled() { return BoolKnob("DYNO_COLUMNAR"); }

bool ZoneMapsEnabled() { return BoolKnob("DYNO_ZONE_MAPS"); }

}  // namespace dyno::columnar
