#ifndef DYNO_COLUMNAR_KNOBS_H_
#define DYNO_COLUMNAR_KNOBS_H_

namespace dyno::columnar {

/// `DYNO_COLUMNAR=1`: base tables are written as columnar batches and leaf
/// scans evaluate their pushed-down predicates batch-at-a-time. Off (the
/// default) keeps the per-row format everywhere — the oracle the columnar
/// path is tested against. Strict parsing: anything but 0/1 aborts.
bool ColumnarEnabled();

/// `DYNO_ZONE_MAPS=1`: leaf scans consult per-split zone maps and skip
/// splits no row of which can satisfy the scan predicate. Independent of
/// DYNO_COLUMNAR (zone maps are stamped on row splits too). Strict parsing.
bool ZoneMapsEnabled();

}  // namespace dyno::columnar

#endif  // DYNO_COLUMNAR_KNOBS_H_
