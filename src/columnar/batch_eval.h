#ifndef DYNO_COLUMNAR_BATCH_EVAL_H_
#define DYNO_COLUMNAR_BATCH_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "json/value.h"

namespace dyno::columnar {

/// Fraction of a conjunct's declared CPU cost charged per row when it runs
/// vectorized (tight compare loop over a column instead of a tree-walking
/// Eval). The discount is what makes the columnar scan path cheaper on the
/// simulator's clock, mirroring the real-world win of batch evaluation.
constexpr double kVectorizedCpuFraction = 0.25;

/// Outcome of evaluating a filter over one batch of rows.
struct BatchFilterResult {
  /// keep[i] != 0 iff rows[i] passes the filter. Size == rows.size().
  std::vector<uint8_t> keep;
  /// CPU units to charge for the whole evaluation (vectorized factors at
  /// kVectorizedCpuFraction of their cost, residual factors at full cost on
  /// the rows still selected when they run).
  double cpu_units = 0.0;
  /// Row×factor evaluations that ran vectorized (observability only).
  uint64_t vectorized_evals = 0;
};

/// Batch-at-a-time filter evaluation: the filter's conjunction is split
/// into factors; `column <op> literal` factors run as selection-vector
/// compare loops, everything else (UDFs, nested paths, OR trees, ...)
/// falls back to Expr::Eval on the rows that survived the vectorized
/// factors. Result bits are identical to evaluating the filter row-by-row
/// (conjunction semantics: every factor must be truthy).
///
/// `filter` must be non-null.
Result<BatchFilterResult> EvalFilterOverRows(const ExprPtr& filter,
                                             const std::vector<Value>& rows);

}  // namespace dyno::columnar

#endif  // DYNO_COLUMNAR_BATCH_EVAL_H_
