#include "columnar/column.h"

#include <cstring>
#include <utility>

#include "common/crc32c.h"

namespace dyno::columnar {

namespace {

constexpr char kMagic[4] = {'C', 'B', '0', '1'};
constexpr uint8_t kFlagIrregular = 0x01;
/// Name of the single column the irregular fallback stores rows under.
constexpr const char* kRawRowColumn = "__row";

void EncodeVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> DecodeVarint(std::string_view data, size_t* offset) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*offset >= data.size()) {
      return Status::DataLoss("columnar batch: truncated varint");
    }
    uint8_t b = static_cast<uint8_t>(data[(*offset)++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  return Status::DataLoss("columnar batch: malformed varint");
}

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void EncodeDoubleLe(double d, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

Result<double> DecodeDoubleLe(std::string_view data, size_t* offset) {
  if (*offset + 8 > data.size()) {
    return Status::DataLoss("columnar batch: truncated double");
  }
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(data[*offset + i]))
            << (8 * i);
  }
  *offset += 8;
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// The narrowest ColumnType covering every set value of a column.
ColumnType PickType(const std::vector<Value>& values) {
  if (values.empty()) return ColumnType::kMixed;
  Value::Type first = values[0].type();
  for (const Value& v : values) {
    if (v.type() != first) return ColumnType::kMixed;
  }
  switch (first) {
    case Value::Type::kBool: return ColumnType::kBool;
    case Value::Type::kInt: return ColumnType::kInt;
    case Value::Type::kDouble: return ColumnType::kDouble;
    case Value::Type::kString: return ColumnType::kString;
    default: return ColumnType::kMixed;
  }
}

void EncodeTypedValue(ColumnType type, const Value& v, std::string* out) {
  switch (type) {
    case ColumnType::kBool:
      out->push_back(v.bool_value() ? 1 : 0);
      break;
    case ColumnType::kInt:
      EncodeVarint(ZigzagEncode(v.int_value()), out);
      break;
    case ColumnType::kDouble:
      EncodeDoubleLe(v.double_value(), out);
      break;
    case ColumnType::kString: {
      const std::string& s = v.string_value();
      EncodeVarint(s.size(), out);
      out->append(s);
      break;
    }
    case ColumnType::kMixed:
      v.EncodeTo(out);
      break;
  }
}

Result<Value> DecodeTypedValue(ColumnType type, std::string_view data,
                               size_t* offset) {
  switch (type) {
    case ColumnType::kBool: {
      if (*offset >= data.size()) {
        return Status::DataLoss("columnar batch: truncated bool");
      }
      uint8_t b = static_cast<uint8_t>(data[(*offset)++]);
      if (b > 1) return Status::DataLoss("columnar batch: bad bool byte");
      return Value::Bool(b == 1);
    }
    case ColumnType::kInt: {
      DYNO_ASSIGN_OR_RETURN(uint64_t zz, DecodeVarint(data, offset));
      return Value::Int(ZigzagDecode(zz));
    }
    case ColumnType::kDouble: {
      DYNO_ASSIGN_OR_RETURN(double d, DecodeDoubleLe(data, offset));
      return Value::Double(d);
    }
    case ColumnType::kString: {
      DYNO_ASSIGN_OR_RETURN(uint64_t len, DecodeVarint(data, offset));
      if (len > data.size() - *offset) {
        return Status::DataLoss("columnar batch: truncated string");
      }
      Value v = Value::String(std::string(data.substr(*offset, len)));
      *offset += len;
      return v;
    }
    case ColumnType::kMixed: {
      Result<Value> v = Value::Decode(data, offset);
      if (!v.ok()) {
        return Status::DataLoss("columnar batch: bad nested value: " +
                                v.status().message());
      }
      return *std::move(v);
    }
  }
  return Status::DataLoss("columnar batch: unknown column type");
}

}  // namespace

ColumnBatch ColumnBatch::FromRows(const std::vector<Value>& rows) {
  ColumnBatch batch;
  batch.num_rows_ = rows.size();

  // Regular attempt: every row must be a struct whose field sequence is a
  // subsequence (in order, no duplicates) of one shared schema built
  // incrementally. Anything else falls back to the irregular encoding.
  bool regular = true;
  std::vector<std::string> schema;
  std::vector<std::vector<uint8_t>> presence;   // [col][row]
  std::vector<std::vector<Value>> values;       // [col] set values
  auto find_column = [&schema](const std::string& name) -> int {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  for (size_t r = 0; r < rows.size() && regular; ++r) {
    const Value& row = rows[r];
    if (row.type() != Value::Type::kStruct) {
      regular = false;
      break;
    }
    int last_index = -1;
    for (const auto& [name, field] : row.fields()) {
      int idx = find_column(name);
      if (idx < 0) {
        // New column: append to the schema; earlier rows are kAbsent.
        idx = static_cast<int>(schema.size());
        schema.push_back(name);
        presence.emplace_back(r, static_cast<uint8_t>(Presence::kAbsent));
        values.emplace_back();
      }
      if (idx <= last_index) {
        // Out-of-schema-order field, or a duplicate name in this row.
        regular = false;
        break;
      }
      last_index = idx;
      presence[idx].push_back(static_cast<uint8_t>(
          field.is_null() ? Presence::kNull : Presence::kSet));
      if (!field.is_null()) values[idx].push_back(field);
    }
    if (!regular) break;
    // Columns this row does not mention are absent in it.
    for (auto& p : presence) {
      if (p.size() == r) p.push_back(static_cast<uint8_t>(Presence::kAbsent));
    }
  }

  if (!regular) {
    batch.irregular_ = true;
    batch.raw_rows_ = rows;
    return batch;
  }
  batch.columns_.reserve(schema.size());
  for (size_t c = 0; c < schema.size(); ++c) {
    ColumnVector col;
    col.name = std::move(schema[c]);
    col.presence = std::move(presence[c]);
    col.values = std::move(values[c]);
    batch.columns_.push_back(std::move(col));
  }
  return batch;
}

void ColumnBatch::EncodeTo(std::string* out) const {
  const size_t frame_start = out->size();
  out->append(kMagic, sizeof(kMagic));
  out->push_back(static_cast<char>(irregular_ ? kFlagIrregular : 0));
  EncodeVarint(num_rows_, out);

  if (irregular_) {
    EncodeVarint(1, out);  // One pseudo-column of whole rows.
    EncodeVarint(std::strlen(kRawRowColumn), out);
    out->append(kRawRowColumn);
    out->push_back(static_cast<char>(ColumnType::kMixed));
    out->append(num_rows_, static_cast<char>(Presence::kSet));
    EncodeVarint(raw_rows_.size(), out);
    for (const Value& row : raw_rows_) row.EncodeTo(out);
  } else {
    EncodeVarint(columns_.size(), out);
    for (const ColumnVector& col : columns_) {
      EncodeVarint(col.name.size(), out);
      out->append(col.name);
      ColumnType type = PickType(col.values);
      out->push_back(static_cast<char>(type));
      out->append(reinterpret_cast<const char*>(col.presence.data()),
                  col.presence.size());
      EncodeVarint(col.values.size(), out);
      for (const Value& v : col.values) EncodeTypedValue(type, v, out);
    }
  }
  uint32_t crc = Crc32c(out->data() + frame_start, out->size() - frame_start);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
}

Result<ColumnBatch> ColumnBatch::Decode(std::string_view data) {
  // Verify the frame checksum before trusting a single byte of structure.
  if (data.size() < sizeof(kMagic) + 1 + 4) {
    return Status::DataLoss("columnar batch: frame too short");
  }
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<uint8_t>(data[data.size() - 4 + i]))
              << (8 * i);
  }
  std::string_view frame = data.substr(0, data.size() - 4);
  if (Crc32c(frame) != stored) {
    return Status::DataLoss("columnar batch: frame checksum mismatch");
  }
  if (std::memcmp(frame.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("columnar batch: bad magic");
  }
  size_t offset = sizeof(kMagic);
  uint8_t flags = static_cast<uint8_t>(frame[offset++]);
  if ((flags & ~kFlagIrregular) != 0) {
    return Status::DataLoss("columnar batch: unknown flags");
  }

  ColumnBatch batch;
  batch.irregular_ = (flags & kFlagIrregular) != 0;
  DYNO_ASSIGN_OR_RETURN(batch.num_rows_, DecodeVarint(frame, &offset));
  DYNO_ASSIGN_OR_RETURN(uint64_t num_cols, DecodeVarint(frame, &offset));
  if (num_cols > frame.size()) {
    return Status::DataLoss("columnar batch: column count exceeds frame");
  }
  if (batch.num_rows_ > frame.size() && batch.num_rows_ > 0) {
    // Every row costs at least one presence byte per column (or one value
    // byte when irregular), so a count beyond the frame size is corrupt.
    return Status::DataLoss("columnar batch: row count exceeds frame");
  }
  if (batch.irregular_ && num_cols != 1) {
    return Status::DataLoss("columnar batch: irregular frame column count");
  }

  for (uint64_t c = 0; c < num_cols; ++c) {
    DYNO_ASSIGN_OR_RETURN(uint64_t name_len, DecodeVarint(frame, &offset));
    if (name_len > frame.size() - offset) {
      return Status::DataLoss("columnar batch: truncated column name");
    }
    ColumnVector col;
    col.name = std::string(frame.substr(offset, name_len));
    offset += name_len;
    if (offset >= frame.size()) {
      return Status::DataLoss("columnar batch: truncated column type");
    }
    uint8_t type_byte = static_cast<uint8_t>(frame[offset++]);
    if (type_byte > static_cast<uint8_t>(ColumnType::kMixed)) {
      return Status::DataLoss("columnar batch: bad column type");
    }
    ColumnType type = static_cast<ColumnType>(type_byte);
    if (batch.num_rows_ > frame.size() - offset) {
      return Status::DataLoss("columnar batch: truncated presence run");
    }
    col.presence.resize(batch.num_rows_);
    uint64_t want_set = 0;
    for (uint64_t r = 0; r < batch.num_rows_; ++r) {
      uint8_t p = static_cast<uint8_t>(frame[offset + r]);
      if (p > static_cast<uint8_t>(Presence::kSet)) {
        return Status::DataLoss("columnar batch: bad presence byte");
      }
      col.presence[r] = p;
      if (p == static_cast<uint8_t>(Presence::kSet)) ++want_set;
    }
    offset += batch.num_rows_;
    DYNO_ASSIGN_OR_RETURN(uint64_t set_count, DecodeVarint(frame, &offset));
    if (set_count != want_set) {
      return Status::DataLoss("columnar batch: set count mismatch");
    }
    col.values.reserve(set_count);
    for (uint64_t i = 0; i < set_count; ++i) {
      DYNO_ASSIGN_OR_RETURN(Value v, DecodeTypedValue(type, frame, &offset));
      if (!batch.irregular_ && v.is_null()) {
        // Set slots never hold null (null is a presence state); a null here
        // can only come from a damaged frame.
        return Status::DataLoss("columnar batch: null in set slot");
      }
      col.values.push_back(std::move(v));
    }
    if (batch.irregular_) {
      if (col.name != kRawRowColumn || want_set != batch.num_rows_ ||
          type != ColumnType::kMixed) {
        return Status::DataLoss("columnar batch: malformed irregular frame");
      }
      batch.raw_rows_ = std::move(col.values);
    } else {
      batch.columns_.push_back(std::move(col));
    }
  }
  if (offset != frame.size()) {
    return Status::DataLoss("columnar batch: trailing bytes in frame");
  }
  return batch;
}

std::vector<Value> ColumnBatch::ToRows() const {
  if (irregular_) return raw_rows_;
  std::vector<Value> rows;
  rows.reserve(num_rows_);
  std::vector<size_t> cursor(columns_.size(), 0);
  for (uint64_t r = 0; r < num_rows_; ++r) {
    StructFields fields;
    for (size_t c = 0; c < columns_.size(); ++c) {
      const ColumnVector& col = columns_[c];
      switch (static_cast<Presence>(col.presence[r])) {
        case Presence::kAbsent:
          break;
        case Presence::kNull:
          fields.emplace_back(col.name, Value::Null());
          break;
        case Presence::kSet:
          fields.emplace_back(col.name, col.values[cursor[c]++]);
          break;
      }
    }
    rows.push_back(Value::Struct(std::move(fields)));
  }
  return rows;
}

}  // namespace dyno::columnar
