#ifndef DYNO_COLUMNAR_ZONE_MAP_H_
#define DYNO_COLUMNAR_ZONE_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "expr/expr.h"
#include "json/value.h"

namespace dyno::columnar {

/// Min/max synopsis of one top-level column within one split. The range
/// covers the *non-null* values only (min/max are meaningless otherwise);
/// `has_null_or_absent` records whether any row evaluates the column to
/// null, which matters because `NOT (col < lit)` is TRUE on such rows under
/// the engine's SQL-ish null semantics (comparisons on null are false, NOT
/// flips that to true).
struct ColumnZone {
  std::string name;
  Value min_value;
  Value max_value;
  uint64_t non_null_rows = 0;
  bool has_null_or_absent = false;
};

/// Per-split zone map: one ColumnZone per top-level column seen in the
/// split, stamped by the table writer as rows are appended. A zone map is
/// only `trackable()` when every row was a plain struct with at most
/// kMaxColumns distinct fields — otherwise pruning is disabled for the
/// split (never unsound, just not helpful).
class ZoneMap {
 public:
  static constexpr size_t kMaxColumns = 64;

  uint64_t num_rows() const { return num_rows_; }
  bool trackable() const { return trackable_; }
  const std::vector<ColumnZone>& zones() const { return zones_; }

  /// The zone for `name`, or nullptr when no row of the split has the
  /// column (in which case every comparison against it is false).
  const ColumnZone* FindColumn(std::string_view name) const;

 private:
  friend class ZoneMapBuilder;
  uint64_t num_rows_ = 0;
  bool trackable_ = true;
  std::vector<ColumnZone> zones_;
};

/// Streaming builder: Observe() every row of a split, then Build().
class ZoneMapBuilder {
 public:
  void Observe(const Value& row);
  ZoneMap Build();
  void Reset();

 private:
  ZoneMap map_;
};

/// Conservative split-pruning test: false only when NO row of a split
/// described by `zone_map` can satisfy `filter` (so the split may be
/// skipped without reading it); true whenever the zone map cannot prove
/// that. Sound for the engine's evaluation semantics: comparisons on null
/// are false, AND/OR/NOT treat non-bool results as false, and opaque
/// sub-expressions (UDFs, nested paths, arithmetic, cross-column
/// comparisons) are never reasoned about — any factor containing one keeps
/// the split.
bool ZoneMapMayMatch(const ZoneMap& zone_map, const Expr& filter);

}  // namespace dyno::columnar

#endif  // DYNO_COLUMNAR_ZONE_MAP_H_
