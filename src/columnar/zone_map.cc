#include "columnar/zone_map.h"

#include <utility>

namespace dyno::columnar {

const ColumnZone* ZoneMap::FindColumn(std::string_view name) const {
  for (const ColumnZone& zone : zones_) {
    if (zone.name == name) return &zone;
  }
  return nullptr;
}

void ZoneMapBuilder::Observe(const Value& row) {
  ++map_.num_rows_;
  if (!map_.trackable_) return;
  if (row.type() != Value::Type::kStruct) {
    map_.trackable_ = false;
    map_.zones_.clear();
    return;
  }
  for (const auto& [name, field] : row.fields()) {
    ColumnZone* zone = nullptr;
    bool duplicate = false;
    for (ColumnZone& z : map_.zones_) {
      if (z.name == name) {
        zone = &z;
        break;
      }
    }
    // Only the first occurrence of a name counts (FindField semantics).
    // Linear scans are fine at kMaxColumns scale.
    if (zone != nullptr) {
      const StructFields& fields = row.fields();
      for (const auto& [prior_name, prior_field] : fields) {
        if (&prior_field == &field) break;
        if (prior_name == name) {
          duplicate = true;
          break;
        }
      }
    }
    if (duplicate) continue;
    if (zone == nullptr) {
      if (map_.zones_.size() >= ZoneMap::kMaxColumns) {
        map_.trackable_ = false;
        map_.zones_.clear();
        return;
      }
      map_.zones_.push_back(ColumnZone{});
      zone = &map_.zones_.back();
      zone->name = name;
      // The column was absent in every earlier row of the split.
      zone->has_null_or_absent = map_.num_rows_ > 1;
    }
    if (field.is_null()) {
      zone->has_null_or_absent = true;
    } else {
      if (zone->non_null_rows == 0) {
        zone->min_value = field;
        zone->max_value = field;
      } else {
        if (field.Compare(zone->min_value) < 0) zone->min_value = field;
        if (field.Compare(zone->max_value) > 0) zone->max_value = field;
      }
      ++zone->non_null_rows;
    }
  }
  // Columns this row does not mention evaluate to null in it.
  for (ColumnZone& zone : map_.zones_) {
    if (zone.has_null_or_absent) continue;
    if (row.FindField(zone.name) == nullptr) zone.has_null_or_absent = true;
  }
}

ZoneMap ZoneMapBuilder::Build() {
  ZoneMap out = std::move(map_);
  map_ = ZoneMap{};
  return out;
}

void ZoneMapBuilder::Reset() { map_ = ZoneMap{}; }

namespace {

/// Over-approximation of a predicate's truth set over one split: can any
/// row evaluate truthy / can any row evaluate falsy (where "falsy" covers
/// null and non-bool results — the engine's EvalFilter treats those as
/// false, and NOT maps them to true). Both flags err toward `true`.
struct TriState {
  bool can_true = true;
  bool can_false = true;
};

TriState Unknown() { return TriState{true, true}; }

TriState EvalComparison(const ZoneMap& zm, const std::string& column,
                        Expr::CompareOp op, const Value& literal) {
  if (literal.is_null()) {
    // `col <op> null` is false for every row.
    return TriState{false, true};
  }
  const ColumnZone* zone = zm.FindColumn(column);
  if (zone == nullptr) {
    // No row of the split has the column: it evaluates to null everywhere,
    // so the comparison is false everywhere.
    return TriState{false, true};
  }
  if (zone->non_null_rows == 0) return TriState{false, true};

  // All non-null values v of the column satisfy min <= v <= max under the
  // total value order, so range tests against the literal bound existence.
  const int cmp_min = zone->min_value.Compare(literal);
  const int cmp_max = zone->max_value.Compare(literal);
  const bool single_point = cmp_min == 0 && cmp_max == 0;
  TriState t;
  switch (op) {
    case Expr::CompareOp::kEq:
      t.can_true = cmp_min <= 0 && cmp_max >= 0;
      t.can_false = !single_point;
      break;
    case Expr::CompareOp::kNe:
      t.can_true = !single_point;
      t.can_false = cmp_min <= 0 && cmp_max >= 0;
      break;
    case Expr::CompareOp::kLt:
      t.can_true = cmp_min < 0;
      t.can_false = cmp_max >= 0;
      break;
    case Expr::CompareOp::kLe:
      t.can_true = cmp_min <= 0;
      t.can_false = cmp_max > 0;
      break;
    case Expr::CompareOp::kGt:
      t.can_true = cmp_max > 0;
      t.can_false = cmp_min <= 0;
      break;
    case Expr::CompareOp::kGe:
      t.can_true = cmp_max >= 0;
      t.can_false = cmp_min < 0;
      break;
  }
  // Rows where the column is null/absent evaluate the comparison to false.
  if (zone->has_null_or_absent) t.can_false = true;
  return t;
}

TriState EvalPrune(const ZoneMap& zm, const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kLiteral: {
      Result<Value> v = e.Eval(Value::Null());
      if (!v.ok()) return Unknown();
      bool truthy = v->type() == Value::Type::kBool && v->bool_value();
      return TriState{truthy, !truthy};
    }
    case Expr::Kind::kCompare: {
      std::string column;
      Expr::CompareOp op;
      Value literal;
      if (e.AsSimpleComparison(&column, &op, &literal)) {
        return EvalComparison(zm, column, op, literal);
      }
      // Nested paths, column-to-column, arithmetic sides, UDF sides: the
      // zone map has nothing to say.
      return Unknown();
    }
    case Expr::Kind::kLogical: {
      Expr::LogicalOp op;
      const Expr* lhs = nullptr;
      const Expr* rhs = nullptr;
      if (!e.AsLogical(&op, &lhs, &rhs)) return Unknown();
      TriState l = EvalPrune(zm, *lhs);
      switch (op) {
        case Expr::LogicalOp::kNot:
          return TriState{l.can_false, l.can_true};
        case Expr::LogicalOp::kAnd: {
          TriState r = EvalPrune(zm, *rhs);
          return TriState{l.can_true && r.can_true,
                          l.can_false || r.can_false};
        }
        case Expr::LogicalOp::kOr: {
          TriState r = EvalPrune(zm, *rhs);
          return TriState{l.can_true || r.can_true,
                          l.can_false && r.can_false};
        }
      }
      return Unknown();
    }
    case Expr::Kind::kPath:
    case Expr::Kind::kArith:
    case Expr::Kind::kUdf:
      // Opaque to the zone map. In particular a UDF's selectivity is
      // invisible by design (the paper's information asymmetry), so a UDF
      // anywhere in a factor keeps every split.
      return Unknown();
  }
  return Unknown();
}

}  // namespace

bool ZoneMapMayMatch(const ZoneMap& zone_map, const Expr& filter) {
  if (!zone_map.trackable() || zone_map.num_rows() == 0) return true;
  return EvalPrune(zone_map, filter).can_true;
}

}  // namespace dyno::columnar
