#include "columnar/batch_eval.h"

#include <string>
#include <utility>

namespace dyno::columnar {

namespace {

bool CompareMatches(Expr::CompareOp op, int cmp) {
  switch (op) {
    case Expr::CompareOp::kEq: return cmp == 0;
    case Expr::CompareOp::kNe: return cmp != 0;
    case Expr::CompareOp::kLt: return cmp < 0;
    case Expr::CompareOp::kLe: return cmp <= 0;
    case Expr::CompareOp::kGt: return cmp > 0;
    case Expr::CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

}  // namespace

Result<BatchFilterResult> EvalFilterOverRows(const ExprPtr& filter,
                                             const std::vector<Value>& rows) {
  BatchFilterResult result;
  result.keep.assign(rows.size(), 1);
  if (filter == nullptr) {
    return Status::InvalidArgument("batch filter eval needs a filter");
  }

  std::vector<ExprPtr> factors;
  DecomposeConjunction(filter, &factors);

  // Vectorizable factors first (selection-vector cascade), then the
  // residual factors via Expr::Eval on whatever is still selected. Keep
  // bits match row-at-a-time evaluation exactly: a conjunction is truthy
  // iff every factor is, and comparison factors are pure.
  struct SimpleFactor {
    std::string column;
    Expr::CompareOp op;
    Value literal;
    double cpu = 0.0;
  };
  std::vector<SimpleFactor> simple;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& factor : factors) {
    SimpleFactor sf;
    if (factor->AsSimpleComparison(&sf.column, &sf.op, &sf.literal)) {
      sf.cpu = factor->CpuCost();
      simple.push_back(std::move(sf));
    } else {
      residual.push_back(factor);
    }
  }

  uint64_t selected = rows.size();
  for (const SimpleFactor& sf : simple) {
    result.cpu_units +=
        kVectorizedCpuFraction * sf.cpu * static_cast<double>(selected);
    result.vectorized_evals += selected;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!result.keep[i]) continue;
      const Value* v = rows[i].FindField(sf.column);
      // SQL-ish null semantics: a comparison on null/missing is false.
      const bool pass = v != nullptr && !v->is_null() && !sf.literal.is_null()
                        && CompareMatches(sf.op, v->Compare(sf.literal));
      if (!pass) {
        result.keep[i] = 0;
        --selected;
      }
    }
  }
  for (const ExprPtr& factor : residual) {
    const double cpu = factor->CpuCost();
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!result.keep[i]) continue;
      result.cpu_units += cpu;
      DYNO_ASSIGN_OR_RETURN(Value v, factor->Eval(rows[i]));
      if (v.type() != Value::Type::kBool || !v.bool_value()) {
        result.keep[i] = 0;
        --selected;
      }
    }
  }
  return result;
}

}  // namespace dyno::columnar
