#ifndef DYNO_COLUMNAR_COLUMN_H_
#define DYNO_COLUMNAR_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "json/value.h"

namespace dyno::columnar {

/// Physical type of one column vector. Scalar columns hold their values in
/// a typed payload; kMixed falls back to whole `Value` encodings (nested
/// structs/arrays, or a column whose rows disagree on scalar type).
enum class ColumnType : uint8_t {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kMixed = 4,
};

/// Per-row presence of a column. JSON rows are self-describing, so "the
/// field is missing" and "the field is explicitly null" are different rows;
/// both must survive a round trip through the batch format byte-exactly.
enum class Presence : uint8_t {
  kAbsent = 0,
  kNull = 1,
  kSet = 2,
};

/// One decoded column: a presence run plus the set values in row order.
struct ColumnVector {
  std::string name;
  /// Presence::kAbsent/kNull/kSet per row (size == batch row count).
  std::vector<uint8_t> presence;
  /// The kSet values only, in row order. Values here are never null.
  std::vector<Value> values;
};

/// A batch of rows in columnar layout — the unit one DFS split stores when
/// the columnar data plane is on. Construction never fails: rows whose
/// field order cannot be expressed as a subsequence of a single shared
/// schema (duplicate names, reordered fields, non-struct rows) fall back to
/// an "irregular" representation holding whole row encodings, so
/// `ToRows(FromRows(rows))` is always byte-exact.
///
/// Encoded layout (all integers varint unless noted):
///   'C' 'B' '0' '1'            magic
///   u8 flags                   bit 0 = irregular fallback
///   num_rows, num_cols
///   per column: name, u8 type, num_rows presence bytes, set_count,
///               typed payload (set values in row order)
///   u32 CRC32C (LE)            over every preceding byte
/// Decode verifies the trailing CRC before parsing a single field; any
/// corruption of the frame surfaces as Status::DataLoss, never a crash or
/// a wrong row.
class ColumnBatch {
 public:
  ColumnBatch() = default;

  /// Builds a batch from `rows` (column-regular or irregular fallback).
  static ColumnBatch FromRows(const std::vector<Value>& rows);

  /// Appends the encoded frame (including the trailing CRC) to `out`.
  void EncodeTo(std::string* out) const;

  /// Decodes one frame occupying all of `data`. CRC mismatch, truncation,
  /// trailing garbage, bad tags — every failure mode is DataLoss.
  static Result<ColumnBatch> Decode(std::string_view data);

  /// Reassembles the original rows (exact round trip of FromRows input).
  std::vector<Value> ToRows() const;

  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool irregular() const { return irregular_; }
  const std::vector<ColumnVector>& columns() const { return columns_; }

 private:
  uint64_t num_rows_ = 0;
  bool irregular_ = false;
  /// Irregular mode: whole-row values, one per row (columns_ empty).
  std::vector<Value> raw_rows_;
  std::vector<ColumnVector> columns_;
};

}  // namespace dyno::columnar

#endif  // DYNO_COLUMNAR_COLUMN_H_
