#include "obs/metrics.h"

#include <algorithm>

#include "common/string_util.h"

namespace dyno::obs {

std::vector<int64_t> DefaultLatencyBounds() {
  // 1ms .. ~17min, doubling.
  std::vector<int64_t> bounds;
  for (int64_t b = 1; b <= 1 << 20; b *= 2) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBounds() : std::move(bounds)),
      buckets_(bounds_.size() + 1) {}

void Histogram::Observe(int64_t value) {
  // Bounds are inclusive upper limits (Prometheus "le" style): bucket i
  // counts observations <= bounds_[i].
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) || histograms_.count(name)) return nullptr;
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || histograms_.count(name)) return nullptr;
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || gauges_.count(name)) return nullptr;
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Merge the three sorted maps into one name-ordered rendering.
  std::vector<std::string> lines;
  lines.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    lines.push_back(StrFormat("counter %s %llu", name.c_str(),
                              (unsigned long long)c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    lines.push_back(
        StrFormat("gauge %s %lld", name.c_str(), (long long)g->value()));
  }
  for (const auto& [name, h] : histograms_) {
    std::string buckets;
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) buckets += ",";
      buckets += StrFormat("%llu", (unsigned long long)h->bucket_count(i));
    }
    lines.push_back(StrFormat("histogram %s count=%llu sum=%lld buckets=%s",
                              name.c_str(), (unsigned long long)h->count(),
                              (long long)h->sum(), buckets.c_str()));
  }
  std::sort(lines.begin(), lines.end(),
            [](const std::string& a, const std::string& b) {
              // Sort by metric name (second token), then kind.
              auto name_of = [](const std::string& s) {
                size_t sp1 = s.find(' ');
                size_t sp2 = s.find(' ', sp1 + 1);
                return s.substr(sp1 + 1, sp2 - sp1 - 1);
              };
              std::string na = name_of(a), nb = name_of(b);
              if (na != nb) return na < nb;
              return a < b;
            });
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

}  // namespace dyno::obs
