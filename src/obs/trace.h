#ifndef DYNO_OBS_TRACE_H_
#define DYNO_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"

namespace dyno::obs {

/// Bumped whenever the serialized trace layout or the meaning of an event
/// field changes. Goldens record the version in their header line;
/// scripts/check_goldens.sh fails CI if the two drift apart.
/// v2: mr "job" spans gained node-fault args (node_attempt_kills,
/// maps_invalidated, shuffle_fetch_retries); new node_crash / node_recover /
/// shuffle_fetch_retry engine events; new driver checkpoint/resume events.
/// v3: data-integrity layer — mr "job" spans gained block_corruptions /
/// checksum_refetches / records_quarantined args; new block_corruption,
/// shuffle_checksum_retry and record_quarantined task events; new driver
/// manifest_fallback event.
/// v4: service robustness — new query_preempted / query_resumed /
/// deadline_exceeded / load_shed / service_halt service events; service
/// "wave" spans gained a pressure arg (busy-slot fraction of the previous
/// wave); new driver retry_budget_exhausted event.
/// v5: memory model — new task_spill engine events and driver oom_retry /
/// service memory_pressure events; mr "job" spans gain reduce_spills /
/// spill_runs / spill_bytes_written / peak_task_memory args (only when a
/// reduce memory mode is enforced); load_shed events gain a
/// memory_pressure arg.
inline constexpr int kTraceSchemaVersion = 5;

/// Logical lanes events are grouped under in the Chrome trace_event export
/// (one "thread" row per lane). Values are stable serialization constants.
enum class TraceLane : int {
  kDriver = 0,
  kOptimizer = 1,
  kPilot = 2,
  kEngine = 3,
  kTasks = 4,
  /// Multi-query service scheduling decisions (admission, waves,
  /// cancellation). A new lane value extends the schema without changing
  /// the layout of existing events, so goldens recorded before it stay
  /// byte-stable.
  kService = 5,
};

/// One typed span (or instant, when dur_ms < 0) event, stamped exclusively
/// with simulated time so serialized traces are bit-identical across host
/// machines and execution thread counts.
struct TraceEvent {
  SimMillis start_ms = 0;
  SimMillis dur_ms = -1;  ///< < 0 renders as an instant event.
  TraceLane lane = TraceLane::kEngine;
  const char* category = "";
  const char* name = "";
  /// Key → pre-rendered JSON token ("42", "true", "\"str\"").
  std::vector<std::pair<std::string, std::string>> args;

  TraceEvent(SimMillis start, SimMillis dur, TraceLane l, const char* cat,
             const char* n)
      : start_ms(start), dur_ms(dur), lane(l), category(cat), name(n) {}

  TraceEvent&& Arg(const char* key, const std::string& value) &&;
  TraceEvent&& ArgInt(const char* key, int64_t value) &&;
  TraceEvent&& ArgDouble(const char* key, double value) &&;
  TraceEvent&& ArgBool(const char* key, bool value) &&;
};

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
std::string JsonQuote(const std::string& s);

/// Ordered buffer of TraceEvents. Record() appends under a mutex; callers
/// are responsible for only recording from deterministically-ordered code
/// paths (the engine scheduler thread or the driving thread) so the buffer
/// order — and therefore the serialized trace — is reproducible.
class TraceSink {
 public:
  void Record(TraceEvent event);

  size_t size() const;
  void Clear();

  /// Header line {"schema":N,"clock":"sim_ms"} followed by one JSON object
  /// per event: {"seq":i,"ts":...,"dur":...,"lane":...,"cat":...,
  /// "name":...,"args":{...}}. "dur" is omitted for instant events.
  std::string SerializeJsonl() const;

  /// chrome://tracing / Perfetto "trace_event" JSON. Sim-milliseconds are
  /// exported as microseconds so the UI renders ms-scale spans legibly.
  std::string SerializeChromeTrace() const;

  Status WriteJsonl(const std::string& path) const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace dyno::obs

#endif  // DYNO_OBS_TRACE_H_
