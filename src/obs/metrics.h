#ifndef DYNO_OBS_METRICS_H_
#define DYNO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dyno::obs {

/// Monotonic counter. Add() is one relaxed atomic add, safe from any
/// thread; value() is a coherent snapshot.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
/// one overflow bucket. Bounds are fixed at registration, so Observe() is a
/// branchless-ish upper_bound plus one relaxed atomic increment — no lock.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; empty selects
  /// DefaultLatencyBounds().
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Exponential sim-millisecond bounds, 1 ms .. ~17 min.
std::vector<int64_t> DefaultLatencyBounds();

/// Named metrics the engine, pilot, optimizer and driver register into.
/// Registration (Get*) takes the registry mutex once per name and returns a
/// pointer that stays valid for the registry's lifetime; all subsequent
/// updates through that pointer are lock-free atomics. Re-registering a
/// name returns the same instrument, so independent components may share
/// one metric. A name must keep its kind: requesting an existing name as a
/// different instrument kind returns nullptr.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first registration (empty = default latency
  /// buckets).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds = {});

  /// Deterministic text rendering: one line per metric, sorted by name —
  /// "counter <name> <value>", "gauge <name> <value>",
  /// "histogram <name> count=<n> sum=<s> buckets=<c0,c1,...>".
  std::string Serialize() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dyno::obs

#endif  // DYNO_OBS_METRICS_H_
