#include "obs/trace.h"

#include <cstdio>

#include "common/string_util.h"

namespace dyno::obs {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

TraceEvent&& TraceEvent::Arg(const char* key, const std::string& value) && {
  args.emplace_back(key, JsonQuote(value));
  return std::move(*this);
}

TraceEvent&& TraceEvent::ArgInt(const char* key, int64_t value) && {
  args.emplace_back(key, StrFormat("%lld", (long long)value));
  return std::move(*this);
}

TraceEvent&& TraceEvent::ArgDouble(const char* key, double value) && {
  // %.6g keeps renderings compact and platform-stable for the value ranges
  // traced here (row counts, error ratios, costs).
  args.emplace_back(key, StrFormat("%.6g", value));
  return std::move(*this);
}

TraceEvent&& TraceEvent::ArgBool(const char* key, bool value) && {
  args.emplace_back(key, value ? "true" : "false");
  return std::move(*this);
}

void TraceSink::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

namespace {

void AppendArgsObject(const TraceEvent& e, std::string* out) {
  *out += "{";
  for (size_t i = 0; i < e.args.size(); ++i) {
    if (i > 0) *out += ",";
    *out += JsonQuote(e.args[i].first);
    *out += ":";
    *out += e.args[i].second;
  }
  *out += "}";
}

}  // namespace

std::string TraceSink::SerializeJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat("{\"schema\":%d,\"clock\":\"sim_ms\"}\n",
                              kTraceSchemaVersion);
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out += StrFormat("{\"seq\":%zu,\"ts\":%lld,", i, (long long)e.start_ms);
    if (e.dur_ms >= 0) out += StrFormat("\"dur\":%lld,", (long long)e.dur_ms);
    out += StrFormat("\"lane\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"args\":",
                     static_cast<int>(e.lane), e.category, e.name);
    AppendArgsObject(e, &out);
    out += "}\n";
  }
  return out;
}

std::string TraceSink::SerializeChromeTrace() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  static const char* kLaneNames[] = {"driver", "optimizer", "pilot", "engine",
                                     "tasks",  "service"};
  for (size_t lane = 0; lane < 6; ++lane) {
    out += StrFormat(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":%zu,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}},\n",
        lane, kLaneNames[lane]);
  }
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) out += ",\n";
    // Sim-ms exported as trace-event microseconds for legible rendering.
    if (e.dur_ms >= 0) {
      out += StrFormat(
          "{\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,\"pid\":0,\"tid\":%d,"
          "\"cat\":\"%s\",\"name\":\"%s\",\"args\":",
          (long long)e.start_ms * 1000, (long long)e.dur_ms * 1000,
          static_cast<int>(e.lane), e.category, e.name);
    } else {
      out += StrFormat(
          "{\"ph\":\"i\",\"ts\":%lld,\"pid\":0,\"tid\":%d,\"s\":\"t\","
          "\"cat\":\"%s\",\"name\":\"%s\",\"args\":",
          (long long)e.start_ms * 1000, static_cast<int>(e.lane), e.category,
          e.name);
    }
    AppendArgsObject(e, &out);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

namespace {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s for writing",
                                      path.c_str()));
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return Status::Internal(StrFormat("short write to %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace

Status TraceSink::WriteJsonl(const std::string& path) const {
  return WriteFile(path, SerializeJsonl());
}

Status TraceSink::WriteChromeTrace(const std::string& path) const {
  return WriteFile(path, SerializeChromeTrace());
}

}  // namespace dyno::obs
