#include "pilot/predicate_order.h"

#include <algorithm>

#include "common/random.h"
#include "storage/dfs.h"

namespace dyno {

Result<std::vector<PredicateMeasurement>> MeasurePredicates(
    Catalog* catalog, const std::string& table,
    const std::vector<ExprPtr>& conjuncts,
    const PredicateOrderOptions& options) {
  DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file,
                        catalog->OpenTable(table));

  // Reservoir-sample rows.
  std::vector<Value> sample;
  sample.reserve(options.sample_rows);
  Rng rng(options.seed);
  uint64_t seen = 0;
  for (const Split& split : file->splits()) {
    DYNO_ASSIGN_OR_RETURN(std::vector<Value> rows, DecodeSplitRows(split));
    for (Value& row : rows) {
      ++seen;
      if (sample.size() < static_cast<size_t>(options.sample_rows)) {
        sample.push_back(std::move(row));
      } else {
        uint64_t j = rng.Uniform(seen);
        if (j < sample.size()) sample[j] = std::move(row);
      }
    }
  }

  std::vector<PredicateMeasurement> measurements;
  measurements.reserve(conjuncts.size());
  for (const ExprPtr& conjunct : conjuncts) {
    if (conjunct == nullptr) {
      return Status::InvalidArgument("null conjunct");
    }
    PredicateMeasurement m;
    m.predicate = conjunct;
    m.cost = std::max(conjunct->CpuCost(), 1e-6);
    uint64_t kept = 0;
    for (const Value& row : sample) {
      auto v = conjunct->Eval(row);
      if (v.ok() && v->type() == Value::Type::kBool && v->bool_value()) {
        ++kept;
      }
    }
    m.selectivity = sample.empty()
                        ? 1.0
                        : static_cast<double>(kept) /
                              static_cast<double>(sample.size());
    m.rank = (m.selectivity - 1.0) / m.cost;
    measurements.push_back(std::move(m));
  }
  std::stable_sort(measurements.begin(), measurements.end(),
                   [](const PredicateMeasurement& a,
                      const PredicateMeasurement& b) {
                     return a.rank < b.rank;
                   });
  return measurements;
}

Result<ExprPtr> ReorderConjunction(Catalog* catalog, const std::string& table,
                                   const ExprPtr& filter,
                                   const PredicateOrderOptions& options) {
  if (filter == nullptr) return ExprPtr(nullptr);
  std::vector<ExprPtr> conjuncts;
  DecomposeConjunction(filter, &conjuncts);
  if (conjuncts.size() < 2) return filter;
  DYNO_ASSIGN_OR_RETURN(
      std::vector<PredicateMeasurement> measurements,
      MeasurePredicates(catalog, table, conjuncts, options));
  std::vector<ExprPtr> ordered;
  ordered.reserve(measurements.size());
  for (const PredicateMeasurement& m : measurements) {
    ordered.push_back(m.predicate);
  }
  return Conjoin(ordered);
}

}  // namespace dyno
