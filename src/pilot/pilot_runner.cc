#include "pilot/pilot_runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "common/random.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dyno {

const PilotLeafResult* PilotRunReport::Find(const std::string& alias) const {
  for (const PilotLeafResult& leaf : leaves) {
    if (leaf.alias == alias) return &leaf;
  }
  return nullptr;
}

namespace {

/// Evaluates a boolean filter; non-bool/null results count as false.
Result<bool> EvalFilter(const ExprPtr& filter, const Value& row) {
  if (filter == nullptr) return true;
  DYNO_ASSIGN_OR_RETURN(Value v, filter->Eval(row));
  return v.type() == Value::Type::kBool && v.bool_value();
}

/// task index -> collector, shared by every map task of one pilot job.
/// Map tasks may run concurrently on the engine's worker threads, so the
/// *map structure* is guarded by a mutex. Each collector itself is only
/// ever touched by the one task that owns its index (a task runs on
/// exactly one worker), so Observe() needs no lock — and std::map nodes
/// are stable, so the returned pointer survives concurrent inserts.
struct PerTaskStats {
  std::mutex mu;
  std::map<int, StatsCollector> collectors;

  StatsCollector* ForTask(int task_index,
                          const std::vector<std::string>& columns,
                          int kmv_k) {
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = collectors.try_emplace(task_index, columns, kmv_k);
    return &it->second;
  }
};

/// A pilot job plus the per-task statistics its map tasks accumulate.
struct PilotJob {
  JobSpec spec;
  /// Tasks publish these after the job.
  std::shared_ptr<PerTaskStats> per_task;
};

/// Builds the map-only pilot job for one leaf: scan + local predicates,
/// per-task statistics collection, and global output counting through the
/// Coordinator (the ZooKeeper counter of §4.2).
PilotJob MakePilotJob(const LeafExpr& leaf, std::shared_ptr<DfsFile> file,
                      std::vector<int> split_indexes, int kmv_k,
                      Coordinator* coordinator,
                      const std::string& counter_key, int k_target,
                      const std::string& output_path,
                      const std::string& query_id) {
  PilotJob job;
  job.spec.name = "pilr:" + leaf.alias;
  job.spec.query_id = query_id;
  job.spec.output_path = output_path;
  job.per_task = std::make_shared<PerTaskStats>();

  std::vector<std::string> columns = leaf.join_columns;
  ExprPtr filter = leaf.filter;
  double observe_cpu = 2.0 + 3.0 * static_cast<double>(columns.size());

  MapInput input;
  input.file = std::move(file);
  input.split_indexes = std::move(split_indexes);
  input.cpu_per_record = 1.0 + (filter ? filter->CpuCost() : 0.0);
  // Pilot timing must not depend on the table's physical format: billing
  // block reads at logical (row-encoded) size keeps the pilot's event
  // timeline — and therefore the sampled splits and the chosen plan —
  // identical between row and columnar storage.
  input.bill_logical_read = true;
  auto per_task = job.per_task;
  input.map_fn = [filter, per_task, columns, kmv_k, coordinator, counter_key,
                  observe_cpu](const Value& record, MapContext* ctx) -> Status {
    DYNO_ASSIGN_OR_RETURN(bool keep, EvalFilter(filter, record));
    if (!keep) return Status::OK();
    per_task->ForTask(ctx->task_index(), columns, kmv_k)->Observe(record);
    ctx->ChargeCpu(observe_cpu);
    coordinator->Increment(counter_key, 1);
    ctx->Output(record);
    return Status::OK();
  };
  job.spec.inputs = {std::move(input)};

  // Interrupt the job once k records exist cluster-wide; already-running
  // tasks finish their whole split, avoiding the inspection-paradox bias
  // described in the paper (tasks with small outputs finish faster and
  // would otherwise skew the sample).
  job.spec.stop_condition = [coordinator, counter_key, k_target]() {
    return coordinator->GetCounter(counter_key) >= k_target;
  };
  return job;
}

/// After a pilot job finishes, each task publishes its partial statistics
/// file to the Coordinator channel; the client fetches and merges them —
/// no extra MR job, exactly the §4.3 flow.
Result<StatsCollector> PublishAndMerge(Coordinator* coordinator,
                                       const std::string& channel,
                                       const PilotJob& job,
                                       const std::vector<std::string>& columns,
                                       int kmv_k) {
  for (const auto& [task_index, collector] : job.per_task->collectors) {
    coordinator->Publish(channel, collector.Serialize());
  }
  StatsCollector merged(columns, kmv_k);
  for (const std::string& payload : coordinator->Fetch(channel)) {
    DYNO_ASSIGN_OR_RETURN(StatsCollector partial,
                          StatsCollector::Deserialize(payload));
    merged.MergeFrom(partial);
  }
  coordinator->ClearChannel(channel);
  return merged;
}

}  // namespace

/// Per-leaf bookkeeping shared by both modes.
struct PilotRunner::LeafJobState {
  const LeafExpr* leaf = nullptr;
  std::string signature;
  uint64_t table_version = StatsStore::kAnyVersion;
  std::shared_ptr<DfsFile> table_file;
  /// Random permutation of the relation's split indexes; `next_split` marks
  /// how many have been consumed by batches so far.
  std::vector<int> split_order;
  size_t next_split = 0;
  /// Accumulated over batches.
  StatsCollector accumulated{{}, KmvSynopsis::kDefaultK};
  uint64_t scanned_bytes = 0;
  uint64_t output_records = 0;
  std::vector<std::shared_ptr<DfsFile>> batch_outputs;
  bool done = false;
  std::string counter_key;
};

namespace {
// Process-wide counter so concurrent PilotRunner instances never collide on
// DFS output paths or Coordinator keys.
std::atomic<int> g_pilot_run_counter{0};
}  // namespace

PilotRunner::PilotRunner(MapReduceEngine* engine, Catalog* catalog,
                         StatsStore* store, PilotRunOptions options)
    : engine_(engine), catalog_(catalog), store_(store), options_(options) {}

Result<PilotRunReport> PilotRunner::Run(const std::vector<LeafExpr>& leaves) {
  return options_.mode == PilotRunOptions::Mode::kSerial
             ? RunSerial(leaves)
             : RunParallel(leaves);
}

Result<PilotRunReport> PilotRunner::RunSerial(
    const std::vector<LeafExpr>& leaves) {
  PilotRunReport report;
  SimMillis start = engine_->now();
  obs::TraceSink* trace = engine_->trace();
  run_counter_ = ++g_pilot_run_counter;
  for (const LeafExpr& leaf : leaves) {
    std::string signature = LeafSignature(leaf);
    // Stats are only valid for the data version they were observed on: a
    // signature match alone would happily reuse synopses from before the
    // table was rewritten.
    uint64_t table_version = catalog_->TableVersion(leaf.table);
    if (options_.reuse_stats) {
      auto cached = store_->Get(signature, table_version);
      if (cached.has_value()) {
        PilotLeafResult result;
        result.alias = leaf.alias;
        result.signature = signature;
        result.stats = *cached;
        result.reused_cached_stats = true;
        report.leaves.push_back(std::move(result));
        ++report.runs_skipped_cached;
        if (trace != nullptr) {
          trace->Record(obs::TraceEvent(engine_->now(), -1,
                                        obs::TraceLane::kPilot, "pilot",
                                        "pilot_leaf_cached")
                            .Arg("alias", leaf.alias));
        }
        continue;
      }
    }
    SimMillis leaf_start = engine_->now();
    DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file,
                          catalog_->OpenTable(leaf.table));
    std::string counter_key =
        StrFormat("pilr:%d:%s", run_counter_, leaf.alias.c_str());
    engine_->coordinator()->ResetCounter(counter_key);
    std::string output_path = StrFormat("/tmp/pilr/st_%d_%s", run_counter_,
                                        leaf.alias.c_str());
    // PILR_ST runs the leaf job alone over all splits (in order); the
    // global counter interrupts it once k records exist.
    PilotJob pilot =
        MakePilotJob(leaf, file, /*split_indexes=*/{}, options_.kmv_k,
                     engine_->coordinator(), counter_key, options_.k,
                     output_path, options_.query_id);
    DYNO_ASSIGN_OR_RETURN(JobResult job, engine_->Submit(pilot.spec));
    if (!job.status.ok()) return job.status;
    DYNO_ASSIGN_OR_RETURN(
        StatsCollector merged,
        PublishAndMerge(engine_->coordinator(), counter_key + ":stats",
                        pilot, leaf.join_columns, options_.kmv_k));

    PilotLeafResult result;
    result.alias = leaf.alias;
    result.signature = signature;
    // map_input_bytes counts logical (row-encoded) bytes, so the scanned
    // fraction is measured against logical file size — format-independent.
    double fraction =
        file->logical_bytes() == 0
            ? 1.0
            : static_cast<double>(job.counters.map_input_bytes) /
                  static_cast<double>(file->logical_bytes());
    fraction = std::clamp(fraction, 1e-9, 1.0);
    bool scanned_everything = job.map_tasks_skipped == 0;
    result.stats = merged.Finalize(scanned_everything ? 1.0 : fraction);
    if (scanned_everything) result.full_output = job.output;
    store_->Put(signature, table_version, result.stats);
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(leaf_start, engine_->now() - leaf_start,
                                    obs::TraceLane::kPilot, "pilot",
                                    "pilot_leaf")
                        .Arg("alias", leaf.alias)
                        .Arg("mode", "ST")
                        .ArgInt("splits_consumed", job.map_tasks_run)
                        .ArgInt("splits_skipped", job.map_tasks_skipped)
                        .ArgInt("total_splits",
                                (int64_t)file->splits().size())
                        .ArgInt("output_records",
                                (int64_t)job.counters.output_records)
                        .ArgInt("k", options_.k)
                        .ArgBool("stop_hit", job.map_tasks_skipped > 0)
                        .ArgBool("scanned_all", scanned_everything));
    }
    report.leaves.push_back(std::move(result));
    ++report.runs_executed;
  }
  if (obs::MetricsRegistry* metrics = engine_->metrics()) {
    metrics->GetCounter("pilot.runs_executed")->Add(report.runs_executed);
    metrics->GetCounter("pilot.runs_skipped_cached")
        ->Add(report.runs_skipped_cached);
  }
  report.elapsed_ms = engine_->now() - start;
  return report;
}

Result<PilotRunReport> PilotRunner::RunParallel(
    const std::vector<LeafExpr>& leaves) {
  PilotRunReport report;
  SimMillis start = engine_->now();
  obs::TraceSink* trace = engine_->trace();
  run_counter_ = ++g_pilot_run_counter;
  // Seed from options alone (NOT the process-wide run counter, which is
  // only used to keep DFS paths and Coordinator keys unique): two runs of
  // the same workload must pick identical split permutations so results
  // can be compared across engine configurations.
  Rng rng(options_.seed);

  std::vector<LeafJobState> states;
  for (const LeafExpr& leaf : leaves) {
    std::string signature = LeafSignature(leaf);
    // Same staleness guard as the serial path: reuse requires both the
    // signature and the data version to match.
    uint64_t table_version = catalog_->TableVersion(leaf.table);
    if (options_.reuse_stats) {
      auto cached = store_->Get(signature, table_version);
      if (cached.has_value()) {
        PilotLeafResult result;
        result.alias = leaf.alias;
        result.signature = signature;
        result.stats = *cached;
        result.reused_cached_stats = true;
        report.leaves.push_back(std::move(result));
        ++report.runs_skipped_cached;
        if (trace != nullptr) {
          trace->Record(obs::TraceEvent(engine_->now(), -1,
                                        obs::TraceLane::kPilot, "pilot",
                                        "pilot_leaf_cached")
                            .Arg("alias", leaf.alias));
        }
        continue;
      }
    }
    LeafJobState state;
    state.leaf = &leaf;
    state.signature = signature;
    state.table_version = table_version;
    DYNO_ASSIGN_OR_RETURN(state.table_file, catalog_->OpenTable(leaf.table));
    size_t num_splits = state.table_file->splits().size();
    std::vector<uint64_t> order =
        rng.SampleWithoutReplacement(num_splits, num_splits);
    state.split_order.assign(order.begin(), order.end());
    state.accumulated = StatsCollector(leaf.join_columns, options_.kmv_k);
    state.counter_key =
        StrFormat("pilr:%d:%s", run_counter_, leaf.alias.c_str());
    engine_->coordinator()->ResetCounter(state.counter_key);
    states.push_back(std::move(state));
  }

  // Each relation initially gets m/|R| random splits, all leaf jobs are
  // submitted together (paying the job startup latency once, not |R|
  // times), and rounds repeat — adding splits on demand, cf. [38] — until
  // every leaf reached k records or ran out of data. A leaf still short of
  // k after a round (a selective predicate) gets an exponentially larger
  // allocation next round, sized to the slots freed by finished leaves, so
  // the cluster stays utilized instead of trickling 1/|R|-sized rounds.
  size_t per_leaf = std::max<size_t>(
      1, static_cast<size_t>(engine_->config().map_slots) /
             std::max<size_t>(1, states.size()));
  int batch = 0;
  std::map<const LeafJobState*, size_t> allocation;
  while (true) {
    std::vector<JobSpec> specs;
    std::vector<LeafJobState*> active;
    std::vector<PilotJob> jobs;
    size_t still_running = 0;
    for (const LeafJobState& state : states) {
      if (!state.done) ++still_running;
    }
    size_t fair_share = std::max<size_t>(
        per_leaf, static_cast<size_t>(engine_->config().map_slots) /
                      std::max<size_t>(1, still_running));
    for (LeafJobState& state : states) {
      if (state.done) continue;
      if (state.output_records >= static_cast<uint64_t>(options_.k) ||
          state.next_split >= state.split_order.size()) {
        state.done = true;
        continue;
      }
      size_t want = batch == 0 ? per_leaf
                               : std::max(fair_share, 2 * allocation[&state]);
      allocation[&state] = want;
      size_t take = std::min(want,
                             state.split_order.size() - state.next_split);
      std::vector<int> split_indexes(
          state.split_order.begin() + state.next_split,
          state.split_order.begin() + state.next_split + take);
      state.next_split += take;
      std::string output_path =
          StrFormat("/tmp/pilr/mt_%d_%s_b%d", run_counter_,
                    state.leaf->alias.c_str(), batch);
      PilotJob pilot = MakePilotJob(
          *state.leaf, state.table_file, std::move(split_indexes),
          options_.kmv_k, engine_->coordinator(), state.counter_key,
          options_.k, output_path, options_.query_id);
      // Follow-up batches extend the already-running sampling job with
      // fresh splits (situation-aware mappers, [38]) — no startup latency.
      pilot.spec.reuse_warm_containers = batch > 0;
      specs.push_back(pilot.spec);
      jobs.push_back(std::move(pilot));
      active.push_back(&state);
    }
    if (specs.empty()) break;
    SimMillis batch_start = engine_->now();
    DYNO_ASSIGN_OR_RETURN(std::vector<JobResult> results,
                          engine_->SubmitAll(specs));
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(batch_start,
                                    engine_->now() - batch_start,
                                    obs::TraceLane::kPilot, "pilot",
                                    "pilot_batch")
                        .ArgInt("batch", batch)
                        .ArgInt("leaves", (int64_t)specs.size()));
    }
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].status.ok()) return results[i].status;
      LeafJobState& state = *active[i];
      DYNO_ASSIGN_OR_RETURN(
          StatsCollector merged,
          PublishAndMerge(engine_->coordinator(),
                          state.counter_key + StrFormat(":b%d", batch),
                          jobs[i], state.leaf->join_columns,
                          options_.kmv_k));
      state.accumulated.MergeFrom(merged);
      state.scanned_bytes += results[i].counters.map_input_bytes;
      state.output_records += results[i].counters.output_records;
      state.batch_outputs.push_back(results[i].output);
    }
    ++batch;
  }

  for (LeafJobState& state : states) {
    PilotLeafResult result;
    result.alias = state.leaf->alias;
    result.signature = state.signature;
    bool scanned_everything =
        state.next_split >= state.split_order.size() &&
        state.scanned_bytes >= state.table_file->logical_bytes();
    double fraction =
        state.table_file->logical_bytes() == 0
            ? 1.0
            : static_cast<double>(state.scanned_bytes) /
                  static_cast<double>(state.table_file->logical_bytes());
    fraction = std::clamp(fraction, 1e-9, 1.0);
    result.stats =
        state.accumulated.Finalize(scanned_everything ? 1.0 : fraction);
    if (scanned_everything) {
      // Concatenate the batch outputs into one reusable materialization
      // (a client-side metadata move, like an HDFS rename).
      std::string path = StrFormat("/tmp/pilr/full_%d_%s", run_counter_,
                                   state.leaf->alias.c_str());
      auto combined = engine_->dfs()->Create(path);
      if (combined.ok()) {
        for (const auto& out : state.batch_outputs) {
          if (out == nullptr) continue;
          for (const Split& split : out->splits()) {
            (*combined)->AppendSplit(split);
          }
        }
        result.full_output = *combined;
      }
    }
    store_->Put(state.signature, state.table_version, result.stats);
    if (trace != nullptr) {
      trace->Record(
          obs::TraceEvent(start, engine_->now() - start,
                          obs::TraceLane::kPilot, "pilot", "pilot_leaf")
              .Arg("alias", state.leaf->alias)
              .Arg("mode", "MT")
              .ArgInt("splits_consumed", (int64_t)state.next_split)
              .ArgInt("total_splits", (int64_t)state.split_order.size())
              .ArgInt("output_records", (int64_t)state.output_records)
              .ArgInt("k", options_.k)
              .ArgBool("stop_hit",
                       state.output_records >=
                           static_cast<uint64_t>(options_.k))
              .ArgBool("scanned_all", scanned_everything));
    }
    report.leaves.push_back(std::move(result));
    ++report.runs_executed;
  }
  if (obs::MetricsRegistry* metrics = engine_->metrics()) {
    metrics->GetCounter("pilot.runs_executed")->Add(report.runs_executed);
    metrics->GetCounter("pilot.runs_skipped_cached")
        ->Add(report.runs_skipped_cached);
  }
  report.elapsed_ms = engine_->now() - start;
  return report;
}

}  // namespace dyno
