#ifndef DYNO_PILOT_PILOT_RUNNER_H_
#define DYNO_PILOT_PILOT_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "lang/query.h"
#include "mr/engine.h"
#include "stats/stats_store.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"

namespace dyno {

/// Configuration of the PILR algorithm (paper §4).
struct PilotRunOptions {
  /// Execution variants (paper §4.2): ST submits one leaf job at a time
  /// over all splits with a global ZooKeeper counter interrupting it at k
  /// records; MT submits every leaf job simultaneously over m/|R| random
  /// splits each, adding splits on demand — 4.6x faster on average and
  /// insensitive to the dataset size (Table 1).
  enum class Mode { kSerial, kParallel };

  Mode mode = Mode::kParallel;
  /// Target number of output records per relation ("enough results to
  /// collect meaningful statistics").
  int k = 1024;
  /// KMV synopsis size.
  int kmv_k = 1024;
  /// Look up the StatsStore by expression signature and skip runs whose
  /// statistics are already known (recurring queries, §4.1).
  bool reuse_stats = true;
  /// Seed for random split selection.
  uint64_t seed = 42;
  /// Query scope stamped onto every pilot JobSpec (JobSpec::query_id).
  /// Empty keeps legacy single-query behavior. Pilot job names are
  /// "pilr:<alias>", so without the scope two concurrent queries piloting
  /// the same alias would share one engine fault stream.
  std::string query_id;
};

/// What one pilot run produced for one leaf expression.
struct PilotLeafResult {
  std::string alias;
  std::string signature;
  TableStats stats;
  bool reused_cached_stats = false;
  /// When the pilot run consumed the *entire* relation before producing k
  /// records (very selective predicates), its output is a full
  /// materialization of the leaf and can replace the scan during actual
  /// query execution (paper §4.1, "optimization for selective predicates").
  std::shared_ptr<DfsFile> full_output;
};

struct PilotRunReport {
  SimMillis elapsed_ms = 0;
  int runs_executed = 0;
  int runs_skipped_cached = 0;
  std::vector<PilotLeafResult> leaves;

  const PilotLeafResult* Find(const std::string& alias) const;
};

/// Executes pilot runs: each leaf expression (scan + pushed-down local
/// predicates/UDFs) runs as a map-only job over a sample of its relation
/// until k output records exist, collecting cardinality, record size,
/// min/max and KMV distinct-value statistics over the post-predicate
/// output. Partial per-task statistics are published through the
/// Coordinator and merged at the client, as in the paper.
class PilotRunner {
 public:
  PilotRunner(MapReduceEngine* engine, Catalog* catalog, StatsStore* store,
              PilotRunOptions options);

  /// Runs PILR over the given leaf expressions (Algorithm 1).
  Result<PilotRunReport> Run(const std::vector<LeafExpr>& leaves);

 private:
  struct LeafJobState;

  Result<PilotRunReport> RunSerial(const std::vector<LeafExpr>& leaves);
  Result<PilotRunReport> RunParallel(const std::vector<LeafExpr>& leaves);

  MapReduceEngine* engine_;
  Catalog* catalog_;
  StatsStore* store_;
  PilotRunOptions options_;
  int run_counter_ = 0;
};

}  // namespace dyno

#endif  // DYNO_PILOT_PILOT_RUNNER_H_
