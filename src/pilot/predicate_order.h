#ifndef DYNO_PILOT_PREDICATE_ORDER_H_
#define DYNO_PILOT_PREDICATE_ORDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "storage/catalog.h"

namespace dyno {

/// One conjunct with its measured behaviour.
struct PredicateMeasurement {
  ExprPtr predicate;
  double selectivity = 1.0;  ///< Fraction of sampled rows kept.
  double cost = 1.0;         ///< Declared per-row CPU cost.
  /// Hellerstein's rank = (selectivity − 1) / cost; evaluating conjuncts in
  /// ascending rank order minimizes expected per-row work — the placement
  /// algorithm the paper points to ([24], [11]) once pilot measurements
  /// supply the selectivities it assumes as given (§4.4).
  double rank = 0.0;
};

struct PredicateOrderOptions {
  int sample_rows = 1024;
  uint64_t seed = 99;
};

/// Measures each conjunct of `conjuncts` independently over a row sample of
/// `table` and returns them sorted by ascending rank (cheap, selective
/// predicates first). Fails if the table is missing; conjuncts that error
/// on some rows treat those rows as non-matching.
Result<std::vector<PredicateMeasurement>> MeasurePredicates(
    Catalog* catalog, const std::string& table,
    const std::vector<ExprPtr>& conjuncts,
    const PredicateOrderOptions& options);

/// Convenience: decomposes `filter` into conjuncts, measures, and rebuilds
/// the conjunction in optimal (ascending-rank) order. A null filter or a
/// single conjunct is returned unchanged.
Result<ExprPtr> ReorderConjunction(Catalog* catalog, const std::string& table,
                                   const ExprPtr& filter,
                                   const PredicateOrderOptions& options);

}  // namespace dyno

#endif  // DYNO_PILOT_PREDICATE_ORDER_H_
