#ifndef DYNO_SERVICE_QUERY_SERVICE_H_
#define DYNO_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cache/subtree_cache.h"
#include "common/random.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "dyno/driver.h"
#include "lang/query.h"
#include "mr/engine.h"

namespace dyno {

/// Capacity and fairness knobs of the multi-query service.
struct QueryServiceOptions {
  /// Maximum sessions executing at once; arrivals beyond this wait in the
  /// admission queue. Must be >= 1.
  int max_concurrent = 4;

  /// Per-tenant slot quota: maximum concurrently admitted sessions a single
  /// tenant may hold. <= 0 means unlimited. A tenant at quota does not
  /// block other tenants' admissions behind it in the queue.
  int tenant_slots = 0;

  /// Bound on queued-but-not-admitted submissions. Enqueue rejects with
  /// Status::ResourceExhausted once the queue is full (backpressure).
  int admission_queue_limit = 16;

  /// Service-level RNG stream seed; draws arrival offsets for submissions
  /// that do not pin one explicitly.
  uint64_t seed = 42;

  /// Width of the arrival window: a submission without an explicit
  /// arrival_offset_ms draws uniform in [0, arrival_window_ms]. 0 makes
  /// every drawn arrival immediate.
  SimMillis arrival_window_ms = 0;

  /// Constructs a service-owned cross-query subtree-result cache and hands
  /// it to every admitted session (DESIGN.md §6.7). Off by default: with no
  /// cache, per-query results and traces are byte-identical to pre-cache
  /// builds.
  bool enable_subtree_cache = false;
  /// Sizing of the service-owned cache (used only when enabled).
  SubtreeCacheOptions subtree_cache;

  /// Cross-query pilot-statistics sharing: when true (the default) every
  /// session's driver reads and writes the one StatsStore passed to the
  /// service, so a pilot run paid by one query is reused by the next. When
  /// false each session gets a private store — the isolation ablation.
  bool share_pilot_stats = true;

  /// Preempt for priority: when a strictly higher-priority arrival cannot
  /// be admitted for lack of capacity, cancel the lowest-priority running
  /// session at its next submission point and re-queue it to resume later
  /// from its checkpoint manifest (byte-identical to an unpreempted run
  /// when a checkpoint path is configured; re-executed from scratch
  /// otherwise). Equal priorities never preempt each other.
  bool priority_preemption = true;

  /// Default per-query deadline as an offset from arrival (SimMillis),
  /// applied to submissions that do not pin their own deadline_ms. 0
  /// disables. Deadlines are enforced at wave boundaries: the query is
  /// handed Status::DeadlineExceeded at its next submission point (queued
  /// queries past deadline never start).
  SimMillis default_deadline_ms = 0;

  /// Load shedding (overload protection): a due arrival that cannot be
  /// admitted, has priority <= load_shed_max_priority and has never held a
  /// slot is rejected with ResourceExhausted — instead of being admitted
  /// only to time out — once it has waited load_shed_queue_ms in the queue
  /// (> 0 enables), or immediately while the engine's last-wave busy-slot
  /// pressure is >= load_shed_pressure (> 0 enables).
  SimMillis load_shed_queue_ms = 0;
  double load_shed_pressure = 0.0;
  int load_shed_max_priority = 0;

  /// Cluster memory ledger (DESIGN.md §6.10): total task-memory bytes the
  /// service may promise to concurrently admitted queries. 0 (default)
  /// disables memory-aware admission. A due arrival whose charge would
  /// oversubscribe the ledger is held back at admission — unless nothing is
  /// currently reserved, so one query always makes progress and admission
  /// can never deadlock on an oversized estimate. Ledger utilization also
  /// joins slot pressure as a load_shed_pressure trigger.
  uint64_t memory_ledger_bytes = 0;
  /// Ledger charge for a submission that does not pin its own
  /// QuerySubmission::estimated_memory_bytes.
  uint64_t default_query_memory_bytes = 1 << 20;

  /// Service checkpoint namespace. When set: a submission without its own
  /// checkpoint_path checkpoints under "<root>/q/<query_id>"; admission
  /// writes a pending marker "<root>/pending/<query_id>" that finalization
  /// removes (along with the query's manifests); and RecoverPending()
  /// re-admits marked queries after a service crash, resuming them from
  /// their manifests.
  std::string checkpoint_root;

  /// Crash/drain hook (tests, graceful shutdown): once the cluster clock
  /// reaches this time the scheduler stops — parked sessions unwind with
  /// Cancelled, queued ones finalize as cancelled, and *no* service state
  /// is cleaned up: pending markers and manifests stay on the DFS exactly
  /// as a killed service would leave them, so a successor instance can
  /// RecoverPending(). < 0 (default) disables.
  SimMillis halt_at_ms = -1;

  /// Fills the knobs from DYNO_CONCURRENCY / DYNO_TENANT_SLOTS /
  /// DYNO_ADMISSION_QUEUE / DYNO_SUBTREE_CACHE_MB (0 disables the cache,
  /// > 0 enables it at that budget) / DYNO_STATS_CACHE (0/1) /
  /// DYNO_PRIORITY_PREEMPTION (0/1) / DYNO_QUERY_DEADLINE_MS /
  /// DYNO_LOAD_SHED_QUEUE_MS / DYNO_LOAD_SHED_PRESSURE (fraction in
  /// [0, 1]) / DYNO_LOAD_SHED_PRIORITY / DYNO_MEMORY_ADMISSION (ledger
  /// bytes; 0 disables memory-aware admission). Absent variables leave
  /// fields untouched; malformed values abort (same contract as
  /// FaultConfig).
  void ApplyEnvOverrides();
};

/// One query session handed to the service.
struct QuerySubmission {
  /// Unique query id. Scopes every DFS artifact of the session (temp
  /// paths, quarantine files, checkpoint manifests), its engine fault
  /// streams and its trace tags.
  std::string query_id;
  /// Tenant for quota accounting; empty is the anonymous shared tenant.
  std::string tenant;
  Query query;
  /// Per-session driver configuration. The service stamps exec.query_id
  /// (when empty) and rewrites a non-empty checkpoint_path to a per-query
  /// subpath, so callers may reuse one options template across sessions.
  DynoOptions options;
  /// Arrival time as an offset (SimMillis) from the schedule start. < 0
  /// draws from the service RNG stream (see QueryServiceOptions).
  SimMillis arrival_offset_ms = -1;
  /// Priority class: higher runs sooner. Folded into admission order and
  /// the fair-share wave order; with QueryServiceOptions::
  /// priority_preemption a blocked higher-priority arrival preempts the
  /// lowest-priority running session.
  int priority = 0;
  /// Per-query deadline as an offset from arrival. < 0 inherits
  /// QueryServiceOptions::default_deadline_ms; 0 explicitly disables.
  SimMillis deadline_ms = -1;
  /// Estimated peak task memory this query holds while running — its
  /// charge against QueryServiceOptions::memory_ledger_bytes under
  /// memory-aware admission. 0 inherits default_query_memory_bytes.
  uint64_t estimated_memory_bytes = 0;
};

/// Everything the service knows about one finished session.
struct QueryOutcome {
  std::string query_id;
  std::string tenant;
  int priority = 0;
  /// OK when the driver ran to completion; Cancelled for cancelled
  /// sessions; DeadlineExceeded past a deadline; ResourceExhausted when
  /// load-shed; otherwise the driver's error.
  Status status;
  /// Valid only when status.ok().
  QueryRunReport report;
  SimMillis arrival_ms = 0;
  /// -1 when the session was cancelled before admission.
  SimMillis admit_ms = -1;
  SimMillis finish_ms = -1;
  /// Committed cluster slot time attributed to this query.
  SimMillis slot_ms = 0;
  /// Times this session was preempted (and later resumed) for priority.
  int preemptions = 0;
  /// Re-admitted by RecoverPending() after a service crash.
  bool recovered = false;

  /// Queueing + execution latency (finish - arrival).
  SimMillis Latency() const { return finish_ms - arrival_ms; }
};

/// Runs many concurrent query sessions — one DynoDriver each — against one
/// shared MapReduceEngine, multiplexing their jobs through a fair-share
/// scheduler with admission control (DESIGN.md §6.6).
///
/// Concurrency model: each session runs on its own thread, but the threads
/// are strictly baton-serialized — at any instant at most one of {service
/// scheduler, one session} executes, and every handoff is a mutex/condvar
/// edge. Session threads are coroutines in all but name; real parallelism
/// lives only inside the engine's worker pool, which already guarantees
/// bit-identical results across thread counts. Every driver Submit/
/// SubmitAll is intercepted by an engine submit gate: the session parks,
/// and once every runnable session has quiesced the scheduler concatenates
/// the parked batches of all waiting sessions — ordered by fair share:
/// least attained committed slot time first, ties broken by admission
/// sequence — into one combined SubmitAllDirect wave, so jobs of different
/// queries genuinely share cluster slots in simulated time. Results are
/// split back per session and sessions are resumed in the same order.
///
/// Determinism: scheduling state is touched only between handoffs, arrival
/// times come from a seeded service RNG stream in Enqueue order, and waves
/// execute on the scheduler thread. Per-query results, checkpoint stats
/// and serialized traces are therefore bit-identical at any
/// ClusterConfig::execution_threads.
class QueryService {
 public:
  QueryService(MapReduceEngine* engine, Catalog* catalog, StatsStore* store,
               QueryServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Queues a session for the next RunAll. Fails with ResourceExhausted
  /// when the admission queue is full, InvalidArgument on an empty or
  /// duplicate query id.
  Status Enqueue(QuerySubmission submission);

  /// Cancels a session: a queued one never starts; a running one is handed
  /// Status::Cancelled at its next submission point (mid-flight
  /// cancellation — already-running cluster jobs complete their wave).
  /// Idempotent: cancelling an already-finished query or cancelling the
  /// same id twice is an OK no-op. NotFound only for ids the service has
  /// never seen.
  Status Cancel(const std::string& query_id);

  /// Deterministic cancellation at a simulated time: applied by the
  /// scheduler once the cluster clock reaches `at_ms`. Same idempotence
  /// contract as Cancel.
  Status CancelAt(const std::string& query_id, SimMillis at_ms);

  /// Restart recovery: scans "<checkpoint_root>/pending/" for queries a
  /// previous service instance admitted but never finalized (a crashed or
  /// halted run leaves their markers behind) and re-enqueues the matching
  /// submissions flagged to resume from their checkpoint manifests on the
  /// next RunAll. Queries are C++ values (filters may close over UDFs), so
  /// they cannot be rebuilt from the DFS alone — the caller resupplies its
  /// durable submission log and the scan selects which entries were
  /// in-flight. Markers with no matching submission are left untouched.
  /// Returns the number of queries re-admitted; FailedPrecondition when no
  /// checkpoint_root is configured or a run is active. Call after
  /// construction, before RunAll.
  Result<int> RecoverPending(const std::vector<QuerySubmission>& submissions);

  /// Runs every queued session to completion (or cancellation) and returns
  /// their outcomes in enqueue order. Installs the submit gate on the
  /// engine for the duration of the call and removes it before returning.
  std::vector<QueryOutcome> RunAll();

  const QueryServiceOptions& options() const { return options_; }

  /// The service-owned cross-query cache; null unless
  /// QueryServiceOptions::enable_subtree_cache. Exposed for tests/benches
  /// to read hit/eviction counters.
  SubtreeCache* subtree_cache() const { return subtree_cache_.get(); }

 private:
  struct Session;

  /// Shared tail of Enqueue and RecoverPending; call with mu_ held.
  Status EnqueueLocked(QuerySubmission submission, bool recovered);

  /// Engine submit gate; runs on the calling session's thread.
  Result<std::vector<JobResult>> SubmitFromSession(
      std::vector<JobSpec> specs);

  /// Session thread body: waits for the first baton grant, runs the
  /// driver, posts the outcome.
  void SessionMain(Session* session);

  /// Hands the baton to `session` (start or grant) and blocks until it
  /// parks at a submission or finishes. Call with `lock` held.
  void RunSessionUntilBlocked(Session* session,
                              std::unique_lock<std::mutex>* lock);

  /// Applies due CancelAt requests; call with the lock held.
  void ApplyTimedCancels();

  MapReduceEngine* engine_;
  Catalog* catalog_;
  StatsStore* store_;
  QueryServiceOptions options_;
  Rng rng_;
  /// Owned cross-query subtree cache (null when disabled). Sessions borrow
  /// it through DynoOptions::subtree_cache; it must therefore outlive every
  /// session thread, which ~QueryService's join guarantees.
  std::unique_ptr<SubtreeCache> subtree_cache_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Session>> sessions_;  ///< Enqueue order.
  /// Session currently holding the baton (null while the scheduler does).
  Session* running_session_ = nullptr;
  /// Monotonic admission sequence (fair-share tie-break).
  int next_admit_seq_ = 0;
  bool run_active_ = false;
};

}  // namespace dyno

#endif  // DYNO_SERVICE_QUERY_SERVICE_H_
