#include "service/query_service.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dyno {

void QueryServiceOptions::ApplyEnvOverrides() {
  if (const char* env = std::getenv("DYNO_CONCURRENCY")) {
    max_concurrent =
        static_cast<int>(EnvInt64OrDie("DYNO_CONCURRENCY", env, 1, 1 << 20));
  }
  if (const char* env = std::getenv("DYNO_TENANT_SLOTS")) {
    tenant_slots =
        static_cast<int>(EnvInt64OrDie("DYNO_TENANT_SLOTS", env, 0, 1 << 20));
  }
  if (const char* env = std::getenv("DYNO_ADMISSION_QUEUE")) {
    admission_queue_limit = static_cast<int>(
        EnvInt64OrDie("DYNO_ADMISSION_QUEUE", env, 0, 1 << 20));
  }
  if (const char* env = std::getenv("DYNO_SUBTREE_CACHE_MB")) {
    enable_subtree_cache =
        EnvInt64OrDie("DYNO_SUBTREE_CACHE_MB", env, 0, 1 << 20) > 0;
  }
  // Picks up the byte/entry budgets (DYNO_SUBTREE_CACHE_MB rereads there).
  subtree_cache.ApplyEnvOverrides();
  if (const char* env = std::getenv("DYNO_STATS_CACHE")) {
    share_pilot_stats = EnvInt64OrDie("DYNO_STATS_CACHE", env, 0, 1) != 0;
  }
}

/// All mutable state is guarded by QueryService::mu_; the baton protocol
/// guarantees at most one thread (scheduler or one session) touches it at a
/// time, and every handoff is a condvar edge (happens-before), so the
/// whole service is data-race-free by construction.
struct QueryService::Session {
  enum class State {
    kQueued,         ///< Not yet admitted; no thread exists.
    kRunning,        ///< Holds the baton (driver code executing).
    kWaitingSubmit,  ///< Parked in the submit gate with pending_specs set.
    kDone,           ///< Driver returned (or the session never started).
  };

  QuerySubmission sub;
  /// Driver options after query scoping (exec.query_id, checkpoint path).
  DynoOptions scoped_options;
  int enqueue_seq = 0;
  SimMillis arrival_offset = 0;  ///< Relative to RunAll start.
  SimMillis arrival_ms = 0;      ///< Absolute, fixed at RunAll start.
  int admit_seq = -1;
  SimMillis admit_ms = -1;
  SimMillis finish_ms = -1;

  State state = State::kQueued;
  bool started = false;        ///< Thread launched.
  bool start_granted = false;  ///< First baton handoff.
  bool cancelled = false;
  std::optional<SimMillis> cancel_at;
  bool reaped = false;  ///< Outcome collected, thread joined.

  /// Set by the gate while kWaitingSubmit; consumed by the scheduler.
  std::vector<JobSpec> pending_specs;
  /// Set by the scheduler to resume a parked session: its slice of the
  /// wave results, or an error (e.g. Cancelled).
  std::optional<Result<std::vector<JobResult>>> grant;
  /// Posted by SessionMain when the driver returns.
  std::optional<Result<QueryRunReport>> driver_result;

  std::thread thread;
};

QueryService::QueryService(MapReduceEngine* engine, Catalog* catalog,
                           StatsStore* store, QueryServiceOptions options)
    : engine_(engine),
      catalog_(catalog),
      store_(store),
      options_(options),
      rng_(Mix64(options.seed)) {
  if (options_.enable_subtree_cache) {
    subtree_cache_ = std::make_unique<SubtreeCache>(
        catalog_->dfs(), catalog_, options_.subtree_cache, engine_->metrics(),
        engine_->trace());
  }
}

QueryService::~QueryService() {
  // Defensive teardown for a service destroyed mid-run (RunAll normally
  // joins everything): unblock any parked or unstarted session with
  // Cancelled and join its thread.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& session : sessions_) {
      session->cancelled = true;
      if (session->state == Session::State::kWaitingSubmit) {
        session->grant = Result<std::vector<JobResult>>(
            Status::Cancelled("query service shut down"));
      }
      session->start_granted = true;
      if (session->thread.joinable()) {
        to_join.push_back(std::move(session->thread));
      }
    }
    cv_.notify_all();
  }
  for (std::thread& t : to_join) t.join();
}

Status QueryService::Enqueue(QuerySubmission submission) {
  std::lock_guard<std::mutex> lock(mu_);
  if (submission.query_id.empty()) {
    return Status::InvalidArgument("submission has no query id");
  }
  if (run_active_) {
    return Status::FailedPrecondition(
        "cannot enqueue while RunAll is in progress");
  }
  int queued = 0;
  for (const auto& session : sessions_) {
    if (session->sub.query_id == submission.query_id) {
      return Status::InvalidArgument("duplicate query id: " +
                                     submission.query_id);
    }
    if (session->state == Session::State::kQueued) ++queued;
  }
  if (queued >= std::max(0, options_.admission_queue_limit)) {
    if (obs::MetricsRegistry* metrics = engine_->metrics()) {
      metrics->GetCounter("service.rejected_queue_full")->Add();
    }
    return Status::ResourceExhausted(
        StrFormat("admission queue full (%d queued, limit %d)", queued,
                  options_.admission_queue_limit));
  }

  auto session = std::make_unique<Session>();
  session->enqueue_seq = static_cast<int>(sessions_.size());
  // Arrival schedule: explicit offsets are taken verbatim; everything else
  // draws from the service RNG stream in Enqueue order, which makes the
  // whole schedule a pure function of (seed, enqueue sequence).
  if (submission.arrival_offset_ms >= 0) {
    session->arrival_offset = submission.arrival_offset_ms;
  } else if (options_.arrival_window_ms > 0) {
    session->arrival_offset = static_cast<SimMillis>(
        rng_.Uniform(static_cast<uint64_t>(options_.arrival_window_ms) + 1));
  }
  session->sub = std::move(submission);
  if (obs::MetricsRegistry* metrics = engine_->metrics()) {
    metrics->GetCounter("service.enqueued")->Add();
  }
  sessions_.push_back(std::move(session));
  return Status::OK();
}

Status QueryService::Cancel(const std::string& query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& session : sessions_) {
    if (session->sub.query_id != query_id) continue;
    if (session->state == Session::State::kDone) {
      return Status::NotFound("query already finished: " + query_id);
    }
    session->cancelled = true;
    return Status::OK();
  }
  return Status::NotFound("unknown query id: " + query_id);
}

Status QueryService::CancelAt(const std::string& query_id, SimMillis at_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& session : sessions_) {
    if (session->sub.query_id != query_id) continue;
    if (session->state == Session::State::kDone) {
      return Status::NotFound("query already finished: " + query_id);
    }
    session->cancel_at = at_ms;
    return Status::OK();
  }
  return Status::NotFound("unknown query id: " + query_id);
}

void QueryService::ApplyTimedCancels() {
  const SimMillis now = engine_->now();
  for (auto& session : sessions_) {
    if (session->cancel_at.has_value() && now >= *session->cancel_at &&
        session->state != Session::State::kDone) {
      session->cancelled = true;
    }
  }
}

Result<std::vector<JobResult>> QueryService::SubmitFromSession(
    std::vector<JobSpec> specs) {
  std::unique_lock<std::mutex> lock(mu_);
  Session* session = running_session_;
  if (session == nullptr || !run_active_) {
    // A submission from outside any session (not expected while the gate
    // is installed, but harmless): execute directly.
    lock.unlock();
    return engine_->SubmitAllDirect(specs);
  }
  if (session->cancelled) {
    return Status::Cancelled("query " + session->sub.query_id + " cancelled");
  }
  session->pending_specs = std::move(specs);
  session->state = Session::State::kWaitingSubmit;
  cv_.notify_all();  // Baton back to the scheduler.
  cv_.wait(lock, [&] { return session->grant.has_value(); });
  Result<std::vector<JobResult>> out = std::move(*session->grant);
  session->grant.reset();
  return out;
}

void QueryService::SessionMain(Session* session) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return session->start_granted; });
    session->start_granted = false;
  }
  // The stats-sharing knob: with sharing off each session plans from a
  // private store, so one query's pilot statistics never leak into another
  // (the isolation ablation for the cross-query reuse experiments).
  StatsStore private_store;
  StatsStore* store = options_.share_pilot_stats ? store_ : &private_store;
  DynoDriver driver(engine_, catalog_, store, session->scoped_options);
  Result<QueryRunReport> result = driver.Execute(session->sub.query);
  {
    std::lock_guard<std::mutex> lock(mu_);
    session->finish_ms = engine_->now();
    session->driver_result.emplace(std::move(result));
    session->state = Session::State::kDone;
    cv_.notify_all();  // Baton back to the scheduler.
  }
}

void QueryService::RunSessionUntilBlocked(Session* session,
                                          std::unique_lock<std::mutex>* lock) {
  running_session_ = session;
  session->state = Session::State::kRunning;
  cv_.notify_all();
  cv_.wait(*lock, [&] {
    return session->state == Session::State::kWaitingSubmit ||
           session->state == Session::State::kDone;
  });
  running_session_ = nullptr;
}

std::vector<QueryOutcome> QueryService::RunAll() {
  std::unique_lock<std::mutex> lock(mu_);
  run_active_ = true;
  const int max_concurrent = std::max(1, options_.max_concurrent);
  const SimMillis run_start = engine_->now();

  obs::TraceSink* trace = engine_->trace();
  obs::MetricsRegistry* metrics = engine_->metrics();
  obs::Counter* m_admitted = nullptr;
  obs::Counter* m_completed = nullptr;
  obs::Counter* m_cancelled = nullptr;
  obs::Counter* m_failed = nullptr;
  obs::Counter* m_waves = nullptr;
  obs::Counter* m_wave_jobs = nullptr;
  obs::Gauge* g_running = nullptr;
  obs::Histogram* h_latency = nullptr;
  obs::Histogram* h_queue_wait = nullptr;
  if (metrics != nullptr) {
    m_admitted = metrics->GetCounter("service.admitted");
    m_completed = metrics->GetCounter("service.completed");
    m_cancelled = metrics->GetCounter("service.cancelled");
    m_failed = metrics->GetCounter("service.failed");
    m_waves = metrics->GetCounter("service.waves");
    m_wave_jobs = metrics->GetCounter("service.wave_jobs");
    g_running = metrics->GetGauge("service.running");
    h_latency = metrics->GetHistogram("service.query_latency_ms");
    h_queue_wait = metrics->GetHistogram("service.queue_wait_ms");
  }

  // The cohort this call runs: everything still queued. Absolute arrivals
  // are fixed now, against the current cluster clock.
  std::vector<Session*> cohort;
  for (auto& session : sessions_) {
    if (session->state != Session::State::kQueued) continue;
    session->arrival_ms = run_start + session->arrival_offset;
    cohort.push_back(session.get());
  }

  engine_->set_submit_gate([this](std::vector<JobSpec> specs) {
    return SubmitFromSession(std::move(specs));
  });

  int running = 0;  ///< Admitted, not yet reaped.
  std::map<std::string, int> tenant_running;

  auto committed_slot_ms = [&](Session* session) -> SimMillis {
    const auto& per_query = engine_->query_slot_ms();
    auto it = per_query.find(session->scoped_options.exec.query_id);
    return it == per_query.end() ? 0 : it->second;
  };

  // Finalizes a session that never started (cancelled while queued).
  auto finalize_unstarted = [&](Session* session) {
    session->state = Session::State::kDone;
    session->finish_ms = engine_->now();
    session->driver_result.emplace(Result<QueryRunReport>(
        Status::Cancelled("query " + session->sub.query_id +
                          " cancelled before admission")));
    session->reaped = true;  // No thread, no slot accounting.
    if (m_cancelled != nullptr) m_cancelled->Add();
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(engine_->now(), -1,
                                    obs::TraceLane::kService, "service",
                                    "query_cancelled")
                        .Arg("query", session->sub.query_id)
                        .ArgBool("admitted", false));
    }
  };

  // Joins finished session threads and releases their capacity.
  auto reap_finished = [&] {
    for (Session* session : cohort) {
      if (session->state != Session::State::kDone || session->reaped) {
        continue;
      }
      if (session->thread.joinable()) session->thread.join();
      session->reaped = true;
      --running;
      --tenant_running[session->sub.tenant];
      if (g_running != nullptr) g_running->Set(running);
      const Status& st = session->driver_result->status();
      if (st.ok()) {
        if (m_completed != nullptr) m_completed->Add();
      } else if (st.code() == StatusCode::kCancelled) {
        if (m_cancelled != nullptr) m_cancelled->Add();
      } else {
        if (m_failed != nullptr) m_failed->Add();
      }
      if (h_latency != nullptr) {
        h_latency->Observe(session->finish_ms - session->arrival_ms);
      }
      if (trace != nullptr) {
        trace->Record(obs::TraceEvent(session->finish_ms, -1,
                                      obs::TraceLane::kService, "service",
                                      "query_finished")
                          .Arg("query", session->sub.query_id)
                          .ArgBool("ok", st.ok())
                          .ArgInt("latency_ms",
                                  session->finish_ms - session->arrival_ms));
      }
    }
  };

  // Admits due arrivals in (arrival, enqueue) order, respecting the
  // service-wide concurrency cap and per-tenant slot quotas, and runs each
  // new session until its first park. A tenant at quota is skipped, not a
  // head-of-line blocker.
  auto admit_due = [&] {
    std::vector<Session*> due;
    for (Session* session : cohort) {
      if (session->state == Session::State::kQueued) due.push_back(session);
    }
    std::sort(due.begin(), due.end(), [](Session* a, Session* b) {
      if (a->arrival_ms != b->arrival_ms) return a->arrival_ms < b->arrival_ms;
      return a->enqueue_seq < b->enqueue_seq;
    });
    for (Session* session : due) {
      if (session->cancelled) {
        finalize_unstarted(session);
        continue;
      }
      if (session->arrival_ms > engine_->now()) break;
      if (running >= max_concurrent) break;
      if (options_.tenant_slots > 0 &&
          tenant_running[session->sub.tenant] >= options_.tenant_slots) {
        continue;  // Quota; later arrivals of other tenants may still fit.
      }
      session->admit_seq = next_admit_seq_++;
      session->admit_ms = engine_->now();
      // The driver inherits the submission's query id: it scopes DFS temp
      // paths, quarantine files, engine fault streams and trace tags. A
      // checkpoint path, if configured, becomes per-query for the same
      // reason (manifest + ".prev" must never be shared across queries).
      session->scoped_options = session->sub.options;
      if (session->scoped_options.exec.query_id.empty()) {
        session->scoped_options.exec.query_id = session->sub.query_id;
      }
      if (!session->scoped_options.checkpoint_path.empty()) {
        session->scoped_options.checkpoint_path +=
            "/q/" + session->sub.query_id;
      }
      // Every admitted session shares the service-owned subtree cache (a
      // submission that pinned its own cache keeps it).
      if (session->scoped_options.subtree_cache == nullptr) {
        session->scoped_options.subtree_cache = subtree_cache_.get();
      }
      ++running;
      ++tenant_running[session->sub.tenant];
      if (m_admitted != nullptr) m_admitted->Add();
      if (g_running != nullptr) g_running->Set(running);
      if (h_queue_wait != nullptr) {
        h_queue_wait->Observe(session->admit_ms - session->arrival_ms);
      }
      if (trace != nullptr) {
        trace->Record(obs::TraceEvent(session->admit_ms, -1,
                                      obs::TraceLane::kService, "service",
                                      "query_admitted")
                          .Arg("query", session->sub.query_id)
                          .Arg("tenant", session->sub.tenant)
                          .ArgInt("queue_wait_ms",
                                  session->admit_ms - session->arrival_ms));
      }
      session->started = true;
      session->start_granted = true;
      session->thread = std::thread(&QueryService::SessionMain, this, session);
      RunSessionUntilBlocked(session, &lock);
    }
  };

  // Hands Cancelled to every cancelled session parked at a submit; each
  // unwinds its driver stack and finishes.
  auto cancel_parked = [&] {
    for (Session* session : cohort) {
      if (session->state != Session::State::kWaitingSubmit ||
          !session->cancelled) {
        continue;
      }
      session->pending_specs.clear();
      session->grant = Result<std::vector<JobResult>>(
          Status::Cancelled("query " + session->sub.query_id + " cancelled"));
      if (trace != nullptr) {
        trace->Record(obs::TraceEvent(engine_->now(), -1,
                                      obs::TraceLane::kService, "service",
                                      "query_cancelled")
                          .Arg("query", session->sub.query_id)
                          .ArgBool("admitted", true));
      }
      RunSessionUntilBlocked(session, &lock);
    }
  };

  // One combined wave: the batches of every parked session, ordered by
  // fair share — least attained committed slot time first, admission
  // sequence breaking ties. The engine grants scarce slots FIFO across the
  // batch, so wave order IS the fairness policy.
  auto run_wave = [&] {
    std::vector<Session*> waiting;
    for (Session* session : cohort) {
      if (session->state == Session::State::kWaitingSubmit) {
        waiting.push_back(session);
      }
    }
    if (waiting.empty()) return false;
    std::sort(waiting.begin(), waiting.end(), [&](Session* a, Session* b) {
      SimMillis sa = committed_slot_ms(a);
      SimMillis sb = committed_slot_ms(b);
      if (sa != sb) return sa < sb;
      return a->admit_seq < b->admit_seq;
    });
    std::vector<JobSpec> specs;
    std::vector<std::pair<Session*, size_t>> parts;
    for (Session* session : waiting) {
      parts.emplace_back(session, session->pending_specs.size());
      for (JobSpec& spec : session->pending_specs) {
        specs.push_back(std::move(spec));
      }
      session->pending_specs.clear();
    }
    if (m_waves != nullptr) m_waves->Add();
    if (m_wave_jobs != nullptr) m_wave_jobs->Add(specs.size());
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(engine_->now(), -1,
                                    obs::TraceLane::kService, "service",
                                    "wave")
                        .ArgInt("sessions", (int64_t)parts.size())
                        .ArgInt("jobs", (int64_t)specs.size()));
    }
    // The engine runs on this (scheduler) thread; every session is parked,
    // so dropping the lock for the duration is safe and keeps the gate
    // callable by... nobody, which is the point.
    lock.unlock();
    Result<std::vector<JobResult>> wave = engine_->SubmitAllDirect(specs);
    lock.lock();
    size_t offset = 0;
    std::vector<Result<std::vector<JobResult>>> slices;
    slices.reserve(parts.size());
    for (const auto& [session, count] : parts) {
      (void)session;
      if (wave.ok()) {
        slices.emplace_back(std::vector<JobResult>(
            wave->begin() + offset, wave->begin() + offset + count));
      } else {
        slices.emplace_back(wave.status());
      }
      offset += count;
    }
    // Resume in the same fair-share order, one at a time (granting all at
    // once would wake every parked thread and break the baton).
    for (size_t i = 0; i < parts.size(); ++i) {
      parts[i].first->grant = std::move(slices[i]);
      RunSessionUntilBlocked(parts[i].first, &lock);
    }
    return true;
  };

  for (;;) {
    ApplyTimedCancels();
    reap_finished();
    admit_due();
    cancel_parked();
    reap_finished();
    if (run_wave()) continue;

    // Nothing parked. Anything still pending is a future arrival (or a
    // queued session blocked on capacity freed by the reap above — retry).
    bool any_done_unreaped = false;
    SimMillis next_arrival = -1;
    bool any_queued = false;
    for (Session* session : cohort) {
      if (session->state == Session::State::kDone && !session->reaped) {
        any_done_unreaped = true;
      }
      if (session->state == Session::State::kQueued) {
        any_queued = true;
        if (next_arrival < 0 || session->arrival_ms < next_arrival) {
          next_arrival = session->arrival_ms;
        }
      }
    }
    if (any_done_unreaped) continue;
    if (any_queued) {
      if (next_arrival > engine_->now()) {
        engine_->AdvanceClock(next_arrival - engine_->now());
      }
      // A due-but-quota-blocked arrival unblocks when a running session of
      // its tenant finishes; with nothing running and nothing parked the
      // next admission pass must make progress.
      continue;
    }
    break;
  }

  engine_->set_submit_gate(nullptr);
  run_active_ = false;

  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(cohort.size());
  for (Session* session : cohort) {
    QueryOutcome outcome;
    outcome.query_id = session->sub.query_id;
    outcome.tenant = session->sub.tenant;
    outcome.status = session->driver_result->status();
    if (session->driver_result->ok()) {
      outcome.report = session->driver_result->value();
    }
    outcome.arrival_ms = session->arrival_ms;
    outcome.admit_ms = session->admit_ms;
    outcome.finish_ms = session->finish_ms;
    outcome.slot_ms = committed_slot_ms(session);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace dyno
