#include "service/query_service.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/dfs.h"

namespace dyno {

void QueryServiceOptions::ApplyEnvOverrides() {
  if (const char* env = std::getenv("DYNO_CONCURRENCY")) {
    max_concurrent =
        static_cast<int>(EnvInt64OrDie("DYNO_CONCURRENCY", env, 1, 1 << 20));
  }
  if (const char* env = std::getenv("DYNO_TENANT_SLOTS")) {
    tenant_slots =
        static_cast<int>(EnvInt64OrDie("DYNO_TENANT_SLOTS", env, 0, 1 << 20));
  }
  if (const char* env = std::getenv("DYNO_ADMISSION_QUEUE")) {
    admission_queue_limit = static_cast<int>(
        EnvInt64OrDie("DYNO_ADMISSION_QUEUE", env, 0, 1 << 20));
  }
  if (const char* env = std::getenv("DYNO_SUBTREE_CACHE_MB")) {
    enable_subtree_cache =
        EnvInt64OrDie("DYNO_SUBTREE_CACHE_MB", env, 0, 1 << 20) > 0;
  }
  // Picks up the byte/entry budgets (DYNO_SUBTREE_CACHE_MB rereads there).
  subtree_cache.ApplyEnvOverrides();
  if (const char* env = std::getenv("DYNO_STATS_CACHE")) {
    share_pilot_stats = EnvInt64OrDie("DYNO_STATS_CACHE", env, 0, 1) != 0;
  }
  if (const char* env = std::getenv("DYNO_PRIORITY_PREEMPTION")) {
    priority_preemption =
        EnvInt64OrDie("DYNO_PRIORITY_PREEMPTION", env, 0, 1) != 0;
  }
  if (const char* env = std::getenv("DYNO_QUERY_DEADLINE_MS")) {
    default_deadline_ms =
        EnvInt64OrDie("DYNO_QUERY_DEADLINE_MS", env, 0, int64_t{1} << 40);
  }
  if (const char* env = std::getenv("DYNO_LOAD_SHED_QUEUE_MS")) {
    load_shed_queue_ms =
        EnvInt64OrDie("DYNO_LOAD_SHED_QUEUE_MS", env, 0, int64_t{1} << 40);
  }
  if (const char* env = std::getenv("DYNO_LOAD_SHED_PRESSURE")) {
    load_shed_pressure =
        EnvDoubleOrDie("DYNO_LOAD_SHED_PRESSURE", env, 0.0, 1.0);
  }
  if (const char* env = std::getenv("DYNO_LOAD_SHED_PRIORITY")) {
    load_shed_max_priority = static_cast<int>(
        EnvInt64OrDie("DYNO_LOAD_SHED_PRIORITY", env, 0, 1 << 20));
  }
  if (const char* env = std::getenv("DYNO_MEMORY_ADMISSION")) {
    memory_ledger_bytes = static_cast<uint64_t>(
        EnvInt64OrDie("DYNO_MEMORY_ADMISSION", env, 0, int64_t{1} << 40));
  }
}

/// All mutable state is guarded by QueryService::mu_; the baton protocol
/// guarantees at most one thread (scheduler or one session) touches it at a
/// time, and every handoff is a condvar edge (happens-before), so the
/// whole service is data-race-free by construction.
struct QueryService::Session {
  enum class State {
    kQueued,         ///< Not yet admitted; no thread exists.
    kRunning,        ///< Holds the baton (driver code executing).
    kWaitingSubmit,  ///< Parked in the submit gate with pending_specs set.
    kDone,           ///< Driver returned (or the session never started).
  };

  QuerySubmission sub;
  /// Driver options after query scoping (exec.query_id, checkpoint path).
  DynoOptions scoped_options;
  int enqueue_seq = 0;
  int priority = 0;
  SimMillis arrival_offset = 0;  ///< Relative to RunAll start.
  SimMillis arrival_ms = 0;      ///< Absolute, fixed at RunAll start.
  SimMillis deadline_at = -1;    ///< Absolute; < 0 = none.
  int admit_seq = -1;
  SimMillis admit_ms = -1;       ///< First admission (preemption keeps it).
  SimMillis finish_ms = -1;

  State state = State::kQueued;
  bool started = false;        ///< Thread launched.
  bool start_granted = false;  ///< First baton handoff.
  bool cancelled = false;
  bool deadline_hit = false;
  /// The scheduler wants this session's slot back: unwind with Cancelled at
  /// the next submission point, then re-queue instead of finalizing.
  bool preempt_requested = false;
  int preempt_count = 0;
  /// Start the driver via Resume() (preempted earlier, or re-admitted by
  /// RecoverPending) so it continues from its checkpoint manifest.
  bool resume_on_start = false;
  bool recovered = false;  ///< Came in through RecoverPending().
  std::optional<SimMillis> cancel_at;
  bool reaped = false;  ///< Outcome collected, thread joined.
  /// Bytes this session currently holds against the memory ledger (0 when
  /// not admitted or memory-aware admission is off).
  uint64_t memory_charge = 0;
  /// A memory_pressure hold-back was already traced for this wait (reset
  /// on admission), so the queue doesn't re-log every scheduler pass.
  bool memory_held = false;

  /// Set by the gate while kWaitingSubmit; consumed by the scheduler.
  std::vector<JobSpec> pending_specs;
  /// Set by the scheduler to resume a parked session: its slice of the
  /// wave results, or an error (e.g. Cancelled).
  std::optional<Result<std::vector<JobResult>>> grant;
  /// Posted by SessionMain when the driver returns.
  std::optional<Result<QueryRunReport>> driver_result;

  std::thread thread;
};

QueryService::QueryService(MapReduceEngine* engine, Catalog* catalog,
                           StatsStore* store, QueryServiceOptions options)
    : engine_(engine),
      catalog_(catalog),
      store_(store),
      options_(options),
      rng_(Mix64(options.seed)) {
  if (options_.enable_subtree_cache) {
    subtree_cache_ = std::make_unique<SubtreeCache>(
        catalog_->dfs(), catalog_, options_.subtree_cache, engine_->metrics(),
        engine_->trace());
  }
}

QueryService::~QueryService() {
  // Defensive teardown for a service destroyed mid-run (RunAll normally
  // joins everything): unblock any parked or unstarted session with
  // Cancelled and join its thread.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& session : sessions_) {
      session->cancelled = true;
      if (session->state == Session::State::kWaitingSubmit) {
        session->grant = Result<std::vector<JobResult>>(
            Status::Cancelled("query service shut down"));
      }
      session->start_granted = true;
      if (session->thread.joinable()) {
        to_join.push_back(std::move(session->thread));
      }
    }
    cv_.notify_all();
  }
  for (std::thread& t : to_join) t.join();
}

Status QueryService::Enqueue(QuerySubmission submission) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnqueueLocked(std::move(submission), /*recovered=*/false);
}

Status QueryService::EnqueueLocked(QuerySubmission submission,
                                   bool recovered) {
  if (submission.query_id.empty()) {
    return Status::InvalidArgument("submission has no query id");
  }
  if (run_active_) {
    return Status::FailedPrecondition(
        "cannot enqueue while RunAll is in progress");
  }
  int queued = 0;
  for (const auto& session : sessions_) {
    if (session->sub.query_id == submission.query_id) {
      return Status::InvalidArgument("duplicate query id: " +
                                     submission.query_id);
    }
    if (session->state == Session::State::kQueued) ++queued;
  }
  if (queued >= std::max(0, options_.admission_queue_limit)) {
    if (obs::MetricsRegistry* metrics = engine_->metrics()) {
      metrics->GetCounter("service.rejected_queue_full")->Add();
    }
    return Status::ResourceExhausted(
        StrFormat("admission queue full (%d queued, limit %d)", queued,
                  options_.admission_queue_limit));
  }

  auto session = std::make_unique<Session>();
  session->enqueue_seq = static_cast<int>(sessions_.size());
  session->priority = submission.priority;
  // Arrival schedule: explicit offsets are taken verbatim; everything else
  // draws from the service RNG stream in Enqueue order, which makes the
  // whole schedule a pure function of (seed, enqueue sequence). Recovered
  // queries were admitted by the previous instance, so they re-arrive
  // immediately regardless of their original schedule.
  if (recovered) {
    session->arrival_offset = 0;
    session->recovered = true;
    session->resume_on_start = true;
  } else if (submission.arrival_offset_ms >= 0) {
    session->arrival_offset = submission.arrival_offset_ms;
  } else if (options_.arrival_window_ms > 0) {
    session->arrival_offset = static_cast<SimMillis>(
        rng_.Uniform(static_cast<uint64_t>(options_.arrival_window_ms) + 1));
  }
  session->sub = std::move(submission);
  if (obs::MetricsRegistry* metrics = engine_->metrics()) {
    metrics->GetCounter("service.enqueued")->Add();
  }
  sessions_.push_back(std::move(session));
  return Status::OK();
}

Status QueryService::Cancel(const std::string& query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& session : sessions_) {
    if (session->sub.query_id != query_id) continue;
    if (session->state == Session::State::kDone) {
      return Status::OK();  // Already finished: cancellation is a no-op.
    }
    session->cancelled = true;
    return Status::OK();
  }
  return Status::NotFound("unknown query id: " + query_id);
}

Status QueryService::CancelAt(const std::string& query_id, SimMillis at_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& session : sessions_) {
    if (session->sub.query_id != query_id) continue;
    if (session->state == Session::State::kDone) {
      return Status::OK();  // Already finished: cancellation is a no-op.
    }
    session->cancel_at = at_ms;
    return Status::OK();
  }
  return Status::NotFound("unknown query id: " + query_id);
}

Result<int> QueryService::RecoverPending(
    const std::vector<QuerySubmission>& submissions) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.checkpoint_root.empty()) {
    return Status::FailedPrecondition(
        "RecoverPending requires QueryServiceOptions::checkpoint_root");
  }
  if (run_active_) {
    return Status::FailedPrecondition(
        "cannot recover while RunAll is in progress");
  }
  const std::string prefix = options_.checkpoint_root + "/pending/";
  obs::MetricsRegistry* metrics = engine_->metrics();
  obs::TraceSink* trace = engine_->trace();
  int recovered = 0;
  for (const std::string& path : engine_->dfs()->List()) {
    if (!StartsWith(path, prefix)) continue;
    const std::string query_id = path.substr(prefix.size());
    const QuerySubmission* match = nullptr;
    for (const QuerySubmission& sub : submissions) {
      if (sub.query_id == query_id) {
        match = &sub;
        break;
      }
    }
    if (match == nullptr) continue;  // Marker kept for a later attempt.
    DYNO_RETURN_IF_ERROR(EnqueueLocked(*match, /*recovered=*/true));
    ++recovered;
    if (metrics != nullptr) metrics->GetCounter("service.recovered")->Add();
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(engine_->now(), -1,
                                    obs::TraceLane::kService, "service",
                                    "query_recovered")
                        .Arg("query", query_id));
    }
  }
  return recovered;
}

Result<std::vector<JobResult>> QueryService::SubmitFromSession(
    std::vector<JobSpec> specs) {
  std::unique_lock<std::mutex> lock(mu_);
  Session* session = running_session_;
  if (session == nullptr || !run_active_) {
    // A submission from outside any session (not expected while the gate
    // is installed, but harmless): execute directly.
    lock.unlock();
    return engine_->SubmitAllDirect(specs);
  }
  if (session->cancelled) {
    return Status::Cancelled("query " + session->sub.query_id + " cancelled");
  }
  if (session->deadline_hit) {
    return Status::DeadlineExceeded("query " + session->sub.query_id +
                                    " missed its deadline");
  }
  session->pending_specs = std::move(specs);
  session->state = Session::State::kWaitingSubmit;
  cv_.notify_all();  // Baton back to the scheduler.
  cv_.wait(lock, [&] { return session->grant.has_value(); });
  Result<std::vector<JobResult>> out = std::move(*session->grant);
  session->grant.reset();
  return out;
}

void QueryService::SessionMain(Session* session) {
  bool resume = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return session->start_granted; });
    session->start_granted = false;
    resume = session->resume_on_start;
  }
  // The stats-sharing knob: with sharing off each session plans from a
  // private store, so one query's pilot statistics never leak into another
  // (the isolation ablation for the cross-query reuse experiments).
  StatsStore private_store;
  StatsStore* store = options_.share_pilot_stats ? store_ : &private_store;
  DynoDriver driver(engine_, catalog_, store, session->scoped_options);
  // A preempted or crash-recovered session resumes from its checkpoint
  // manifest; Resume degrades to Execute-from-scratch when no manifest is
  // readable, so correctness never depends on checkpoint survival.
  Result<QueryRunReport> result = resume ? driver.Resume(session->sub.query)
                                         : driver.Execute(session->sub.query);
  {
    std::lock_guard<std::mutex> lock(mu_);
    session->finish_ms = engine_->now();
    session->driver_result.emplace(std::move(result));
    session->state = Session::State::kDone;
    cv_.notify_all();  // Baton back to the scheduler.
  }
}

void QueryService::RunSessionUntilBlocked(Session* session,
                                          std::unique_lock<std::mutex>* lock) {
  running_session_ = session;
  session->state = Session::State::kRunning;
  cv_.notify_all();
  cv_.wait(*lock, [&] {
    return session->state == Session::State::kWaitingSubmit ||
           session->state == Session::State::kDone;
  });
  running_session_ = nullptr;
}

void QueryService::ApplyTimedCancels() {
  const SimMillis now = engine_->now();
  for (auto& session : sessions_) {
    if (session->cancel_at.has_value() && now >= *session->cancel_at &&
        session->state != Session::State::kDone) {
      session->cancelled = true;
    }
  }
}

std::vector<QueryOutcome> QueryService::RunAll() {
  std::unique_lock<std::mutex> lock(mu_);
  run_active_ = true;
  const int max_concurrent = std::max(1, options_.max_concurrent);
  const SimMillis run_start = engine_->now();

  obs::TraceSink* trace = engine_->trace();
  obs::MetricsRegistry* metrics = engine_->metrics();
  obs::Counter* m_admitted = nullptr;
  obs::Counter* m_completed = nullptr;
  obs::Counter* m_cancelled = nullptr;
  obs::Counter* m_failed = nullptr;
  obs::Counter* m_waves = nullptr;
  obs::Counter* m_wave_jobs = nullptr;
  obs::Counter* m_preemptions = nullptr;
  obs::Counter* m_shed = nullptr;
  obs::Counter* m_deadline = nullptr;
  obs::Counter* m_memory_held = nullptr;
  obs::Gauge* g_memory_reserved = nullptr;
  obs::Gauge* g_running = nullptr;
  obs::Histogram* h_latency = nullptr;
  obs::Histogram* h_queue_wait = nullptr;
  if (metrics != nullptr && options_.memory_ledger_bytes > 0) {
    // Registered only when the ledger is enabled, so knob-off metric dumps
    // stay byte-identical to pre-memory-model builds.
    m_memory_held = metrics->GetCounter("service.memory_held_back");
    g_memory_reserved = metrics->GetGauge("service.memory_reserved_bytes");
  }
  if (metrics != nullptr) {
    m_admitted = metrics->GetCounter("service.admitted");
    m_completed = metrics->GetCounter("service.completed");
    m_cancelled = metrics->GetCounter("service.cancelled");
    m_failed = metrics->GetCounter("service.failed");
    m_waves = metrics->GetCounter("service.waves");
    m_wave_jobs = metrics->GetCounter("service.wave_jobs");
    m_preemptions = metrics->GetCounter("service.preemptions");
    m_shed = metrics->GetCounter("service.shed");
    m_deadline = metrics->GetCounter("service.deadline_exceeded");
    g_running = metrics->GetGauge("service.running");
    h_latency = metrics->GetHistogram("service.query_latency_ms");
    h_queue_wait = metrics->GetHistogram("service.queue_wait_ms");
  }

  // The cohort this call runs: everything still queued. Absolute arrivals
  // and deadlines are fixed now, against the current cluster clock.
  std::vector<Session*> cohort;
  for (auto& session : sessions_) {
    if (session->state != Session::State::kQueued) continue;
    session->arrival_ms = run_start + session->arrival_offset;
    SimMillis deadline = session->sub.deadline_ms >= 0
                             ? session->sub.deadline_ms
                             : options_.default_deadline_ms;
    session->deadline_at =
        deadline > 0 ? session->arrival_ms + deadline : -1;
    cohort.push_back(session.get());
  }

  engine_->set_submit_gate([this](std::vector<JobSpec> specs) {
    return SubmitFromSession(std::move(specs));
  });

  int running = 0;  ///< Admitted, not yet reaped.
  std::map<std::string, int> tenant_running;
  /// Bytes currently promised against the memory ledger (scheduler-thread
  /// only, like all admission state — deterministic by construction).
  uint64_t memory_reserved = 0;
  auto query_memory_charge = [&](Session* session) -> uint64_t {
    return session->sub.estimated_memory_bytes > 0
               ? session->sub.estimated_memory_bytes
               : options_.default_query_memory_bytes;
  };
  // Halt mode (crash simulation / drain): no cleanup of service state.
  bool halted = false;

  auto committed_slot_ms = [&](Session* session) -> SimMillis {
    const auto& per_query = engine_->query_slot_ms();
    const std::string& id = session->scoped_options.exec.query_id.empty()
                                ? session->sub.query_id
                                : session->scoped_options.exec.query_id;
    auto it = per_query.find(id);
    return it == per_query.end() ? 0 : it->second;
  };

  auto pending_marker_path = [&](Session* session) {
    return options_.checkpoint_root + "/pending/" + session->sub.query_id;
  };

  // Durable "this query is in flight" record, written at first admission
  // and removed at finalization: the successor instance's RecoverPending
  // scans exactly these.
  auto write_pending_marker = [&](Session* session) {
    if (options_.checkpoint_root.empty()) return;
    const std::string path = pending_marker_path(session);
    if (engine_->dfs()->Exists(path)) return;  // Re-admission.
    engine_->dfs()->Create(path).ok();
  };

  // Finalization scrubs the query's service state — pending marker plus
  // both checkpoint manifest generations — unless the run is halting, in
  // which case everything is left behind exactly as a crash would.
  auto cleanup_service_state = [&](Session* session) {
    if (options_.checkpoint_root.empty() || halted) return;
    Dfs* dfs = engine_->dfs();
    dfs->Delete(pending_marker_path(session)).ok();
    const std::string& manifest = session->scoped_options.checkpoint_path;
    if (session->started && !manifest.empty() &&
        StartsWith(manifest, options_.checkpoint_root)) {
      dfs->Delete(manifest).ok();
      dfs->Delete(manifest + ".prev").ok();
    }
  };

  // Finalizes a session with no live thread (never admitted, or already
  // joined after a preemption) without a driver run: cancelled while
  // queued, past its deadline, or load-shed.
  auto finalize_queued = [&](Session* session, Status status,
                             obs::Counter* counter) {
    session->state = Session::State::kDone;
    session->finish_ms = engine_->now();
    session->driver_result.emplace(
        Result<QueryRunReport>(std::move(status)));
    session->reaped = true;  // No thread, no slot accounting.
    if (counter != nullptr) counter->Add();
    cleanup_service_state(session);
  };

  auto finalize_queued_cancelled = [&](Session* session) {
    finalize_queued(session,
                    Status::Cancelled("query " + session->sub.query_id +
                                      " cancelled before admission"),
                    m_cancelled);
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(engine_->now(), -1,
                                    obs::TraceLane::kService, "service",
                                    "query_cancelled")
                        .Arg("query", session->sub.query_id)
                        .ArgBool("admitted", false));
    }
  };

  // Joins finished session threads and releases their capacity. A session
  // that unwound because the scheduler preempted it is re-queued to resume
  // from its checkpoint instead of being finalized.
  auto reap_finished = [&] {
    for (Session* session : cohort) {
      if (session->state != Session::State::kDone || session->reaped) {
        continue;
      }
      if (session->thread.joinable()) session->thread.join();
      --running;
      --tenant_running[session->sub.tenant];
      if (g_running != nullptr) g_running->Set(running);
      if (session->memory_charge > 0) {
        memory_reserved -= session->memory_charge;
        session->memory_charge = 0;
        if (g_memory_reserved != nullptr) {
          g_memory_reserved->Set(static_cast<int64_t>(memory_reserved));
        }
      }

      if (session->preempt_requested && !session->cancelled &&
          !session->deadline_hit && !halted &&
          session->driver_result->status().code() == StatusCode::kCancelled) {
        session->preempt_requested = false;
        ++session->preempt_count;
        session->resume_on_start = true;
        session->driver_result.reset();
        session->started = false;
        session->start_granted = false;
        session->finish_ms = -1;
        session->state = Session::State::kQueued;
        if (m_preemptions != nullptr) m_preemptions->Add();
        if (trace != nullptr) {
          trace->Record(obs::TraceEvent(engine_->now(), -1,
                                        obs::TraceLane::kService, "service",
                                        "query_preempted")
                            .Arg("query", session->sub.query_id)
                            .ArgInt("preemptions", session->preempt_count));
        }
        continue;
      }

      session->preempt_requested = false;
      session->reaped = true;
      const Status& st = session->driver_result->status();
      if (st.ok()) {
        if (m_completed != nullptr) m_completed->Add();
      } else if (st.code() == StatusCode::kCancelled) {
        if (m_cancelled != nullptr) m_cancelled->Add();
      } else if (st.code() == StatusCode::kDeadlineExceeded) {
        if (m_deadline != nullptr) m_deadline->Add();
      } else {
        if (m_failed != nullptr) m_failed->Add();
      }
      if (h_latency != nullptr) {
        h_latency->Observe(session->finish_ms - session->arrival_ms);
      }
      cleanup_service_state(session);
      if (trace != nullptr) {
        trace->Record(obs::TraceEvent(session->finish_ms, -1,
                                      obs::TraceLane::kService, "service",
                                      "query_finished")
                          .Arg("query", session->sub.query_id)
                          .ArgBool("ok", st.ok())
                          .ArgInt("latency_ms",
                                  session->finish_ms - session->arrival_ms));
      }
    }
  };

  // Deadline sweep, at wave boundaries like timed cancels: queued sessions
  // past deadline finalize without ever starting; admitted ones are handed
  // DeadlineExceeded at their parked submission point (unwind_parked). An
  // explicit cancel wins over a deadline.
  auto apply_deadlines = [&] {
    const SimMillis now = engine_->now();
    for (Session* session : cohort) {
      if (session->deadline_at < 0 || session->deadline_hit) continue;
      if (session->state == Session::State::kDone || session->cancelled) {
        continue;
      }
      if (now < session->deadline_at) continue;
      session->deadline_hit = true;
      if (trace != nullptr) {
        trace->Record(obs::TraceEvent(now, -1, obs::TraceLane::kService,
                                      "service", "deadline_exceeded")
                          .Arg("query", session->sub.query_id)
                          .ArgInt("deadline_ms", session->deadline_at)
                          .ArgBool("admitted", session->started));
      }
      if (session->state == Session::State::kQueued) {
        finalize_queued(session,
                        Status::DeadlineExceeded(
                            "query " + session->sub.query_id +
                            " missed its deadline before admission"),
                        m_deadline);
      }
    }
  };

  // Picks the running session a higher-priority arrival may evict: lowest
  // priority first, newest admission breaking ties (it has the least sunk
  // work). Sessions already being preempted or cancelled are exempt.
  auto lowest_priority_victim = [&]() -> Session* {
    Session* victim = nullptr;
    for (Session* s : cohort) {
      if (!s->started || s->state == Session::State::kDone) continue;
      if (s->preempt_requested || s->cancelled || s->deadline_hit) continue;
      if (victim == nullptr || s->priority < victim->priority ||
          (s->priority == victim->priority &&
           s->admit_seq > victim->admit_seq)) {
        victim = s;
      }
    }
    return victim;
  };

  // Overload protection: reject a sheddable blocked arrival outright
  // instead of letting it sit in the queue only to time out. Sessions that
  // ever held a slot (preempted victims) are never shed — their work is
  // checkpointed, not disposable.
  auto maybe_shed = [&](Session* session) {
    if (session->priority > options_.load_shed_max_priority) return;
    if (session->preempt_count > 0 || session->resume_on_start) return;
    const SimMillis waited = engine_->now() - session->arrival_ms;
    const double pressure = engine_->last_wave_pressure();
    // Ledger utilization joins slot pressure as a shed trigger: a cluster
    // whose memory is promised out is as overloaded as one out of slots.
    const double memory_pressure =
        options_.memory_ledger_bytes > 0
            ? static_cast<double>(memory_reserved) /
                  static_cast<double>(options_.memory_ledger_bytes)
            : 0.0;
    const bool queue_shed =
        options_.load_shed_queue_ms > 0 && waited >= options_.load_shed_queue_ms;
    const bool pressure_shed = options_.load_shed_pressure > 0.0 &&
                               pressure >= options_.load_shed_pressure;
    const bool memory_shed = options_.load_shed_pressure > 0.0 &&
                             memory_pressure >= options_.load_shed_pressure;
    if (!queue_shed && !pressure_shed && !memory_shed) return;
    finalize_queued(session,
                    Status::ResourceExhausted(
                        "query " + session->sub.query_id +
                        " shed under overload"),
                    m_shed);
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(engine_->now(), -1,
                                    obs::TraceLane::kService, "service",
                                    "load_shed")
                        .Arg("query", session->sub.query_id)
                        .Arg("reason", queue_shed      ? "queue_wait"
                                       : pressure_shed ? "pressure"
                                                       : "memory_pressure")
                        .ArgInt("waited_ms", waited)
                        .ArgDouble("pressure", pressure)
                        .ArgDouble("memory_pressure", memory_pressure));
    }
  };

  // Admits due arrivals in (priority desc, arrival, enqueue) order,
  // respecting the service-wide concurrency cap and per-tenant slot
  // quotas, and runs each new session until its first park. A tenant at
  // quota is skipped, not a head-of-line blocker. When capacity blocks a
  // strictly higher-priority arrival, the lowest-priority running session
  // is marked for preemption; it unwinds at its next submission point,
  // frees its slot and re-queues, and — priorities leading the admission
  // order — the preemptor takes the slot first.
  auto admit_due = [&] {
    std::vector<Session*> due;
    for (Session* session : cohort) {
      if (session->state != Session::State::kQueued) continue;
      if (session->cancelled) {
        finalize_queued_cancelled(session);
        continue;
      }
      if (session->arrival_ms <= engine_->now()) due.push_back(session);
    }
    std::sort(due.begin(), due.end(), [](Session* a, Session* b) {
      if (a->priority != b->priority) return a->priority > b->priority;
      if (a->arrival_ms != b->arrival_ms) return a->arrival_ms < b->arrival_ms;
      return a->enqueue_seq < b->enqueue_seq;
    });
    for (Session* session : due) {
      if (running >= max_concurrent) {
        if (options_.priority_preemption) {
          Session* victim = lowest_priority_victim();
          if (victim != nullptr && victim->priority < session->priority) {
            victim->preempt_requested = true;
            continue;  // Admitted next pass, once the victim unwinds.
          }
        }
        maybe_shed(session);
        continue;
      }
      if (options_.tenant_slots > 0 &&
          tenant_running[session->sub.tenant] >= options_.tenant_slots) {
        continue;  // Quota; later arrivals of other tenants may still fit.
      }
      if (options_.memory_ledger_bytes > 0) {
        // Memory-aware admission: hold back a query whose charge would
        // oversubscribe the ledger. An empty ledger always admits, so one
        // oversized query cannot deadlock the queue — it runs alone and
        // degrades via the engine's spill/OOM machinery instead.
        const uint64_t charge = query_memory_charge(session);
        if (memory_reserved > 0 &&
            memory_reserved + charge > options_.memory_ledger_bytes) {
          if (!session->memory_held) {
            session->memory_held = true;
            if (m_memory_held != nullptr) m_memory_held->Add();
            if (trace != nullptr) {
              trace->Record(obs::TraceEvent(engine_->now(), -1,
                                            obs::TraceLane::kService,
                                            "service", "memory_pressure")
                                .Arg("query", session->sub.query_id)
                                .ArgInt("charge_bytes", charge)
                                .ArgInt("reserved_bytes", memory_reserved)
                                .ArgInt("ledger_bytes",
                                        options_.memory_ledger_bytes));
            }
          }
          maybe_shed(session);
          continue;
        }
        memory_reserved += charge;
        session->memory_charge = charge;
        session->memory_held = false;
        if (g_memory_reserved != nullptr) {
          g_memory_reserved->Set(static_cast<int64_t>(memory_reserved));
        }
      }
      session->admit_seq = next_admit_seq_++;
      const bool first_admission = session->admit_ms < 0;
      if (first_admission) session->admit_ms = engine_->now();
      // The driver inherits the submission's query id: it scopes DFS temp
      // paths, quarantine files, engine fault streams and trace tags. A
      // checkpoint path, if configured, becomes per-query for the same
      // reason (manifest + ".prev" must never be shared across queries);
      // with none configured the service checkpoint root (if any) supplies
      // one, which is what makes preemption and crash recovery lossless.
      session->scoped_options = session->sub.options;
      if (session->scoped_options.exec.query_id.empty()) {
        session->scoped_options.exec.query_id = session->sub.query_id;
      }
      if (session->scoped_options.checkpoint_path.empty() &&
          !options_.checkpoint_root.empty()) {
        session->scoped_options.checkpoint_path = options_.checkpoint_root;
      }
      if (!session->scoped_options.checkpoint_path.empty()) {
        session->scoped_options.checkpoint_path +=
            "/q/" + session->sub.query_id;
      }
      // Every admitted session shares the service-owned subtree cache (a
      // submission that pinned its own cache keeps it).
      if (session->scoped_options.subtree_cache == nullptr) {
        session->scoped_options.subtree_cache = subtree_cache_.get();
      }
      ++running;
      ++tenant_running[session->sub.tenant];
      if (first_admission && m_admitted != nullptr) m_admitted->Add();
      if (g_running != nullptr) g_running->Set(running);
      if (first_admission && h_queue_wait != nullptr) {
        h_queue_wait->Observe(session->admit_ms - session->arrival_ms);
      }
      write_pending_marker(session);
      if (trace != nullptr) {
        if (session->resume_on_start) {
          trace->Record(obs::TraceEvent(engine_->now(), -1,
                                        obs::TraceLane::kService, "service",
                                        "query_resumed")
                            .Arg("query", session->sub.query_id)
                            .ArgInt("preemptions", session->preempt_count)
                            .ArgBool("recovered", session->recovered));
        } else {
          trace->Record(obs::TraceEvent(session->admit_ms, -1,
                                        obs::TraceLane::kService, "service",
                                        "query_admitted")
                            .Arg("query", session->sub.query_id)
                            .Arg("tenant", session->sub.tenant)
                            .ArgInt("queue_wait_ms",
                                    session->admit_ms - session->arrival_ms));
        }
      }
      session->started = true;
      session->start_granted = true;
      session->thread = std::thread(&QueryService::SessionMain, this, session);
      RunSessionUntilBlocked(session, &lock);
    }
  };

  // Unwinds every parked session the scheduler wants stopped — cancelled,
  // past deadline, or preempted — by handing it the matching error; each
  // unwinds its driver stack and finishes (preempted ones then re-queue in
  // reap_finished).
  auto unwind_parked = [&] {
    for (Session* session : cohort) {
      if (session->state != Session::State::kWaitingSubmit) continue;
      if (!session->cancelled && !session->deadline_hit &&
          !session->preempt_requested) {
        continue;
      }
      session->pending_specs.clear();
      Status st;
      if (session->cancelled) {
        st = Status::Cancelled("query " + session->sub.query_id +
                               " cancelled");
        if (trace != nullptr) {
          trace->Record(obs::TraceEvent(engine_->now(), -1,
                                        obs::TraceLane::kService, "service",
                                        "query_cancelled")
                            .Arg("query", session->sub.query_id)
                            .ArgBool("admitted", true));
        }
      } else if (session->deadline_hit) {
        st = Status::DeadlineExceeded("query " + session->sub.query_id +
                                      " missed its deadline");
      } else {
        st = Status::Cancelled("query " + session->sub.query_id +
                               " preempted");
      }
      session->grant = Result<std::vector<JobResult>>(std::move(st));
      RunSessionUntilBlocked(session, &lock);
    }
  };

  // One combined wave: the batches of every parked session, ordered by
  // priority class first and fair share within a class — least attained
  // committed slot time, admission sequence breaking ties. The engine
  // grants scarce slots FIFO across the batch, so wave order IS the
  // scheduling policy.
  auto run_wave = [&] {
    std::vector<Session*> waiting;
    for (Session* session : cohort) {
      if (session->state == Session::State::kWaitingSubmit) {
        waiting.push_back(session);
      }
    }
    if (waiting.empty()) return false;
    std::sort(waiting.begin(), waiting.end(), [&](Session* a, Session* b) {
      if (a->priority != b->priority) return a->priority > b->priority;
      SimMillis sa = committed_slot_ms(a);
      SimMillis sb = committed_slot_ms(b);
      if (sa != sb) return sa < sb;
      return a->admit_seq < b->admit_seq;
    });
    std::vector<JobSpec> specs;
    std::vector<std::pair<Session*, size_t>> parts;
    for (Session* session : waiting) {
      parts.emplace_back(session, session->pending_specs.size());
      for (JobSpec& spec : session->pending_specs) {
        specs.push_back(std::move(spec));
      }
      session->pending_specs.clear();
    }
    if (m_waves != nullptr) m_waves->Add();
    if (m_wave_jobs != nullptr) m_wave_jobs->Add(specs.size());
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(engine_->now(), -1,
                                    obs::TraceLane::kService, "service",
                                    "wave")
                        .ArgInt("sessions", (int64_t)parts.size())
                        .ArgInt("jobs", (int64_t)specs.size())
                        .ArgDouble("pressure",
                                   engine_->last_wave_pressure()));
    }
    // The engine runs on this (scheduler) thread; every session is parked,
    // so dropping the lock for the duration is safe and keeps the gate
    // callable by... nobody, which is the point.
    lock.unlock();
    Result<std::vector<JobResult>> wave = engine_->SubmitAllDirect(specs);
    lock.lock();
    size_t offset = 0;
    std::vector<Result<std::vector<JobResult>>> slices;
    slices.reserve(parts.size());
    for (const auto& [session, count] : parts) {
      (void)session;
      if (wave.ok()) {
        slices.emplace_back(std::vector<JobResult>(
            wave->begin() + offset, wave->begin() + offset + count));
      } else {
        slices.emplace_back(wave.status());
      }
      offset += count;
    }
    // Resume in the same fair-share order, one at a time (granting all at
    // once would wake every parked thread and break the baton).
    for (size_t i = 0; i < parts.size(); ++i) {
      parts[i].first->grant = std::move(slices[i]);
      RunSessionUntilBlocked(parts[i].first, &lock);
    }
    return true;
  };

  // Stops scheduling mid-run, leaving all service state on the DFS as a
  // crash would: parked sessions unwind with Cancelled, queued ones
  // finalize as cancelled, markers and manifests survive for a successor's
  // RecoverPending.
  auto halt_run = [&] {
    halted = true;
    if (trace != nullptr) {
      trace->Record(obs::TraceEvent(engine_->now(), -1,
                                    obs::TraceLane::kService, "service",
                                    "service_halt")
                        .ArgInt("at_ms", engine_->now()));
    }
    for (Session* session : cohort) {
      if (session->state != Session::State::kWaitingSubmit) continue;
      session->pending_specs.clear();
      session->grant = Result<std::vector<JobResult>>(
          Status::Cancelled("query " + session->sub.query_id +
                            " interrupted by service halt"));
      RunSessionUntilBlocked(session, &lock);
    }
    reap_finished();
    for (Session* session : cohort) {
      if (session->state == Session::State::kQueued) {
        finalize_queued(session,
                        Status::Cancelled("query " + session->sub.query_id +
                                          " interrupted by service halt"),
                        m_cancelled);
      }
    }
  };

  for (;;) {
    if (options_.halt_at_ms >= 0 && engine_->now() >= options_.halt_at_ms) {
      halt_run();
      break;
    }
    ApplyTimedCancels();
    apply_deadlines();
    reap_finished();
    admit_due();
    unwind_parked();
    reap_finished();
    // A preemption freed its slot just now (unwind → reap): admit again so
    // the preemptor joins the very next wave instead of waiting one out.
    admit_due();
    if (run_wave()) continue;

    // Nothing parked. Anything still pending is a future arrival (or a
    // queued session blocked on capacity freed by the reap above — retry).
    bool any_done_unreaped = false;
    SimMillis next_arrival = -1;
    bool any_queued = false;
    for (Session* session : cohort) {
      if (session->state == Session::State::kDone && !session->reaped) {
        any_done_unreaped = true;
      }
      if (session->state == Session::State::kQueued) {
        any_queued = true;
        if (next_arrival < 0 || session->arrival_ms < next_arrival) {
          next_arrival = session->arrival_ms;
        }
      }
    }
    if (any_done_unreaped) continue;
    if (any_queued) {
      if (next_arrival > engine_->now()) {
        engine_->AdvanceClock(next_arrival - engine_->now());
      }
      // A due-but-quota-blocked arrival unblocks when a running session of
      // its tenant finishes; with nothing running and nothing parked the
      // next admission pass must make progress.
      continue;
    }
    break;
  }

  engine_->set_submit_gate(nullptr);
  run_active_ = false;

  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(cohort.size());
  for (Session* session : cohort) {
    QueryOutcome outcome;
    outcome.query_id = session->sub.query_id;
    outcome.tenant = session->sub.tenant;
    outcome.priority = session->priority;
    outcome.status = session->driver_result->status();
    if (session->driver_result->ok()) {
      outcome.report = session->driver_result->value();
    }
    outcome.arrival_ms = session->arrival_ms;
    outcome.admit_ms = session->admit_ms;
    outcome.finish_ms = session->finish_ms;
    outcome.slot_ms = committed_slot_ms(session);
    outcome.preemptions = session->preempt_count;
    outcome.recovered = session->recovered;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace dyno
