#ifndef DYNO_BASELINES_EXACT_STATS_H_
#define DYNO_BASELINES_EXACT_STATS_H_

#include "common/status.h"
#include "lang/query.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"

namespace dyno {

/// Computes *exact* statistics of a leaf expression (scan + local
/// predicates) by a full client-side pass over the table: exact cardinality,
/// record sizes, and exact per-join-column distinct counts. This is
/// "experimenter knowledge" used only by the BESTSTATICJAQL baseline to
/// stand in for the paper's exhaustive hand-tuning of FROM orders; it is
/// never billed simulated time and never available to DYNO itself.
Result<TableStats> ComputeExactLeafStats(Catalog* catalog,
                                         const LeafExpr& leaf);

}  // namespace dyno

#endif  // DYNO_BASELINES_EXACT_STATS_H_
