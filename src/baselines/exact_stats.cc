#include "baselines/exact_stats.h"

#include <unordered_set>

namespace dyno {

Result<TableStats> ComputeExactLeafStats(Catalog* catalog,
                                         const LeafExpr& leaf) {
  DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file,
                        catalog->OpenTable(leaf.table));
  TableStats stats;
  std::vector<std::unordered_set<uint64_t>> distinct(
      leaf.join_columns.size());
  std::vector<ColumnStats> columns(leaf.join_columns.size());
  uint64_t records = 0;
  uint64_t bytes = 0;
  for (const Split& split : file->splits()) {
    DYNO_ASSIGN_OR_RETURN(std::vector<Value> rows, DecodeSplitRows(split));
    for (const Value& row : rows) {
      if (leaf.filter != nullptr) {
        DYNO_ASSIGN_OR_RETURN(Value keep, leaf.filter->Eval(row));
        if (keep.type() != Value::Type::kBool || !keep.bool_value()) continue;
      }
      ++records;
      bytes += row.EncodedSize();
      for (size_t i = 0; i < leaf.join_columns.size(); ++i) {
        const Value* v = row.FindField(leaf.join_columns[i]);
        if (v == nullptr || v->is_null()) continue;
        distinct[i].insert(v->Hash());
        columns[i].UpdateMinMax(*v);
      }
    }
  }
  stats.cardinality = static_cast<double>(records);
  stats.avg_record_size =
      records == 0 ? 0.0
                   : static_cast<double>(bytes) / static_cast<double>(records);
  for (size_t i = 0; i < leaf.join_columns.size(); ++i) {
    columns[i].ndv = static_cast<double>(distinct[i].size());
    stats.columns[leaf.join_columns[i]] = columns[i];
  }
  return stats;
}

}  // namespace dyno
