#include "baselines/best_static.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "baselines/exact_stats.h"
#include "obs/trace.h"

namespace dyno {

namespace {

/// Running estimate of the left-deep prefix during plan construction.
struct PrefixEstimate {
  double rows = 1.0;
  double avg_size = 0.0;
  /// NDV keyed by "<alias>.<column>": two prefix relations sharing a bare
  /// column name (both having `id`, say) must not overwrite each other.
  std::map<std::string, double> ndv;
};

std::string NdvKey(const std::string& alias, const std::string& col) {
  return alias + "." + col;
}

}  // namespace

BestStaticBaseline::BestStaticBaseline(MapReduceEngine* engine,
                                       Catalog* catalog,
                                       BestStaticOptions options)
    : engine_(engine), catalog_(catalog), options_(std::move(options)) {}

Result<std::unique_ptr<PlanNode>> BestStaticBaseline::BuildJaqlPlan(
    const JoinBlock& block, const std::vector<std::string>& order) {
  DYNO_RETURN_IF_ERROR(ValidateJoinBlock(block));
  if (order.size() != block.tables.size()) {
    return Status::InvalidArgument("order size mismatch");
  }
  std::vector<Predicate> non_local;
  std::vector<LeafExpr> leaves = ExtractLeafExprs(block, &non_local);
  std::map<std::string, const LeafExpr*> leaf_by_alias;
  for (const LeafExpr& leaf : leaves) leaf_by_alias[leaf.alias] = &leaf;

  // Exact statistics for ranking; raw file sizes for Jaql's broadcast rule.
  // Cached across calls: Run() enumerates hundreds of orders over the same
  // leaves.
  std::map<std::string, TableStats> exact;
  std::map<std::string, double> file_bytes;
  for (const LeafExpr& leaf : leaves) {
    std::string signature = LeafSignature(leaf);
    auto cached = exact_stats_cache_.find(signature);
    if (cached == exact_stats_cache_.end()) {
      DYNO_ASSIGN_OR_RETURN(TableStats stats,
                            ComputeExactLeafStats(catalog_, leaf));
      cached = exact_stats_cache_.emplace(signature, std::move(stats)).first;
    }
    exact[leaf.alias] = cached->second;
    DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file,
                          catalog_->OpenTable(leaf.table));
    file_bytes[leaf.alias] = static_cast<double>(file->num_bytes());
  }

  auto make_leaf = [&](const std::string& alias) {
    auto node = PlanNode::Leaf(alias);
    const TableStats& stats = exact.at(alias);
    node->est_rows = stats.cardinality;
    node->est_bytes = stats.SizeBytes();
    return node;
  };

  std::set<std::string> prefix{order[0]};
  PrefixEstimate est;
  {
    const TableStats& stats = exact.at(order[0]);
    est.rows = std::max(stats.cardinality, 1.0);
    est.avg_size = std::max(stats.avg_record_size, 1.0);
    for (const auto& [col, cs] : stats.columns) {
      est.ndv[NdvKey(order[0], col)] = std::max(cs.ndv, 1.0);
    }
  }
  std::unique_ptr<PlanNode> plan = make_leaf(order[0]);
  std::set<size_t> preds_applied;

  for (size_t i = 1; i < order.size(); ++i) {
    const std::string& alias = order[i];
    if (leaf_by_alias.find(alias) == leaf_by_alias.end()) {
      return Status::InvalidArgument("unknown alias in order: " + alias);
    }
    // Join keys between the prefix and the new relation. Multiple edges to
    // the same relation form a composite key: apply the same exponential
    // backoff as the optimizer (most selective edge fully, then sqrt...).
    std::vector<std::pair<std::string, std::string>> key_pairs;
    std::vector<double> denoms;
    const TableStats& rstats = exact.at(alias);
    for (const JoinEdge& edge : block.edges) {
      if (prefix.count(edge.left_alias) && edge.right_alias == alias) {
        key_pairs.emplace_back(edge.left_column, edge.right_column);
        std::string key = NdvKey(edge.left_alias, edge.left_column);
        double a = est.ndv.count(key) ? est.ndv[key] : est.rows;
        double b = rstats.ColumnNdv(edge.right_column);
        denoms.push_back(std::max({a, b, 1.0}));
      } else if (prefix.count(edge.right_alias) && edge.left_alias == alias) {
        key_pairs.emplace_back(edge.right_column, edge.left_column);
        std::string key = NdvKey(edge.right_alias, edge.right_column);
        double a = est.ndv.count(key) ? est.ndv[key] : est.rows;
        double b = rstats.ColumnNdv(edge.left_column);
        denoms.push_back(std::max({a, b, 1.0}));
      }
    }
    double selectivity_den = 1.0;
    std::sort(denoms.begin(), denoms.end(), std::greater<double>());
    double exponent = 1.0;
    for (double d : denoms) {
      selectivity_den *= std::pow(d, exponent);
      exponent *= 0.5;
    }
    if (key_pairs.empty()) {
      return Status::InvalidArgument(
          "order requires a cartesian product at " + alias);
    }

    // Jaql's join-method rule: broadcast iff the build relation's raw file
    // fits in memory — no selectivity reasoning (paper §2.2.2).
    JoinMethod method =
        options_.cost.BroadcastFits(file_bytes.at(alias))
            ? JoinMethod::kBroadcast
            : JoinMethod::kRepartition;

    auto node = PlanNode::Join(method, std::move(plan), make_leaf(alias),
                               std::move(key_pairs));

    // Estimate propagation (for candidate ranking only).
    est.rows = std::max(
        est.rows * std::max(rstats.cardinality, 1.0) / selectivity_den, 1.0);
    est.avg_size += std::max(rstats.avg_record_size, 1.0);
    for (const auto& [col, cs] : rstats.columns) {
      est.ndv[NdvKey(alias, col)] = std::max(cs.ndv, 1.0);
    }
    for (auto& [col, ndv] : est.ndv) ndv = std::min(ndv, est.rows);
    prefix.insert(alias);

    // Non-local predicates that become applicable here (selectivity
    // unknown; Jaql just applies them).
    std::vector<ExprPtr> applicable;
    for (size_t p = 0; p < non_local.size(); ++p) {
      if (preds_applied.count(p)) continue;
      bool covered = true;
      for (const std::string& a : non_local[p].aliases) {
        if (!prefix.count(a)) {
          covered = false;
          break;
        }
      }
      if (covered) {
        applicable.push_back(non_local[p].expr);
        preds_applied.insert(p);
      }
    }
    node->post_filter = Conjoin(applicable);
    node->est_rows = est.rows;
    node->est_bytes = est.rows * est.avg_size;
    plan = std::move(node);
  }

  // Jaql chains consecutive broadcast joins when the build files fit in
  // memory simultaneously — by file size, like the join-method rule itself.
  // Reuse the generic chain pass but feed it the estimates already embedded
  // (build leaves carry exact post-filter bytes; Jaql would use file bytes,
  // a conservative superset, so emulate that by checking file bytes here).
  {
    PlanNode* cur = plan.get();
    std::vector<PlanNode*> spine;
    while (!cur->IsLeaf()) {
      spine.push_back(cur);
      cur = cur->left.get();
    }
    // spine is top-down; walk bottom-up accumulating file bytes.
    double chain_bytes = 0.0;
    for (auto it = spine.rbegin(); it != spine.rend(); ++it) {
      PlanNode* node = *it;
      if (node->method != JoinMethod::kBroadcast) {
        chain_bytes = 0.0;
        continue;
      }
      double build_bytes =
          node->right->IsLeaf()
              ? file_bytes.at(node->right->relation_id) *
                    options_.cost.memory_factor
              : node->right->est_bytes * options_.cost.memory_factor;
      if (chain_bytes > 0.0 &&
          chain_bytes + build_bytes <=
              static_cast<double>(options_.cost.max_memory_bytes)) {
        node->chain_with_left = true;
        chain_bytes += build_bytes;
      } else {
        node->chain_with_left = false;
        chain_bytes = build_bytes;
      }
    }
  }
  RecostPlan(plan.get(), options_.cost, /*chained_by_parent=*/false);
  return plan;
}

Result<BestStaticResult> BestStaticBaseline::Run(const JoinBlock& block) {
  DYNO_RETURN_IF_ERROR(ValidateJoinBlock(block));
  std::vector<std::string> aliases;
  for (const TableRef& ref : block.tables) aliases.push_back(ref.alias);

  // Enumerate connectivity-valid join orders by DFS.
  std::vector<std::vector<std::string>> orders;
  std::vector<std::string> current;
  std::set<std::string> used;
  std::function<void()> dfs = [&]() {
    if (current.size() == aliases.size()) {
      orders.push_back(current);
      return;
    }
    for (const std::string& alias : aliases) {
      if (used.count(alias)) continue;
      if (!current.empty()) {
        bool connects = false;
        for (const JoinEdge& edge : block.edges) {
          if ((edge.left_alias == alias && used.count(edge.right_alias)) ||
              (edge.right_alias == alias && used.count(edge.left_alias))) {
            connects = true;
            break;
          }
        }
        if (!connects) continue;
      }
      used.insert(alias);
      current.push_back(alias);
      dfs();
      current.pop_back();
      used.erase(alias);
    }
  };
  dfs();

  BestStaticResult result;
  // Build + rank all candidates, deduplicating identical physical plans.
  struct Candidate {
    std::vector<std::string> order;
    std::unique_ptr<PlanNode> plan;
    double cost;
    std::string compact;
  };
  std::vector<Candidate> candidates;
  std::set<std::string> seen;
  for (const std::vector<std::string>& order : orders) {
    auto plan = BuildJaqlPlan(block, order);
    if (!plan.ok()) continue;
    std::string compact = (*plan)->ToString();
    if (!seen.insert(compact).second) continue;
    Candidate c;
    c.order = order;
    c.cost = (*plan)->est_cost;
    c.compact = std::move(compact);
    c.plan = std::move(*plan);
    candidates.push_back(std::move(c));
  }
  result.plans_enumerated = static_cast<int>(candidates.size());
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.cost < b.cost;
            });
  size_t top_k = std::min<size_t>(options_.execute_top_k, candidates.size());

  std::vector<Predicate> non_local;
  std::vector<LeafExpr> leaves = ExtractLeafExprs(block, &non_local);

  SimMillis best = -1;
  for (size_t i = 0; i < top_k; ++i) {
    PlanExecutor executor(engine_, options_.exec);
    for (const LeafExpr& leaf : leaves) {
      auto file = catalog_->OpenTable(leaf.table);
      if (!file.ok()) return file.status();
      RelationBinding binding;
      binding.file = *file;
      binding.scan_filter = leaf.filter;
      binding.scan_cpu_per_record =
          leaf.filter ? leaf.filter->CpuCost() : 0.0;
      binding.signature = LeafSignature(leaf);
      executor.Bind(leaf.alias, std::move(binding));
    }
    SimMillis start = engine_->now();
    auto run = RunStaticPlan(&executor, *candidates[i].plan,
                             /*parallel_waves=*/true, block.output_columns);
    ++result.plans_executed;
    if (!run.ok()) {
      ++result.plans_failed;  // e.g. broadcast OOM at runtime
      continue;
    }
    SimMillis elapsed = engine_->now() - start;
    if (best < 0 || elapsed < best) {
      best = elapsed;
      result.best_plan = candidates[i].compact;
      result.best_order = candidates[i].order;
      result.output = run->output;
    }
  }
  if (best < 0) {
    return Status::Internal("no static candidate executed successfully");
  }
  result.best_time_ms = best;
  if (obs::TraceSink* trace = engine_->trace()) {
    trace->Record(obs::TraceEvent(engine_->now(), -1,
                                  obs::TraceLane::kDriver, "baseline",
                                  "best_static")
                      .ArgInt("plans_enumerated", result.plans_enumerated)
                      .ArgInt("plans_executed", result.plans_executed)
                      .ArgInt("plans_failed", result.plans_failed)
                      .Arg("best_plan", result.best_plan)
                      .ArgInt("best_time_ms", result.best_time_ms));
  }
  return result;
}

}  // namespace dyno
