#ifndef DYNO_BASELINES_RELOPT_H_
#define DYNO_BASELINES_RELOPT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "exec/plan_executor.h"
#include "lang/plan.h"
#include "lang/query.h"
#include "mr/engine.h"
#include "optimizer/optimizer.h"
#include "stats/histogram.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"

namespace dyno {

/// The RELOPT baseline (paper §6.1): a state-of-the-art relational
/// optimizer for a shared-nothing DBMS ("DBMS-X"). It enjoys *detailed*
/// statistics gathered ahead of time — exact base-table cardinalities,
/// per-column distinct counts and equi-depth histograms — and estimates
/// simple-predicate selectivities well. Its two blind spots are exactly the
/// paper's targets: (1) multiple predicates combine under the independence
/// assumption, so correlated predicates yield badly underestimated results;
/// (2) UDFs have unknown selectivity (treated as 1.0), so UDF-filtered
/// relations look full-size. The resulting plan is executed as-is on the
/// MapReduce runtime ("hand-coded to a Jaql script"), with no pilot runs
/// and no re-optimization.
class RelOptBaseline {
 public:
  /// `cost` is the MapReduce cost model (used for Jaql-side chain
  /// application); internally the planner runs with a DBMS-flavored
  /// derivative (cheap pipelined exchanges, N-fold broadcast replication).
  /// `num_nodes` is the DBMS cluster size for that replication factor.
  RelOptBaseline(MapReduceEngine* engine, Catalog* catalog,
                 CostModelParams cost, int num_nodes = 15);

  /// ANALYZE: collects full statistics (exact counts, NDVs, histograms) on
  /// `columns` of `table`. Client-side and unbilled — DBMS-X gathers all
  /// needed statistics before query execution (§6.1).
  Status AnalyzeTable(const std::string& table,
                      const std::vector<std::string>& columns);

  /// Runs ANALYZE over every table/column a join block touches.
  Status AnalyzeForBlock(const JoinBlock& block);

  /// Plans `block` with the traditional estimator. The plan is bushy and
  /// may use broadcast joins wherever the (possibly wrong) estimates say
  /// the build side fits.
  Result<std::unique_ptr<PlanNode>> Plan(const JoinBlock& block);

  /// Estimated statistics RELOPT derives for one leaf (exposed for tests:
  /// this is where independence and UDF-blindness manifest).
  Result<TableStats> EstimateLeaf(const LeafExpr& leaf);

  struct RunResult {
    SimMillis elapsed_ms = 0;
    std::string plan_compact;
    std::string plan_tree;
    int jobs_run = 0;
    int map_only_jobs = 0;
    std::shared_ptr<DfsFile> output;
    /// Non-OK when the plan failed at runtime (e.g. a broadcast build side
    /// that the optimizer underestimated and that did not fit in memory).
    Status exec_status;
  };

  /// Plans and executes `block` (wave-parallel static execution).
  Result<RunResult> PlanAndExecute(const JoinBlock& block,
                                   const ExecOptions& exec_options);

 private:
  struct TableAnalysis {
    TableStats stats;  ///< Exact cardinality/NDV per analyzed column.
    std::map<std::string, EquiDepthHistogram> histograms;
  };

  MapReduceEngine* engine_;
  Catalog* catalog_;
  CostModelParams cost_;
  int num_nodes_;
  std::map<std::string, TableAnalysis> analyzed_;
};

}  // namespace dyno

#endif  // DYNO_BASELINES_RELOPT_H_
