#ifndef DYNO_BASELINES_BEST_STATIC_H_
#define DYNO_BASELINES_BEST_STATIC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "dyno/driver.h"
#include "exec/plan_executor.h"
#include "lang/plan.h"
#include "lang/query.h"
#include "mr/engine.h"
#include "optimizer/cost_model.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"

namespace dyno {

/// Options for the BESTSTATICJAQL / BESTSTATICHIVE baseline.
struct BestStaticOptions {
  CostModelParams cost;  ///< Supplies M_max and the ranking cost model.
  /// How many top-ranked candidate orders to actually execute (the measured
  /// minimum is reported). The paper executed every order; ranking by cost
  /// over exact leaf statistics before executing keeps the search tractable
  /// while finding the same winner in practice.
  int execute_top_k = 5;
  ExecOptions exec;
};

/// One candidate left-deep plan.
struct StaticCandidate {
  std::vector<std::string> order;  ///< Aliases in join order.
  std::string plan_compact;
  double est_cost = 0.0;
};

struct BestStaticResult {
  SimMillis best_time_ms = 0;
  std::string best_plan;
  std::vector<std::string> best_order;
  int plans_enumerated = 0;
  int plans_executed = 0;
  int plans_failed = 0;  ///< e.g. runtime broadcast OOM.
  std::shared_ptr<DfsFile> output;
};

/// The strongest static competitor (paper §6.1): the best *hand-written*
/// left-deep plan under Jaql's own rules — relations joined in FROM order
/// (skipping choices that force cartesian products), the build side
/// broadcast exactly when its raw **file size** fits in memory (no
/// selectivity reasoning), and consecutive broadcast joins chained when
/// their files fit simultaneously. Every valid order is enumerated and
/// deduplicated; candidates are ranked with exact leaf statistics and the
/// top-k executed for real, reporting the fastest.
class BestStaticBaseline {
 public:
  BestStaticBaseline(MapReduceEngine* engine, Catalog* catalog,
                     BestStaticOptions options);

  Result<BestStaticResult> Run(const JoinBlock& block);

  /// Builds the Jaql physical plan for one explicit join order (public for
  /// tests and for executing the paper's "natural" FROM order).
  Result<std::unique_ptr<PlanNode>> BuildJaqlPlan(
      const JoinBlock& block, const std::vector<std::string>& order);

 private:
  MapReduceEngine* engine_;
  Catalog* catalog_;
  BestStaticOptions options_;
  /// Exact leaf statistics keyed by leaf signature (Run() enumerates many
  /// orders over the same leaves).
  std::map<std::string, TableStats> exact_stats_cache_;
};

}  // namespace dyno

#endif  // DYNO_BASELINES_BEST_STATIC_H_
