#include "baselines/relopt.h"

#include <algorithm>
#include <set>

#include "dyno/driver.h"
#include "obs/trace.h"

namespace dyno {

namespace {

/// Default selectivity for predicates the traditional estimator cannot
/// reason about but that are not UDFs (e.g. comparisons over nested paths —
/// "even if the optimizer could deal with the array datatype…", §4.1).
/// System R-style magic constant.
constexpr double kUnknownPredicateSelectivity = 1.0 / 3.0;

/// DBMS-X costs plans for *its own* engine — a shared-nothing MPP where a
/// repartitioned join is a cheap pipelined exchange (no job materialization
/// between operators) while broadcasting replicates the build side to every
/// node. Under that model broadcast only pays off for tiny relations, which
/// is why the paper's DBMS-X plans repartition almost everything (Fig. 3);
/// the resulting plan is then hand-coded to Jaql and executed on MapReduce,
/// where those exchanges become full jobs with materialized outputs.
CostModelParams DbmsCostModel(const CostModelParams& mapreduce_params,
                              int num_nodes) {
  CostModelParams dbms = mapreduce_params;
  dbms.mpp_pipelined = true;
  dbms.c_rep = mapreduce_params.c_probe * 2.0;   // pipelined exchange
  dbms.c_build =
      mapreduce_params.c_build * static_cast<double>(num_nodes);
  dbms.enable_broadcast_chains = false;  // chaining is a Jaql concept
  return dbms;
}

}  // namespace

RelOptBaseline::RelOptBaseline(MapReduceEngine* engine, Catalog* catalog,
                               CostModelParams cost, int num_nodes)
    : engine_(engine), catalog_(catalog), cost_(cost),
      num_nodes_(num_nodes) {}

Status RelOptBaseline::AnalyzeTable(const std::string& table,
                                    const std::vector<std::string>& columns) {
  auto file = catalog_->OpenTable(table);
  if (!file.ok()) return file.status();

  TableAnalysis& analysis = analyzed_[table];
  std::map<std::string, std::vector<Value>> values;
  std::set<std::string> wanted(columns.begin(), columns.end());
  for (const auto& [col, hist] : analysis.histograms) wanted.erase(col);
  if (wanted.empty() && analysis.stats.cardinality > 0) return Status::OK();

  uint64_t records = 0;
  uint64_t bytes = 0;
  for (const Split& split : (*file)->splits()) {
    DYNO_ASSIGN_OR_RETURN(std::vector<Value> rows, DecodeSplitRows(split));
    for (const Value& row : rows) {
      ++records;
      bytes += row.EncodedSize();
      for (const std::string& col : wanted) {
        const Value* v = row.FindField(col);
        if (v != nullptr && !v->is_null()) values[col].push_back(*v);
      }
    }
  }
  analysis.stats.cardinality = static_cast<double>(records);
  analysis.stats.avg_record_size =
      records == 0 ? 0.0
                   : static_cast<double>(bytes) / static_cast<double>(records);
  for (const std::string& col : wanted) {
    EquiDepthHistogram hist = EquiDepthHistogram::Build(values[col]);
    ColumnStats cs;
    cs.ndv = hist.distinct_estimate();
    if (!values[col].empty()) {
      auto [min_it, max_it] = std::minmax_element(
          values[col].begin(), values[col].end(),
          [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
      cs.min_value = *min_it;
      cs.max_value = *max_it;
    }
    analysis.stats.columns[col] = std::move(cs);
    analysis.histograms.emplace(col, std::move(hist));
  }
  return Status::OK();
}

Status RelOptBaseline::AnalyzeForBlock(const JoinBlock& block) {
  std::vector<Predicate> non_local;
  std::vector<LeafExpr> leaves = ExtractLeafExprs(block, &non_local);
  std::map<std::string, std::set<std::string>> columns_by_table;
  for (const LeafExpr& leaf : leaves) {
    auto& cols = columns_by_table[leaf.table];
    cols.insert(leaf.join_columns.begin(), leaf.join_columns.end());
    if (leaf.filter != nullptr) {
      std::vector<std::string> pred_cols;
      leaf.filter->CollectColumns(&pred_cols);
      cols.insert(pred_cols.begin(), pred_cols.end());
    }
  }
  for (const auto& [table, cols] : columns_by_table) {
    DYNO_RETURN_IF_ERROR(
        AnalyzeTable(table, {cols.begin(), cols.end()}));
  }
  return Status::OK();
}

Result<TableStats> RelOptBaseline::EstimateLeaf(const LeafExpr& leaf) {
  auto it = analyzed_.find(leaf.table);
  if (it == analyzed_.end()) {
    return Status::FailedPrecondition("table not analyzed: " + leaf.table);
  }
  const TableAnalysis& analysis = it->second;
  double selectivity = 1.0;
  std::vector<ExprPtr> factors;
  DecomposeConjunction(leaf.filter, &factors);
  // Simple-comparison selectivities are grouped per column first: a modern
  // optimizer recognizes `c >= lo AND c <= hi` as one range and combines
  // the bounds with the conjunction identity sel(A∧B) ≥ sel(A)+sel(B)-1
  // rather than multiplying. *Across* columns, factors still multiply —
  // the independence assumption the paper's correlated pair defeats.
  std::map<std::string, std::vector<double>> range_sels_by_column;
  for (const ExprPtr& factor : factors) {
    std::string column;
    Expr::CompareOp op;
    Value literal;
    if (factor->AsSimpleComparison(&column, &op, &literal)) {
      auto hist = analysis.histograms.find(column);
      if (hist != analysis.histograms.end()) {
        double sel = hist->second.EstimateSelectivity(op, literal);
        bool is_range = op != Expr::CompareOp::kEq &&
                        op != Expr::CompareOp::kNe;
        if (is_range) {
          range_sels_by_column[column].push_back(sel);
        } else {
          selectivity *= sel;
        }
        continue;
      }
      selectivity *= kUnknownPredicateSelectivity;
    } else if (factor->ContainsUdf()) {
      // Opaque UDF: no information; assume it keeps everything.
      selectivity *= 1.0;
    } else {
      selectivity *= kUnknownPredicateSelectivity;
    }
  }
  for (const auto& [column, sels] : range_sels_by_column) {
    double combined = 1.0;
    for (double sel : sels) combined += sel - 1.0;
    selectivity *= std::clamp(combined, 0.0001, 1.0);
  }
  TableStats stats;
  stats.cardinality =
      std::max(analysis.stats.cardinality * selectivity, 1.0);
  stats.avg_record_size = analysis.stats.avg_record_size;
  for (const auto& [col, cs] : analysis.stats.columns) {
    ColumnStats out = cs;
    out.ndv = std::min(cs.ndv, stats.cardinality);
    stats.columns[col] = std::move(out);
  }
  return stats;
}

Result<std::unique_ptr<PlanNode>> RelOptBaseline::Plan(
    const JoinBlock& block) {
  DYNO_RETURN_IF_ERROR(ValidateJoinBlock(block));
  DYNO_RETURN_IF_ERROR(AnalyzeForBlock(block));
  std::vector<Predicate> non_local;
  std::vector<LeafExpr> leaves = ExtractLeafExprs(block, &non_local);

  OptJoinGraph graph;
  for (const LeafExpr& leaf : leaves) {
    DYNO_ASSIGN_OR_RETURN(TableStats stats, EstimateLeaf(leaf));
    graph.relations.push_back({leaf.alias, std::move(stats)});
  }
  for (const JoinEdge& edge : block.edges) {
    graph.edges.push_back({edge.left_alias, edge.left_column,
                           edge.right_alias, edge.right_column});
  }
  for (const Predicate& pred : non_local) {
    OptNonLocalPred opt_pred;
    opt_pred.expr = pred.expr;
    opt_pred.relation_ids = pred.aliases;
    opt_pred.assumed_selectivity = 1.0;  // UDF on join result: unknown.
    graph.non_local_preds.push_back(std::move(opt_pred));
  }
  // Plan with DBMS-X's own cost model, then let Jaql's broadcast-chain
  // rule fire on the transplanted plan (Jaql chains at execution time).
  JoinOptimizer optimizer(DbmsCostModel(cost_, num_nodes_));
  DYNO_ASSIGN_OR_RETURN(OptimizeResult result, optimizer.Optimize(graph));
  ApplyBroadcastChaining(result.plan.get(), cost_);
  return std::move(result.plan);
}

Result<RelOptBaseline::RunResult> RelOptBaseline::PlanAndExecute(
    const JoinBlock& block, const ExecOptions& exec_options) {
  DYNO_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan, Plan(block));
  RunResult result;
  result.plan_compact = plan->ToString();
  result.plan_tree = plan->ToTreeString();

  std::vector<Predicate> non_local;
  std::vector<LeafExpr> leaves = ExtractLeafExprs(block, &non_local);
  PlanExecutor executor(engine_, exec_options);
  for (const LeafExpr& leaf : leaves) {
    auto file = catalog_->OpenTable(leaf.table);
    if (!file.ok()) return file.status();
    RelationBinding binding;
    binding.file = *file;
    binding.scan_filter = leaf.filter;
    binding.scan_cpu_per_record = leaf.filter ? leaf.filter->CpuCost() : 0.0;
    binding.signature = LeafSignature(leaf);
    executor.Bind(leaf.alias, std::move(binding));
  }
  SimMillis start = engine_->now();
  auto run = RunStaticPlan(&executor, *plan, /*parallel_waves=*/true,
                           block.output_columns);
  result.elapsed_ms = engine_->now() - start;
  if (obs::TraceSink* trace = engine_->trace()) {
    trace->Record(obs::TraceEvent(start, result.elapsed_ms,
                                  obs::TraceLane::kDriver, "baseline",
                                  "relopt_plan")
                      .Arg("plan", result.plan_compact)
                      .ArgBool("ok", run.ok()));
  }
  if (!run.ok()) {
    result.exec_status = run.status();
    return result;
  }
  result.jobs_run = run->jobs_run;
  result.map_only_jobs = run->map_only_jobs;
  result.output = run->output;
  return result;
}

}  // namespace dyno
