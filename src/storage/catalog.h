#ifndef DYNO_STORAGE_CATALOG_H_
#define DYNO_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/dfs.h"

namespace dyno {

/// Metadata for one registered table: where its rows live on the DFS.
/// Schemas are dynamic (the data model is self-describing JSON), so the
/// catalog only tracks names and file locations.
struct TableEntry {
  std::string name;
  std::string dfs_path;
};

/// Maps table names to DFS files — the Hive-metastore stand-in.
class Catalog {
 public:
  explicit Catalog(Dfs* dfs) : dfs_(dfs) {}
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `name` -> `dfs_path`. The file must already exist.
  Status RegisterTable(const std::string& name, const std::string& dfs_path);

  /// Re-points `name` at `dfs_path`, registering it if absent. This is the
  /// only sanctioned way to rewrite a table in place; it bumps the table's
  /// replace epoch so `TableVersion` changes even if the new file happens to
  /// live at the old path.
  Status ReplaceTable(const std::string& name, const std::string& dfs_path);

  /// Creates a DFS file from `rows` and registers it under `name`. Base
  /// tables are written columnar when DYNO_COLUMNAR=1, row format otherwise;
  /// either way every split carries a zone map. `target_split_bytes` lets
  /// tests script exact split layouts (pinned pruning counts).
  Status CreateTable(const std::string& name, const std::vector<Value>& rows);
  Status CreateTable(const std::string& name, const std::vector<Value>& rows,
                     uint64_t target_split_bytes);

  Result<TableEntry> Lookup(const std::string& name) const;

  /// Opens the DFS file backing `name`.
  Result<std::shared_ptr<DfsFile>> OpenTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Version fingerprint for the data currently backing `name`: a hash of
  /// the backing DFS path, that path's DFS write epoch, and the table's
  /// catalog replace epoch. Any rewrite — re-pointing the name, or deleting
  /// and re-creating the file at the same path — changes the version, so
  /// caches keyed by (signature, version) can never serve pre-rewrite data.
  /// Returns 0 for unknown tables (0 is never a valid version).
  uint64_t TableVersion(const std::string& name) const;

  Dfs* dfs() const { return dfs_; }

 private:
  Dfs* dfs_;
  std::map<std::string, TableEntry> tables_;
  std::map<std::string, uint64_t> replace_epochs_;
};

}  // namespace dyno

#endif  // DYNO_STORAGE_CATALOG_H_
