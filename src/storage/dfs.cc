#include "storage/dfs.h"

#include <utility>

#include "common/crc32c.h"
#include "common/string_util.h"

namespace dyno {

Status VerifySplit(const Split& split) {
  if (Crc32c(split.data) != split.crc32c) {
    return Status::DataLoss(
        StrFormat("split checksum mismatch (%llu bytes, stored crc %08x)",
                  (unsigned long long)split.num_bytes(), split.crc32c));
  }
  return Status::OK();
}

void DfsFile::AppendSplit(Split split) {
  split.crc32c = Crc32c(split.data);
  num_records_ += split.num_records;
  num_bytes_ += split.num_bytes();
  splits_.push_back(std::move(split));
}

Status DfsFile::CorruptByteForTesting(size_t split_index, size_t byte_offset,
                                      uint8_t mask) {
  if (split_index >= splits_.size()) {
    return Status::InvalidArgument("corrupt: split index out of range");
  }
  Split& split = splits_[split_index];
  if (byte_offset >= split.data.size()) {
    return Status::InvalidArgument("corrupt: byte offset out of range");
  }
  if (mask == 0) {
    return Status::InvalidArgument("corrupt: mask must flip at least one bit");
  }
  split.data[byte_offset] = static_cast<char>(
      static_cast<uint8_t>(split.data[byte_offset]) ^ mask);
  return Status::OK();
}

Result<std::shared_ptr<DfsFile>> Dfs::Create(const std::string& path) {
  auto [it, inserted] =
      files_.emplace(path, std::make_shared<DfsFile>(path));
  if (!inserted) {
    return Status::AlreadyExists("dfs file exists: " + path);
  }
  ++write_epochs_[path];
  return it->second;
}

Result<std::shared_ptr<DfsFile>> Dfs::Open(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  return it->second;
}

bool Dfs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Status Dfs::Delete(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound("dfs file not found: " + path);
  }
  ++write_epochs_[path];
  return Status::OK();
}

int Dfs::DeleteWithPrefix(const std::string& prefix) {
  int n = 0;
  for (auto it = files_.lower_bound(prefix); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    ++write_epochs_[it->first];
    it = files_.erase(it);
    ++n;
  }
  return n;
}

std::vector<std::string> Dfs::List() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, file] : files_) out.push_back(path);
  return out;
}

uint64_t Dfs::WriteEpoch(const std::string& path) const {
  auto it = write_epochs_.find(path);
  return it == write_epochs_.end() ? 0 : it->second;
}

uint64_t Dfs::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [path, file] : files_) total += file->num_bytes();
  return total;
}

TableWriter::TableWriter(std::shared_ptr<DfsFile> file,
                         uint64_t target_split_bytes)
    : file_(std::move(file)), target_split_bytes_(target_split_bytes) {}

void TableWriter::Append(const Value& row) {
  row.EncodeTo(&pending_.data);
  ++pending_.num_records;
  if (pending_.num_bytes() >= target_split_bytes_) {
    file_->AppendSplit(std::move(pending_));
    pending_ = Split{};
  }
}

void TableWriter::Close() {
  if (pending_.num_records > 0) {
    file_->AppendSplit(std::move(pending_));
    pending_ = Split{};
  }
}

Result<Value> SplitReader::Next() {
  if (AtEnd()) return Status::NotFound("end of split");
  return Value::Decode(split_->data, &offset_);
}

Result<std::vector<Value>> ReadAllRows(const DfsFile& file) {
  std::vector<Value> rows;
  rows.reserve(file.num_records());
  for (const Split& split : file.splits()) {
    DYNO_RETURN_IF_ERROR(VerifySplit(split));
    SplitReader reader(&split);
    while (!reader.AtEnd()) {
      DYNO_ASSIGN_OR_RETURN(Value row, reader.Next());
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

Result<std::shared_ptr<DfsFile>> WriteRows(Dfs* dfs, const std::string& path,
                                           const std::vector<Value>& rows,
                                           uint64_t target_split_bytes) {
  DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file, dfs->Create(path));
  TableWriter writer(file, target_split_bytes);
  for (const Value& row : rows) writer.Append(row);
  writer.Close();
  return file;
}

}  // namespace dyno
