#include "storage/dfs.h"

#include <utility>

#include "columnar/column.h"
#include "common/crc32c.h"
#include "common/string_util.h"

namespace dyno {

Status VerifySplit(const Split& split) {
  if (Crc32c(split.data) != split.crc32c) {
    return Status::DataLoss(
        StrFormat("split checksum mismatch (%llu bytes, stored crc %08x)",
                  (unsigned long long)split.num_bytes(), split.crc32c));
  }
  return Status::OK();
}

void DfsFile::AppendSplit(Split split) {
  split.crc32c = Crc32c(split.data);
  // Callers that don't track logical size (job committers write row format)
  // get the exact row-format answer.
  if (split.logical_bytes == 0) split.logical_bytes = split.data.size();
  num_records_ += split.num_records;
  num_bytes_ += split.num_bytes();
  logical_bytes_ += split.logical_bytes;
  splits_.push_back(std::move(split));
}

Status DfsFile::CorruptByteForTesting(size_t split_index, size_t byte_offset,
                                      uint8_t mask) {
  if (split_index >= splits_.size()) {
    return Status::InvalidArgument("corrupt: split index out of range");
  }
  Split& split = splits_[split_index];
  if (byte_offset >= split.data.size()) {
    return Status::InvalidArgument("corrupt: byte offset out of range");
  }
  if (mask == 0) {
    return Status::InvalidArgument("corrupt: mask must flip at least one bit");
  }
  split.data[byte_offset] = static_cast<char>(
      static_cast<uint8_t>(split.data[byte_offset]) ^ mask);
  return Status::OK();
}

Result<std::shared_ptr<DfsFile>> Dfs::Create(const std::string& path) {
  auto [it, inserted] =
      files_.emplace(path, std::make_shared<DfsFile>(path));
  if (!inserted) {
    return Status::AlreadyExists("dfs file exists: " + path);
  }
  ++write_epochs_[path];
  return it->second;
}

Result<std::shared_ptr<DfsFile>> Dfs::Open(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  return it->second;
}

bool Dfs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Status Dfs::Delete(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound("dfs file not found: " + path);
  }
  ++write_epochs_[path];
  return Status::OK();
}

int Dfs::DeleteWithPrefix(const std::string& prefix) {
  int n = 0;
  for (auto it = files_.lower_bound(prefix); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    ++write_epochs_[it->first];
    it = files_.erase(it);
    ++n;
  }
  return n;
}

std::vector<std::string> Dfs::List() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, file] : files_) out.push_back(path);
  return out;
}

uint64_t Dfs::WriteEpoch(const std::string& path) const {
  auto it = write_epochs_.find(path);
  return it == write_epochs_.end() ? 0 : it->second;
}

uint64_t Dfs::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [path, file] : files_) total += file->num_bytes();
  return total;
}

TableWriter::TableWriter(std::shared_ptr<DfsFile> file,
                         uint64_t target_split_bytes, SplitFormat format)
    : file_(std::move(file)),
      target_split_bytes_(target_split_bytes),
      format_(format) {}

void TableWriter::Append(const Value& row) {
  if (format_ == SplitFormat::kRow) {
    row.EncodeTo(&pending_.data);
    pending_logical_bytes_ = pending_.data.size();
    ++pending_.num_records;
  } else {
    // Measure the row encoding without keeping it: the seal decision must
    // match row format byte-for-byte.
    std::string scratch;
    row.EncodeTo(&scratch);
    pending_logical_bytes_ += scratch.size();
    pending_rows_.push_back(row);
  }
  zone_builder_.Observe(row);
  if (pending_logical_bytes_ >= target_split_bytes_) Seal();
}

void TableWriter::Close() {
  if (pending_.num_records > 0 || !pending_rows_.empty()) Seal();
}

void TableWriter::Seal() {
  Split split;
  if (format_ == SplitFormat::kRow) {
    split = std::move(pending_);
    pending_ = Split{};
  } else {
    columnar::ColumnBatch batch = columnar::ColumnBatch::FromRows(pending_rows_);
    batch.EncodeTo(&split.data);
    split.num_records = pending_rows_.size();
    split.format = SplitFormat::kColumnar;
    pending_rows_.clear();
  }
  split.logical_bytes = pending_logical_bytes_;
  split.zone_map =
      std::make_shared<const columnar::ZoneMap>(zone_builder_.Build());
  pending_logical_bytes_ = 0;
  file_->AppendSplit(std::move(split));
}

Result<Value> SplitReader::Next() {
  if (AtEnd()) return Status::NotFound("end of split");
  return Value::Decode(split_->data, &offset_);
}

Result<std::vector<Value>> DecodeSplitRows(const Split& split) {
  DYNO_RETURN_IF_ERROR(VerifySplit(split));
  std::vector<Value> rows;
  rows.reserve(split.num_records);
  if (split.format == SplitFormat::kRow) {
    SplitReader reader(&split);
    while (!reader.AtEnd()) {
      DYNO_ASSIGN_OR_RETURN(Value row, reader.Next());
      rows.push_back(std::move(row));
    }
  } else {
    DYNO_ASSIGN_OR_RETURN(columnar::ColumnBatch batch,
                          columnar::ColumnBatch::Decode(split.data));
    rows = batch.ToRows();
  }
  if (rows.size() != split.num_records) {
    return Status::DataLoss(
        StrFormat("split decoded %llu records, expected %llu",
                  (unsigned long long)rows.size(),
                  (unsigned long long)split.num_records));
  }
  return rows;
}

Result<std::vector<Value>> ReadAllRows(const DfsFile& file) {
  std::vector<Value> rows;
  rows.reserve(file.num_records());
  for (const Split& split : file.splits()) {
    DYNO_ASSIGN_OR_RETURN(std::vector<Value> split_rows,
                          DecodeSplitRows(split));
    for (Value& row : split_rows) rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::shared_ptr<DfsFile>> WriteRows(Dfs* dfs, const std::string& path,
                                           const std::vector<Value>& rows,
                                           uint64_t target_split_bytes,
                                           SplitFormat format) {
  DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file, dfs->Create(path));
  TableWriter writer(file, target_split_bytes, format);
  for (const Value& row : rows) writer.Append(row);
  writer.Close();
  return file;
}

PruneResult PruneSplitIndexes(const DfsFile& file, const ExprPtr& filter) {
  PruneResult result;
  const std::vector<Split>& splits = file.splits();
  result.kept.reserve(splits.size());
  for (size_t i = 0; i < splits.size(); ++i) {
    if (filter != nullptr && splits[i].zone_map != nullptr &&
        !columnar::ZoneMapMayMatch(*splits[i].zone_map, *filter)) {
      ++result.pruned;
      continue;
    }
    result.kept.push_back(i);
  }
  return result;
}

}  // namespace dyno
