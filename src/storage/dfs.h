#ifndef DYNO_STORAGE_DFS_H_
#define DYNO_STORAGE_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnar/zone_map.h"
#include "common/status.h"
#include "expr/expr.h"
#include "json/value.h"

namespace dyno {

/// On-disk encoding of one split's payload.
enum class SplitFormat : uint8_t {
  kRow = 0,       ///< Concatenated Value encodings (the original format).
  kColumnar = 1,  ///< One columnar::ColumnBatch frame.
};

/// One HDFS-style block: a run of binary-encoded rows (or one columnar
/// batch). Splits are the unit of map-task assignment and of pilot-run
/// sampling.
struct Split {
  std::string data;       ///< Payload bytes per `format`.
  uint64_t num_records = 0;
  /// CRC32C of `data`, stamped by DfsFile::AppendSplit when the block is
  /// committed (HDFS writes the block checksum alongside the block). Readers
  /// verify via VerifySplit; a mismatch is DataLoss, never a wrong answer.
  uint32_t crc32c = 0;
  SplitFormat format = SplitFormat::kRow;
  /// Size of the split's rows under the row encoding, independent of the
  /// physical format. All statistics the optimizer and pilot consume are in
  /// logical bytes, so plans are identical whichever format a table was
  /// written in. Normalized to `data.size()` by AppendSplit when left 0
  /// (exact for row splits).
  uint64_t logical_bytes = 0;
  /// Per-column min/max over the split's rows, stamped at write time by
  /// TableWriter (file metadata, like the checksum: not part of `data`).
  /// Null for splits written without one (job outputs, hand-built splits) —
  /// readers must treat a missing zone map as "may match anything".
  std::shared_ptr<const columnar::ZoneMap> zone_map;

  uint64_t num_bytes() const { return data.size(); }
};

/// Verifies `split.data` against its stored checksum. Returns DataLoss on
/// mismatch.
Status VerifySplit(const Split& split);

/// A file in the simulated DFS: an ordered list of splits. Files are
/// immutable once sealed (MapReduce semantics — jobs write whole files).
class DfsFile {
 public:
  /// Replication factor a file is created with (the HDFS default). Each
  /// replica is an independent chance to read a block back intact; the
  /// engine re-reads the next replica on checksum mismatch.
  static constexpr int kDefaultReplicas = 3;

  explicit DfsFile(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }
  const std::vector<Split>& splits() const { return splits_; }
  uint64_t num_records() const { return num_records_; }
  uint64_t num_bytes() const { return num_bytes_; }
  /// Row-encoded size of the file's contents (== num_bytes() for row-format
  /// files). Optimizer/pilot statistics use this so plans do not depend on
  /// the physical format.
  uint64_t logical_bytes() const { return logical_bytes_; }

  int replicas() const { return replicas_; }
  void set_replicas(int replicas) { replicas_ = replicas >= 1 ? replicas : 1; }

  /// Average row-encoded record size in bytes (0 for an empty file). This
  /// is the `rec_size_avg` statistic of the paper (§4.3); logical so it is
  /// format-independent.
  double avg_record_size() const {
    return num_records_ == 0
               ? 0.0
               : static_cast<double>(logical_bytes_) /
                     static_cast<double>(num_records_);
  }

  /// Appends a raw split (used by writers and by job output committers).
  /// The split's checksum is (re)stamped here: whatever bytes are committed
  /// are the bytes the checksum covers.
  void AppendSplit(Split split);

  /// Test/fault-injection hook: XORs `mask` into one stored byte WITHOUT
  /// restamping the checksum, modelling at-rest bit rot. The next verified
  /// read of the split must surface DataLoss. `mask` must be nonzero.
  Status CorruptByteForTesting(size_t split_index, size_t byte_offset,
                               uint8_t mask);

 private:
  std::string path_;
  std::vector<Split> splits_;
  uint64_t num_records_ = 0;
  uint64_t num_bytes_ = 0;
  uint64_t logical_bytes_ = 0;
  int replicas_ = kDefaultReplicas;
};

/// The simulated distributed filesystem: a flat namespace of immutable
/// files. A single process-wide instance plays the role of the HDFS cluster.
class Dfs {
 public:
  Dfs() = default;
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Creates an empty file. Fails with AlreadyExists on path collision.
  Result<std::shared_ptr<DfsFile>> Create(const std::string& path);

  /// Opens an existing file.
  Result<std::shared_ptr<DfsFile>> Open(const std::string& path) const;

  bool Exists(const std::string& path) const;

  Status Delete(const std::string& path);

  /// Removes every file whose path starts with `prefix`; returns the count.
  int DeleteWithPrefix(const std::string& prefix);

  /// All paths in lexicographic order.
  std::vector<std::string> List() const;

  /// Total bytes stored across all files.
  uint64_t TotalBytes() const;

  /// Monotone per-path write epoch: bumped every time `path` is created or
  /// deleted. Two opens of the same path with equal epochs are guaranteed to
  /// see the same immutable file; a differing epoch means the path was
  /// rewritten in between. Starts at 0 for never-written paths, so epoch 0
  /// doubles as "no such data version". Caches key their entries by this.
  uint64_t WriteEpoch(const std::string& path) const;

 private:
  std::map<std::string, std::shared_ptr<DfsFile>> files_;
  std::map<std::string, uint64_t> write_epochs_;
};

/// Buffers rows and seals them into splits of roughly `target_split_bytes`.
/// The default mirrors an HDFS block: at simulator scale we use 64 KiB so a
/// few-MB table still spans enough splits for sampling to be meaningful.
///
/// Split boundaries are decided by accumulated *row-encoded* bytes in both
/// formats, so a table written columnar has exactly the rows-per-split of
/// its row-format twin (plans and pilot samples stay comparable). Every
/// sealed split carries a zone map, whichever format it is written in.
class TableWriter {
 public:
  static constexpr uint64_t kDefaultSplitBytes = 64 * 1024;

  explicit TableWriter(std::shared_ptr<DfsFile> file,
                       uint64_t target_split_bytes = kDefaultSplitBytes,
                       SplitFormat format = SplitFormat::kRow);

  /// Encodes and buffers one row; seals a split when the target is reached.
  void Append(const Value& row);

  /// Flushes any buffered rows into a final split.
  void Close();

 private:
  void Seal();

  std::shared_ptr<DfsFile> file_;
  uint64_t target_split_bytes_;
  SplitFormat format_;
  Split pending_;                      ///< Row-format accumulation.
  std::vector<Value> pending_rows_;    ///< Columnar-format accumulation.
  uint64_t pending_logical_bytes_ = 0;
  columnar::ZoneMapBuilder zone_builder_;
};

/// Decodes the rows of one split, in order.
class SplitReader {
 public:
  explicit SplitReader(const Split* split) : split_(split) {}

  /// Returns the next row, or NotFound at end of split.
  Result<Value> Next();

  bool AtEnd() const { return offset_ >= split_->data.size(); }

  /// Bytes consumed so far; equals the split size after a clean scan. Lets
  /// callers bill partially-scanned splits (failed map attempts) exactly.
  size_t offset() const { return offset_; }

 private:
  const Split* split_;
  size_t offset_ = 0;
};

/// Format-aware split read: checksum-verifies `split.data`, then decodes it
/// per `split.format` into rows. Any decode failure after a clean checksum
/// (truncated frame, bad magic, record-count mismatch) is also DataLoss —
/// corruption never surfaces as a wrong answer.
Result<std::vector<Value>> DecodeSplitRows(const Split& split);

/// Reads an entire file into a row vector (test/debug helper; real scans go
/// through map tasks). Every split is checksum-verified first; a corrupt
/// split surfaces as DataLoss.
Result<std::vector<Value>> ReadAllRows(const DfsFile& file);

/// Writes `rows` as a new file on `dfs`.
Result<std::shared_ptr<DfsFile>> WriteRows(
    Dfs* dfs, const std::string& path, const std::vector<Value>& rows,
    uint64_t target_split_bytes = TableWriter::kDefaultSplitBytes,
    SplitFormat format = SplitFormat::kRow);

/// Outcome of zone-map pruning over a file's splits.
struct PruneResult {
  /// Indexes of splits some row of which may satisfy the filter, ascending.
  std::vector<size_t> kept;
  /// Splits proven to contain no matching row.
  uint64_t pruned = 0;
};

/// Evaluates `filter` against each split's zone map. Splits without a zone
/// map (job outputs, pre-zone-map files) are always kept, as are all splits
/// when `filter` is null. Pruning is an over-approximation: a kept split may
/// still yield zero rows, but a pruned split never loses one.
PruneResult PruneSplitIndexes(const DfsFile& file, const ExprPtr& filter);

}  // namespace dyno

#endif  // DYNO_STORAGE_DFS_H_
