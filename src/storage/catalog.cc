#include "storage/catalog.h"

#include "columnar/knobs.h"
#include "common/hash.h"

namespace dyno {

Status Catalog::RegisterTable(const std::string& name,
                              const std::string& dfs_path) {
  if (!dfs_->Exists(dfs_path)) {
    return Status::NotFound("no dfs file at " + dfs_path);
  }
  auto [it, inserted] = tables_.emplace(name, TableEntry{name, dfs_path});
  if (!inserted) return Status::AlreadyExists("table exists: " + name);
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name,
                             const std::string& dfs_path) {
  if (!dfs_->Exists(dfs_path)) {
    return Status::NotFound("no dfs file at " + dfs_path);
  }
  tables_.insert_or_assign(name, TableEntry{name, dfs_path});
  ++replace_epochs_[name];
  return Status::OK();
}

Status Catalog::CreateTable(const std::string& name,
                            const std::vector<Value>& rows) {
  return CreateTable(name, rows, TableWriter::kDefaultSplitBytes);
}

Status Catalog::CreateTable(const std::string& name,
                            const std::vector<Value>& rows,
                            uint64_t target_split_bytes) {
  std::string path = "/tables/" + name;
  SplitFormat format = columnar::ColumnarEnabled() ? SplitFormat::kColumnar
                                                   : SplitFormat::kRow;
  auto file = WriteRows(dfs_, path, rows, target_split_bytes, format);
  if (!file.ok()) return file.status();
  return RegisterTable(name, path);
}

Result<TableEntry> Catalog::Lookup(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return it->second;
}

Result<std::shared_ptr<DfsFile>> Catalog::OpenTable(
    const std::string& name) const {
  DYNO_ASSIGN_OR_RETURN(TableEntry entry, Lookup(name));
  return dfs_->Open(entry.dfs_path);
}

uint64_t Catalog::TableVersion(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return 0;
  uint64_t v = HashBytes(it->second.dfs_path.data(),
                         it->second.dfs_path.size());
  v = HashCombine(v, Mix64(dfs_->WriteEpoch(it->second.dfs_path)));
  auto epoch = replace_epochs_.find(name);
  uint64_t replace = epoch == replace_epochs_.end() ? 0 : epoch->second;
  v = HashCombine(v, Mix64(replace));
  // Reserve 0 for "unknown table" even in the astronomically unlikely event
  // the hash lands there.
  return v == 0 ? 1 : v;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) out.push_back(name);
  return out;
}

}  // namespace dyno
