#ifndef DYNO_JSON_VALUE_H_
#define DYNO_JSON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace dyno {

class Value;

/// An ordered field list; order is preserved so serialization is stable.
using StructFields = std::vector<std::pair<std::string, Value>>;
using ArrayElements = std::vector<Value>;

/// The dynamic, nested value model of the query engine — the stand-in for
/// Jaql's JSON data model. Records are `Value`s of struct type; nested
/// structs/arrays are pervasive (the paper's running example filters on
/// `rs.addr[0].zip`). Values are ordered, hashable and binary-serializable,
/// which is everything the MapReduce shuffle and the statistics layer need.
class Value {
 public:
  enum class Type : uint8_t {
    kNull = 0,
    kBool = 1,
    kInt = 2,
    kDouble = 3,
    kString = 4,
    kArray = 5,
    kStruct = 6,
  };

  /// Constructs null.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }
  static Value Array(ArrayElements elems);
  static Value Struct(StructFields fields);

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }

  /// Scalar accessors; the caller must have checked `type()`.
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const {
    return std::get<std::string>(rep_);
  }

  /// Numeric view: ints widen to double. Requires kInt or kDouble.
  double AsDouble() const;

  const ArrayElements& array() const { return *std::get<ArrayPtr>(rep_); }
  const StructFields& fields() const { return *std::get<StructPtr>(rep_); }

  /// Looks up a struct field by name; nullptr when absent or not a struct.
  const Value* FindField(std::string_view name) const;

  /// Array element access; nullptr when out of range or not an array.
  const Value* FindElement(size_t index) const;

  /// Total ordering across all values: by type tag first, then by content
  /// (numeric types compare cross-type by numeric value). Gives the shuffle
  /// a deterministic sort and group-by a well-defined key order.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// 64-bit content hash, equal for equal values. Numeric kInt/kDouble that
  /// compare equal hash equal.
  uint64_t Hash() const;

  /// Appends a compact binary encoding to `out`. Every byte written is
  /// accounted by the storage layer, making serialized size the unit of the
  /// simulator's I/O cost model.
  void EncodeTo(std::string* out) const;

  /// Decodes one value from `data` starting at `*offset`, advancing it.
  static Result<Value> Decode(std::string_view data, size_t* offset);

  /// Size in bytes of the binary encoding (without materializing it).
  size_t EncodedSize() const;

  /// JSON-ish human-readable rendering, for debugging and examples.
  std::string ToString() const;

 private:
  using ArrayPtr = std::shared_ptr<const ArrayElements>;
  using StructPtr = std::shared_ptr<const StructFields>;
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           ArrayPtr, StructPtr>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// Convenience builder for struct rows: `MakeRow({{"id", Value::Int(1)}})`.
Value MakeRow(StructFields fields);

}  // namespace dyno

#endif  // DYNO_JSON_VALUE_H_
