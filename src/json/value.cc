#include "json/value.h"

#include <cmath>
#include <cstring>

#include "common/hash.h"
#include "common/string_util.h"

namespace dyno {

namespace {

void EncodeVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

Result<uint64_t> DecodeVarint(std::string_view data, size_t* offset) {
  uint64_t v = 0;
  int shift = 0;
  while (*offset < data.size()) {
    uint8_t b = static_cast<uint8_t>(data[(*offset)++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    if (shift > 63) break;
  }
  return Status::Internal("malformed varint");
}

uint64_t DoubleHashKey(double d) {
  // Integral doubles hash as their integer value so 1 and 1.0 collide (they
  // also compare equal).
  if (d == std::floor(d) && std::abs(d) < 9.2e18) {
    return static_cast<uint64_t>(static_cast<int64_t>(d));
  }
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

Value Value::Array(ArrayElements elems) {
  return Value(Rep(std::make_shared<const ArrayElements>(std::move(elems))));
}

Value Value::Struct(StructFields fields) {
  return Value(Rep(std::make_shared<const StructFields>(std::move(fields))));
}

Value::Type Value::type() const {
  return static_cast<Type>(rep_.index());
}

double Value::AsDouble() const {
  if (type() == Type::kInt) return static_cast<double>(int_value());
  return double_value();
}

const Value* Value::FindField(std::string_view name) const {
  if (type() != Type::kStruct) return nullptr;
  for (const auto& [field_name, value] : fields()) {
    if (field_name == name) return &value;
  }
  return nullptr;
}

const Value* Value::FindElement(size_t index) const {
  if (type() != Type::kArray) return nullptr;
  const auto& elems = array();
  if (index >= elems.size()) return nullptr;
  return &elems[index];
}

int Value::Compare(const Value& other) const {
  Type a = type();
  Type b = other.type();
  // Numeric types compare by value across kInt/kDouble.
  bool a_num = (a == Type::kInt || a == Type::kDouble);
  bool b_num = (b == Type::kInt || b == Type::kDouble);
  if (a_num && b_num) {
    double x = AsDouble();
    double y = other.AsDouble();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a != b) return a < b ? -1 : 1;
  switch (a) {
    case Type::kNull:
      return 0;
    case Type::kBool:
      return static_cast<int>(bool_value()) -
             static_cast<int>(other.bool_value());
    case Type::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case Type::kArray: {
      const auto& x = array();
      const auto& y = other.array();
      size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        int c = x[i].Compare(y[i]);
        if (c != 0) return c;
      }
      if (x.size() != y.size()) return x.size() < y.size() ? -1 : 1;
      return 0;
    }
    case Type::kStruct: {
      const auto& x = fields();
      const auto& y = other.fields();
      size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        int c = x[i].first.compare(y[i].first);
        if (c != 0) return c < 0 ? -1 : 1;
        c = x[i].second.Compare(y[i].second);
        if (c != 0) return c;
      }
      if (x.size() != y.size()) return x.size() < y.size() ? -1 : 1;
      return 0;
    }
    default:
      return 0;  // kInt/kDouble handled above.
  }
}

uint64_t Value::Hash() const {
  switch (type()) {
    case Type::kNull:
      return 0x6e756c6cULL;
    case Type::kBool:
      return bool_value() ? 0x74727565ULL : 0x66616c73ULL;
    case Type::kInt:
      return Mix64(static_cast<uint64_t>(int_value()));
    case Type::kDouble:
      return Mix64(DoubleHashKey(double_value()));
    case Type::kString:
      return HashBytes(string_value(), /*seed=*/0x737472ULL);
    case Type::kArray: {
      uint64_t h = 0x617272ULL;
      for (const auto& e : array()) h = HashCombine(h, e.Hash());
      return h;
    }
    case Type::kStruct: {
      uint64_t h = 0x6f626aULL;
      for (const auto& [name, value] : fields()) {
        h = HashCombine(h, HashBytes(name, 0));
        h = HashCombine(h, value.Hash());
      }
      return h;
    }
  }
  return 0;
}

void Value::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type()));
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      out->push_back(bool_value() ? 1 : 0);
      break;
    case Type::kInt: {
      // Zigzag so small negative ints stay short.
      int64_t v = int_value();
      uint64_t zz =
          (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
      EncodeVarint(zz, out);
      break;
    }
    case Type::kDouble: {
      uint64_t bits;
      std::memcpy(&bits, &std::get<double>(rep_), sizeof(bits));
      for (int i = 0; i < 8; ++i) {
        out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
      }
      break;
    }
    case Type::kString: {
      const std::string& s = string_value();
      EncodeVarint(s.size(), out);
      out->append(s);
      break;
    }
    case Type::kArray: {
      const auto& elems = array();
      EncodeVarint(elems.size(), out);
      for (const auto& e : elems) e.EncodeTo(out);
      break;
    }
    case Type::kStruct: {
      const auto& flds = fields();
      EncodeVarint(flds.size(), out);
      for (const auto& [name, value] : flds) {
        EncodeVarint(name.size(), out);
        out->append(name);
        value.EncodeTo(out);
      }
      break;
    }
  }
}

Result<Value> Value::Decode(std::string_view data, size_t* offset) {
  if (*offset >= data.size()) return Status::Internal("truncated value");
  Type t = static_cast<Type>(data[(*offset)++]);
  switch (t) {
    case Type::kNull:
      return Value::Null();
    case Type::kBool: {
      if (*offset >= data.size()) return Status::Internal("truncated bool");
      return Value::Bool(data[(*offset)++] != 0);
    }
    case Type::kInt: {
      DYNO_ASSIGN_OR_RETURN(uint64_t u, DecodeVarint(data, offset));
      int64_t v = static_cast<int64_t>(u >> 1);
      if (u & 1) v = ~v;
      return Value::Int(v);
    }
    case Type::kDouble: {
      if (*offset + 8 > data.size()) {
        return Status::Internal("truncated double");
      }
      uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<uint64_t>(
                    static_cast<uint8_t>(data[*offset + i]))
                << (8 * i);
      }
      *offset += 8;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case Type::kString: {
      DYNO_ASSIGN_OR_RETURN(uint64_t n, DecodeVarint(data, offset));
      if (*offset + n > data.size()) return Status::Internal("bad string");
      Value v = Value::String(std::string(data.substr(*offset, n)));
      *offset += n;
      return v;
    }
    case Type::kArray: {
      DYNO_ASSIGN_OR_RETURN(uint64_t n, DecodeVarint(data, offset));
      // Each element encodes to at least one byte; a count beyond the
      // remaining input is corruption, not a reason to allocate.
      if (n > data.size() - *offset) {
        return Status::Internal("array count exceeds input");
      }
      ArrayElements elems;
      elems.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DYNO_ASSIGN_OR_RETURN(Value e, Value::Decode(data, offset));
        elems.push_back(std::move(e));
      }
      return Value::Array(std::move(elems));
    }
    case Type::kStruct: {
      DYNO_ASSIGN_OR_RETURN(uint64_t n, DecodeVarint(data, offset));
      if (n > data.size() - *offset) {
        return Status::Internal("field count exceeds input");
      }
      StructFields flds;
      flds.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DYNO_ASSIGN_OR_RETURN(uint64_t len, DecodeVarint(data, offset));
        if (*offset + len > data.size()) {
          return Status::Internal("bad field name");
        }
        std::string name(data.substr(*offset, len));
        *offset += len;
        DYNO_ASSIGN_OR_RETURN(Value v, Value::Decode(data, offset));
        flds.emplace_back(std::move(name), std::move(v));
      }
      return Value::Struct(std::move(flds));
    }
  }
  return Status::Internal("unknown value tag");
}

size_t Value::EncodedSize() const {
  switch (type()) {
    case Type::kNull:
      return 1;
    case Type::kBool:
      return 2;
    case Type::kInt: {
      int64_t v = int_value();
      uint64_t zz =
          (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
      return 1 + VarintSize(zz);
    }
    case Type::kDouble:
      return 9;
    case Type::kString:
      return 1 + VarintSize(string_value().size()) + string_value().size();
    case Type::kArray: {
      size_t n = 1 + VarintSize(array().size());
      for (const auto& e : array()) n += e.EncodedSize();
      return n;
    }
    case Type::kStruct: {
      size_t n = 1 + VarintSize(fields().size());
      for (const auto& [name, value] : fields()) {
        n += VarintSize(name.size()) + name.size() + value.EncodedSize();
      }
      return n;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_value() ? "true" : "false";
    case Type::kInt:
      return StrFormat("%lld", static_cast<long long>(int_value()));
    case Type::kDouble:
      return StrFormat("%g", double_value());
    case Type::kString:
      return "\"" + string_value() + "\"";
    case Type::kArray: {
      std::string out = "[";
      const auto& elems = array();
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += elems[i].ToString();
      }
      out += "]";
      return out;
    }
    case Type::kStruct: {
      std::string out = "{";
      const auto& flds = fields();
      for (size_t i = 0; i < flds.size(); ++i) {
        if (i > 0) out += ", ";
        out += flds[i].first + ": " + flds[i].second.ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

Value MakeRow(StructFields fields) { return Value::Struct(std::move(fields)); }

}  // namespace dyno
