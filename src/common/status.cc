#include "common/status.h"

namespace dyno {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dyno
