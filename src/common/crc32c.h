#ifndef DYNO_COMMON_CRC32C_H_
#define DYNO_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dyno {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum HDFS and
/// friends stamp on every stored block. Table-driven software
/// implementation; the simulator's splits are small enough that byte-wise
/// throughput is irrelevant next to the simulated I/O costs.
///
/// Any single-bit flip in the input changes the CRC (the map is linear over
/// GF(2) and injective on deltas shorter than the polynomial's span), which
/// is the property the integrity layer leans on: a corrupted replica or a
/// torn manifest write can never verify.

/// Extends a running CRC with `n` more bytes. Start from `crc = 0`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}
inline uint32_t Crc32c(std::string_view s) {
  return Crc32cExtend(0, s.data(), s.size());
}

}  // namespace dyno

#endif  // DYNO_COMMON_CRC32C_H_
