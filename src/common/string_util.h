#ifndef DYNO_COMMON_STRING_UTIL_H_
#define DYNO_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace dyno {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `delim`, keeping empty tokens.
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace dyno

#endif  // DYNO_COMMON_STRING_UTIL_H_
