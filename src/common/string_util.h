#ifndef DYNO_COMMON_STRING_UTIL_H_
#define DYNO_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dyno {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `delim`, keeping empty tokens.
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Strict numeric parsing: the entire string must be exactly one number —
/// no leading/trailing whitespace, no trailing junk, no empty input, and
/// for doubles no inf/nan. Returns InvalidArgument otherwise.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Parses the value of environment knob `name` (already fetched, non-null)
/// and range-checks it against [lo, hi]. A malformed or out-of-range value
/// aborts with a fatal message: a mistyped `DYNO_*` knob silently falling
/// back to a default would invalidate whole benchmark/fault campaigns.
int64_t EnvInt64OrDie(const char* name, const char* value, int64_t lo,
                      int64_t hi);
double EnvDoubleOrDie(const char* name, const char* value, double lo,
                      double hi);

}  // namespace dyno

#endif  // DYNO_COMMON_STRING_UTIL_H_
