#ifndef DYNO_COMMON_RANDOM_H_
#define DYNO_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace dyno {

/// Deterministic xoshiro256** pseudo-random generator. Every stochastic
/// component of the simulator (data generation, split sampling, task timing
/// jitter) draws from an explicitly seeded Rng so that experiments are
/// reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Zipf-distributed value in [0, n) with skew parameter `theta` in [0, 1).
  /// theta = 0 degenerates to uniform. Uses the standard rejection-free
  /// approximation (Gray et al.), amortizing the zeta normalization.
  uint64_t Zipf(uint64_t n, double theta);

  /// Samples `k` distinct indices out of [0, n) via reservoir sampling, in
  /// selection order. If k >= n, returns all indices shuffled.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (uint64_t i = v->size() - 1; i > 0; --i) {
      uint64_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];

  // Cached Zipf normalization state (recomputed when n/theta changes).
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace dyno

#endif  // DYNO_COMMON_RANDOM_H_
