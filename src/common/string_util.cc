#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dyno {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {

/// strtol/strtod want NUL-terminated input and skip leading whitespace; we
/// want neither, so stage through a std::string and pre-reject whitespace.
bool PrepareNumeric(std::string_view s, std::string* buf) {
  if (s.empty()) return false;
  if (std::isspace(static_cast<unsigned char>(s.front())) != 0) return false;
  buf->assign(s.data(), s.size());
  return true;
}

}  // namespace

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf;
  if (!PrepareNumeric(s, &buf)) {
    return Status::InvalidArgument(StrFormat("not an integer: \"%s\"",
                                             std::string(s).c_str()));
  }
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument(
        StrFormat("not an integer: \"%s\"", buf.c_str()));
  }
  return static_cast<int64_t>(parsed);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf;
  if (!PrepareNumeric(s, &buf)) {
    return Status::InvalidArgument(StrFormat("not a number: \"%s\"",
                                             std::string(s).c_str()));
  }
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      !std::isfinite(parsed)) {
    return Status::InvalidArgument(
        StrFormat("not a number: \"%s\"", buf.c_str()));
  }
  return parsed;
}

int64_t EnvInt64OrDie(const char* name, const char* value, int64_t lo,
                      int64_t hi) {
  auto parsed = ParseInt64(value);
  if (!parsed.ok() || *parsed < lo || *parsed > hi) {
    std::fprintf(stderr,
                 "dyno: fatal: %s=\"%s\" is not an integer in [%lld, %lld]\n",
                 name, value, (long long)lo, (long long)hi);
    std::abort();
  }
  return *parsed;
}

double EnvDoubleOrDie(const char* name, const char* value, double lo,
                      double hi) {
  auto parsed = ParseDouble(value);
  if (!parsed.ok() || *parsed < lo || *parsed > hi) {
    std::fprintf(stderr,
                 "dyno: fatal: %s=\"%s\" is not a number in [%g, %g]\n",
                 name, value, lo, hi);
    std::abort();
  }
  return *parsed;
}

}  // namespace dyno
