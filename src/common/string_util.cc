#include "common/string_util.h"

#include <cstdio>

namespace dyno {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace dyno
