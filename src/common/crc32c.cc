#include "common/crc32c.h"

namespace dyno {

namespace {

/// 256-entry lookup table for the reflected Castagnoli polynomial,
/// generated once at startup (cheaper to audit than 256 literals and
/// identical on every platform).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    constexpr uint32_t kPolyReflected = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Crc32cTable& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace dyno
