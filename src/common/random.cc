#include "common/random.h"

#include <cmath>

namespace dyno {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes via SplitMix64, as recommended by the xoshiro
  // authors; avoids the all-zero state for any seed.
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(n);
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      zipf_zetan_ += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zetan_);
  }
  double u = NextDouble();
  double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n) *
      std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  std::vector<uint64_t> out;
  if (k >= n) {
    out.resize(n);
    for (uint64_t i = 0; i < n; ++i) out[i] = i;
    Shuffle(&out);
    return out;
  }
  // Classic reservoir sampling, then shuffle so order carries no bias.
  out.reserve(k);
  for (uint64_t i = 0; i < n; ++i) {
    if (out.size() < k) {
      out.push_back(i);
    } else {
      uint64_t j = Uniform(i + 1);
      if (j < k) out[j] = i;
    }
  }
  Shuffle(&out);
  return out;
}

}  // namespace dyno
