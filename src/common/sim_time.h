#ifndef DYNO_COMMON_SIM_TIME_H_
#define DYNO_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace dyno {

/// Simulated wall-clock duration, in milliseconds. The MapReduce simulator
/// charges every job phase in SimMillis; all paper figures are reproduced in
/// this unit (the paper reports only *relative* times, so the unit choice is
/// immaterial as long as it is consistent).
using SimMillis = int64_t;

/// Formats a duration as "12.345 s" / "987 ms" for human-readable reports.
std::string FormatSimMillis(SimMillis ms);

}  // namespace dyno

#endif  // DYNO_COMMON_SIM_TIME_H_
