#include "common/sim_time.h"

#include <cstdio>

namespace dyno {

std::string FormatSimMillis(SimMillis ms) {
  char buf[64];
  if (ms >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.3f s",
                  static_cast<double>(ms) / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ms", static_cast<long long>(ms));
  }
  return buf;
}

}  // namespace dyno
