#ifndef DYNO_COMMON_STATUS_H_
#define DYNO_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace dyno {

/// Error categories used across the library. Mirrors the coarse error
/// taxonomy of large-scale engines: user errors (bad query), resource
/// exhaustion (a broadcast build side that does not fit in memory aborts the
/// job, exactly as in Jaql), and internal invariant violations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// The resource backing the operation is gone (e.g. every cluster node
  /// that could run a job is permanently down). Distinct from kInternal so
  /// callers can treat it as an environmental failure worth replanning or
  /// retrying around rather than a logic bug.
  kUnavailable,
  /// The operation was deliberately stopped before completing (e.g. the
  /// driver was killed mid-query). Resumable via checkpoints.
  kCancelled,
  /// A capacity limit was hit (e.g. the query service's admission queue is
  /// full). The caller should shed load or retry later; distinct from
  /// kOutOfMemory, which is a per-task budget violation inside a job.
  kResourceExhausted,
  /// The query missed its deadline or exhausted an execution-time budget.
  /// Enforced at wave boundaries by the query service; like kCancelled the
  /// query stops at its next submission point, but the failure is
  /// attributable to the caller's latency contract, not an operator action.
  kDeadlineExceeded,
  /// Stored or in-flight bytes failed checksum verification and no intact
  /// copy remains (every block replica corrupt, every shuffle re-fetch
  /// corrupt, or the bad-record quarantine budget exhausted). Retryable at
  /// the task/job level — a re-run re-reads or regenerates the data — but
  /// permanent when it survives the whole retry ladder.
  kDataLoss,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, used instead of exceptions across
/// all public APIs (RocksDB/Arrow idiom). Statuses are cheap to copy in the
/// OK case and carry a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-Status union: the standard way library functions return
/// fallible results. `ok()` must be checked before dereferencing.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse (`return 42;` / `return Status::NotFound(...)`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; undefined behaviour if `!ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dyno

/// Propagates a non-OK Status from an expression to the caller.
#define DYNO_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::dyno::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates a Result-returning expression; on error propagates the Status,
/// otherwise moves the value into `lhs`.
#define DYNO_ASSIGN_OR_RETURN(lhs, expr)          \
  DYNO_ASSIGN_OR_RETURN_IMPL(                     \
      DYNO_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define DYNO_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value();

#define DYNO_CONCAT_NAME(x, y) DYNO_CONCAT_NAME_IMPL(x, y)
#define DYNO_CONCAT_NAME_IMPL(x, y) x##y

#endif  // DYNO_COMMON_STATUS_H_
