#ifndef DYNO_COMMON_HASH_H_
#define DYNO_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dyno {

/// 64-bit FNV-1a over a byte range. Used for join-key partitioning and for
/// the KMV distinct-value synopsis (which needs a hash whose outputs are
/// close to uniform on [0, 2^64)).
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashBytes(std::string_view s, uint64_t seed) {
  return Fnv1a64(s.data(), s.size(), seed ^ 0xcbf29ce484222325ULL);
}

/// Mixes a 64-bit value (final avalanche step of MurmurHash3). Applied on
/// top of FNV for short keys, whose raw FNV output is poorly distributed in
/// the high bits.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines two hashes (boost::hash_combine recipe widened to 64 bits).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace dyno

#endif  // DYNO_COMMON_HASH_H_
