// Unit tests for the observability subsystem: metric instruments and the
// registry's name/kind rules, JSON escaping, and the two trace
// serializations (JSONL for golden diffs, Chrome trace_event for UIs).

#include "obs/metrics.h"
#include "obs/trace.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dyno::obs {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  Gauge g;
  g.Set(7);
  g.Set(-3);
  EXPECT_EQ(g.value(), -3);
}

TEST(MetricsTest, HistogramBucketsObservations) {
  Histogram h({10, 100});
  h.Observe(5);     // <= 10 -> bucket 0
  h.Observe(10);    // <= 10 -> bucket 0 (bounds are inclusive)
  h.Observe(11);    // <= 100 -> bucket 1
  h.Observe(1000);  // overflow -> bucket 2
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5 + 10 + 11 + 1000);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
}

TEST(MetricsTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  Histogram h({});  // empty bounds select the default latency buckets
  ASSERT_FALSE(h.bounds().empty());
  EXPECT_EQ(h.bounds(), DefaultLatencyBounds());
  for (size_t i = 1; i < h.bounds().size(); ++i) {
    EXPECT_LT(h.bounds()[i - 1], h.bounds()[i]);
  }
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("mr.jobs");
  Counter* b = registry.GetCounter("mr.jobs");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b) << "re-registration must share one instrument";
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST(MetricsTest, RegistryRejectsKindChanges) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.GetGauge("x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x"), nullptr);
  ASSERT_NE(registry.GetHistogram("h", {1, 2}), nullptr);
  EXPECT_EQ(registry.GetCounter("h"), nullptr);
  ASSERT_NE(registry.GetGauge("g"), nullptr);
  EXPECT_EQ(registry.GetCounter("g"), nullptr);
}

TEST(MetricsTest, SerializeIsNameSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Add(2);
  registry.GetGauge("a.level")->Set(9);
  registry.GetHistogram("c.lat", {10})->Observe(4);
  registry.GetHistogram("c.lat")->Observe(40);
  EXPECT_EQ(registry.Serialize(),
            "gauge a.level 9\n"
            "counter b.count 2\n"
            "histogram c.lat count=2 sum=44 buckets=1,1\n");
}

TEST(TraceTest, JsonQuoteEscapes) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("a\nb\tc\r"), "\"a\\nb\\tc\\r\"");
  EXPECT_EQ(JsonQuote(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(TraceTest, EventArgRendering) {
  TraceEvent e = TraceEvent(10, 5, TraceLane::kEngine, "mr", "job")
                     .Arg("s", "hi")
                     .ArgInt("i", -7)
                     .ArgDouble("d", 0.25)
                     .ArgBool("b", true);
  ASSERT_EQ(e.args.size(), 4u);
  EXPECT_EQ(e.args[0].second, "\"hi\"");
  EXPECT_EQ(e.args[1].second, "-7");
  EXPECT_EQ(e.args[2].second, "0.25");
  EXPECT_EQ(e.args[3].second, "true");
}

TEST(TraceTest, JsonlHeaderAndEventLayout) {
  TraceSink sink;
  sink.Record(TraceEvent(100, 40, TraceLane::kPilot, "pilot", "pilot_leaf")
                  .Arg("alias", "l")
                  .ArgInt("k", 128));
  sink.Record(
      TraceEvent(150, -1, TraceLane::kDriver, "driver", "checkpoint"));
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.SerializeJsonl(),
            "{\"schema\":" + std::to_string(kTraceSchemaVersion) +
                ",\"clock\":\"sim_ms\"}\n"
                "{\"seq\":0,\"ts\":100,\"dur\":40,\"lane\":2,\"cat\":\"pilot\","
                "\"name\":\"pilot_leaf\",\"args\":{\"alias\":\"l\",\"k\":128}}\n"
                "{\"seq\":1,\"ts\":150,\"lane\":0,\"cat\":\"driver\","
                "\"name\":\"checkpoint\",\"args\":{}}\n");
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceTest, JsonlSchemaHeaderTracksVersionConstant) {
  TraceSink sink;
  std::string first_line =
      sink.SerializeJsonl().substr(0, sink.SerializeJsonl().find('\n'));
  char expected[64];
  std::snprintf(expected, sizeof(expected), "{\"schema\":%d,",
                kTraceSchemaVersion);
  EXPECT_EQ(first_line.rfind(expected, 0), 0u) << first_line;
}

TEST(TraceTest, ChromeTraceHasLaneMetadataAndPhases) {
  TraceSink sink;
  sink.Record(TraceEvent(100, 40, TraceLane::kTasks, "mr", "map_attempt")
                  .ArgInt("task", 3));
  sink.Record(TraceEvent(7, -1, TraceLane::kOptimizer, "optimizer", "optimize"));
  std::string chrome = sink.SerializeChromeTrace();
  // One thread_name metadata record per lane.
  for (const char* lane :
       {"\"driver\"", "\"optimizer\"", "\"pilot\"", "\"engine\"", "\"tasks\""}) {
    EXPECT_NE(chrome.find(lane), std::string::npos) << lane;
  }
  // Span: complete event, sim-ms scaled to trace-event microseconds.
  EXPECT_NE(chrome.find("{\"ph\":\"X\",\"ts\":100000,\"dur\":40000,\"pid\":0,"
                        "\"tid\":4,\"cat\":\"mr\",\"name\":\"map_attempt\","
                        "\"args\":{\"task\":3}}"),
            std::string::npos)
      << chrome;
  // Instant: ph "i" with scope, no dur.
  EXPECT_NE(chrome.find("{\"ph\":\"i\",\"ts\":7000,\"pid\":0,\"tid\":1,"
                        "\"s\":\"t\",\"cat\":\"optimizer\","
                        "\"name\":\"optimize\",\"args\":{}}"),
            std::string::npos)
      << chrome;
}

TEST(TraceTest, WriteJsonlRoundTripsThroughDisk) {
  TraceSink sink;
  sink.Record(TraceEvent(1, 2, TraceLane::kEngine, "mr", "job"));
  std::string path = ::testing::TempDir() + "obs_test_trace.jsonl";
  ASSERT_TRUE(sink.WriteJsonl(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, sink.SerializeJsonl());
  EXPECT_FALSE(sink.WriteJsonl("/nonexistent-dir/x.jsonl").ok());
}

}  // namespace
}  // namespace dyno::obs
