#include "mr/engine.h"

#include <gtest/gtest.h>

#include "storage/dfs.h"

namespace dyno {
namespace {

Value Row(int64_t id, int64_t group) {
  return MakeRow({{"id", Value::Int(id)}, {"g", Value::Int(group)}});
}

class MrEngineTest : public ::testing::Test {
 protected:
  MrEngineTest() : engine_(&dfs_, MakeConfig()) {}

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 1000;
    config.map_slots = 4;
    config.reduce_slots = 2;
    return config;
  }

  std::shared_ptr<DfsFile> MakeInput(int rows, const std::string& path,
                                     uint64_t split_bytes = 128) {
    std::vector<Value> data;
    for (int i = 0; i < rows; ++i) data.push_back(Row(i, i % 3));
    auto file = WriteRows(&dfs_, path, data, split_bytes);
    EXPECT_TRUE(file.ok());
    return *file;
  }

  Dfs dfs_;
  MapReduceEngine engine_;
};

TEST_F(MrEngineTest, MapOnlyJobProducesOutput) {
  auto input = MakeInput(100, "/in");
  JobSpec spec;
  spec.name = "copy";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = input;
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Output(record);
    return Status::OK();
  };
  spec.inputs = {mi};
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  EXPECT_EQ(result->counters.map_input_records, 100u);
  EXPECT_EQ(result->counters.output_records, 100u);
  EXPECT_EQ(result->output->num_records(), 100u);
  EXPECT_EQ(result->reduce_tasks_run, 0);
  EXPECT_GT(result->map_tasks_run, 1);
  EXPECT_GE(result->Elapsed(), 1000) << "startup latency must be charged";
}

TEST_F(MrEngineTest, MapReduceGroupsByKey) {
  auto input = MakeInput(90, "/in");
  JobSpec spec;
  spec.name = "count-by-group";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = input;
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Emit(*record.FindField("g"), record);
    return Status::OK();
  };
  spec.inputs = {mi};
  spec.reduce_fn = [](const Value& key, const std::vector<Value>& values,
                      ReduceContext* ctx) -> Status {
    ctx->Output(MakeRow({{"g", key},
                         {"n", Value::Int(static_cast<int64_t>(
                                   values.size()))}}));
    return Status::OK();
  };
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  auto rows = ReadAllRows(*result->output);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  int64_t total = 0;
  for (const Value& row : *rows) total += row.FindField("n")->int_value();
  EXPECT_EQ(total, 90);
  EXPECT_GT(result->reduce_tasks_run, 0);
}

TEST_F(MrEngineTest, ReduceValuesArriveGroupedOnce) {
  // Each key must be passed to the reduce function exactly once.
  auto input = MakeInput(60, "/in");
  JobSpec spec;
  spec.name = "unique-keys";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = input;
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Emit(*record.FindField("g"), Value::Int(1));
    return Status::OK();
  };
  spec.inputs = {mi};
  spec.num_reduce_tasks = 2;
  spec.reduce_fn = [](const Value& key, const std::vector<Value>&,
                      ReduceContext* ctx) -> Status {
    ctx->Output(key);
    return Status::OK();
  };
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  auto rows = ReadAllRows(*result->output);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u) << "3 distinct keys -> 3 reduce invocations";
}

TEST_F(MrEngineTest, StopConditionSkipsRemainingTasks) {
  auto input = MakeInput(200, "/in", /*split_bytes=*/64);
  ASSERT_GT(input->splits().size(), 8u);
  int produced = 0;
  JobSpec spec;
  spec.name = "limited";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = input;
  mi.map_fn = [&produced](const Value& record, MapContext* ctx) -> Status {
    ++produced;
    ctx->Output(record);
    return Status::OK();
  };
  spec.inputs = {mi};
  spec.stop_condition = [&produced]() { return produced >= 10; };
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  EXPECT_GT(result->map_tasks_skipped, 0);
  EXPECT_LT(result->counters.output_records, 200u);
  EXPECT_GE(result->counters.output_records, 10u);
}

TEST_F(MrEngineTest, BroadcastMemoryCheckFailsJob) {
  auto input = MakeInput(10, "/in");
  JobSpec spec;
  spec.name = "oom";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = input;
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Output(record);
    return Status::OK();
  };
  spec.inputs = {mi};
  spec.side_memory_bytes = engine_.config().memory_per_task_bytes * 2;
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(result->output, nullptr);
  EXPECT_FALSE(dfs_.Exists("/out")) << "failed job output must be cleaned";
}

TEST_F(MrEngineTest, MapErrorFailsJob) {
  auto input = MakeInput(10, "/in");
  JobSpec spec;
  spec.name = "bad";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = input;
  mi.map_fn = [](const Value&, MapContext*) -> Status {
    return Status::Internal("boom");
  };
  spec.inputs = {mi};
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->status.ok());
}

TEST_F(MrEngineTest, ParallelJobsShareClusterAndAllFinish) {
  auto in1 = MakeInput(50, "/in1");
  auto in2 = MakeInput(50, "/in2");
  auto copy = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Output(record);
    return Status::OK();
  };
  JobSpec a;
  a.name = "a";
  a.output_path = "/outa";
  a.inputs = {{in1, {}, copy, 1.0, {}}};
  JobSpec b;
  b.name = "b";
  b.output_path = "/outb";
  b.inputs = {{in2, {}, copy, 1.0, {}}};
  auto results = engine_.SubmitAll({a, b});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_TRUE((*results)[0].status.ok());
  EXPECT_TRUE((*results)[1].status.ok());
  EXPECT_EQ((*results)[0].output->num_records(), 50u);
  EXPECT_EQ((*results)[1].output->num_records(), 50u);
}

TEST_F(MrEngineTest, ParallelSubmissionIsFasterThanSerial) {
  // Two jobs submitted together pay overlapping startup + share slots;
  // submitted serially they pay everything twice end-to-end.
  auto copy = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Output(record);
    return Status::OK();
  };
  auto in1 = MakeInput(100, "/s_in1");
  auto in2 = MakeInput(100, "/s_in2");

  SimMillis serial_start = engine_.now();
  JobSpec a;
  a.name = "a";
  a.output_path = "/s_outa";
  a.inputs = {{in1, {}, copy, 1.0, {}}};
  ASSERT_TRUE(engine_.Submit(a).ok());
  JobSpec b;
  b.name = "b";
  b.output_path = "/s_outb";
  b.inputs = {{in2, {}, copy, 1.0, {}}};
  ASSERT_TRUE(engine_.Submit(b).ok());
  SimMillis serial = engine_.now() - serial_start;

  JobSpec a2 = a;
  a2.output_path = "/p_outa";
  JobSpec b2 = b;
  b2.output_path = "/p_outb";
  SimMillis par_start = engine_.now();
  ASSERT_TRUE(engine_.SubmitAll({a2, b2}).ok());
  SimMillis parallel = engine_.now() - par_start;
  EXPECT_LT(parallel, serial);
}

TEST_F(MrEngineTest, SplitSubsetRestrictsInput) {
  auto input = MakeInput(200, "/in", /*split_bytes=*/64);
  JobSpec spec;
  spec.name = "subset";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = input;
  mi.split_indexes = {0, 1};
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Output(record);
    return Status::OK();
  };
  spec.inputs = {mi};
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  uint64_t expected = input->splits()[0].num_records +
                      input->splits()[1].num_records;
  EXPECT_EQ(result->counters.output_records, expected);
}

TEST_F(MrEngineTest, InvalidSpecsRejected) {
  JobSpec no_inputs;
  no_inputs.name = "x";
  no_inputs.output_path = "/o";
  EXPECT_FALSE(engine_.Submit(no_inputs).ok());

  auto input = MakeInput(5, "/in");
  JobSpec no_output;
  no_output.name = "y";
  no_output.inputs = {{input, {}, [](const Value&, MapContext*) {
                         return Status::OK();
                       }, 1.0, {}}};
  EXPECT_FALSE(engine_.Submit(no_output).ok());

  JobSpec bad_split = no_output;
  bad_split.output_path = "/o2";
  bad_split.inputs[0].split_indexes = {999};
  EXPECT_FALSE(engine_.Submit(bad_split).ok());
}

TEST_F(MrEngineTest, CoordinatorCountersAndChannels) {
  Coordinator* coord = engine_.coordinator();
  EXPECT_EQ(coord->GetCounter("c"), 0);
  EXPECT_EQ(coord->Increment("c", 5), 5);
  EXPECT_EQ(coord->Increment("c", 2), 7);
  coord->ResetCounter("c");
  EXPECT_EQ(coord->GetCounter("c"), 0);
  coord->Publish("ch", "a");
  coord->Publish("ch", "b");
  EXPECT_EQ(coord->Fetch("ch").size(), 2u);
  coord->ClearChannel("ch");
  EXPECT_TRUE(coord->Fetch("ch").empty());
}

TEST_F(MrEngineTest, ObserverOverheadReported) {
  auto input = MakeInput(100, "/in");
  int observed = 0;
  JobSpec spec;
  spec.name = "obs";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = input;
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Output(record);
    return Status::OK();
  };
  spec.inputs = {mi};
  spec.output_observer = [&observed](const Value&) { ++observed; };
  spec.observer_cpu_per_record = 100.0;
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(observed, 100);
  EXPECT_GT(result->observer_overhead_ms, 0);
}

}  // namespace
}  // namespace dyno
