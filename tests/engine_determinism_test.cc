// The engine's contract for ClusterConfig::execution_threads: it is purely
// a wall-clock knob. Simulated timestamps, counters, DFS outputs and every
// derived statistic must be bit-identical for any thread count. This test
// runs one multi-job workload — concurrent map-only and map-reduce jobs
// with an output observer, followed by a PILR_MT pilot with an active stop
// condition — at 1, 4 and 8 execution threads and compares full-state
// fingerprints.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "dyno/driver.h"
#include "expr/expr.h"
#include "mr/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pilot/pilot_runner.h"
#include "service/query_service.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

/// The legacy fault-scenario tests pin their fault draws with a fixed seed
/// AND assume the seed's row-format task timings (e.g. the node-crash
/// schedule is tuned so crashes catch completed map outputs). Pin the data
/// plane to row format so a columnar ctest preset cannot shift the
/// timeline out from under those assertions; columnar coverage lives in
/// the Columnar* tests below, which pin the knobs on instead.
ScopedEnv RowMode() {
  return ScopedEnv({{"DYNO_COLUMNAR", "0"}, {"DYNO_ZONE_MAPS", "0"}});
}

uint64_t Fnv1a(uint64_t h, const std::string& bytes) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Exhaustive digest of one job result: every timing, counter and the raw
/// output bytes (split structure included).
std::string FingerprintJob(const JobResult& job) {
  std::string out = StrFormat(
      "status=%d submit=%lld finish=%lld maps=%d skipped=%d reduces=%d "
      "obs_ms=%lld mir=%llu mib=%llu mor=%llu mob=%llu rir=%llu or=%llu "
      "ob=%llu",
      static_cast<int>(job.status.code()),
      static_cast<long long>(job.submit_time_ms),
      static_cast<long long>(job.finish_time_ms), job.map_tasks_run,
      job.map_tasks_skipped, job.reduce_tasks_run,
      static_cast<long long>(job.observer_overhead_ms),
      (unsigned long long)job.counters.map_input_records,
      (unsigned long long)job.counters.map_input_bytes,
      (unsigned long long)job.counters.map_output_records,
      (unsigned long long)job.counters.map_output_bytes,
      (unsigned long long)job.counters.reduce_input_records,
      (unsigned long long)job.counters.output_records,
      (unsigned long long)job.counters.output_bytes);
  out += StrFormat(" inj=%d retry=%d spec=%d specwin=%d",
                   job.task_failures_injected, job.task_retries,
                   job.speculative_launches, job.speculative_wins);
  out += StrFormat(" ncrash=%d nkill=%d ninv=%d nshuf=%d",
                   job.node_crashes_observed, job.attempts_killed_by_node,
                   job.maps_invalidated, job.shuffle_fetch_retries);
  out += StrFormat(" bcorr=%d refetch=%d quar=%llu qpath=%s",
                   job.block_corruptions, job.checksum_refetches,
                   (unsigned long long)job.records_quarantined,
                   job.quarantine_path.c_str());
  if (job.output != nullptr) {
    uint64_t h = 14695981039346656037ull;
    for (const Split& split : job.output->splits()) {
      h = Fnv1a(h, split.data);
      out += StrFormat(" s%llu", (unsigned long long)split.num_records);
    }
    out += StrFormat(" data=%llx", (unsigned long long)h);
  }
  return out;
}

std::string FingerprintStats(const TableStats& stats,
                             const std::string& column) {
  return StrFormat("card=%.17g rec=%.17g sample=%d ndv=%.17g",
                   stats.cardinality, stats.avg_record_size,
                   stats.from_sample ? 1 : 0, stats.ColumnNdv(column));
}

/// Aggregate fault-model activity across the workload's jobs, so tests can
/// assert the fault path was genuinely exercised.
struct FaultTotals {
  int failures_injected = 0;
  int retries = 0;
  int speculative_launches = 0;
  int node_crashes = 0;
  int maps_invalidated = 0;
  int block_corruptions = 0;
  int checksum_refetches = 0;
  uint64_t records_quarantined = 0;
};

/// Builds a fresh cluster, runs the whole workload, and digests every
/// observable outcome into one string. `faults` (optional) switches on the
/// deterministic fault model; `totals` (optional) accumulates its activity.
std::string RunWorkload(int threads, const FaultConfig* faults = nullptr,
                        FaultTotals* totals = nullptr) {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig config;
  config.map_slots = 8;
  config.reduce_slots = 4;
  config.job_startup_ms = 500;
  config.execution_threads = threads;
  // Pin the fault settings so the ctest fault preset's env vars cannot
  // perturb these fingerprint comparisons.
  config.faults.use_env_defaults = false;
  if (faults != nullptr) {
    config.faults = *faults;
    config.faults.use_env_defaults = false;
  }
  MapReduceEngine engine(&dfs, config);
  // The serialized trace is part of the fingerprint: event content AND
  // buffer order must be bit-identical across thread counts, since the
  // golden-trace tests rely on exactly that.
  obs::TraceSink trace;
  engine.set_trace(&trace);

  std::vector<Value> rows;
  for (int i = 0; i < 6000; ++i) {
    rows.push_back(MakeRow({{"id", Value::Int(i)},
                            {"k", Value::Int(i % 500)},
                            {"flag", Value::Int(i % 2)},
                            {"pad", Value::String(std::string(40, 'x'))}}));
  }
  EXPECT_TRUE(catalog.CreateTable("big", rows).ok());
  std::vector<Value> small;
  for (int i = 0; i < 400; ++i) {
    small.push_back(
        MakeRow({{"sid", Value::Int(i)}, {"sk", Value::Int(i % 40)}}));
  }
  EXPECT_TRUE(catalog.CreateTable("small", small).ok());

  auto big = catalog.OpenTable("big");
  EXPECT_TRUE(big.ok());

  // Job A: map-only filter+project over every split of "big".
  JobSpec copy;
  copy.name = "copy";
  copy.output_path = "/out/copy";
  {
    MapInput input;
    input.file = *big;
    input.map_fn = [](const Value& record, MapContext* ctx) -> Status {
      const Value* flag = record.FindField("flag");
      if (flag != nullptr && flag->int_value() == 1) {
        ctx->Output(MakeRow({{"id", *record.FindField("id")},
                             {"k", *record.FindField("k")}}));
      }
      return Status::OK();
    };
    copy.inputs = {std::move(input)};
  }

  // Job B: map-reduce group-count with an output observer collecting
  // statistics — submitted concurrently with Job A so the two contend for
  // the same slots.
  auto observer_stats = std::make_shared<StatsCollector>(
      std::vector<std::string>{"g"}, /*kmv_k=*/128);
  JobSpec group;
  group.name = "group";
  group.output_path = "/out/group";
  {
    MapInput input;
    input.file = *big;
    input.map_fn = [](const Value& record, MapContext* ctx) -> Status {
      const Value* k = record.FindField("k");
      ctx->Emit(Value::Int(k->int_value() % 100), Value::Int(1));
      return Status::OK();
    };
    group.inputs = {std::move(input)};
  }
  // Pin the reducer count: auto-sizing from emitted bytes would give this
  // small shuffle a single reducer, leaving corruption-regime tests only
  // one draw per attempt for the shuffle-checksum path.
  group.num_reduce_tasks = 4;
  group.reduce_fn = [](const Value& key, const std::vector<Value>& values,
                       ReduceContext* ctx) -> Status {
    ctx->Output(MakeRow({{"g", key},
                         {"n", Value::Int(static_cast<int64_t>(
                                   values.size()))}}));
    return Status::OK();
  };
  group.output_observer = [observer_stats](const Value& record) {
    observer_stats->Observe(record);
  };
  group.observer_cpu_per_record = observer_stats->CpuCostPerRecord();

  auto results = engine.SubmitAll({copy, group});
  EXPECT_TRUE(results.ok());

  std::string fp = StrFormat("threads=? now0=%lld\n",
                             static_cast<long long>(engine.now()));
  for (const JobResult& job : *results) {
    fp += FingerprintJob(job) + "\n";
    if (totals != nullptr) {
      totals->failures_injected += job.task_failures_injected;
      totals->retries += job.task_retries;
      totals->speculative_launches += job.speculative_launches;
      totals->node_crashes += job.node_crashes_observed;
      totals->maps_invalidated += job.maps_invalidated;
      totals->block_corruptions += job.block_corruptions;
      totals->checksum_refetches += job.checksum_refetches;
      totals->records_quarantined += job.records_quarantined;
    }
  }
  fp += "observer=" + observer_stats->Serialize() + "\n";

  // PILR_MT pilot with an active stop condition: the "big" leaf reaches k
  // long before its splits run out, so batches race the global counter.
  StatsStore store;
  PilotRunOptions options;
  options.mode = PilotRunOptions::Mode::kParallel;
  options.k = 300;
  options.kmv_k = 256;
  options.reuse_stats = false;
  options.seed = 7;
  PilotRunner runner(&engine, &catalog, &store, options);

  LeafExpr big_leaf;
  big_leaf.alias = "b";
  big_leaf.table = "big";
  big_leaf.filter = Eq(Col("flag"), LitInt(1));
  big_leaf.join_columns = {"k"};
  LeafExpr small_leaf;
  small_leaf.alias = "s";
  small_leaf.table = "small";
  small_leaf.join_columns = {"sk"};

  auto report = runner.Run({big_leaf, small_leaf});
  EXPECT_TRUE(report.ok());
  fp += StrFormat("pilot elapsed=%lld executed=%d\n",
                  static_cast<long long>(report->elapsed_ms),
                  report->runs_executed);
  for (const PilotLeafResult& leaf : report->leaves) {
    fp += leaf.alias + " " +
          FingerprintStats(leaf.stats,
                           leaf.alias == "b" ? "k" : "sk");
    if (leaf.full_output != nullptr) {
      fp += StrFormat(" full=%llu",
                      (unsigned long long)leaf.full_output->num_records());
    }
    fp += "\n";
  }
  fp += StrFormat("now=%lld", static_cast<long long>(engine.now()));
  fp += "\ntrace:\n" + trace.SerializeJsonl();
  return fp;
}

TEST(EngineDeterminismTest, IdenticalResultsAcrossThreadCounts) {
  ScopedEnv row_mode = RowMode();
  std::string one = RunWorkload(1);
  std::string four = RunWorkload(4);
  std::string eight = RunWorkload(8);
  EXPECT_EQ(one, four) << "1-thread and 4-thread runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread runs diverged";
  // Sanity: the workload actually did something.
  EXPECT_NE(one.find("maps="), std::string::npos);
}

TEST(EngineDeterminismTest, RepeatedRunsAreStable) {
  ScopedEnv row_mode = RowMode();
  // Same thread count twice: guards against hidden global state (RNG,
  // clock, allocation-order dependence) rather than threading.
  EXPECT_EQ(RunWorkload(4), RunWorkload(4));
}

TEST(EngineDeterminismTest, IdenticalResultsUnderFaultInjection) {
  ScopedEnv row_mode = RowMode();
  // The fault model's draws (injected failures, straggler slowdowns,
  // speculative races) all happen on the scheduler thread at launch time,
  // so the thread-count contract must survive a failure-heavy run.
  FaultConfig faults;
  faults.seed = 42;
  faults.task_failure_rate = 0.12;
  faults.straggler_rate = 0.12;
  faults.straggler_slowdown = 6.0;
  faults.speculative_slowness_threshold = 1.5;
  faults.retry_backoff_ms = 200;

  FaultTotals totals;
  std::string one = RunWorkload(1, &faults, &totals);
  std::string four = RunWorkload(4, &faults);
  std::string eight = RunWorkload(8, &faults);
  EXPECT_EQ(one, four) << "1-thread and 4-thread faulty runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread faulty runs diverged";

  // The comparison is only meaningful if faults actually fired.
  EXPECT_GT(totals.failures_injected, 0);
  EXPECT_GT(totals.retries, 0);
  EXPECT_GT(totals.speculative_launches, 0);

  // And a faulty run is genuinely different from a clean one.
  EXPECT_NE(one, RunWorkload(1));
}

TEST(EngineDeterminismTest, IdenticalResultsUnderNodeCrashes) {
  ScopedEnv row_mode = RowMode();
  // Node crashes kill in-flight attempts, invalidate resident map outputs
  // and trigger shuffle re-fetches — all decided on the scheduler thread,
  // so a crash-heavy run must also be bit-identical across thread counts.
  FaultConfig faults;
  faults.seed = 99;
  faults.node_failure_rate = 0.2;
  faults.node_recovery_ms = 200;  // nodes rejoin: slow, never doomed
  faults.retry_backoff_ms = 100;

  FaultTotals totals;
  std::string one = RunWorkload(1, &faults, &totals);
  std::string four = RunWorkload(4, &faults);
  std::string eight = RunWorkload(8, &faults);
  EXPECT_EQ(one, four) << "1-thread and 4-thread crashy runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread crashy runs diverged";

  EXPECT_GT(totals.node_crashes, 0) << "no node crash fired at this rate";
  EXPECT_GT(totals.maps_invalidated, 0)
      << "no crash ever caught a completed map output";
  EXPECT_NE(one, RunWorkload(1));
}

TEST(EngineDeterminismTest, IdenticalResultsUnderDataCorruption) {
  ScopedEnv row_mode = RowMode();
  // Corruption draws (bad replica reads, corrupt shuffle fetches, poison
  // record positions) are all made on the scheduler thread from the per-job
  // fault stream, so a corruption-heavy run — skip-mode re-runs, quarantine
  // files and integrity trace events included — must be bit-identical
  // across thread counts.
  FaultConfig faults;
  faults.seed = 77;
  faults.block_corruption_rate = 0.15;
  faults.shuffle_corruption_rate = 0.5;
  faults.poison_record_rate = 0.005;
  faults.max_skipped_records = -1;
  faults.retry_backoff_ms = 100;

  FaultTotals totals;
  std::string one = RunWorkload(1, &faults, &totals);
  std::string four = RunWorkload(4, &faults);
  std::string eight = RunWorkload(8, &faults);
  EXPECT_EQ(one, four) << "1-thread and 4-thread corrupt runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread corrupt runs diverged";

  // The comparison only means something if each corruption path fired.
  EXPECT_GT(totals.block_corruptions, 0);
  EXPECT_GT(totals.checksum_refetches, 0);
  EXPECT_GT(totals.records_quarantined, 0u);
  EXPECT_NE(one, RunWorkload(1));
}

/// Spill-heavy memory-pressure workload: a tight per-task budget in kSpill
/// mode plus fault injection (task failures and corruption draws, which
/// also arm random spill-run rot), so run formation, bounded-memory merge
/// passes, corrupt-run retries and the billed spill I/O all fire under
/// slot contention. Every draw happens on the scheduler thread at launch,
/// so the digest — job accounting, spill counters, output bytes and the
/// serialized trace — must be bit-identical across thread counts.
std::string RunMemoryPressureWorkload(int threads,
                                      FaultTotals* totals = nullptr,
                                      int* spilled_tasks = nullptr) {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig config;
  config.map_slots = 8;
  config.reduce_slots = 4;
  config.job_startup_ms = 500;
  config.execution_threads = threads;
  config.reduce_memory_mode = ClusterConfig::ReduceMemoryMode::kSpill;
  config.memory_per_task_bytes = 2048;
  config.spill_merge_fan_in = 4;
  // Pin the fault settings so the memory preset's env vars (tight budget,
  // DYNO_SPILL, fault rates) cannot perturb these fingerprint comparisons.
  config.faults.use_env_defaults = false;
  config.faults.seed = 1234;
  config.faults.task_failure_rate = 0.08;
  config.faults.block_corruption_rate = 0.05;
  config.faults.retry_backoff_ms = 100;
  MapReduceEngine engine(&dfs, config);
  obs::TraceSink trace;
  engine.set_trace(&trace);

  std::vector<Value> rows;
  for (int i = 0; i < 4000; ++i) {
    rows.push_back(MakeRow({{"id", Value::Int(i)},
                            {"k", Value::Int(i % 160)},
                            {"pad", Value::String(std::string(24, 'y'))}}));
  }
  EXPECT_TRUE(catalog.CreateTable("wide", rows).ok());
  auto wide = catalog.OpenTable("wide");
  EXPECT_TRUE(wide.ok());

  // Map-only copy contending for the same slots as the spilling reducers.
  JobSpec copy;
  copy.name = "mcopy";
  copy.output_path = "/out/mcopy";
  {
    MapInput input;
    input.file = *wide;
    input.map_fn = [](const Value& record, MapContext* ctx) -> Status {
      ctx->Output(MakeRow({{"id", *record.FindField("id")}}));
      return Status::OK();
    };
    copy.inputs = {std::move(input)};
  }

  // Group job whose padded values push every reducer's buffered state far
  // past the 2 KiB budget, forcing multi-run spills and merge passes.
  JobSpec group;
  group.name = "mgroup";
  group.output_path = "/out/mgroup";
  {
    MapInput input;
    input.file = *wide;
    input.map_fn = [](const Value& record, MapContext* ctx) -> Status {
      const Value* k = record.FindField("k");
      ctx->Emit(Value::Int(k->int_value() % 20),
                MakeRow({{"id", *record.FindField("id")},
                         {"pad", *record.FindField("pad")}}));
      return Status::OK();
    };
    group.inputs = {std::move(input)};
  }
  group.num_reduce_tasks = 4;
  group.reduce_fn = [](const Value& key, const std::vector<Value>& values,
                       ReduceContext* ctx) -> Status {
    ctx->Output(MakeRow({{"g", key},
                         {"n", Value::Int(static_cast<int64_t>(
                                   values.size()))}}));
    return Status::OK();
  };

  auto results = engine.SubmitAll({copy, group});
  EXPECT_TRUE(results.ok());

  std::string fp = StrFormat("now0=%lld\n",
                             static_cast<long long>(engine.now()));
  for (const JobResult& job : *results) {
    fp += FingerprintJob(job);
    fp += StrFormat(" rsp=%d runs=%d passes=%d sw=%llu sr=%llu peak=%llu "
                    "planned=%d\n",
                    job.reduce_spills, job.spill_runs,
                    job.spill_merge_passes,
                    (unsigned long long)job.spill_bytes_written,
                    (unsigned long long)job.spill_bytes_read,
                    (unsigned long long)job.peak_task_memory_bytes,
                    job.reduce_tasks_planned);
    if (totals != nullptr) {
      totals->failures_injected += job.task_failures_injected;
      totals->retries += job.task_retries;
      totals->block_corruptions += job.block_corruptions;
    }
    if (spilled_tasks != nullptr) {
      *spilled_tasks += job.reduce_spills;
    }
  }
  fp += StrFormat("now=%lld", static_cast<long long>(engine.now()));
  fp += "\ntrace:\n" + trace.SerializeJsonl();
  return fp;
}

TEST(EngineDeterminismTest,
     MemoryPressureSpillsDeterministicAcrossThreadCounts) {
  ScopedEnv row_mode = RowMode();
  FaultTotals totals;
  int spilled_tasks = 0;
  std::string one = RunMemoryPressureWorkload(1, &totals, &spilled_tasks);
  std::string four = RunMemoryPressureWorkload(4);
  std::string eight = RunMemoryPressureWorkload(8);
  EXPECT_EQ(one, four) << "1-thread and 4-thread spill runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread spill runs diverged";

  // The comparison only means something if the memory model engaged.
  EXPECT_GT(spilled_tasks, 0) << "no reducer spilled at this budget";
  EXPECT_GT(totals.failures_injected, 0);
  EXPECT_NE(one.find("task_spill"), std::string::npos)
      << "spill events missing from the serialized trace";
}

/// A driver run killed mid-query and resumed from its checkpoint, digested
/// down to what recovery promises to preserve: result rows and records,
/// job accounting and the checkpointed (signature, stats) pairs. DFS paths
/// and the trace are excluded on purpose — they embed process-global
/// instance ids that legitimately differ between runs in one process.
std::string RunResumeWorkload(int threads) {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig config;
  config.job_startup_ms = 2000;
  config.map_slots = 20;
  config.reduce_slots = 10;
  config.memory_per_task_bytes = 64 * 1024;
  config.execution_threads = threads;
  config.faults.use_env_defaults = false;
  MapReduceEngine engine(&dfs, config);
  TpchConfig tpch;
  tpch.scale = 0.0005;
  tpch.split_bytes = 8 * 1024;
  EXPECT_TRUE(GenerateTpch(&catalog, tpch).ok());

  DynoOptions options;
  options.pilot.k = 256;
  options.pilot.mode = PilotRunOptions::Mode::kParallel;
  options.cost.max_memory_bytes = config.memory_per_task_bytes;
  options.cost.memory_factor = 1.5;
  options.checkpoint_path = "/ckpt/resume_fp";

  Query query = MakeTpchQ10();
  {
    StatsStore store;
    DynoOptions kill = options;
    kill.abort_after_jobs = 1;
    DynoDriver driver(&engine, &catalog, &store, kill);
    auto report = driver.Execute(query);
    EXPECT_FALSE(report.ok());
  }
  StatsStore store;
  DynoDriver driver(&engine, &catalog, &store, options);
  auto report = driver.Resume(query);
  EXPECT_TRUE(report.ok());
  if (!report.ok()) return report.status().ToString();

  uint64_t h = 14695981039346656037ull;
  for (const Split& split : report->result->splits()) h = Fnv1a(h, split.data);
  std::string fp = StrFormat(
      "rows=%llx records=%llu jobs=%d resumed=%d temp=%lld\n",
      (unsigned long long)h, (unsigned long long)report->result_records,
      report->jobs_run, report->resumed_steps,
      static_cast<long long>(driver.manifest().temp_counter));
  for (const CheckpointEntry& entry : driver.manifest().entries) {
    fp += entry.signature + " " + entry.relation_id + " [";
    for (const std::string& alias : entry.covered) fp += alias + ",";
    fp += StrFormat("] card=%.17g rec=%.17g\n", entry.stats.cardinality,
                    entry.stats.avg_record_size);
  }
  return fp;
}

/// The concurrent workload: eight TPC-H query sessions with a seeded
/// arrival schedule, multiplexed through the QueryService over one cluster
/// with task faults AND data corruption switched on. The fingerprint
/// digests every per-query outcome (status, admission/finish times, result
/// bytes, slot accounting, fault totals), the service metrics and the full
/// serialized trace — all of which must be bit-identical across execution
/// thread counts.
std::string RunConcurrentWorkload(int threads, FaultTotals* totals = nullptr,
                                  bool with_cache = false) {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig config;
  config.job_startup_ms = 2000;
  config.map_slots = 20;
  config.reduce_slots = 10;
  config.memory_per_task_bytes = 64 * 1024;
  config.execution_threads = threads;
  config.faults.use_env_defaults = false;
  config.faults.seed = 11;
  config.faults.task_failure_rate = 0.03;
  config.faults.straggler_rate = 0.05;
  config.faults.straggler_slowdown = 4.0;
  config.faults.block_corruption_rate = 0.02;
  config.faults.shuffle_corruption_rate = 0.05;
  config.faults.poison_record_rate = 0.0005;
  config.faults.max_skipped_records = -1;
  config.faults.retry_backoff_ms = 100;
  MapReduceEngine engine(&dfs, config);
  obs::TraceSink trace;
  obs::MetricsRegistry metrics;
  engine.set_trace(&trace);
  engine.set_metrics(&metrics);

  TpchConfig tpch;
  tpch.scale = 0.0005;
  tpch.split_bytes = 8 * 1024;
  EXPECT_TRUE(GenerateTpch(&catalog, tpch).ok());

  StatsStore store;
  QueryServiceOptions service_options;
  service_options.max_concurrent = 3;
  service_options.tenant_slots = 2;
  service_options.seed = 1234;
  service_options.arrival_window_ms = 60000;
  service_options.enable_subtree_cache = with_cache;
  QueryService service(&engine, &catalog, &store, service_options);

  for (int i = 0; i < 8; ++i) {
    QuerySubmission sub;
    sub.query_id = StrFormat("q%02d", i);
    sub.tenant = (i % 2 == 0) ? "alpha" : "beta";
    sub.query = (i % 2 == 0) ? MakeTpchQ10() : MakeTpchQ2();
    sub.options.pilot.k = 256;
    sub.options.pilot.mode = PilotRunOptions::Mode::kParallel;
    sub.options.cost.max_memory_bytes = config.memory_per_task_bytes;
    sub.options.cost.memory_factor = 1.5;
    sub.options.checkpoint_path = "/ckpt/concurrent";
    sub.arrival_offset_ms = -1;  // seeded service RNG stream
    EXPECT_TRUE(service.Enqueue(std::move(sub)).ok());
  }

  std::string fp;
  for (const QueryOutcome& outcome : service.RunAll()) {
    fp += StrFormat(
        "%s tenant=%s status=%d arrive=%lld admit=%lld finish=%lld "
        "slot=%lld",
        outcome.query_id.c_str(), outcome.tenant.c_str(),
        static_cast<int>(outcome.status.code()),
        (long long)outcome.arrival_ms, (long long)outcome.admit_ms,
        (long long)outcome.finish_ms, (long long)outcome.slot_ms);
    if (outcome.status.ok()) {
      const QueryRunReport& report = outcome.report;
      uint64_t h = 14695981039346656037ull;
      if (report.result != nullptr) {
        for (const Split& split : report.result->splits()) {
          h = Fnv1a(h, split.data);
        }
      }
      fp += StrFormat(
          " jobs=%d records=%llu rows=%llx inj=%d retry=%d bcorr=%d "
          "refetch=%d quar=%llu",
          report.jobs_run, (unsigned long long)report.result_records,
          (unsigned long long)h, report.task_failures_injected,
          report.task_retries, report.block_corruptions,
          report.checksum_refetches,
          (unsigned long long)report.records_quarantined);
      if (totals != nullptr) {
        totals->failures_injected += report.task_failures_injected;
        totals->retries += report.task_retries;
        totals->block_corruptions += report.block_corruptions;
        totals->checksum_refetches += report.checksum_refetches;
        totals->records_quarantined += report.records_quarantined;
      }
    }
    fp += "\n";
  }
  fp += StrFormat("now=%lld\n", (long long)engine.now());
  fp += "metrics:\n" + metrics.Serialize();
  fp += "trace:\n" + trace.SerializeJsonl();
  return fp;
}

TEST(EngineDeterminismTest, ConcurrentQueriesDeterministicAcrossThreadCounts) {
  ScopedEnv row_mode = RowMode();
  FaultTotals totals;
  std::string one = RunConcurrentWorkload(1, &totals);
  std::string four = RunConcurrentWorkload(4);
  std::string eight = RunConcurrentWorkload(8);
  EXPECT_EQ(one, four) << "1-thread and 4-thread concurrent runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread concurrent runs diverged";
  // Every session must actually have completed.
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(one.find(StrFormat("q%02d tenant=", i)), std::string::npos);
    EXPECT_NE(one.find(StrFormat("q%02d tenant=%s status=0", i,
                                 i % 2 == 0 ? "alpha" : "beta")),
              std::string::npos)
        << "query q" << i << " did not complete:\n"
        << one.substr(0, 2000);
  }
  // And the fault/corruption paths genuinely fired somewhere.
  EXPECT_GT(totals.failures_injected + totals.retries, 0);
  EXPECT_GT(totals.block_corruptions + totals.checksum_refetches +
                static_cast<int>(totals.records_quarantined),
            0);
}

// The same concurrent workload with the cross-query subtree cache enabled:
// hit patterns depend only on admission order (lookups and publishes happen
// on baton-serialized session threads), so the fingerprint — per-query
// result bytes, cache metrics, the full trace — must stay bit-identical
// across engine thread counts.
TEST(EngineDeterminismTest,
     ConcurrentQueriesWithSubtreeCacheDeterministicAcrossThreadCounts) {
  ScopedEnv row_mode = RowMode();
  std::string one = RunConcurrentWorkload(1, nullptr, /*with_cache=*/true);
  std::string four = RunConcurrentWorkload(4, nullptr, /*with_cache=*/true);
  std::string eight = RunConcurrentWorkload(8, nullptr, /*with_cache=*/true);
  EXPECT_EQ(one, four) << "1-thread and 4-thread cached runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread cached runs diverged";
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(one.find(StrFormat("q%02d tenant=%s status=0", i,
                                 i % 2 == 0 ? "alpha" : "beta")),
              std::string::npos)
        << "query q" << i << " did not complete";
  }
  // The cache genuinely participated (the workload repeats two query
  // shapes, so later sessions must hit the earlier sessions' entries).
  EXPECT_NE(one.find("cache.hits"), std::string::npos)
      << "no cache activity in the metrics fingerprint:\n"
      << one.substr(one.find("metrics:"), 2000);
}

/// The overload regime: eight sessions with mixed priorities squeezed
/// through two slots with priority preemption, a service checkpoint
/// namespace, and one hopeless deadline — under task faults AND data
/// corruption. Preemption victims are cancelled at a submission point,
/// re-queued and resumed from their checkpoint manifests; every one of
/// those decisions happens on the scheduler thread, so the complete
/// fingerprint (per-query outcomes with priorities/preemption counts,
/// service metrics, the full trace) must be bit-identical at any engine
/// thread count.
std::string RunOverloadWorkload(int threads) {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig config;
  config.job_startup_ms = 2000;
  config.map_slots = 20;
  config.reduce_slots = 10;
  config.memory_per_task_bytes = 64 * 1024;
  config.execution_threads = threads;
  config.faults.use_env_defaults = false;
  config.faults.seed = 11;
  config.faults.task_failure_rate = 0.03;
  config.faults.straggler_rate = 0.05;
  config.faults.straggler_slowdown = 4.0;
  config.faults.block_corruption_rate = 0.02;
  config.faults.shuffle_corruption_rate = 0.05;
  config.faults.poison_record_rate = 0.0005;
  config.faults.max_skipped_records = -1;
  config.faults.retry_backoff_ms = 100;
  MapReduceEngine engine(&dfs, config);
  obs::TraceSink trace;
  obs::MetricsRegistry metrics;
  engine.set_trace(&trace);
  engine.set_metrics(&metrics);

  TpchConfig tpch;
  tpch.scale = 0.0005;
  tpch.split_bytes = 8 * 1024;
  EXPECT_TRUE(GenerateTpch(&catalog, tpch).ok());

  StatsStore store;
  QueryServiceOptions service_options;
  service_options.max_concurrent = 2;
  service_options.priority_preemption = true;
  service_options.checkpoint_root = "/svc_fp";
  service_options.seed = 1234;
  service_options.arrival_window_ms = 60000;
  QueryService service(&engine, &catalog, &store, service_options);

  for (int i = 0; i < 8; ++i) {
    QuerySubmission sub;
    sub.query_id = StrFormat("q%02d", i);
    sub.tenant = (i % 2 == 0) ? "alpha" : "beta";
    sub.query = (i % 2 == 0) ? MakeTpchQ10() : MakeTpchQ2();
    sub.options.pilot.k = 256;
    sub.options.pilot.mode = PilotRunOptions::Mode::kParallel;
    sub.options.cost.max_memory_bytes = config.memory_per_task_bytes;
    sub.options.cost.memory_factor = 1.5;
    if (i < 2) {
      // Two priority-0 sessions pinned to t=0 hold both slots...
      sub.priority = 0;
      sub.arrival_offset_ms = 0;
    } else if (i == 2) {
      // ...so this high-priority arrival is guaranteed to preempt one.
      sub.priority = 5;
      sub.arrival_offset_ms = 5000;
    } else {
      sub.priority = i % 3;
      sub.arrival_offset_ms = -1;  // seeded service RNG stream
    }
    if (i == 7) sub.deadline_ms = 1;  // hopeless: exceeded at first sweep
    EXPECT_TRUE(service.Enqueue(std::move(sub)).ok());
  }

  std::string fp;
  int preempted_total = 0;
  int deadline_total = 0;
  for (const QueryOutcome& outcome : service.RunAll()) {
    preempted_total += outcome.preemptions;
    if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
      ++deadline_total;
    }
    fp += StrFormat(
        "%s pri=%d status=%d preempt=%d arrive=%lld admit=%lld finish=%lld "
        "slot=%lld",
        outcome.query_id.c_str(), outcome.priority,
        static_cast<int>(outcome.status.code()), outcome.preemptions,
        (long long)outcome.arrival_ms, (long long)outcome.admit_ms,
        (long long)outcome.finish_ms, (long long)outcome.slot_ms);
    if (outcome.status.ok()) {
      const QueryRunReport& report = outcome.report;
      uint64_t h = 14695981039346656037ull;
      if (report.result != nullptr) {
        for (const Split& split : report.result->splits()) {
          h = Fnv1a(h, split.data);
        }
      }
      fp += StrFormat(" jobs=%d records=%llu rows=%llx resumed=%d",
                      report.jobs_run,
                      (unsigned long long)report.result_records,
                      (unsigned long long)h, report.resumed_steps);
    }
    fp += "\n";
  }
  fp += StrFormat("preempted_total=%d deadline_total=%d now=%lld\n",
                  preempted_total, deadline_total, (long long)engine.now());
  fp += "metrics:\n" + metrics.Serialize();
  fp += "trace:\n" + trace.SerializeJsonl();
  return fp;
}

TEST(EngineDeterminismTest, OverloadRegimeDeterministicAcrossThreadCounts) {
  ScopedEnv row_mode = RowMode();
  std::string one = RunOverloadWorkload(1);
  std::string four = RunOverloadWorkload(4);
  std::string eight = RunOverloadWorkload(8);
  EXPECT_EQ(one, four) << "1-thread and 4-thread overload runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread overload runs diverged";
  // The regime's distinguishing paths genuinely fired: at least one
  // preemption (the pinned priority-5 arrival against two busy slots) and
  // the hopeless deadline.
  EXPECT_EQ(one.find("preempted_total=0"), std::string::npos)
      << "no session was ever preempted:\n" << one.substr(0, 1500);
  EXPECT_NE(one.find("deadline_total=1"), std::string::npos)
      << "the hopeless deadline did not fire:\n" << one.substr(0, 1500);
  // The preempted session still completed, resuming checkpointed work.
  EXPECT_NE(one.find("query_resumed"), std::string::npos)
      << "no resume event in the trace";
}

TEST(EngineDeterminismTest, ResumedQueryIsDeterministicAcrossThreadCounts) {
  ScopedEnv row_mode = RowMode();
  std::string one = RunResumeWorkload(1);
  std::string four = RunResumeWorkload(4);
  std::string eight = RunResumeWorkload(8);
  EXPECT_EQ(one, four) << "1-thread and 4-thread resumed runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread resumed runs diverged";
  EXPECT_NE(one.find("resumed="), std::string::npos);
  EXPECT_EQ(one.find("resumed=0"), std::string::npos)
      << "the resume must actually reuse a checkpointed step:\n" << one;
}

// The full concurrent regime — task faults, block + shuffle corruption,
// poison records AND the cross-query subtree cache — re-run with the
// columnar data plane and zone maps switched on. Base tables are written
// as columnar splits, leaf scans push their filters into the batch
// evaluator and skip splits via zone maps; every one of those decisions is
// made on the scheduler thread from per-job state, so the complete
// fingerprint (results, metrics, trace) must stay bit-identical across
// 1, 4 and 8 execution threads.
TEST(EngineDeterminismTest,
     ColumnarConcurrentFaultyCachedDeterministicAcrossThreadCounts) {
  ScopedEnv columnar({{"DYNO_COLUMNAR", "1"}, {"DYNO_ZONE_MAPS", "1"}});
  FaultTotals totals;
  std::string one = RunConcurrentWorkload(1, &totals, /*with_cache=*/true);
  std::string four = RunConcurrentWorkload(4, nullptr, /*with_cache=*/true);
  std::string eight = RunConcurrentWorkload(8, nullptr, /*with_cache=*/true);
  EXPECT_EQ(one, four) << "1-thread and 4-thread columnar runs diverged";
  EXPECT_EQ(one, eight) << "1-thread and 8-thread columnar runs diverged";
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(one.find(StrFormat("q%02d tenant=%s status=0", i,
                                 i % 2 == 0 ? "alpha" : "beta")),
              std::string::npos)
        << "query q" << i << " did not complete";
  }
  // The regime's hazard paths genuinely fired against columnar splits.
  EXPECT_GT(totals.failures_injected + totals.retries, 0);
  EXPECT_GT(totals.block_corruptions + totals.checksum_refetches +
                static_cast<int>(totals.records_quarantined),
            0);
  // And the columnar scan path genuinely ran: the metrics fingerprint
  // carries the batch-decode counter (registered only when a columnar
  // batch is actually decoded by a map task).
  EXPECT_NE(one.find("scan.batches"), std::string::npos)
      << "no columnar batch was ever decoded:\n"
      << one.substr(one.find("metrics:"), 1500);
}

// Row and columnar data planes must be indistinguishable end to end: the
// pilot bills logical (row-encoded) bytes, split boundaries coincide by
// construction, and a pruned split contains no matching rows — so plans,
// job pipelines and the final result file must come out byte-identical
// whichever format the base tables use. Sweep every paper query plus the
// Q5 extension, rebuilding the world from scratch per run.
TEST(EngineDeterminismTest, ColumnarMatchesRowByteIdentityAcrossTpch) {
  auto run_query = [](const Query& query, bool columnar) -> std::string {
    ScopedEnv env({{"DYNO_COLUMNAR", columnar ? "1" : "0"},
                   {"DYNO_ZONE_MAPS", columnar ? "1" : "0"}});
    Dfs dfs;
    Catalog catalog(&dfs);
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.map_slots = 20;
    config.reduce_slots = 10;
    config.memory_per_task_bytes = 64 * 1024;
    config.faults.use_env_defaults = false;
    MapReduceEngine engine(&dfs, config);
    TpchConfig tpch;
    tpch.scale = 0.0005;
    tpch.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog, tpch).ok());
    StatsStore store;
    DynoOptions options;
    options.pilot.k = 256;
    options.pilot.mode = PilotRunOptions::Mode::kParallel;
    options.cost.max_memory_bytes = config.memory_per_task_bytes;
    options.cost.memory_factor = 1.5;
    DynoDriver driver(&engine, &catalog, &store, options);
    auto report = driver.Execute(query);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (!report.ok()) return "error: " + report.status().ToString();
    uint64_t h = 14695981039346656037ull;
    uint64_t records = 0;
    for (const Split& split : report->result->splits()) {
      h = Fnv1a(h, split.data);
      records += split.num_records;
    }
    return StrFormat("rows=%llx records=%llu jobs=%d",
                     (unsigned long long)h, (unsigned long long)records,
                     report->jobs_run);
  };
  for (const NamedQuery& nq : MakeAllPaperQueries()) {
    std::string row = run_query(nq.query, /*columnar=*/false);
    std::string col = run_query(nq.query, /*columnar=*/true);
    EXPECT_EQ(row, col) << nq.name
                        << ": columnar result diverged from row result";
  }
}

}  // namespace
}  // namespace dyno
