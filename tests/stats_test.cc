#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/histogram.h"
#include "stats/kmv.h"
#include "stats/stats_store.h"
#include "stats/table_stats.h"

namespace dyno {
namespace {

// --- KMV synopsis ---

TEST(KmvTest, ExactBelowK) {
  KmvSynopsis kmv(64);
  for (int i = 0; i < 40; ++i) kmv.Add(Value::Int(i % 20));
  EXPECT_DOUBLE_EQ(kmv.Estimate(), 20.0);
}

TEST(KmvTest, EmptyIsZero) {
  KmvSynopsis kmv;
  EXPECT_DOUBLE_EQ(kmv.Estimate(), 0.0);
}

class KmvAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(KmvAccuracyTest, EstimateWithinExpectedError) {
  int true_ndv = GetParam();
  KmvSynopsis kmv(1024);
  Rng rng(99);
  for (int i = 0; i < 3 * true_ndv; ++i) {
    kmv.Add(Value::Int(static_cast<int64_t>(rng.Uniform(true_ndv))));
  }
  // Not every domain value necessarily appears; compare against the
  // coupon-collector expectation loosely: with 3x draws ~95% coverage.
  double est = kmv.Estimate();
  EXPECT_GT(est, 0.80 * true_ndv);
  EXPECT_LT(est, 1.25 * true_ndv);
}

INSTANTIATE_TEST_SUITE_P(NdvSweep, KmvAccuracyTest,
                         ::testing::Values(2000, 10000, 50000, 200000));

TEST(KmvTest, MergeEqualsUnion) {
  KmvSynopsis a(256);
  KmvSynopsis b(256);
  KmvSynopsis whole(256);
  for (int i = 0; i < 5000; ++i) {
    Value v = Value::Int(i);
    (i % 2 == 0 ? a : b).Add(v);
    whole.Add(v);
  }
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), whole.Estimate(), 1e-9)
      << "merge of partitions must equal the single-pass synopsis";
}

TEST(KmvTest, SerializeRoundTrip) {
  KmvSynopsis kmv(128);
  for (int i = 0; i < 10000; ++i) kmv.Add(Value::Int(i % 3777));
  Result<KmvSynopsis> back = KmvSynopsis::Deserialize(kmv.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->k(), 128);
  EXPECT_NEAR(back->Estimate(), kmv.Estimate(), 1e-9);
}

TEST(KmvTest, DeserializeRejectsCorruptPayloads) {
  KmvSynopsis kmv(64);
  for (int i = 0; i < 500; ++i) kmv.Add(Value::Int(i));
  std::string good = kmv.Serialize();

  // Truncated header.
  EXPECT_FALSE(KmvSynopsis::Deserialize("").ok());
  EXPECT_FALSE(KmvSynopsis::Deserialize(good.substr(0, 5)).ok());
  // Hash section not a multiple of 8 bytes.
  EXPECT_FALSE(KmvSynopsis::Deserialize(good + "xyz").ok());
  // k = 0.
  std::string zero_k = good;
  std::fill(zero_k.begin(), zero_k.begin() + 8, '\0');
  EXPECT_FALSE(KmvSynopsis::Deserialize(zero_k).ok());
  // Absurdly large k (would otherwise drive a huge reserve()).
  std::string huge_k = good;
  std::fill(huge_k.begin(), huge_k.begin() + 8, '\xff');
  EXPECT_FALSE(KmvSynopsis::Deserialize(huge_k).ok());
  // More hashes than k claims.
  std::string overfull = good + std::string(64 * 8, 'a');
  EXPECT_FALSE(KmvSynopsis::Deserialize(overfull).ok());
}

TEST(KmvTest, LazyCompactionKeepsEstimateStable) {
  // Estimate()/Serialize()/size() must see the same state before and after
  // internal compaction, and repeated reads must agree with each other.
  KmvSynopsis kmv(256);
  for (int i = 0; i < 200; ++i) kmv.Add(Value::Int(i));  // < 2k: uncompacted.
  double first = kmv.Estimate();
  EXPECT_EQ(kmv.size(), 200u);
  EXPECT_NEAR(kmv.Estimate(), first, 1e-12);
  std::string s1 = kmv.Serialize();
  EXPECT_EQ(kmv.Serialize(), s1);

  KmvSynopsis other(256);
  for (int i = 200; i < 600; ++i) other.Add(Value::Int(i));
  kmv.Merge(other);  // Deferred compaction path.
  Result<KmvSynopsis> round = KmvSynopsis::Deserialize(kmv.Serialize());
  ASSERT_TRUE(round.ok());
  EXPECT_NEAR(round->Estimate(), kmv.Estimate(), 1e-9);
  EXPECT_EQ(kmv.size(), round->size());
}

// --- StatsCollector ---

TEST(StatsCollectorTest, TracksCountBytesMinMax) {
  StatsCollector collector({"k"});
  for (int i = 10; i <= 30; ++i) {
    collector.Observe(MakeRow({{"k", Value::Int(i)}}));
  }
  EXPECT_EQ(collector.num_records(), 21u);
  TableStats stats = collector.Finalize(1.0);
  EXPECT_DOUBLE_EQ(stats.cardinality, 21.0);
  EXPECT_FALSE(stats.from_sample);
  const ColumnStats& k = stats.columns.at("k");
  EXPECT_EQ(k.min_value->int_value(), 10);
  EXPECT_EQ(k.max_value->int_value(), 30);
  EXPECT_NEAR(k.ndv, 21.0, 0.01);
  EXPECT_GT(stats.avg_record_size, 0.0);
}

TEST(StatsCollectorTest, SampleExtrapolationCardinality) {
  StatsCollector collector({"k"});
  for (int i = 0; i < 100; ++i) {
    collector.Observe(MakeRow({{"k", Value::Int(i)}}));
  }
  // We scanned 10% of the relation: cardinality scales by 10x.
  TableStats stats = collector.Finalize(0.1);
  EXPECT_TRUE(stats.from_sample);
  EXPECT_DOUBLE_EQ(stats.cardinality, 1000.0);
}

TEST(StatsCollectorTest, GeeExtrapolationKeyColumn) {
  // All sampled values distinct (a key column): GEE extrapolates by
  // sqrt(1/q) — the provable best guarantee, deliberately below linear.
  StatsCollector collector({"k"});
  for (int i = 0; i < 100; ++i) {
    collector.Observe(MakeRow({{"k", Value::Int(i)}}));
  }
  TableStats stats = collector.Finalize(0.01);
  // d = 100, f1 = 100, q = 0.01 -> ndv = 10 * 100 = 1000.
  EXPECT_NEAR(stats.columns.at("k").ndv, 1000.0, 1.0);
}

TEST(StatsCollectorTest, GeeExtrapolationSaturatedDomain) {
  // A small domain fully covered by the sample (every value repeats): GEE
  // must NOT extrapolate — this is the case where the paper's linear rule
  // overestimates by 1/q and wrecks join cardinalities.
  StatsCollector collector({"k"});
  for (int i = 0; i < 1000; ++i) {
    collector.Observe(MakeRow({{"k", Value::Int(i % 20)}}));
  }
  TableStats stats = collector.Finalize(0.05);
  EXPECT_NEAR(stats.columns.at("k").ndv, 20.0, 1.0)
      << "saturated domain: no singleton values, no extrapolation";
}

TEST(StatsCollectorTest, NdvCappedByCardinality) {
  StatsCollector collector({"k"});
  for (int i = 0; i < 50; ++i) {
    collector.Observe(MakeRow({{"k", Value::Int(i % 5)}}));
  }
  TableStats stats = collector.Finalize(0.01);
  EXPECT_LE(stats.columns.at("k").ndv, stats.cardinality);
}

TEST(StatsCollectorTest, SerializeMergeRoundTrip) {
  StatsCollector a({"x", "y"});
  StatsCollector b({"x", "y"});
  for (int i = 0; i < 100; ++i) {
    a.Observe(MakeRow({{"x", Value::Int(i)}, {"y", Value::String("a")}}));
    b.Observe(MakeRow({{"x", Value::Int(i + 100)}, {"y", Value::String("b")}}));
  }
  auto restored = StatsCollector::Deserialize(b.Serialize());
  ASSERT_TRUE(restored.ok());
  a.MergeFrom(*restored);
  EXPECT_EQ(a.num_records(), 200u);
  TableStats stats = a.Finalize(1.0);
  EXPECT_NEAR(stats.columns.at("x").ndv, 200.0, 1.0);
  EXPECT_EQ(stats.columns.at("y").min_value->string_value(), "a");
  EXPECT_EQ(stats.columns.at("y").max_value->string_value(), "b");
}

TEST(StatsCollectorTest, MissingColumnsIgnored) {
  StatsCollector collector({"absent"});
  collector.Observe(MakeRow({{"k", Value::Int(1)}}));
  TableStats stats = collector.Finalize(1.0);
  EXPECT_FALSE(stats.columns.at("absent").min_value.has_value());
  EXPECT_DOUBLE_EQ(stats.cardinality, 1.0);
}

TEST(TableStatsTest, ColumnNdvDefaultsToCardinality) {
  TableStats stats;
  stats.cardinality = 500;
  EXPECT_DOUBLE_EQ(stats.ColumnNdv("unknown"), 500.0);
  ColumnStats cs;
  cs.ndv = 50;
  stats.columns["k"] = cs;
  EXPECT_DOUBLE_EQ(stats.ColumnNdv("k"), 50.0);
}

// --- Equi-depth histogram ---

TEST(HistogramTest, UniformEqualitySelectivity) {
  std::vector<Value> values;
  for (int i = 0; i < 10000; ++i) values.push_back(Value::Int(i % 100));
  auto hist = EquiDepthHistogram::Build(values);
  double sel = hist.EstimateSelectivity(Expr::CompareOp::kEq, Value::Int(42));
  EXPECT_NEAR(sel, 0.01, 0.004);
}

TEST(HistogramTest, RangeSelectivity) {
  std::vector<Value> values;
  for (int i = 0; i < 10000; ++i) values.push_back(Value::Int(i));
  auto hist = EquiDepthHistogram::Build(values);
  double sel = hist.EstimateSelectivity(Expr::CompareOp::kLt,
                                        Value::Int(2500));
  EXPECT_NEAR(sel, 0.25, 0.02);
  sel = hist.EstimateSelectivity(Expr::CompareOp::kGe, Value::Int(9000));
  EXPECT_NEAR(sel, 0.10, 0.02);
}

TEST(HistogramTest, OutOfRangeLiterals) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(Value::Int(i));
  auto hist = EquiDepthHistogram::Build(values);
  EXPECT_NEAR(hist.EstimateSelectivity(Expr::CompareOp::kEq,
                                       Value::Int(99999)),
              0.0, 1e-9);
  EXPECT_NEAR(hist.EstimateSelectivity(Expr::CompareOp::kLt,
                                       Value::Int(99999)),
              1.0, 1e-9);
  EXPECT_NEAR(hist.EstimateSelectivity(Expr::CompareOp::kGt,
                                       Value::Int(-5)),
              1.0, 1e-9);
}

TEST(HistogramTest, StringEquality) {
  std::vector<Value> values;
  const char* names[4] = {"a", "b", "c", "d"};
  for (int i = 0; i < 4000; ++i) values.push_back(Value::String(names[i % 4]));
  auto hist = EquiDepthHistogram::Build(values);
  double sel = hist.EstimateSelectivity(Expr::CompareOp::kEq,
                                        Value::String("b"));
  EXPECT_NEAR(sel, 0.25, 0.1);
}

TEST(HistogramTest, EmptyInput) {
  auto hist = EquiDepthHistogram::Build({});
  EXPECT_EQ(hist.total_count(), 0u);
  EXPECT_DOUBLE_EQ(
      hist.EstimateSelectivity(Expr::CompareOp::kEq, Value::Int(1)), 1.0);
}

TEST(HistogramTest, SkewedDataEquality) {
  // 90% of values are 0; equality on the heavy hitter should be near 0.9 /
  // (per-bucket ndv), i.e. much larger than on a rare value.
  std::vector<Value> values;
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    values.push_back(Value::Int(rng.Bernoulli(0.9) ? 0 : rng.UniformInt(1, 100)));
  }
  auto hist = EquiDepthHistogram::Build(values);
  double heavy =
      hist.EstimateSelectivity(Expr::CompareOp::kEq, Value::Int(0));
  double light =
      hist.EstimateSelectivity(Expr::CompareOp::kEq, Value::Int(57));
  EXPECT_GT(heavy, 10 * light);
}

// --- StatsStore ---

TEST(StatsStoreTest, PutGetEraseAndCounters) {
  StatsStore store;
  EXPECT_FALSE(store.Get("sig").has_value());
  EXPECT_EQ(store.misses(), 1u);
  TableStats stats;
  stats.cardinality = 42;
  store.Put("sig", stats);
  EXPECT_TRUE(store.Contains("sig"));
  auto got = store.Get("sig");
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->cardinality, 42.0);
  EXPECT_EQ(store.hits(), 1u);
  store.Erase("sig");
  EXPECT_FALSE(store.Contains("sig"));
  store.Put("a", stats);
  store.Put("b", stats);
  EXPECT_EQ(store.size(), 2u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(StatsStoreTest, PutOverwrites) {
  StatsStore store;
  TableStats s1;
  s1.cardinality = 1;
  TableStats s2;
  s2.cardinality = 2;
  store.Put("k", s1);
  store.Put("k", s2);
  EXPECT_DOUBLE_EQ(store.Get("k")->cardinality, 2.0);
}

TEST(StatsStoreTest, VersionedGetRejectsStaleEntries) {
  StatsStore store;
  TableStats stats;
  stats.cardinality = 7;
  store.Put("sig", /*version=*/100, stats);

  // Matching version: hit.
  ASSERT_TRUE(store.Get("sig", 100).has_value());
  // Different non-wildcard version: the entry describes other data — a
  // stale miss, not a hit (the stale pilot-stats reuse bug).
  EXPECT_FALSE(store.Get("sig", 101).has_value());
  EXPECT_EQ(store.stale_misses(), 1u);
  EXPECT_EQ(store.misses(), 1u);
  // Wildcard requests accept any entry, and wildcard entries satisfy any
  // request (legacy unversioned callers keep working).
  EXPECT_TRUE(store.Get("sig").has_value());
  store.Put("legacy", stats);
  EXPECT_TRUE(store.Get("legacy", 42).has_value());
}

TEST(StatsStoreTest, VersionedPutOverwritesStale) {
  StatsStore store;
  TableStats s1;
  s1.cardinality = 1;
  TableStats s2;
  s2.cardinality = 2;
  store.Put("k", 1, s1);
  store.Put("k", 2, s2);  // The table was rewritten; re-measured stats.
  EXPECT_FALSE(store.Get("k", 1).has_value());
  auto got = store.Get("k", 2);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->cardinality, 2.0);
}

// TSan-covered regression for the unsynchronized StatsStore: concurrent
// sessions of the QueryService share one store, and the pre-fix
// implementation raced on its map. Hammer it from several threads; the
// assertions are secondary — the point is that TSan stays silent.
TEST(StatsStoreTest, ConcurrentAccessIsRaceFree) {
  StatsStore store;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      TableStats stats;
      stats.cardinality = t;
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "sig" + std::to_string(i % 17);
        switch (i % 5) {
          case 0:
            store.Put(key, static_cast<uint64_t>(t + 1), stats);
            break;
          case 1:
            (void)store.Get(key, static_cast<uint64_t>(t + 1));
            break;
          case 2:
            (void)store.Contains(key);
            break;
          case 3:
            (void)store.Get(key);
            break;
          default:
            if (i % 100 == 4) store.Erase(key);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.hits() + store.misses(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread * 2 / 5);
}

}  // namespace
}  // namespace dyno
