#include <gtest/gtest.h>

#include "baselines/best_static.h"
#include "baselines/exact_stats.h"
#include "baselines/relopt.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : catalog_(&dfs_), engine_(&dfs_, MakeConfig()) {
    TpchConfig config;
    config.scale = 0.0004;
    config.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog_, config).ok());
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.memory_per_task_bytes = 64 * 1024;
    return config;
  }

  CostModelParams Cost() {
    CostModelParams cost;
    cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    cost.memory_factor = 1.5;
    return cost;
  }

  Dfs dfs_;
  Catalog catalog_;
  MapReduceEngine engine_;
};

TEST_F(BaselinesTest, ExactLeafStatsMatchOracle) {
  LeafExpr leaf;
  leaf.alias = "o";
  leaf.table = "orders";
  leaf.filter = Eq(Col("o_channel"), LitString("web"));
  leaf.join_columns = {"o_custkey"};
  auto stats = ComputeExactLeafStats(&catalog_, leaf);
  ASSERT_TRUE(stats.ok());
  // Count by brute force.
  auto file = catalog_.OpenTable("orders");
  ASSERT_TRUE(file.ok());
  auto rows = ReadAllRows(**file);
  ASSERT_TRUE(rows.ok());
  int expected = 0;
  for (const Value& row : *rows) {
    if (row.FindField("o_channel")->string_value() == "web") ++expected;
  }
  EXPECT_DOUBLE_EQ(stats->cardinality, expected);
  EXPECT_LE(stats->columns.at("o_custkey").ndv, stats->cardinality);
}

TEST_F(BaselinesTest, RelOptHistogramEstimatesSimplePredicates) {
  RelOptBaseline relopt(&engine_, &catalog_, Cost());
  ASSERT_TRUE(relopt.AnalyzeTable("orders", {"o_orderdate", "o_custkey"})
                  .ok());
  LeafExpr leaf;
  leaf.alias = "o";
  leaf.table = "orders";
  leaf.filter = And(Ge(Col("o_orderdate"), LitInt(19950101)),
                    Le(Col("o_orderdate"), LitInt(19961231)));
  leaf.join_columns = {"o_custkey"};
  auto stats = relopt.EstimateLeaf(leaf);
  ASSERT_TRUE(stats.ok());
  // ~2 of 7 years selected.
  auto exact = ComputeExactLeafStats(&catalog_, leaf);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(stats->cardinality, exact->cardinality,
              0.35 * exact->cardinality);
}

TEST_F(BaselinesTest, RelOptUnderestimatesCorrelatedPredicates) {
  RelOptBaseline relopt(&engine_, &catalog_, Cost());
  ASSERT_TRUE(
      relopt.AnalyzeTable("orders", {"o_channel", "o_clerk_group"}).ok());
  LeafExpr leaf;
  leaf.alias = "o";
  leaf.table = "orders";
  leaf.filter = And(Eq(Col("o_channel"), LitString("web")),
                    Eq(Col("o_clerk_group"), LitInt(3)));
  leaf.join_columns = {};
  auto est = relopt.EstimateLeaf(leaf);
  auto exact = ComputeExactLeafStats(&catalog_, leaf);
  ASSERT_TRUE(est.ok());
  ASSERT_TRUE(exact.ok());
  // Independence predicts ~1/25; reality is ~1/5 (95% correlation): the
  // estimate must be several times below the truth.
  EXPECT_LT(est->cardinality, 0.5 * exact->cardinality);
}

TEST_F(BaselinesTest, RelOptBlindToUdfSelectivity) {
  RelOptBaseline relopt(&engine_, &catalog_, Cost());
  ASSERT_TRUE(relopt.AnalyzeTable("part", {"p_partkey"}).ok());
  LeafExpr leaf;
  leaf.alias = "p";
  leaf.table = "part";
  leaf.filter = MakeHashFilterUdf("sel01", {"p_partkey"}, 0.01, 10.0);
  leaf.join_columns = {"p_partkey"};
  auto est = relopt.EstimateLeaf(leaf);
  ASSERT_TRUE(est.ok());
  auto file = catalog_.OpenTable("part");
  ASSERT_TRUE(file.ok());
  // UDF treated as selectivity 1.0: estimate equals the full table.
  EXPECT_DOUBLE_EQ(est->cardinality,
                   static_cast<double>((*file)->num_records()));
}

TEST_F(BaselinesTest, RelOptPlansAndExecutesQ10) {
  RelOptBaseline relopt(&engine_, &catalog_, Cost());
  auto run = relopt.PlanAndExecute(MakeTpchQ10().join_block, ExecOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_TRUE(run->exec_status.ok()) << run->exec_status.ToString();
  ASSERT_NE(run->output, nullptr);
  auto oracle = NaiveEvaluateJoinBlock(&catalog_, MakeTpchQ10().join_block);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(run->output->num_records(), oracle->size())
      << "RELOPT picks a different plan but must compute the same result";
}

TEST_F(BaselinesTest, JaqlPlanIsLeftDeepWithFileSizeBroadcasts) {
  BestStaticOptions options;
  options.cost = Cost();
  BestStaticBaseline baseline(&engine_, &catalog_, options);
  JoinBlock block = MakeTpchQ10().join_block;
  auto plan = baseline.BuildJaqlPlan(block, {"c", "o", "l", "n"});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Left-deep by construction.
  const PlanNode* node = plan->get();
  while (!node->IsLeaf()) {
    EXPECT_TRUE(node->right->IsLeaf());
    node = node->left.get();
  }
  EXPECT_EQ(node->relation_id, "c");
  // nation's raw file obviously fits -> its join must be broadcast.
  const PlanNode* top = plan->get();
  ASSERT_EQ(top->right->relation_id, "n");
  EXPECT_EQ(top->method, JoinMethod::kBroadcast);
}

TEST_F(BaselinesTest, JaqlPlanRejectsCartesianOrder) {
  BestStaticOptions options;
  options.cost = Cost();
  BestStaticBaseline baseline(&engine_, &catalog_, options);
  JoinBlock block = MakeTpchQ10().join_block;
  // nation connects only through customer; starting l, n forces a
  // cartesian product at n.
  EXPECT_FALSE(baseline.BuildJaqlPlan(block, {"l", "n", "o", "c"}).ok());
}

TEST_F(BaselinesTest, BestStaticFindsCorrectAndCompetitivePlan) {
  BestStaticOptions options;
  options.cost = Cost();
  options.execute_top_k = 3;
  BestStaticBaseline baseline(&engine_, &catalog_, options);
  JoinBlock block = MakeTpchQ10().join_block;
  auto result = baseline.Run(block);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->plans_enumerated, 1);
  EXPECT_GT(result->best_time_ms, 0);
  auto oracle = NaiveEvaluateJoinBlock(&catalog_, block);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(result->output->num_records(), oracle->size());
}

TEST_F(BaselinesTest, BestStaticEnumerationDedupesPlans) {
  BestStaticOptions options;
  options.cost = Cost();
  options.execute_top_k = 1;
  BestStaticBaseline baseline(&engine_, &catalog_, options);
  // Q2: 5 relations, many orders map to the same physical plan.
  auto result = baseline.Run(MakeTpchQ2().join_block);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->plans_enumerated, 0);
  EXPECT_LT(result->plans_enumerated, 120)
      << "dedup must collapse equivalent orders";
}

}  // namespace
}  // namespace dyno
